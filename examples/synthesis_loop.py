#!/usr/bin/env python3
"""Simulation-driven circuit synthesis with incremental updates.

The paper motivates incremental QCS with quantum circuit synthesis engines
that "issue thousands of simulation runs in an optimization loop to evaluate
how a local change affects output amplitudes" (§II.C).  This example runs a
small version of that loop: starting from a layered ansatz it repeatedly
perturbs one rotation gate (remove + re-insert with a new angle) and keeps
the change when it increases the probability of a target basis state.  Every
evaluation is an *incremental* ``update_state`` call.

Run with::

    python examples/synthesis_loop.py
"""

import math
import random
import time

from repro import QTask


NUM_QUBITS = 6
LAYERS = 3
TARGET_STATE = 0b101101      # the basis state whose probability we maximise
ITERATIONS = 120


def build_ansatz(ckt: QTask, rng: random.Random):
    """A layered RY + CX-ladder ansatz; yields (net, qubit, angle, handle) slots."""
    for _ in range(LAYERS):
        rot_net = ckt.insert_net()
        handles = []
        for q in range(NUM_QUBITS):
            theta = rng.uniform(0, 2 * math.pi)
            handles.append(
                (rot_net, q, theta, ckt.insert_gate("ry", rot_net, q, params=(theta,)))
            )
        entangle_even = ckt.insert_net()
        for q in range(0, NUM_QUBITS - 1, 2):
            ckt.insert_gate("cx", entangle_even, q, q + 1)
        entangle_odd = ckt.insert_net()
        for q in range(1, NUM_QUBITS - 1, 2):
            ckt.insert_gate("cx", entangle_odd, q, q + 1)
        yield from handles


def main() -> None:
    rng = random.Random(7)
    ckt = QTask(NUM_QUBITS, block_size=8)
    slots = list(build_ansatz(ckt, rng))

    ckt.update_state()
    best = ckt.probability(TARGET_STATE)
    print(f"initial P(target) = {best:.4f}")

    accepted = 0
    affected_total = 0
    start = time.perf_counter()
    for it in range(ITERATIONS):
        net, qubit, old_theta, handle = slots[rng.randrange(len(slots))]
        new_theta = (old_theta + rng.gauss(0.0, 0.6)) % (2 * math.pi)

        # local change: replace one rotation gate
        ckt.remove_gate(handle)
        new_handle = ckt.insert_gate("ry", net, qubit, params=(new_theta,))
        report = ckt.update_state()          # incremental re-simulation
        affected_total += report.affected_partitions

        prob = ckt.probability(TARGET_STATE)
        if prob > best:
            best = prob
            accepted += 1
            slots[slots.index((net, qubit, old_theta, handle))] = (
                net, qubit, new_theta, new_handle)
        else:
            # revert the change (again incrementally)
            ckt.remove_gate(new_handle)
            reverted = ckt.insert_gate("ry", net, qubit, params=(old_theta,))
            ckt.update_state()
            slots[slots.index((net, qubit, old_theta, handle))] = (
                net, qubit, old_theta, reverted)
    elapsed = time.perf_counter() - start

    stats = ckt.statistics()
    print(f"after {ITERATIONS} local changes: P(target) = {best:.4f} "
          f"({accepted} accepted)")
    print(f"total wall time {elapsed:.2f} s, "
          f"mean affected partitions per update "
          f"{affected_total / ITERATIONS:.1f} of {stats['num_nodes']}")
    ckt.close()


if __name__ == "__main__":
    main()
