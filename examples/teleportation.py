"""Quantum teleportation: mid-circuit measurement + classical control.

The canonical dynamic circuit: Alice teleports ``ry(theta)|0>`` to Bob using
one Bell pair, two mid-circuit measurements and measurement-conditioned
Pauli corrections (``c_if``).  The example demonstrates

* the dynamic-circuit API (``measure`` / ``c_if`` / classical registers),
* per-trajectory equivalence against the dense reference oracle (the oracle
  replays the recorded outcomes, so amplitudes must match to ~1e-12),
* seeded ``run_shots`` trajectory sampling: the final measurement of Bob's
  qubit reproduces the message statistics ``P(1) = sin^2(theta/2)``
  regardless of the (uniformly random) Bell-measurement record.

Run:  PYTHONPATH=src python examples/teleportation.py

Set ``QTASK_TRACE_OUT=trace.json`` to run with structured tracing enabled
and export a chrome://tracing / Perfetto trace of every update and shot
(this is what the CI trace-artifact step does).
"""

import math
import os

import numpy as np

from repro import QTask
from repro.baselines.dense import DenseReferenceSimulator


def build_teleportation(theta: float, **kwargs) -> QTask:
    """Teleport ``ry(theta)|0>`` from qubit 0 to qubit 2.

    Classical bits: c[0]/c[1] hold Alice's Bell-measurement record, c[2] the
    final verification measurement of Bob's qubit.
    """
    ckt = QTask(3, num_clbits=3, **kwargs)
    prep, bell, cnot, had, meas, fix_x, fix_z, verify = (
        ckt.insert_net() for _ in range(8)
    )
    ckt.insert_gate("ry", prep, 0, params=[theta])   # the message state
    ckt.insert_gate("h", prep, 1)                    # Bell pair (q1, q2)
    ckt.insert_gate("cx", bell, 1, 2)
    ckt.insert_gate("cx", cnot, 0, 1)                # Bell-basis rotation
    ckt.insert_gate("h", had, 0)
    ckt.measure(meas, 0, 0)                          # Alice measures
    ckt.measure(meas, 1, 1)
    ckt.c_if("x", fix_x, 2, condition=((1,), 1))     # Bob's corrections
    ckt.c_if("z", fix_z, 2, condition=((0,), 1))
    ckt.measure(verify, 2, 2)                        # verify the teleport
    return ckt


def main() -> None:
    theta = 2.0 * math.pi / 3.0
    p1 = math.sin(theta / 2) ** 2
    print(f"teleporting ry({theta:.4f})|0>  ->  P(measure 1) = {p1:.4f}\n")

    # -- one seeded trajectory, checked against the dense oracle ------------
    trace_out = os.environ.get("QTASK_TRACE_OUT")
    ckt = build_teleportation(
        theta, seed=42, block_size=2, tracing=True if trace_out else None
    )
    ckt.update_state()
    record = ckt.outcomes
    print(f"Bell measurement record: c1c0 = {record.get_bit(1)}{record.get_bit(0)}")
    print(f"Bob's verification bit:  c2   = {record.get_bit(2)}")

    dense = DenseReferenceSimulator(
        ckt.circuit, forced_outcomes=record.recorded_outcomes()
    )
    dense.update_state()
    diff = float(np.abs(ckt.state() - dense.state()).max())
    print(f"max |amplitude diff| vs dense oracle (replayed outcomes): {diff:.2e}")
    assert diff < 1e-10, "trajectory must match the dense reference"

    # -- trajectory sampling ------------------------------------------------
    shots = 2000
    counts = ckt.run_shots(shots, seed=7)
    if trace_out:
        trace = ckt.export_trace(trace_out)
        print(f"\nwrote {len(trace['traceEvents'])} trace events "
              f"to {trace_out} (open in ui.perfetto.dev)")
    ckt.close()

    # The verification bit c2 must follow the message statistics; the Bell
    # record (c1, c0) is uniform.  Bitstrings read c2 c1 c0, left to right.
    ones = sum(n for bits, n in counts.items() if bits[0] == "1")
    print(f"\n{shots} trajectories: counts = {dict(sorted(counts.items()))}")
    print(f"empirical P(c2=1) = {ones / shots:.4f}  (analytic {p1:.4f})")
    sigma = math.sqrt(p1 * (1 - p1) / shots)
    assert abs(ones / shots - p1) < 6 * sigma, "teleported statistics off"
    print("teleportation verified: dynamic trajectories match the oracle "
          "and the analytic statistics")


if __name__ == "__main__":
    main()
