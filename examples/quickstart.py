#!/usr/bin/env python3
"""Quickstart: the paper's Listing-1 workflow on the Figure-2 circuit.

Builds the five-qubit circuit of Fig. 2 (a Hadamard wall followed by four
CNOTs), runs a full simulation, then modifies the circuit (remove G8, insert
G10) and runs an *incremental* update that only re-simulates the affected
partitions.

Run with::

    python examples/quickstart.py
"""

from repro import QTask


def main() -> None:
    # A five-qubit circuit with a block size of 4, as in the paper's example.
    ckt = QTask(5, block_size=4)
    q4, q3, q2, q1, q0 = ckt.qubits()

    # Create five nets (levels of structurally parallel gates).
    net1 = ckt.insert_net()
    net2 = ckt.insert_net(net1)
    net3 = ckt.insert_net(net2)
    net4 = ckt.insert_net(net3)
    net5 = ckt.insert_net(net4)

    # Net 1: the Hadamard wall (superposition); nets 2-5: the CNOT chain.
    for q in (q4, q3, q2, q1, q0):
        ckt.insert_gate("h", net1, q)
    ckt.insert_gate("cnot", net2, q4, q3)   # G6  (control q4, target q3)
    ckt.insert_gate("cnot", net3, q4, q1)   # G7
    G8 = ckt.insert_gate("cnot", net4, q3, q2)   # G8
    ckt.insert_gate("cnot", net5, q2, q0)   # G9

    print("=== partition task graph (DOT) ===")
    print(ckt.dump_graph())

    report = ckt.update_state()              # full simulation
    print(f"full simulation: {report.affected_partitions}/{report.total_partitions} "
          f"partitions in {report.elapsed_seconds * 1e3:.2f} ms")
    print(f"P(|00000>) = {ckt.probability(0):.4f}")

    # --- circuit modifiers + incremental update --------------------------------
    ckt.remove_gate(G8)
    ckt.insert_gate("cnot", net4, q2, q1)    # G10
    report = ckt.update_state()              # incremental simulation
    print(f"incremental update: {report.affected_partitions}/"
          f"{report.total_partitions} partitions in "
          f"{report.elapsed_seconds * 1e3:.2f} ms "
          f"({report.affected_fraction * 100:.0f}% of the graph)")

    mem = ckt.memory_report()
    print(f"COW storage: {mem.stored_blocks}/{mem.total_blocks} blocks materialised, "
          f"{mem.allocated_bytes} bytes "
          f"({mem.savings_fraction * 100:.0f}% below dense per-stage storage)")
    ckt.close()


if __name__ == "__main__":
    main()
