#!/usr/bin/env python3
"""Incremental equivalence checking of two circuit variants.

Equivalence-checking tools "repetitively add or remove gates to verify how
similar two circuits are based on simulation results" (§I).  This example
checks that compiling a Toffoli gate into the standard Clifford+T network
preserves the circuit behaviour: it simulates a reference circuit once, then
*incrementally* swaps the CCX for its decomposition (remove one gate, insert
the replacement network) and compares output amplitudes for a set of basis
inputs -- without ever re-simulating the unmodified prefix of the circuit.

Run with::

    python examples/equivalence_checking.py
"""

import numpy as np

from repro import QTask
from repro.circuits import toffoli_gates


NUM_QUBITS = 5


def build_prefix(ckt: QTask):
    """A fixed prefix circuit creating an interesting input superposition."""
    net_h = ckt.insert_net()
    for q in range(NUM_QUBITS):
        ckt.insert_gate("h", net_h, q)
    net_e = ckt.insert_net()
    ckt.insert_gate("cx", net_e, 0, 3)
    ckt.insert_gate("rz", net_e, 1, params=(0.37,))


def main() -> None:
    ckt = QTask(NUM_QUBITS, block_size=8)
    build_prefix(ckt)

    # Variant A: a genuine Toffoli gate on (control=0, control=1, target=2).
    toffoli_net = ckt.insert_net()
    ccx = ckt.insert_gate("ccx", toffoli_net, 0, 1, 2)
    ckt.update_state()
    reference = ckt.state()
    print(f"reference simulated: {ckt.num_gates} gates, "
          f"{ckt.statistics()['num_nodes']} partitions")

    # Variant B: replace the CCX with its 15-gate Clifford+T decomposition,
    # appended as new nets after the (unchanged) prefix.
    ckt.remove_gate(ccx)
    decomposition = toffoli_gates(0, 1, 2, decompose=True)
    current_net = None
    used = set()
    for gate in decomposition:
        if current_net is None or used.intersection(gate.qubits):
            current_net = ckt.insert_net()
            used = set()
        ckt.insert_gate(gate, current_net)
        used.update(gate.qubits)
    report = ckt.update_state()
    candidate = ckt.state()
    print(f"decomposed variant simulated incrementally: "
          f"{report.affected_partitions}/{report.total_partitions} partitions updated")

    # Compare up to a global phase.
    k = int(np.argmax(np.abs(reference)))
    phase = candidate[k] / reference[k]
    max_err = float(np.max(np.abs(candidate - reference * phase)))
    print(f"max amplitude deviation (after global-phase alignment): {max_err:.2e}")
    print("EQUIVALENT" if max_err < 1e-9 else "NOT EQUIVALENT")
    ckt.close()


if __name__ == "__main__":
    main()
