#!/usr/bin/env python3
"""Variational sweep: QAOA angle tuning via ``update_gate`` + ``expectation``.

A miniature variational loop on a ring-MaxCut QAOA circuit: the final
round's cost (``rz``) and mixer (``rx``) angles are swept while the MaxCut
cost Hamiltonian is re-evaluated after every retune.  ``update_gate`` keeps
each retuned gate's stage and the partition-graph topology intact, so every
``update_state`` is an *incremental* re-simulation of the retuned round's
downstream cone -- the workload qTask's retune modifier exists for.

Run with::

    python examples/variational_sweep.py
"""

from repro import QTask
from repro.observables import maxcut_hamiltonian


def main() -> None:
    num_qubits, rounds = 10, 2
    edges = [(q, (q + 1) % num_qubits) for q in range(num_qubits)]
    cost = maxcut_hamiltonian(edges)

    ckt = QTask(num_qubits)

    # Build the QAOA ansatz through the Table-II net/gate API.
    net = ckt.insert_net()
    for q in range(num_qubits):
        ckt.insert_gate("h", net, q)
    gamma_handles, beta_handles = [], []
    angles = [(0.40, 0.90), (0.70, 0.30)]
    for gamma, beta in angles[:rounds]:
        for parity in (0, 1):  # ring edges in two structurally parallel groups
            group = [e for i, e in enumerate(edges) if i % 2 == parity]
            cx1 = ckt.insert_net()
            rz = ckt.insert_net(cx1)
            cx2 = ckt.insert_net(rz)
            for a, b in group:
                ckt.insert_gate("cx", cx1, a, b)
                gamma_handles.append(
                    ckt.insert_gate("rz", rz, b, params=[2 * gamma])
                )
                ckt.insert_gate("cx", cx2, a, b)
        mixer = ckt.insert_net()
        beta_handles = [
            ckt.insert_gate("rx", mixer, q, params=[2 * beta])
            for q in range(num_qubits)
        ]

    report = ckt.update_state()  # full simulation
    print(f"built {ckt.num_gates}-gate QAOA ansatz on {num_qubits} qubits "
          f"({report.total_partitions} partitions)")
    print(f"initial <C> = {ckt.expectation(cost):.6f}")

    # Line search over the final round's angles, one retune per step.
    final_gammas = gamma_handles[-len(edges):]
    best = (ckt.expectation(cost), angles[rounds - 1])
    print(f"\n{'gamma':>7} {'beta':>7} {'<C>':>10} {'partitions':>12}")
    for step in range(1, 7):
        gamma = angles[rounds - 1][0] + 0.06 * step
        beta = angles[rounds - 1][1] - 0.03 * step
        for h in final_gammas:
            ckt.update_gate(h, 2 * gamma)
        for h in beta_handles:
            ckt.update_gate(h, 2 * beta)
        report = ckt.update_state()  # incremental: same stages, same graph
        value = ckt.expectation(cost)
        best = max(best, (value, (gamma, beta)))
        print(f"{gamma:>7.3f} {beta:>7.3f} {value:>10.6f} "
              f"{report.affected_partitions:>5}/{report.total_partitions} "
              f"({report.affected_fraction * 100:.0f}%)")

    (value, (gamma, beta)) = best
    print(f"\nbest <C> = {value:.6f} at gamma={gamma:.3f}, beta={beta:.3f} "
          f"(max cut = {len(edges)} edges)")

    # Measurement on the tuned state: sampled counts via the prefix-sum tree.
    top = sorted(ckt.counts(2000, seed=7).items(), key=lambda kv: -kv[1])[:5]
    print("top sampled bitstrings:",
          ", ".join(f"{bits}x{n}" for bits, n in top))
    ckt.close()


if __name__ == "__main__":
    main()
