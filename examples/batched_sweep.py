#!/usr/bin/env python3
"""Batched sweep: fork a session into a fleet and sweep a grid in parallel.

Where ``variational_sweep.py`` retunes one session point after point, this
example forks the base session into copy-on-write children
(:meth:`repro.QTask.fork` -- zero amplitude copies; ``memory_report`` shows
the fleet *sharing* the parent's blocks) and lets :class:`repro.SweepRunner`
deal a (gamma, beta) grid across the fleet on the shared work-stealing
executor.  Results come back in submission order, each with the expectation
value, the serving fork and the incrementally re-simulated fraction.

Run with::

    python examples/batched_sweep.py
"""

from repro import QTask, SweepRunner
from repro.observables import maxcut_hamiltonian


def build_qaoa(ckt: QTask, num_qubits: int, gamma: float, beta: float):
    """One QAOA round on a ring; returns the retunable rz/rx handles."""
    edges = [(q, (q + 1) % num_qubits) for q in range(num_qubits)]
    net = ckt.insert_net()
    for q in range(num_qubits):
        ckt.insert_gate("h", net, q)
    gamma_handles = []
    for parity in (0, 1):  # ring edges in two structurally parallel groups
        group = [e for i, e in enumerate(edges) if i % 2 == parity]
        cx1 = ckt.insert_net()
        rz = ckt.insert_net(cx1)
        cx2 = ckt.insert_net(rz)
        for a, b in group:
            ckt.insert_gate("cx", cx1, a, b)
            gamma_handles.append(ckt.insert_gate("rz", rz, b, params=[2 * gamma]))
            ckt.insert_gate("cx", cx2, a, b)
    mixer = ckt.insert_net()
    beta_handles = [
        ckt.insert_gate("rx", mixer, q, params=[2 * beta])
        for q in range(num_qubits)
    ]
    return edges, gamma_handles, beta_handles


def main() -> None:
    num_qubits = 10
    ckt = QTask(num_qubits, num_workers=4)
    edges, gamma_handles, beta_handles = build_qaoa(ckt, num_qubits, 0.4, 0.9)
    cost = maxcut_hamiltonian(edges)
    ckt.update_state()
    ckt.expectation(cost)  # warm the observables cache the forks inherit

    # A 4x4 (gamma, beta) grid; every point sets all handles absolutely.
    grid = [
        tuple([2 * gamma] * len(gamma_handles) + [2 * beta] * len(beta_handles))
        for gamma in (0.3, 0.5, 0.7, 0.9)
        for beta in (0.2, 0.4, 0.6, 0.8)
    ]

    with SweepRunner(ckt, gamma_handles + beta_handles,
                     observable=cost) as runner:
        results = runner.run(grid)

        print(f"{'point':>5} {'gamma':>6} {'beta':>6} {'<cost>':>9} "
              f"{'fork':>4} {'re-simulated':>12}")
        for r in results:
            gamma, beta = r.params[0] / 2, r.params[-1] / 2
            print(f"{r.index:>5} {gamma:>6.2f} {beta:>6.2f} "
                  f"{r.expectation:>9.4f} {r.fork:>4} "
                  f"{r.affected_fraction * 100:>11.1f}%")

        best = max(results, key=lambda r: r.expectation)
        print(f"\nbest point: #{best.index} "
              f"(gamma={best.params[0] / 2:.2f}, "
              f"beta={best.params[-1] / 2:.2f}) -> {best.expectation:.4f}")

        # The fleet shares the parent's amplitudes copy-on-write.
        fleet = [child.memory_report() for child, _ in runner._forks]
        base = ckt.memory_report()
        owned = sum(m.owned_bytes for m in fleet)
        print(f"fleet memory: {len(fleet)} forks own {owned} bytes beyond "
              f"the base session's {base.allocated_bytes} "
              f"({sum(m.shared_bytes for m in fleet)} bytes shared)")

    ckt.close()


if __name__ == "__main__":
    main()
