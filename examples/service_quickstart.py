#!/usr/bin/env python3
"""Service quickstart: concurrent jobs against a multi-tenant Backend.

Spins up a :class:`repro.service.Backend` (bounded admission queue, warm
copy-on-write session pool, shared work-stealing executor), submits a mix
of Bell / GHZ / dynamic-teleportation jobs from two tenants *concurrently*,
then prints each job's histogram, the warm-pool hit rate and a per-tenant
metrics rollup.

Run with::

    python examples/service_quickstart.py
"""

from repro.service import Backend

BELL = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
cx q[0], q[1];
"""

GHZ = """
OPENQASM 2.0;
qreg q[4];
h q[0];
cx q[0], q[1];
cx q[1], q[2];
cx q[2], q[3];
"""

# dynamic circuit: measurement feeding a classically-conditioned correction
COINFLIP = """
OPENQASM 2.0;
qreg q[2];
creg c[2];
h q[0];
measure q[0] -> c[0];
if (c == 1) x q[1];
measure q[1] -> c[1];
"""


def main() -> None:
    backend = Backend(
        {"max_concurrent_jobs": 4, "max_queued_jobs": 16},
        num_workers=4,
    )
    print(f"backend: {backend!r}")
    cfg = backend.configuration
    print(f"declared: n_qubits<={cfg.n_qubits} (memory-derived), "
          f"max_shots={cfg.max_shots}, {len(cfg.basis_gates)} basis gates")

    # Submit everything up front: run() returns immediately with an async
    # Job; the dispatcher pool drains the queue on the shared executor.
    workload = [
        ("alice", "bell", BELL),
        ("alice", "ghz", GHZ),
        ("bob", "coinflip", COINFLIP),
        ("bob", "bell", BELL),
        ("alice", "coinflip", COINFLIP),
        ("bob", "ghz", GHZ),
        ("alice", "bell", BELL),
        ("bob", "coinflip", COINFLIP),
    ]
    jobs = [
        (tenant, name, backend.run(src, shots=256, seed=11, tenant=tenant))
        for tenant, name, src in workload
    ]

    print("\n=== results (same circuit + seed => identical histograms) ===")
    for tenant, name, job in jobs:
        result = job.result(timeout=120)
        top = sorted(result.counts.items(), key=lambda kv: -kv[1])[:2]
        warm = "warm-pool hit" if result.pool_hit else "cold build"
        print(f"{job.job_id} [{tenant}/{name}] {warm}: top outcomes {top}")

    print("\n=== per-tenant metrics rollup ===")
    for tenant in backend.tenants():
        rollup = backend.tenant_metrics(tenant).as_dict()
        update = rollup["histograms"].get(
            "update.seconds", {"count": 0, "sum": 0.0}
        )
        print(f"{tenant}: {update['count']} engine updates, "
              f"{update['sum'] * 1e3:.2f} ms total update time")

    status = backend.status()
    pool = status["pool"]
    print(f"\npool: {pool['sessions']} warm sessions, "
          f"{pool['owned_bytes']} COW bytes owned")
    print(f"jobs: {status['jobs']}")

    # The whole backend exports as Prometheus text (scrape endpoint ready).
    hits = [line for line in backend.prometheus_text().splitlines()
            if line.startswith("qtask_service_pool_hits")]
    print("prometheus: " + " | ".join(hits))

    backend.close()


if __name__ == "__main__":
    main()
