#!/usr/bin/env python3
"""Step-by-step simulation for interactive debugging / teaching.

The paper's third motivating application: "developers can issue step-by-step
simulation calls to debug how qubits change during the implementation of
quantum algorithms" (§I).  This example loads Grover's search (two iterations
on four qubits) from OpenQASM text, then adds the circuit one level at a time,
calling ``update_state`` after each level and printing the amplitude
distribution -- the paper's incremental level-by-level protocol.

Run with::

    python examples/step_by_step_debugging.py
"""

from repro import QTask
from repro.circuits import grover_sat
from repro.qasm import levelize, parse_qasm, to_qasm


def amplitude_bar(probability: float, width: int = 30) -> str:
    filled = int(round(probability * width))
    return "#" * filled + "." * (width - filled)


def main() -> None:
    # Generate the circuit, write it to OpenQASM and parse it back -- showing
    # the qasm substrate working end to end.
    gates = grover_sat(6, iterations=2, seed=3)
    qasm_text = to_qasm(levelize(gates), num_qubits=6)
    program = parse_qasm(qasm_text)
    levels = levelize(program.gates, barriers=program.barriers)
    print(f"loaded OpenQASM program: {program.num_qubits} qubits, "
          f"{program.num_gates} gates, {len(levels)} levels")

    ckt = QTask(program.num_qubits, block_size=16)
    for depth, level in enumerate(levels, start=1):
        net = ckt.insert_net()
        for gate in level:
            ckt.insert_gate(gate, net)
        report = ckt.update_state()          # incremental: only new partitions

        probs = ckt.probabilities()
        top = sorted(range(len(probs)), key=lambda i: -probs[i])[:3]
        summary = ", ".join(f"|{i:0{program.num_qubits}b}>: {probs[i]:.3f}" for i in top)
        print(f"level {depth:2d} ({len(level)} gates, "
              f"{report.affected_partitions:3d} partitions updated) top states: {summary}")

    print("\nfinal distribution over the search register (qubits 0-3):")
    probs = ckt.probabilities()
    marginal = {}
    for idx, p in enumerate(probs):
        marginal[idx & 0b1111] = marginal.get(idx & 0b1111, 0.0) + p
    for value, p in sorted(marginal.items(), key=lambda kv: -kv[1])[:6]:
        print(f"  |{value:04b}>  {p:6.3f}  {amplitude_bar(p)}")
    ckt.close()


if __name__ == "__main__":
    main()
