"""repro -- a Python reproduction of qTask (IPDPS 2023).

qTask is a state-vector quantum circuit simulator with first-class support
for *incremental* simulation: after inserting or removing gates, only the
partitions of the state computation affected by the modification are
re-simulated.  See ``DESIGN.md`` for the system inventory and
``EXPERIMENTS.md`` for the reproduced evaluation.

Quick start::

    from repro import QTask

    ckt = QTask(5)
    q4, q3, q2, q1, q0 = ckt.qubits()
    net1 = ckt.insert_net()
    net2 = ckt.insert_net(net1)
    for q in (q4, q3, q2, q1, q0):
        ckt.insert_gate("h", net1, q)
    ckt.insert_gate("cnot", net2, q3, q4)
    ckt.update_state()            # full simulation
    ckt.insert_gate("cnot", net2, q0, q1)
    ckt.update_state()            # incremental simulation
"""

from .core.blocks import DEFAULT_BLOCK_SIZE
from .core.circuit import Circuit
from .core.classical import ClassicalRegister, OutcomeRecord
from .core.exceptions import CheckpointError
from .core.faults import FaultInjected, FaultPlan
from .core.gates import Gate, gate_matrix
from .core.simulator import QTaskSimulator, UpdateReport
from .observables import PauliString, PauliSum
from .parallel import SweepResult, SweepRunner
from .qtask import QTask
from .service import (
    Backend,
    BackendConfiguration,
    BackpressureError,
    Job,
    JobResult,
    JobStatus,
    QueueFullError,
    ServiceError,
    SessionPool,
)
from .telemetry import EventLog, MetricsRegistry, Telemetry, Tracer

__version__ = "1.0.0"

__all__ = [
    "QTask",
    "Backend",
    "BackendConfiguration",
    "Job",
    "JobResult",
    "JobStatus",
    "SessionPool",
    "ServiceError",
    "QueueFullError",
    "BackpressureError",
    "ClassicalRegister",
    "OutcomeRecord",
    "SweepRunner",
    "SweepResult",
    "QTaskSimulator",
    "UpdateReport",
    "Circuit",
    "Gate",
    "gate_matrix",
    "PauliString",
    "PauliSum",
    "CheckpointError",
    "FaultInjected",
    "FaultPlan",
    "Telemetry",
    "Tracer",
    "MetricsRegistry",
    "EventLog",
    "DEFAULT_BLOCK_SIZE",
    "__version__",
]
