"""A Fenwick (binary indexed) prefix-sum tree over per-block probabilities.

Shot sampling draws a uniform variate ``u`` in ``[0, total)`` and must find
the data block whose probability interval contains ``u``.  Keeping the
per-block probability masses in a Fenwick tree makes a single block's update
O(log n) (exactly what the dirty-frontier hands us: a small set of re-written
blocks) and turns the search into a vectorised O(log n) binary descent, so
drawing many shots costs ``O(shots + log n * batch)`` numpy passes instead of
materialising a 2^n cumulative distribution.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["PrefixSumTree"]


class PrefixSumTree:
    """Fenwick tree over ``size`` non-negative float values.

    ``_tree`` is the classic 1-indexed Fenwick array (``_tree[i]`` covers the
    value range ``(i - lowbit(i), i]``); ``_values`` mirrors the raw values so
    point assignment can be expressed as a delta update.
    """

    __slots__ = ("size", "_tree", "_values", "_top")

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"tree size must be positive, got {size}")
        self.size = int(size)
        self._tree = np.zeros(self.size + 1, dtype=np.float64)
        self._values = np.zeros(self.size, dtype=np.float64)
        top = 1
        while top * 2 <= self.size:
            top *= 2
        self._top = top

    # -- write side -------------------------------------------------------

    def build(self, values: np.ndarray) -> None:
        """Replace every value at once in O(n)."""
        vals = np.asarray(values, dtype=np.float64)
        if vals.shape != (self.size,):
            raise ValueError(f"expected {self.size} values, got shape {vals.shape}")
        self._values[:] = vals
        tree = self._tree
        tree[0] = 0.0
        tree[1:] = vals
        for i in range(1, self.size + 1):
            j = i + (i & -i)
            if j <= self.size:
                tree[j] += tree[i]

    def set(self, index: int, value: float) -> None:
        """Point-assign ``values[index] = value`` in O(log n)."""
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} out of range [0, {self.size})")
        delta = float(value) - self._values[index]
        if delta == 0.0:
            return
        self._values[index] = float(value)
        i = index + 1
        tree = self._tree
        while i <= self.size:
            tree[i] += delta
            i += i & -i

    # -- read side --------------------------------------------------------

    def value(self, index: int) -> float:
        return float(self._values[index])

    def values(self) -> np.ndarray:
        """A copy of the raw per-index values (for cloning/inspection)."""
        return self._values.copy()

    def prefix_sum(self, count: int) -> float:
        """Sum of the first ``count`` values."""
        if not 0 <= count <= self.size:
            raise IndexError(f"prefix count {count} out of range [0, {self.size}]")
        total = 0.0
        i = count
        tree = self._tree
        while i > 0:
            total += tree[i]
            i -= i & -i
        return float(total)

    def total(self) -> float:
        return self.prefix_sum(self.size)

    def find(self, targets: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Locate each target mass: ``(indices, residuals)``.

        For each ``t`` in ``targets`` returns the smallest index ``i`` with
        ``prefix_sum(i + 1) > t`` (clipped to the last index for targets at
        or beyond the total, which floating-point rounding can produce) and
        the residual ``t - prefix_sum(i)`` inside that value.  Vectorised
        binary descent over the Fenwick array: O(log n) numpy passes for the
        whole batch.
        """
        t = np.asarray(targets, dtype=np.float64).copy()
        pos = np.zeros(t.shape, dtype=np.int64)
        tree = self._tree
        jump = self._top
        while jump > 0:
            nxt = pos + jump
            ok = nxt <= self.size
            spans = np.where(ok, tree[np.minimum(nxt, self.size)], np.inf)
            take = spans <= t
            t = np.where(take, t - spans, t)
            pos = np.where(take, nxt, pos)
            jump >>= 1
        idx = np.minimum(pos, self.size - 1)
        return idx, t
