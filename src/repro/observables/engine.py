"""Incremental observables: expectations, marginals and shot sampling.

:class:`ObservablesEngine` answers measurement queries about a simulator's
*current* state (the one produced by the last ``update_state``) without ever
materialising the full ``2^n`` vector:

* ``expectation(obs)`` evaluates ``<psi|H|psi>`` term by term, block by
  block.  Z-only (diagonal) terms read per-block probabilities and bit-parity
  signs; terms with X/Y factors are monomial actions evaluated with the very
  strided kernels the simulator uses for permutation gates
  (:func:`repro.core.kernels.apply_action_range`), reading the state through
  the COW block resolution.
* ``sample(shots)`` / ``counts(shots)`` draw measurement shots via a lazily
  maintained Fenwick prefix-sum tree over per-block probability masses
  (:class:`repro.observables.sampling.PrefixSumTree`).
* ``marginal_probabilities(qubits)`` folds per-block probabilities onto a
  qubit subset with one bincount per block.

All per-block results -- the (term, block) partial expectations and the
per-block probability masses feeding the sampling tree -- are cached, and the
cache is invalidated by exactly the dirty frontier the incremental update
already computes: the simulator reports every block (re)written by an update
or orphaned by a stage removal through its dirty-listener hook, and only
those entries are recomputed on the next query.  A parameter-retune sweep
that touches the tail of a circuit therefore re-evaluates only the partials
its dirty blocks invalidated.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.blocks import block_bounds
from ..core.gates import extract_local
from ..core.kernels import ArrayReader, StateReader, apply_action_range
from .pauli import PauliLike, PauliString, PauliSum, as_pauli_sum
from .sampling import PrefixSumTree

__all__ = ["ObservablesEngine", "dense_expectation", "statevector_counts"]

_TermKey = Tuple[Tuple[int, str], ...]


def _parity_signs(lo: int, hi: int, z_qubits: Sequence[int]) -> np.ndarray:
    """``(-1)^popcount(i & z_mask)`` for every index in ``[lo, hi]``."""
    idx = np.arange(lo, hi + 1, dtype=np.int64)
    parity = np.zeros(idx.shape[0], dtype=np.int64)
    for q in z_qubits:
        parity ^= (idx >> q) & 1
    return 1.0 - 2.0 * parity


def _term_partial(
    term: PauliString,
    reader: StateReader,
    lo: int,
    hi: int,
    *,
    psi: Optional[np.ndarray] = None,
    probs: Optional[np.ndarray] = None,
    action=None,
) -> complex:
    """``sum_{i in [lo, hi]} conj(psi_i) * (P psi)_i`` for a unit-coefficient P.

    ``psi``/``probs``/``action`` are optional precomputed ingredients so a
    multi-term evaluation can share one amplitude read (and one probability
    vector) per block across every term.
    """
    if psi is None:
        psi = np.asarray(reader.read_range(lo, hi), dtype=np.complex128)
    if term.is_identity or term.is_diagonal:
        if probs is None:
            probs = (psi.conj() * psi).real
        if term.is_identity:
            return complex(probs.sum())
        return complex(np.dot(probs, _parity_signs(lo, hi, term.support)))
    out = apply_action_range(
        reader, lo, hi, term.support, term.action() if action is None else action
    )
    return complex(np.vdot(psi, out))


class ObservablesEngine:
    """Measurement queries over one simulator's COW-resolved state.

    Created lazily by :attr:`repro.core.simulator.QTaskSimulator.observables`
    (one engine per simulator); direct construction is useful in tests.  With
    ``cache=False`` every query recomputes from the block stores -- the A/B
    baseline for the caching ablation.
    """

    def __init__(self, simulator, *, cache: bool = True) -> None:
        self.simulator = simulator
        self.cache = bool(cache)
        self.dim = simulator.dim
        self.block_size = simulator.block_size
        self.n_blocks = simulator.n_blocks
        #: (term key, block) -> partial expectation of the unit-coefficient term
        self._term_partials: Dict[_TermKey, Dict[int, complex]] = {}
        #: term key -> its X/Y flip mask restricted to the *block-id* bits:
        #: the partial for block b reads amplitudes from block b ^ mask, so a
        #: dirty block d also invalidates the partial of d ^ mask.
        self._term_block_flip: Dict[_TermKey, int] = {}
        #: per-block probability masses, lazily pushed into the Fenwick tree
        self._tree = PrefixSumTree(self.n_blocks)
        self._stale_blocks: Set[int] = set(range(self.n_blocks))
        simulator.add_dirty_listener(self.mark_blocks_dirty)

    # -- invalidation (driven by the simulator's dirty frontier) -----------

    def mark_blocks_dirty(self, blocks: Iterable[int]) -> None:
        """Drop every cached per-block result for ``blocks``.

        The simulator calls this with the union of block ranges (re)written
        by an incremental update plus the blocks orphaned by stage removals;
        everything else stays cached.
        """
        if not self.cache:
            return
        blocks = set(blocks)
        if not blocks:
            return
        self._stale_blocks.update(blocks)
        for key, partials in self._term_partials.items():
            # An X/Y term's partial for block b is computed from amplitudes
            # in the flip-partner block b ^ mask, so a dirty block also
            # invalidates its partner's cached partial (mask 0 for Z-only
            # terms: the partial is block-local).
            mask = self._term_block_flip[key]
            for b in blocks:
                partials.pop(b, None)
                if mask:
                    partials.pop(b ^ mask, None)

    def invalidate(self) -> None:
        """Drop every cached result (all blocks stale)."""
        self._term_partials.clear()
        self._term_block_flip.clear()
        self._stale_blocks = set(range(self.n_blocks))

    def clone_for(self, simulator) -> "ObservablesEngine":
        """A new engine for ``simulator`` seeded with this engine's caches.

        Used by session forking: at fork time the child's state is identical
        to the parent's, so every cached (term, block) partial and per-block
        probability mass is valid verbatim.  The clone is fully independent
        afterwards -- it registers its own dirty listener on ``simulator``
        and each side's edits invalidate only its own cache.
        """
        clone = ObservablesEngine(simulator, cache=self.cache)
        if self.cache:
            clone._term_partials = {
                key: dict(partials) for key, partials in self._term_partials.items()
            }
            clone._term_block_flip = dict(self._term_block_flip)
            clone._tree.build(self._tree.values())
            clone._stale_blocks = set(self._stale_blocks)
        return clone

    @property
    def cached_partials(self) -> int:
        """Number of live (term, block) cache entries (for statistics)."""
        return sum(len(p) for p in self._term_partials.values())

    # -- expectation values -------------------------------------------------

    def expectation_value(self, observable: PauliLike) -> complex:
        """``<psi|H|psi>`` as a complex number (complex coefficients allowed).

        Evaluation is *block-major*: each block's amplitudes (and, for
        diagonal terms, its probability vector) are read once and shared
        across every term of the sum, so a k-term Hamiltonian costs one COW
        block resolution per block, not k.
        """
        obs = as_pauli_sum(observable)
        reader = self.simulator.state_reader()
        caches: Dict[_TermKey, Optional[Dict[int, complex]]] = {}
        for term in obs.terms:
            caches[term.key] = self._term_cache(term)
        actions = {
            term.key: term.action()
            for term in obs.terms
            if not (term.is_identity or term.is_diagonal)
        }
        total = 0.0 + 0.0j
        totals: Dict[_TermKey, complex] = {t.key: 0.0 + 0.0j for t in obs.terms}
        for b in range(self.n_blocks):
            lo, hi = block_bounds(b, self.block_size, self.dim)
            psi: Optional[np.ndarray] = None
            probs: Optional[np.ndarray] = None
            for term in obs.terms:
                cache = caches[term.key]
                partial = cache.get(b) if cache is not None else None
                if partial is None:
                    if psi is None:
                        psi = np.asarray(
                            reader.read_range(lo, hi), dtype=np.complex128
                        )
                    if probs is None and (term.is_identity or term.is_diagonal):
                        probs = (psi.conj() * psi).real
                    partial = _term_partial(
                        term, reader, lo, hi,
                        psi=psi, probs=probs, action=actions.get(term.key),
                    )
                    if cache is not None:
                        cache[b] = partial
                totals[term.key] += partial
        for term in obs.terms:
            total += term.coefficient * totals[term.key]
        return total

    def _term_cache(self, term: PauliString) -> Optional[Dict[int, complex]]:
        if not self.cache:
            return None
        cache = self._term_partials.setdefault(term.key, {})
        if term.key not in self._term_block_flip:
            block_len = min(self.dim, self.block_size)
            self._term_block_flip[term.key] = term.flip_mask() // block_len
        return cache

    def expectation(self, observable: PauliLike) -> float:
        """``<psi|H|psi>`` for a Hermitian observable (the real part).

        Per-(term, block) partials are cached across calls and invalidated
        by the incremental update's dirty frontier, so re-evaluating the same
        Hamiltonian after a localised circuit edit only recomputes the blocks
        that actually changed.
        """
        return float(self.expectation_value(observable).real)

    # -- probabilities ------------------------------------------------------

    def _block_probs(self, block: int, reader: StateReader) -> np.ndarray:
        lo, hi = block_bounds(block, self.block_size, self.dim)
        amps = np.asarray(reader.read_range(lo, hi), dtype=np.complex128)
        return (amps.conj() * amps).real

    def _refresh_tree(self, reader: StateReader) -> None:
        stale = self._stale_blocks if self.cache else set(range(self.n_blocks))
        if not stale:
            return
        if len(stale) > self.n_blocks // 2:
            sums = np.array(
                [
                    float(self._block_probs(b, reader).sum())
                    if b in stale
                    else self._tree.value(b)
                    for b in range(self.n_blocks)
                ]
            )
            self._tree.build(sums)
        else:
            for b in stale:
                self._tree.set(b, float(self._block_probs(b, reader).sum()))
        if self.cache:
            self._stale_blocks.clear()

    def block_probability(self, block: int) -> float:
        """Total probability mass inside one data block."""
        if not 0 <= block < self.n_blocks:
            raise IndexError(f"block {block} out of range [0, {self.n_blocks})")
        reader = self.simulator.state_reader()
        if self.cache and block not in self._stale_blocks:
            return self._tree.value(block)
        return float(self._block_probs(block, reader).sum())

    def total_probability(self) -> float:
        """``sum_i |psi_i|^2`` accumulated block-wise (the squared norm)."""
        self._refresh_tree(self.simulator.state_reader())
        return self._tree.total()

    def marginal_probabilities(self, qubits: Sequence[int]) -> np.ndarray:
        """Outcome distribution of measuring ``qubits`` (qubits[0] = bit 0).

        Returns an array of length ``2^k``; entry ``m`` is the probability
        that qubit ``qubits[j]`` reads bit ``j`` of ``m``.  Accumulated with
        one weighted bincount per block.
        """
        qs = tuple(int(q) for q in qubits)
        if len(set(qs)) != len(qs):
            raise ValueError(f"duplicate qubits in marginal: {qubits}")
        n = self.dim.bit_length() - 1
        for q in qs:
            if not 0 <= q < n:
                raise ValueError(f"qubit {q} out of range for {n} qubits")
        k = len(qs)
        out = np.zeros(1 << k, dtype=np.float64)
        reader = self.simulator.state_reader()
        for b in range(self.n_blocks):
            lo, hi = block_bounds(b, self.block_size, self.dim)
            probs = self._block_probs(b, reader)
            local = extract_local(np.arange(lo, hi + 1, dtype=np.int64), qs)
            out += np.bincount(local, weights=probs, minlength=1 << k)
        return out

    # -- shot sampling ------------------------------------------------------

    def sample(self, shots: int, *, seed: Optional[int] = None) -> np.ndarray:
        """Draw ``shots`` basis-state indices from ``|psi|^2``.

        Each draw binary-searches the per-block Fenwick tree for its block
        and then a within-block cumulative sum for its index, so only the
        blocks actually hit by draws are materialised.
        """
        if shots < 0:
            raise ValueError(f"shots must be non-negative, got {shots}")
        rng = np.random.default_rng(seed)
        reader = self.simulator.state_reader()
        self._refresh_tree(reader)
        total = self._tree.total()
        if total <= 0.0:
            raise ValueError("cannot sample from a zero-norm state")
        draws = rng.random(shots) * total
        blocks, residuals = self._tree.find(draws)
        out = np.empty(shots, dtype=np.int64)
        order = np.argsort(blocks, kind="stable")
        sorted_blocks = blocks[order]
        boundaries = np.flatnonzero(np.diff(sorted_blocks)) + 1
        starts = np.concatenate(([0], boundaries)) if shots else np.empty(0, np.int64)
        ends = np.concatenate((boundaries, [shots])) if shots else starts
        for s, e in zip(starts, ends):
            b = int(sorted_blocks[s])
            cum = np.cumsum(self._block_probs(b, reader))
            sel = order[s:e]
            local = np.searchsorted(cum, residuals[sel], side="right")
            local = np.minimum(local, cum.shape[0] - 1)
            out[sel] = b * self.block_size + local
        return out

    def counts(
        self, shots: int, *, seed: Optional[int] = None
    ) -> Dict[str, int]:
        """Measurement histogram ``{bitstring: count}`` over ``shots`` draws.

        Bitstrings follow the usual convention: leftmost character is the
        highest qubit.
        """
        n = self.dim.bit_length() - 1
        samples = self.sample(shots, seed=seed)
        values, freqs = np.unique(samples, return_counts=True)
        return {
            format(int(v), f"0{n}b"): int(c) for v, c in zip(values, freqs)
        }


# ---------------------------------------------------------------------------
# Dense helpers (baselines and ground-truth checks)
# ---------------------------------------------------------------------------


def dense_expectation(state: np.ndarray, observable: PauliLike) -> float:
    """``<psi|H|psi>`` of a dense state vector (baseline/ground-truth path).

    Evaluates each term with the same classified-action kernels as the
    block-wise engine but over the whole vector at once, so baselines are
    A/B-comparable with qTask on observable workloads.
    """
    obs = as_pauli_sum(observable)
    psi = np.asarray(state, dtype=np.complex128).reshape(-1)
    reader = ArrayReader(psi)
    hi = psi.shape[0] - 1
    total = 0.0 + 0.0j
    for term in obs.terms:
        total += term.coefficient * _term_partial(term, reader, 0, hi)
    return float(total.real)


def statevector_counts(
    state: np.ndarray, shots: int, *, seed: Optional[int] = None
) -> Dict[str, int]:
    """Measurement histogram of a dense state vector (baseline path)."""
    psi = np.asarray(state, dtype=np.complex128).reshape(-1)
    probs = (psi.conj() * psi).real
    probs = probs / probs.sum()
    rng = np.random.default_rng(seed)
    n = psi.shape[0].bit_length() - 1
    samples = rng.choice(psi.shape[0], size=shots, p=probs)
    values, freqs = np.unique(samples, return_counts=True)
    return {format(int(v), f"0{n}b"): int(c) for v, c in zip(values, freqs)}
