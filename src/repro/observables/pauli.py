"""Pauli-string observables: the measurement vocabulary of the engine.

A :class:`PauliString` is a tensor product of single-qubit Pauli operators
(X, Y, Z) on a sparse set of qubits, times a scalar coefficient; a
:class:`PauliSum` is a linear combination of Pauli strings (a Hamiltonian).
Both are immutable value types.

The crucial design point is :meth:`PauliString.action`: every Pauli string is
a *non-superposition* operator in the paper's gate classification -- a
Z-only string is a :class:`~repro.core.gates.DiagonalAction` (signs on the
diagonal) and any string containing X or Y is a
:class:`~repro.core.gates.MonomialAction` (a bit-flip permutation with ±1/±i
factors).  The expectation engine therefore evaluates ``<psi|P|psi>`` with
the very same strided block kernels the simulator already uses for
permutation/diagonal gates, block by block, never materialising the 2^n
operator (or a second state vector).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Sequence, Tuple, Union

import numpy as np

from ..core.gates import Action, DiagonalAction, MonomialAction

__all__ = [
    "PauliString",
    "PauliSum",
    "as_pauli_sum",
    "maxcut_hamiltonian",
    "ising_hamiltonian",
]

_LETTERS = ("X", "Y", "Z")

#: Largest Pauli support for which the local permutation tables of
#: :meth:`PauliString.action` are enumerated (2^16 entries).  Diagonal
#: (Z-only) strings never build these tables -- the engine evaluates them
#: from bit parities -- so the cap only limits X/Y supports.
MAX_ACTION_QUBITS = 16

PauliLike = Union["PauliString", "PauliSum", str]


def _normalise_paulis(
    paulis: Union[Mapping[int, str], Iterable[Tuple[int, str]]],
) -> Tuple[Tuple[int, str], ...]:
    items = paulis.items() if isinstance(paulis, Mapping) else paulis
    out: Dict[int, str] = {}
    for qubit, letter in items:
        q = int(qubit)
        l = str(letter).upper()
        if l == "I":
            continue
        if l not in _LETTERS:
            raise ValueError(f"unknown Pauli letter {letter!r} (expected I/X/Y/Z)")
        if q < 0:
            raise ValueError(f"negative qubit index {q} in Pauli string")
        if q in out:
            raise ValueError(f"qubit {q} appears twice in Pauli string")
        out[q] = l
    return tuple(sorted(out.items()))


@dataclass(frozen=True)
class PauliString:
    """A weighted tensor product of single-qubit Paulis.

    ``paulis`` maps qubit index to letter; identity factors are implicit
    (and an empty string *is* the identity operator).  Construct from a
    mapping/pair list, or from a label with :meth:`from_label`::

        PauliString({0: "Z", 3: "X"}, coefficient=0.5)
        PauliString.from_label("XIIZ")       # == the string above, coeff 1
    """

    paulis: Tuple[Tuple[int, str], ...] = ()
    coefficient: complex = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "paulis", _normalise_paulis(self.paulis))
        object.__setattr__(self, "coefficient", complex(self.coefficient))

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_label(cls, label: str, *, coefficient: complex = 1.0) -> "PauliString":
        """Parse a dense label, leftmost character = highest qubit.

        ``PauliString.from_label("ZIX")`` is Z on qubit 2 and X on qubit 0.
        """
        n = len(label)
        pairs = [(n - 1 - i, c) for i, c in enumerate(label)]
        return cls(pairs, coefficient=coefficient)

    # -- structure ----------------------------------------------------------

    @property
    def key(self) -> Tuple[Tuple[int, str], ...]:
        """Coefficient-free identity of the operator (cache/grouping key)."""
        return self.paulis

    @property
    def support(self) -> Tuple[int, ...]:
        """Qubits acted on non-trivially, ascending (local bit order)."""
        return tuple(q for q, _ in self.paulis)

    @property
    def weight(self) -> int:
        return len(self.paulis)

    @property
    def is_identity(self) -> bool:
        return not self.paulis

    @property
    def is_diagonal(self) -> bool:
        """True when the string contains only Z factors (and identities)."""
        return all(l == "Z" for _, l in self.paulis)

    def z_mask(self) -> int:
        """Bit mask over global qubit indices of the Z factors."""
        mask = 0
        for q, l in self.paulis:
            if l == "Z":
                mask |= 1 << q
        return mask

    def flip_mask(self) -> int:
        """Bit mask over global qubit indices of the X/Y (bit-flip) factors."""
        mask = 0
        for q, l in self.paulis:
            if l != "Z":
                mask |= 1 << q
        return mask

    def to_label(self, num_qubits: int) -> str:
        """Dense label over ``num_qubits`` qubits (leftmost = highest)."""
        letters = dict(self.paulis)
        if letters and max(letters) >= num_qubits:
            raise ValueError(
                f"Pauli string acts on qubit {max(letters)}; "
                f"label of {num_qubits} qubits is too short"
            )
        return "".join(letters.get(q, "I") for q in range(num_qubits - 1, -1, -1))

    # -- the engine-facing view --------------------------------------------

    def action(self) -> Action:
        """The string as a classified local action over :attr:`support`.

        Local bit ``j`` corresponds to ``support[j]`` -- the same convention
        as :class:`~repro.core.gates.Gate` qubit tuples -- so the result
        plugs straight into the strided block kernels.
        """
        k = self.weight
        if k > MAX_ACTION_QUBITS:
            raise ValueError(
                f"Pauli support of {k} qubits exceeds MAX_ACTION_QUBITS="
                f"{MAX_ACTION_QUBITS}; split the observable into smaller terms"
            )
        dim = 1 << k
        local = np.arange(dim, dtype=np.int64)
        factors = np.ones(dim, dtype=complex)
        flip = 0
        for j, (_, letter) in enumerate(self.paulis):
            bit = (local >> j) & 1
            if letter == "Z":
                factors *= 1.0 - 2.0 * bit
            elif letter == "Y":
                flip |= 1 << j
                factors *= 1j * (1.0 - 2.0 * bit)
            else:  # X
                flip |= 1 << j
        if flip == 0:
            return DiagonalAction(num_qubits=k, phases=tuple(factors))
        perm = local ^ flip
        return MonomialAction(
            num_qubits=k,
            perm=tuple(int(p) for p in perm),
            factors=tuple(factors),
        )

    # -- algebra ------------------------------------------------------------

    def __mul__(self, scalar: complex) -> "PauliString":
        return PauliString(self.paulis, coefficient=self.coefficient * scalar)

    __rmul__ = __mul__

    def __neg__(self) -> "PauliString":
        return self * -1.0

    def __add__(self, other: Union["PauliString", "PauliSum"]) -> "PauliSum":
        return PauliSum([self]) + other

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        body = "*".join(f"{l}{q}" for q, l in self.paulis) or "I"
        c = self.coefficient
        if c == 1:
            return body
        return f"({c.real:g}{c.imag:+g}j)*{body}" if c.imag else f"{c.real:g}*{body}"


class PauliSum:
    """A linear combination of Pauli strings (an observable/Hamiltonian).

    Like terms (same :attr:`PauliString.key`) are combined on construction
    and exact-zero coefficients dropped, so the per-term expectation cache in
    the engine never sees duplicate keys.
    """

    __slots__ = ("terms",)

    def __init__(self, terms: Iterable[PauliString] = ()) -> None:
        combined: Dict[Tuple[Tuple[int, str], ...], complex] = {}
        order: list = []
        for t in terms:
            if not isinstance(t, PauliString):
                raise TypeError(f"PauliSum terms must be PauliString, got {type(t)!r}")
            if t.key not in combined:
                combined[t.key] = 0.0
                order.append(t.key)
            combined[t.key] += t.coefficient
        self.terms: Tuple[PauliString, ...] = tuple(
            PauliString(key, coefficient=combined[key])
            for key in order
            if combined[key] != 0
        )

    @classmethod
    def from_labels(
        cls, labelled: Mapping[str, complex]
    ) -> "PauliSum":
        """Build from ``{label: coefficient}`` (labels as in ``from_label``)."""
        return cls(
            PauliString.from_label(lbl, coefficient=c) for lbl, c in labelled.items()
        )

    @property
    def num_terms(self) -> int:
        return len(self.terms)

    def support(self) -> Tuple[int, ...]:
        qubits = sorted({q for t in self.terms for q in t.support})
        return tuple(qubits)

    def __iter__(self):
        return iter(self.terms)

    def __len__(self) -> int:
        return len(self.terms)

    def __add__(self, other: Union[PauliString, "PauliSum"]) -> "PauliSum":
        if isinstance(other, PauliString):
            other = PauliSum([other])
        if not isinstance(other, PauliSum):
            return NotImplemented
        return PauliSum(self.terms + other.terms)

    __radd__ = __add__

    def __sub__(self, other: Union[PauliString, "PauliSum"]) -> "PauliSum":
        if isinstance(other, PauliString):
            other = PauliSum([other])
        return self + (other * -1.0)

    def __mul__(self, scalar: complex) -> "PauliSum":
        return PauliSum(t * scalar for t in self.terms)

    __rmul__ = __mul__

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return " + ".join(str(t) for t in self.terms) or "0"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PauliSum({self.num_terms} terms)"


def as_pauli_sum(observable: PauliLike) -> PauliSum:
    """Coerce a string label / PauliString / PauliSum into a PauliSum."""
    if isinstance(observable, PauliSum):
        return observable
    if isinstance(observable, PauliString):
        return PauliSum([observable])
    if isinstance(observable, str):
        return PauliSum([PauliString.from_label(observable)])
    raise TypeError(
        f"expected PauliSum, PauliString or label string, got {type(observable)!r}"
    )


# ---------------------------------------------------------------------------
# Standard variational Hamiltonians
# ---------------------------------------------------------------------------


def maxcut_hamiltonian(edges: Sequence[Tuple[int, int]]) -> PauliSum:
    """The MaxCut cost observable ``sum_(a,b) (1 - Z_a Z_b) / 2``.

    Its expectation on a computational basis state is the number of cut
    edges, which is exactly the objective a QAOA angle sweep maximises.
    """
    terms = [PauliString((), coefficient=0.5 * len(edges))]
    for a, b in edges:
        terms.append(PauliString({a: "Z", b: "Z"}, coefficient=-0.5))
    return PauliSum(terms)


def ising_hamiltonian(
    num_qubits: int, *, coupling: float = 1.0, field: float = 0.0
) -> PauliSum:
    """Transverse-field Ising chain ``-J sum Z_q Z_q+1 - h sum X_q``."""
    terms = [
        PauliString({q: "Z", q + 1: "Z"}, coefficient=-coupling)
        for q in range(num_qubits - 1)
    ]
    if field:
        terms.extend(
            PauliString({q: "X"}, coefficient=-field) for q in range(num_qubits)
        )
    return PauliSum(terms)
