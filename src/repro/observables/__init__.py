"""Observables subsystem: Pauli expectations, marginals and shot sampling.

Everything here evaluates measurement queries *block-wise* against the
simulator's copy-on-write stores -- the same data layout, kernels and dirty
frontier the incremental update uses -- so observables inherit qTask's
incrementality: a localised circuit edit invalidates only the per-block
partials its dirty blocks cover.

See :mod:`repro.observables.pauli` for the observable vocabulary,
:mod:`repro.observables.engine` for the evaluation engine, and
:mod:`repro.observables.sampling` for the prefix-sum sampling tree.
"""

from .engine import ObservablesEngine, dense_expectation, statevector_counts
from .pauli import (
    PauliString,
    PauliSum,
    as_pauli_sum,
    ising_hamiltonian,
    maxcut_hamiltonian,
)
from .sampling import PrefixSumTree

__all__ = [
    "ObservablesEngine",
    "PauliString",
    "PauliSum",
    "PrefixSumTree",
    "as_pauli_sum",
    "dense_expectation",
    "statevector_counts",
    "ising_hamiltonian",
    "maxcut_hamiltonian",
]
