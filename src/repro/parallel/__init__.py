"""Taskflow-style task-parallel runtime (pure Python).

The paper implements qTask on top of the Taskflow C++ library: static tasks
express inter-gate operation parallelism, *subflows* (dynamic tasking) express
intra-gate operation parallelism, and a work-stealing scheduler executes the
whole graph with dynamic load balancing (§III.F.1).

This package reproduces that structure in Python:

* :class:`~repro.parallel.taskgraph.TaskGraph` / :class:`~repro.parallel.taskgraph.Task`
  -- the graph programming model (``precede`` / ``succeed`` / subflows),
* :class:`~repro.parallel.executor.WorkStealingExecutor` -- a thread-based
  work-stealing scheduler (per-worker deques, LIFO pop / FIFO steal),
* :class:`~repro.parallel.executor.SequentialExecutor` -- a deterministic
  single-threaded executor used for tests and as the 1-core datapoint of the
  scalability experiments,
* :func:`~repro.parallel.parallel_for.parallel_for` -- the chunked
  parallel-for used for intra-gate parallelism.

The GIL obviously limits speedups for tiny tasks; the numpy kernels release
the GIL during the heavy array work, which is where the available parallelism
lives (see DESIGN.md, "Substitutions").
"""

from .taskgraph import Task, TaskGraph
from .executor import Executor, SequentialExecutor, WorkStealingExecutor, make_executor
from .parallel_for import parallel_for, chunk_indices
from .sweep import SweepPoint, SweepResult, SweepRunner

__all__ = [
    "Task",
    "TaskGraph",
    "Executor",
    "SequentialExecutor",
    "WorkStealingExecutor",
    "make_executor",
    "parallel_for",
    "chunk_indices",
    "SweepPoint",
    "SweepResult",
    "SweepRunner",
]
