"""Task graph programming model (static tasks + subflows).

A :class:`TaskGraph` is a DAG of :class:`Task` objects.  Every task wraps a
callable; edges are declared with :meth:`Task.precede` / :meth:`Task.succeed`,
mirroring the Taskflow API used by the paper.  A task's callable may *return a
sequence of callables*: these become a dynamically spawned *subflow* whose
completion is joined before the parent's successors are released -- this is
how qTask expresses intra-gate operation parallelism (Fig. 12, the ``G6``
subflow with tasks ``G6-0``/``G6-1``).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from ..core.exceptions import ExecutorError

__all__ = ["Task", "TaskGraph"]

_task_counter = itertools.count()


class Task:
    """A node of a :class:`TaskGraph`."""

    __slots__ = ("fn", "name", "uid", "successors", "predecessors", "graph")

    def __init__(self, fn: Optional[Callable[[], object]], name: str = "") -> None:
        self.fn = fn
        self.uid = next(_task_counter)
        self.name = name or f"task-{self.uid}"
        self.successors: List["Task"] = []
        self.predecessors: List["Task"] = []
        self.graph: Optional["TaskGraph"] = None

    # -- graph construction -------------------------------------------------

    def precede(self, *others: "Task") -> "Task":
        """Declare that this task must run before ``others``."""
        for other in others:
            if other is self:
                raise ExecutorError(f"task '{self.name}' cannot precede itself")
            if other not in self.successors:
                self.successors.append(other)
                other.predecessors.append(self)
        return self

    def succeed(self, *others: "Task") -> "Task":
        """Declare that this task must run after ``others``."""
        for other in others:
            other.precede(self)
        return self

    # -- execution ----------------------------------------------------------

    def run(self) -> Optional[Sequence[Callable[[], object]]]:
        """Invoke the wrapped callable, returning any spawned subflow."""
        if self.fn is None:
            return None
        result = self.fn()
        if result is None:
            return None
        if callable(result):
            return [result]
        if isinstance(result, (list, tuple)) and all(callable(c) for c in result):
            return list(result)
        # Any other return value is ignored (tasks communicate by side effect).
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Task({self.name!r})"


class TaskGraph:
    """A DAG of tasks, executable by any :class:`~repro.parallel.executor.Executor`."""

    def __init__(self, name: str = "taskgraph") -> None:
        self.name = name
        self._tasks: List[Task] = []

    # -- construction -------------------------------------------------------

    def emplace(self, fn: Optional[Callable[[], object]], name: str = "") -> Task:
        """Create a task in this graph (Taskflow's ``emplace``)."""
        t = Task(fn, name)
        t.graph = self
        self._tasks.append(t)
        return t

    def placeholder(self, name: str = "") -> Task:
        """An empty task used purely for synchronisation (e.g. ``sync-1``)."""
        return self.emplace(None, name or "sync")

    def add(self, task: Task) -> Task:
        task.graph = self
        self._tasks.append(task)
        return task

    # -- inspection ---------------------------------------------------------

    @property
    def tasks(self) -> List[Task]:
        return list(self._tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def num_edges(self) -> int:
        return sum(len(t.successors) for t in self._tasks)

    def sources(self) -> List[Task]:
        return [t for t in self._tasks if not t.predecessors]

    def sinks(self) -> List[Task]:
        return [t for t in self._tasks if not t.successors]

    def validate(self) -> None:
        """Raise :class:`ExecutorError` when the graph contains a cycle."""
        order = self.topological_order()
        if len(order) != len(self._tasks):
            raise ExecutorError(f"task graph '{self.name}' contains a cycle")

    def topological_order(self) -> List[Task]:
        """Kahn topological order (tasks not reachable from sources included)."""
        indeg: Dict[int, int] = {t.uid: len(t.predecessors) for t in self._tasks}
        ready = [t for t in self._tasks if indeg[t.uid] == 0]
        order: List[Task] = []
        i = 0
        while i < len(ready):
            t = ready[i]
            i += 1
            order.append(t)
            for s in t.successors:
                indeg[s.uid] -= 1
                if indeg[s.uid] == 0:
                    ready.append(s)
        return order

    def to_dot(self) -> str:
        """GraphViz DOT rendering (used by ``dump_graph``)."""
        lines = [f'digraph "{self.name}" {{']
        for t in self._tasks:
            lines.append(f'  "{t.name}";')
        for t in self._tasks:
            for s in t.successors:
                lines.append(f'  "{t.name}" -> "{s.name}";')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TaskGraph({self.name!r}, tasks={len(self._tasks)}, edges={self.num_edges()})"
