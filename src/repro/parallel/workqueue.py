"""Work-stealing deques used by :class:`~repro.parallel.executor.WorkStealingExecutor`.

Each worker owns a :class:`WorkDeque`; the owner pushes/pops at the bottom
(LIFO, good cache locality for freshly spawned subtasks) while thieves steal
from the top (FIFO, taking the oldest -- usually largest -- work first).  A
coarse lock per deque keeps the implementation simple and correct; contention
is negligible because steal attempts are rare compared to numpy kernel time.
"""

from __future__ import annotations

import collections
import threading
from typing import Generic, List, Optional, TypeVar

__all__ = ["WorkDeque", "StealScheduler"]

T = TypeVar("T")


class WorkDeque(Generic[T]):
    """A lock-protected double-ended work queue."""

    def __init__(self) -> None:
        self._items: collections.deque = collections.deque()
        self._lock = threading.Lock()

    def push(self, item: T) -> None:
        """Owner-side push (bottom)."""
        with self._lock:
            self._items.append(item)

    def pop(self) -> Optional[T]:
        """Owner-side pop (bottom, LIFO)."""
        with self._lock:
            if self._items:
                return self._items.pop()
        return None

    def steal(self) -> Optional[T]:
        """Thief-side steal (top, FIFO)."""
        with self._lock:
            if self._items:
                return self._items.popleft()
        return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


class StealScheduler(Generic[T]):
    """A set of per-worker deques plus an overflow queue for external pushes."""

    def __init__(self, num_workers: int) -> None:
        self.num_workers = num_workers
        self._deques: List[WorkDeque[T]] = [WorkDeque() for _ in range(num_workers)]
        self._external: WorkDeque[T] = WorkDeque()

    def push(self, item: T, worker: Optional[int] = None) -> None:
        """Push work, preferring the submitting worker's own deque."""
        if worker is None or not (0 <= worker < self.num_workers):
            self._external.push(item)
        else:
            self._deques[worker].push(item)

    def take(self, worker: int, rng_state: List[int]) -> Optional[T]:
        """Pop own work, then try the external queue, then steal from victims.

        ``rng_state`` is a one-element list holding a cheap linear-congruential
        state so victim selection is scattered without importing ``random`` in
        the hot path.
        """
        item = self._deques[worker].pop()
        if item is not None:
            return item
        item = self._external.steal()
        if item is not None:
            return item
        n = self.num_workers
        if n <= 1:
            return None
        state = rng_state[0]
        for _ in range(n - 1):
            state = (state * 1103515245 + 12345) & 0x7FFFFFFF
            victim = state % n
            if victim == worker:
                victim = (victim + 1) % n
            item = self._deques[victim].steal()
            if item is not None:
                rng_state[0] = state
                return item
        rng_state[0] = state
        return None

    def outstanding(self) -> int:
        return len(self._external) + sum(len(d) for d in self._deques)
