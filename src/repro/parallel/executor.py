"""Executors: sequential and work-stealing execution of task graphs.

The :class:`WorkStealingExecutor` reproduces the execution model qTask gets
from Taskflow (§III.F.1): a fixed pool of worker threads, per-worker deques
with stealing, dependency counters released as predecessors complete, and
subflows (dynamically spawned tasks joined back into their parent).  The
:class:`SequentialExecutor` runs the same graphs deterministically on the
calling thread and doubles as the one-core data point in the scalability
experiments (Figs. 17/18).

``run`` is re-entrant: every invocation carries its own :class:`_RunState`
(pending counter plus dependency map), so independent graphs can execute
concurrently on one shared worker pool -- the execution model behind
session forking and :class:`~repro.parallel.sweep.SweepRunner`.  A ``run``
issued *from a worker thread* (e.g. a forked session's ``update_state``
inside a sweep task) does not block the pool: the worker keeps taking and
executing queued work from any run until its own graph completes.

Subflow children execute in spawn order on both executors (depth-first for
nested spawns), so order-sensitive subflows observe the same schedule under
``SequentialExecutor`` and a single-worker ``WorkStealingExecutor``.
"""

from __future__ import annotations

import os
import threading
from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional, Sequence

from ..core import faults
from ..core.faults import FaultInjected
from ..telemetry import session as tsession
from .taskgraph import Task, TaskGraph
from .workqueue import StealScheduler

__all__ = [
    "Executor",
    "SequentialExecutor",
    "WorkStealingExecutor",
    "make_executor",
]

#: bounded in-place retries of a task body that hit an injected fault.
#: Task bodies write disjoint output ranges (the contract that makes the
#: graph parallelisable in the first place), so re-running one is safe; the
#: bound keeps a pathological plan from spinning forever -- past it the
#: fault propagates to ``run()`` and the simulator's update-level retry.
_TASK_FAULT_RETRIES = 3


def _attach_task_context(exc: BaseException, label: Optional[str]) -> None:
    """Stamp the failing task's identity onto ``exc`` before re-raising.

    Sets ``exc.task_label`` (first failure wins) and, on Python >= 3.11,
    adds a traceback note -- so the exception surfacing from ``run()``
    says *which* stage/task died instead of arriving bare.
    """
    if not label or getattr(exc, "task_label", None) is not None:
        return
    try:
        exc.task_label = label
    except (AttributeError, TypeError):  # pragma: no cover - slotted exc
        return
    add_note = getattr(exc, "add_note", None)
    if add_note is not None:
        add_note(f"raised by executor task {label!r}")


class Executor(ABC):
    """Common interface: run a task graph, or map a function over items."""

    #: number of worker threads (1 for the sequential executor)
    num_workers: int = 1

    #: task bodies re-run in place after an injected fault (see
    #: ``_TASK_FAULT_RETRIES``); informational, merged into statistics()
    task_retries: int = 0

    def _guarded(self, fn: Callable[[], object]) -> object:
        """Run a task body under the ``executor.task`` fault site.

        Task bodies stamped with a ``trace_context`` attribute -- a
        ``(telemetry, parent_span_id)`` tuple the simulator's plan pipeline
        attaches -- first re-activate that session's telemetry on *this*
        thread (workers steal tasks, so ambient context does not follow)
        and parent any spans the body opens to the caller's span.  Unmarked
        bodies skip all of it on a single ``getattr`` miss.

        With no fault plan installed the fault envelope is one global-load
        branch around ``fn()``; with one armed, injected faults trigger
        bounded in-place retries (task bodies are idempotent by the
        disjoint-writes contract) before propagating.
        """
        ctx = getattr(fn, "trace_context", None)
        if ctx is None:
            # graph tasks arrive as the bound ``Task.run`` method; the
            # stamped closure is the task's ``fn``
            task = getattr(fn, "__self__", None)
            if task is not None:
                ctx = getattr(getattr(task, "fn", None), "trace_context", None)
        if ctx is None:
            return self._run_guarded(fn)
        telemetry, parent_span = ctx
        prev_tel = tsession.activate(telemetry)
        tracer = telemetry.tracer
        prev_span = tracer.attach(parent_span) if tracer.enabled else None
        try:
            return self._run_guarded(fn)
        finally:
            if tracer.enabled:
                tracer.detach(prev_span)
            tsession.deactivate(prev_tel)

    def _run_guarded(self, fn: Callable[[], object]) -> object:
        if faults.ACTIVE is None:
            return fn()
        attempt = 0
        while True:
            try:
                faults.fire("executor.task")
                return fn()
            except FaultInjected:
                attempt += 1
                if attempt > _TASK_FAULT_RETRIES:
                    raise
                self.task_retries += 1
                tsession.emit_event("task.retry", attempt=attempt)

    #: how many subflow children a plan-granular task body should hand back:
    #: the simulator's plan pipeline splits one stage's run table into at
    #: most this many chunk subflows.  1 (sequential) keeps a stage's whole
    #: table in one batched backend call -- exactly the submission shape the
    #: batching kernels want; the work-stealing executor widens it to its
    #: worker count so big tables still spread across the pool.
    subflow_width: int = 1

    @abstractmethod
    def run(self, graph: TaskGraph) -> None:
        """Execute every task of ``graph`` respecting its dependencies."""

    @abstractmethod
    def map(self, fn: Callable[[object], object], items: Sequence[object]) -> List[object]:
        """Apply ``fn`` to every item (possibly in parallel), keeping order."""

    def load(self) -> int:
        """Tasks currently queued on this executor (0 when untracked).

        A point-in-time congestion signal: the service layer exposes it as
        the ``service.executor_load`` gauge so operators can tell "queue is
        deep because jobs are big" from "the shared pool is saturated".
        """
        return 0

    def close(self) -> None:  # pragma: no cover - optional
        """Release executor resources (no-op by default)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SequentialExecutor(Executor):
    """Deterministic single-threaded executor."""

    num_workers = 1

    def run(self, graph: TaskGraph) -> None:
        graph.validate()
        order = graph.topological_order()
        for task in order:
            try:
                sub = self._guarded(task.run)
                # Subflow: run spawned callables depth-first, children of one
                # spawn in spawn order (matching the work-stealing executor's
                # single-worker schedule).
                stack = list(reversed(sub or []))
                while stack:
                    fn = stack.pop()
                    result = self._guarded(fn)
                    if callable(result):
                        stack.append(result)
                    elif isinstance(result, (list, tuple)) and all(
                        callable(c) for c in result
                    ):
                        stack.extend(reversed(result))
            except BaseException as exc:
                _attach_task_context(exc, task.name)
                raise

    def map(self, fn, items):
        return [fn(x) for x in items]


class _RunState:
    """Bookkeeping for one ``run`` invocation of the work-stealing executor.

    Each ``run`` owns its state (pending counter *and* dependency map), so
    any number of graphs can be in flight on the shared pool at once.
    """

    __slots__ = ("pending", "lock", "done", "error", "deps", "deps_lock")

    def __init__(self, total: int, deps: Dict[int, int]) -> None:
        self.pending = total
        self.lock = threading.Lock()
        self.done = threading.Event()
        self.error: Optional[BaseException] = None
        #: remaining-predecessor counters of this run's tasks (by task uid)
        self.deps = deps
        self.deps_lock = threading.Lock()

    def task_finished(self, count: int = 1) -> None:
        with self.lock:
            self.pending -= count
            finished = self.pending <= 0
        if finished:
            self.done.set()

    def task_added(self, count: int = 1) -> None:
        with self.lock:
            self.pending += count

    def fail(self, exc: BaseException) -> None:
        with self.lock:
            self.error = self.error or exc
        self.done.set()


class _Work:
    """A schedulable unit: either a graph task or a subflow callable."""

    __slots__ = ("fn", "task", "parent", "state", "label")

    def __init__(
        self,
        fn,
        task: Optional[Task] = None,
        parent: Optional["_Join"] = None,
        state: Optional[_RunState] = None,
        label: Optional[str] = None,
    ):
        self.fn = fn
        self.task = task
        self.parent = parent
        self.state = state
        #: human-readable identity (task name, or parent task name for
        #: subflow children) attached to any exception this unit raises
        self.label = label if label is not None else (task.name if task else None)


class _Join:
    """Join counter for a subflow: releases the parent task's successors.

    Every mutation of ``remaining`` happens under ``lock`` -- including
    :meth:`add_children`, used when a child dynamically spawns more children
    into the same join.  An unlocked increment can interleave with a
    finishing sibling's locked decrement, either losing the increment (the
    join never fires) or firing ``on_done`` before the new children ran.
    """

    __slots__ = ("remaining", "lock", "on_done")

    def __init__(self, remaining: int, on_done: Callable[[], None]) -> None:
        self.remaining = remaining
        self.lock = threading.Lock()
        self.on_done = on_done

    def add_children(self, count: int) -> None:
        """Grow the join by ``count`` not-yet-finished children."""
        with self.lock:
            self.remaining += count

    def child_done(self) -> None:
        with self.lock:
            self.remaining -= 1
            fire = self.remaining == 0
        if fire:
            self.on_done()


class WorkStealingExecutor(Executor):
    """Thread-pool executor with per-worker deques and random stealing."""

    def __init__(self, num_workers: Optional[int] = None, *, spin_sleep: float = 5e-5) -> None:
        cpu = os.cpu_count() or 1
        self.num_workers = max(1, int(num_workers) if num_workers else cpu)
        self.subflow_width = self.num_workers
        self._spin_sleep = spin_sleep
        self._scheduler: StealScheduler[_Work] = StealScheduler(self.num_workers)
        self._wakeup = threading.Condition()
        self._shutdown = False
        self._local = threading.local()
        self._threads: List[threading.Thread] = []
        for i in range(self.num_workers):
            t = threading.Thread(target=self._worker_loop, args=(i,), daemon=True,
                                 name=f"qtask-worker-{i}")
            t.start()
            self._threads.append(t)

    # -- worker machinery ---------------------------------------------------

    def _worker_loop(self, worker_id: int) -> None:
        self._local.worker_id = worker_id
        rng = [worker_id * 2654435761 + 1]
        self._local.rng = rng
        while True:
            work = self._scheduler.take(worker_id, rng)
            if work is None:
                with self._wakeup:
                    if self._shutdown:
                        return
                    if self._scheduler.outstanding() == 0:
                        self._wakeup.wait(timeout=0.05)
                if self._shutdown:
                    return
                continue
            self._execute(work, worker_id)

    def _submit(self, work: _Work, worker: Optional[int] = None) -> None:
        self._scheduler.push(work, worker)
        with self._wakeup:
            self._wakeup.notify()

    def _execute(self, work: _Work, worker_id: int) -> None:
        state = work.state
        try:
            if work.task is not None:
                sub = self._guarded(work.task.run)
                if sub:
                    self._spawn_subflow(work.task, list(sub), state, worker_id)
                else:
                    self._release_successors(work.task, state, worker_id)
            else:
                result = self._guarded(work.fn) if work.fn is not None else None
                extra: List[Callable] = []
                if callable(result):
                    extra = [result]
                elif isinstance(result, (list, tuple)) and all(callable(c) for c in result):
                    extra = list(result)
                if extra and work.parent is not None:
                    # Nested subflow: the children join the same parent.  The
                    # increment must hold the join lock -- a finishing sibling
                    # decrements concurrently (see _Join.add_children).
                    work.parent.add_children(len(extra))
                    if state:
                        state.task_added(len(extra))
                    # Reversed submission + LIFO owner pop = spawn order.
                    for fn in reversed(extra):
                        self._submit(
                            _Work(fn, parent=work.parent, state=state,
                                  label=work.label), worker_id
                        )
                if work.parent is not None:
                    work.parent.child_done()
        except BaseException as exc:  # propagate to the waiting run() caller
            _attach_task_context(exc, work.label)
            if state is not None:
                state.fail(exc)
            return
        if state is not None:
            state.task_finished()

    def _spawn_subflow(self, task: Task, children: List[Callable],
                       state: Optional[_RunState], worker_id: int) -> None:
        if state:
            state.task_added(len(children))
        join = _Join(len(children), lambda: self._release_successors(task, state, worker_id))
        label = f"{task.name}[subflow]"
        if len(children) == 1:
            # Batched block-run bodies usually hand back a single fat child;
            # run it inline on this worker instead of a queue round-trip.
            self._execute(
                _Work(children[0], parent=join, state=state, label=label),
                worker_id,
            )
            return
        # Reversed submission + LIFO owner pop = spawn order on one worker.
        for fn in reversed(children):
            self._submit(_Work(fn, parent=join, state=state, label=label), worker_id)

    def _release_successors(self, task: Task, state: Optional[_RunState],
                            worker_id: int) -> None:
        if state is None:
            return
        deps = state.deps
        for succ in task.successors:
            with state.deps_lock:
                deps[succ.uid] -= 1
                ready = deps[succ.uid] == 0
            if ready:
                self._submit(_Work(None, task=succ, state=state), worker_id)

    # -- public API ----------------------------------------------------------

    def run(self, graph: TaskGraph) -> None:
        graph.validate()
        tasks = graph.tasks
        if not tasks:
            return
        deps = {t.uid: len(t.predecessors) for t in tasks}
        state = _RunState(len(tasks), deps)
        roots = [t for t in tasks if not t.predecessors]
        for i, t in enumerate(roots):
            self._submit(_Work(None, task=t, state=state), i % self.num_workers)
        self._wait(state)
        if state.error is not None:
            raise state.error

    def _wait(self, state: _RunState) -> None:
        """Block until ``state`` completes.

        An external thread parks on the event.  A *worker* thread instead
        keeps executing queued work -- its own run's or any other's -- so a
        nested ``run`` (a forked session updating inside a sweep task) makes
        progress instead of deadlocking the pool.
        """
        worker_id = getattr(self._local, "worker_id", None)
        if worker_id is None:
            state.done.wait()
            return
        rng = self._local.rng
        idle_wait = self._spin_sleep
        while not state.done.is_set():
            work = self._scheduler.take(worker_id, rng)
            if work is None:
                # Exponential backoff: on oversubscribed hosts a tight
                # take/wait spin starves the workers doing real work.
                state.done.wait(timeout=idle_wait)
                idle_wait = min(idle_wait * 2.0, 0.005)
            else:
                idle_wait = self._spin_sleep
                self._execute(work, worker_id)

    def load(self) -> int:
        return self._scheduler.outstanding()

    def map(self, fn, items):
        items = list(items)
        if not items:
            return []
        results: List[object] = [None] * len(items)
        graph = TaskGraph("map")
        for i, item in enumerate(items):
            def make(i=i, item=item):
                def body():
                    results[i] = fn(item)
                return body
            graph.emplace(make(), name=f"map-{i}")
        self.run(graph)
        return results

    def close(self) -> None:
        with self._wakeup:
            self._shutdown = True
            self._wakeup.notify_all()
        for t in self._threads:
            t.join(timeout=1.0)

    def __del__(self) -> None:  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass


def make_executor(num_workers: Optional[int] = None) -> Executor:
    """Executor factory: 0/1 workers -> sequential, otherwise work stealing."""
    if num_workers is not None and num_workers <= 1:
        return SequentialExecutor()
    return WorkStealingExecutor(num_workers)
