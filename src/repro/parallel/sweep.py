"""Batched parameter sweeps over forked copy-on-write sessions.

A variational workload evaluates the same circuit at many parameter points.
PR 3's retune path makes each point cheap *sequentially* (``update_gate`` +
incremental ``update_state``); :class:`SweepRunner` makes the points cheap
*concurrently*: it forks the base session into a small fleet of
copy-on-write children (:meth:`repro.QTask.fork` -- zero amplitude copies,
shared executor), deals the grid across the fleet round-robin, and runs one
chunk per fork as tasks on the shared
:class:`~repro.parallel.executor.WorkStealingExecutor`.  Each fork carries
its own observables cache, so per-point expectations stay incremental
within a chunk, and every nested ``update_state`` issued from a sweep task
re-enters the same executor (worker threads help instead of blocking, see
``WorkStealingExecutor._wait``).

Results are gathered back in submission order regardless of which fork or
worker computed them.

Points must set parameters *absolutely* (every handle gets a value at every
point) -- that is what makes dealing points across forks order-independent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["SweepPoint", "SweepResult", "SweepRunner"]

#: one grid point: a parameter value (or tuple of values) per swept handle
SweepPoint = Sequence[object]


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one sweep point, tagged with its submission index."""

    index: int
    params: Tuple[object, ...]
    expectation: Optional[float]
    counts: Optional[Dict[str, int]]
    seconds: float
    fork: int
    affected_fraction: float = 0.0


class SweepRunner:
    """Fan a grid of ``update_gate`` variants across forked sessions.

    ``session`` is a :class:`repro.QTask` (or anything exposing ``fork`` /
    ``update_gate`` / ``update_state`` / ``expectation`` / ``counts``);
    ``handles`` are the tunable gate handles *of that session*.  Each call
    to :meth:`run` takes a list of points -- one parameter entry per handle,
    either a float or a tuple of floats -- and returns one
    :class:`SweepResult` per point, in submission order.

    >>> runner = SweepRunner(ckt, [g1, g2], observable="ZZ")   # doctest: +SKIP
    >>> results = runner.run([(0.1, 0.5), (0.2, 0.4)])         # doctest: +SKIP

    The fork fleet is created lazily on first use (at most
    ``num_forks`` children, default the executor's worker count) and reused
    across ``run`` calls; :meth:`close` releases it.
    """

    def __init__(
        self,
        session,
        handles: Sequence[object],
        *,
        observable=None,
        num_forks: Optional[int] = None,
        nested_parallelism: bool = False,
        kernel_backend: Optional[str] = None,
        store_transport: Optional[object] = None,
    ) -> None:
        self.session = session
        self.handles = list(handles)
        self.observable = observable
        if num_forks is not None and num_forks < 1:
            raise ValueError(f"num_forks must be positive, got {num_forks}")
        self.num_forks = num_forks
        #: kernel backend handed to every fleet member; ``None`` inherits the
        #: base session's backend object (the default -- with the process
        #: backend the whole fleet then shares one set of fork workers, which
        #: is what lets a sweep scale with real cores instead of the GIL).
        self.kernel_backend = kernel_backend
        #: store transport handed to every fleet member; ``None`` inherits
        #: the base session's transport *object*, so a sharded fleet aliases
        #: one set of shard payloads instead of spawning processes per fork.
        self.store_transport = store_transport
        #: with False (default) each fork updates on its own
        #: SequentialExecutor -- one sweep point is one coarse task and the
        #: shared pool parallelises *across* forks, which is both faster
        #: (no nested-run scheduling) and exactly one point per worker.
        #: True keeps the forks on the shared pool, so a single point's
        #: partitions also spread over idle workers (useful when the grid
        #: is smaller than the pool).
        self.nested_parallelism = bool(nested_parallelism)
        #: (forked session, its mirrors of ``handles``) per fleet member
        self._forks: List[Tuple[object, List[object]]] = []
        #: the base session's state epoch the current fleet was forked from
        self._fleet_epoch: Optional[Tuple[int, bool]] = None
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Close every forked session (the shared executor stays alive)."""
        for child, _ in self._forks:
            child.close()
        self._forks.clear()
        self._closed = True

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def active_forks(self) -> int:
        return len(self._forks)

    def merged_metrics(self):
        """Fleet-wide metrics: base session + every live fork, merged.

        Forked sessions own their own registries (tagged with the base
        session's id), so their counters are not silently lost when the
        fleet is rebuilt or closed mid-sweep -- but they are also not
        visible on the base session.  This folds the whole family into one
        fresh :class:`~repro.telemetry.MetricsRegistry` (counters and
        histograms accumulate; gauges keep the base session's reading)
        without mutating any live registry.
        """
        from ..telemetry import MetricsRegistry

        base = self.session.simulator.telemetry.metrics
        merged = MetricsRegistry(
            session_id=base.session_id,
            parent_session_id=base.parent_session_id,
        )
        merged.merge(base)
        for child, _ in self._forks:
            merged.merge(child.simulator.telemetry.metrics)
        return merged

    def _ensure_forks(self, wanted: int) -> None:
        from .executor import SequentialExecutor

        # The fleet snapshots the base session at fork time; if the session
        # was edited since (pending modifiers or further updates), cached
        # forks describe a stale state -- rebuild the whole fleet rather
        # than silently mixing base states across points.
        epoch = getattr(self.session.simulator, "state_epoch", None)
        if self._forks and epoch != self._fleet_epoch:
            for child, _ in self._forks:
                child.close()
            self._forks.clear()
        while len(self._forks) < wanted:
            inner = None if self.nested_parallelism else SequentialExecutor()
            child = self.session.fork(
                executor=inner,
                kernel_backend=self.kernel_backend,
                store_transport=self.store_transport,
            )
            mirrored = [child.handle_for(h) for h in self.handles]
            self._forks.append((child, mirrored))
        # fork() flushes pending parent modifiers, so read the epoch after.
        self._fleet_epoch = getattr(self.session.simulator, "state_epoch", None)

    # -- the sweep ----------------------------------------------------------

    def _apply_point(self, child, mirrored: List[object], point: SweepPoint) -> None:
        values = point if isinstance(point, (list, tuple)) else (point,)
        if len(values) != len(mirrored):
            raise ValueError(
                f"point has {len(values)} parameter entries for "
                f"{len(mirrored)} swept handles"
            )
        for handle, value in zip(mirrored, values):
            params = value if isinstance(value, (list, tuple)) else (value,)
            child.update_gate(handle, *params)

    def run(
        self,
        points: Sequence[SweepPoint],
        *,
        observable=None,
        shots: int = 0,
        seed: Optional[int] = None,
    ) -> List[SweepResult]:
        """Evaluate every point, batched across the fork fleet.

        ``observable`` overrides the runner-level one for this call; with
        ``shots > 0`` each result also carries a measurement histogram
        (seeded per point index, so results are reproducible regardless of
        which fork served the point).  Results come back in submission
        order.
        """
        if self._closed:
            raise RuntimeError("SweepRunner is closed")
        points = list(points)
        if not points:
            return []
        obs = self.observable if observable is None else observable
        executor = self.session.simulator.executor
        workers = max(1, int(getattr(executor, "num_workers", 1)))
        limit = workers if self.num_forks is None else self.num_forks
        fleet = max(1, min(len(points), limit))
        self._ensure_forks(fleet)

        # Round-robin deal: fork f serves points f, f+fleet, ...  Points set
        # every handle absolutely, so a fork's chunk is history-independent.
        chunks: List[List[Tuple[int, SweepPoint]]] = [
            [(i, p) for i, p in enumerate(points) if i % fleet == f]
            for f in range(fleet)
        ]

        def run_chunk(fork_id: int) -> List[SweepResult]:
            child, mirrored = self._forks[fork_id]
            out: List[SweepResult] = []
            for index, point in chunks[fork_id]:
                t0 = time.perf_counter()
                self._apply_point(child, mirrored, point)
                child.update_state()
                expectation = (
                    child.expectation(obs) if obs is not None else None
                )
                counts = (
                    child.counts(
                        shots, seed=None if seed is None else seed + index
                    )
                    if shots
                    else None
                )
                values = point if isinstance(point, (list, tuple)) else (point,)
                out.append(
                    SweepResult(
                        index=index,
                        params=tuple(values),
                        expectation=expectation,
                        counts=counts,
                        seconds=time.perf_counter() - t0,
                        fork=fork_id,
                        affected_fraction=(
                            child.simulator.last_update.affected_fraction
                        ),
                    )
                )
            return out

        results: List[Optional[SweepResult]] = [None] * len(points)
        for chunk_results in executor.map(run_chunk, list(range(fleet))):
            for result in chunk_results:
                results[result.index] = result
        return results  # type: ignore[return-value]
