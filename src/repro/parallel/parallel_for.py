"""Chunked parallel-for helper.

The paper describes intra-gate operation parallelism as "a parallel-for with
chunk size equal to our block size" (§III.C).  :func:`parallel_for` provides
exactly that: it splits an index space into chunks and maps a function over
the chunks with the given executor (or serially when no executor / a
sequential executor is supplied).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from .executor import Executor, SequentialExecutor

__all__ = ["chunk_indices", "parallel_for"]


def chunk_indices(total: int, chunk: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into ``(start, stop)`` chunks of size ``chunk``."""
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if chunk <= 0:
        raise ValueError(f"chunk must be positive, got {chunk}")
    return [(s, min(total, s + chunk)) for s in range(0, total, chunk)]


def parallel_for(
    fn: Callable[[int, int], object],
    total: int,
    chunk: int,
    executor: Optional[Executor] = None,
) -> None:
    """Apply ``fn(start, stop)`` over chunked sub-ranges of ``range(total)``."""
    chunks = chunk_indices(total, chunk)
    if executor is None or isinstance(executor, SequentialExecutor) or len(chunks) <= 1:
        for s, e in chunks:
            fn(s, e)
        return
    executor.map(lambda se: fn(se[0], se[1]), chunks)
