"""The service layer: qTask as a multi-tenant async backend.

The paper's north star is a simulation *service* for heavy multi-user
traffic; this package is the step from library to service.  The
:class:`Backend` facade validates requests against a declarative
:class:`BackendConfiguration` (basis gates, ``max_shots``, a memory-derived
``n_qubits`` cap), admits them to a bounded queue with health-based
backpressure, executes them as async :class:`Job` objects on one shared
work-stealing executor, and serves every job a copy-on-write fork from the
:class:`SessionPool` of warm base sessions -- see ``docs/service.md``.
"""

from .backend import Backend
from .config import (
    BackendConfiguration,
    DEFAULT_CONFIGURATION,
    available_memory_bytes,
    memory_qubit_cap,
)
from .errors import (
    BackendClosedError,
    BackpressureError,
    CircuitValidationError,
    InvalidJobTransition,
    JobCancelledError,
    JobTimeoutError,
    QueueFullError,
    ServiceError,
)
from .job import Job, JobResult, JobStatus
from .pool import RECOVERY_EVENT_KINDS, SessionPool

__all__ = [
    "Backend",
    "BackendConfiguration",
    "DEFAULT_CONFIGURATION",
    "available_memory_bytes",
    "memory_qubit_cap",
    "Job",
    "JobResult",
    "JobStatus",
    "SessionPool",
    "RECOVERY_EVENT_KINDS",
    "ServiceError",
    "CircuitValidationError",
    "QueueFullError",
    "BackpressureError",
    "InvalidJobTransition",
    "JobCancelledError",
    "JobTimeoutError",
    "BackendClosedError",
]
