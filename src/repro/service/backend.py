"""The Backend facade: qTask as a multi-tenant async service.

``Backend.run(circuit, ...)`` validates the request against the declarative
:class:`~repro.service.config.BackendConfiguration`, wraps it in an async
:class:`~repro.service.job.Job` and admits it to a **bounded** queue --
full queue means a typed :class:`~repro.service.errors.QueueFullError`
*now*, not unbounded latency later, and health-based load shedding
(:class:`~repro.service.errors.BackpressureError`) kicks in before the hard
bound when the rolled-up ``update.seconds`` p95 or the recovery event
stream says the engine is struggling.

A small dispatcher pool (``max_concurrent_jobs`` threads) drains the queue;
each job leases a copy-on-write fork of a warm base session from the
:class:`~repro.service.pool.SessionPool`, so all simulation work of every
concurrent job lands on ONE shared work-stealing executor (the executor's
``run`` is re-entrant; external threads park while workers help-execute).

Telemetry is first-class: every request runs under a ``job.run`` span,
each finished job's session metrics merge into a per-tenant
:class:`~repro.telemetry.metrics.MetricsRegistry` rollup
(:meth:`Backend.tenant_metrics`), and :meth:`Backend.prometheus_text`
exposes the whole backend -- service counters, pool gauges, latency
histograms and the engine's rolled-up ``update.seconds`` -- in Prometheus
text format.
"""

from __future__ import annotations

import hashlib
import itertools
import queue
import threading
import time
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from ..core.exceptions import QTaskError
from ..parallel import Executor, WorkStealingExecutor
from ..qasm.parser import ParsedProgram, parse_qasm
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.session import Telemetry
from ..qtask import QTask
from .config import BackendConfiguration
from .errors import (
    BackendClosedError,
    BackpressureError,
    CircuitValidationError,
    QueueFullError,
)
from .job import Job, JobResult, JobStatus
from .pool import RECOVERY_EVENT_KINDS, SessionPool

__all__ = ["Backend"]

#: what ``Backend.run`` accepts as a circuit: OpenQASM 2.0 source, a parsed
#: program, or a builder callable ``(session: QTask) -> None`` that inserts
#: gates into a fresh session of ``num_qubits`` qubits
CircuitLike = Union[str, ParsedProgram, Callable[[QTask], None]]


def _op_fingerprint(op) -> str:
    """A stable textual identity of one parsed operation (for pool keys)."""
    inner = getattr(op, "gate", None)  # CGate wraps its unitary
    name = op.name if inner is None else f"c-{inner.name}"
    qubits = tuple(getattr(op, "qubits", ()) or ())
    if not qubits and hasattr(op, "qubit"):
        qubits = (op.qubit,)
    params = tuple(getattr(op, "params", ()) or ())
    clbit = getattr(op, "clbit", None)
    return f"{name}{qubits}{params}{'' if clbit is None else f'->{clbit}'}"


def _program_key(program: ParsedProgram) -> str:
    digest = hashlib.sha256()
    digest.update(str(program.num_qubits).encode())
    digest.update(str(program.num_classical_bits).encode())
    for op in program.gates:
        digest.update(_op_fingerprint(op).encode())
    return f"program:{digest.hexdigest()[:16]}"


class _JobRequest:
    """Everything a dispatcher thread needs to execute one admitted job."""

    __slots__ = (
        "job", "key", "factory", "shots", "seed",
        "observable", "return_state", "tenant",
    )

    def __init__(self, job, key, factory, shots, seed, observable,
                 return_state, tenant):
        self.job = job
        self.key = key
        self.factory = factory
        self.shots = shots
        self.seed = seed
        self.observable = observable
        self.return_state = return_state
        self.tenant = tenant


class Backend:
    """Async multi-tenant facade over warm qTask sessions.

    >>> from repro.service import Backend
    >>> be = Backend()
    >>> job = be.run("OPENQASM 2.0;\\nqreg q[2];\\nh q[0];\\ncx q[0],q[1];",
    ...              shots=100, seed=7)
    >>> sorted(job.result(timeout=60).counts)
    ['00', '11']
    >>> be.close()
    """

    def __init__(
        self,
        configuration: Union[None, Dict[str, object], BackendConfiguration] = None,
        *,
        executor: Optional[Executor] = None,
        num_workers: Optional[int] = None,
        tracing: Optional[bool] = None,
        session_knobs: Optional[Dict[str, object]] = None,
    ) -> None:
        self.configuration = BackendConfiguration.coerce(configuration)
        cfg = self.configuration
        #: extra QTask constructor knobs applied to every pooled base
        #: session (``kernel_backend``, ``block_size``, ``fusion``, ...)
        self._session_knobs = dict(session_knobs or {})
        self._owns_executor = executor is None
        self._executor = (
            executor if executor is not None else WorkStealingExecutor(num_workers)
        )
        self.telemetry = Telemetry(tracing=tracing)
        m = self.telemetry.metrics
        self._jobs_submitted = m.counter(
            "service.jobs_submitted", help="jobs admitted to the queue")
        self._jobs_completed = m.counter(
            "service.jobs_completed", help="jobs finished successfully")
        self._jobs_failed = m.counter(
            "service.jobs_failed", help="jobs that raised during execution")
        self._jobs_rejected = m.counter(
            "service.jobs_rejected", help="submissions rejected by admission control")
        self._jobs_cancelled = m.counter(
            "service.jobs_cancelled", help="jobs cancelled before running")
        self._gauge_queue = m.gauge(
            "service.queue_depth", help="jobs waiting in the admission queue")
        self._gauge_active = m.gauge(
            "service.active_jobs", help="jobs currently executing")
        self._gauge_load = m.gauge(
            "service.executor_load",
            help="tasks outstanding on the shared executor")
        self._gauge_degraded = m.gauge(
            "service.degraded",
            help="1 while recent jobs recorded recovery events")
        self._gauge_p95 = m.gauge(
            "service.update_p95_seconds", unit="s",
            help="rolled-up update.seconds p95 across finished jobs")
        self._hist_job = m.histogram(
            "service.job_seconds", unit="s",
            help="job execution wall time (excludes queue wait)")
        self._hist_queue_wait = m.histogram(
            "service.queue_wait_seconds", unit="s",
            help="time jobs spent waiting in the admission queue")
        #: engine-latency rollup merged from every finished job's session;
        #: drives p95-based load shedding (same name as the per-session
        #: histogram so fleet dashboards aggregate naturally)
        self._update_rollup = m.histogram(
            "update.seconds", unit="s",
            help="update_state wall time, rolled up across jobs")

        self.pool = SessionPool(
            max_sessions=cfg.max_pool_sessions,
            memory_budget_bytes=cfg.pool_memory_budget_bytes,
            registry=m,
        )
        self._tenant_registries: Dict[str, MetricsRegistry] = {}
        self._tenant_lock = threading.Lock()
        self._degraded = False
        self._clean_streak = 0
        self._health_lock = threading.Lock()

        self._queue: "queue.Queue[Optional[_JobRequest]]" = queue.Queue(
            maxsize=cfg.max_queued_jobs
        )
        self._closed = False
        self._job_ids = itertools.count(1)
        self._dispatchers: List[threading.Thread] = []
        for i in range(cfg.max_concurrent_jobs):
            t = threading.Thread(
                target=self._dispatch_loop, daemon=True,
                name=f"qtask-backend-{i}",
            )
            t.start()
            self._dispatchers.append(t)

    # -- request validation and normalisation --------------------------------

    def _validate_program(self, program: ParsedProgram) -> None:
        cfg = self.configuration
        if program.num_qubits > cfg.n_qubits:
            raise CircuitValidationError(
                f"circuit needs {program.num_qubits} qubits; this backend's "
                f"memory-derived cap is n_qubits={cfg.n_qubits}"
            )
        if program.has_dynamic_ops and not cfg.conditional:
            raise CircuitValidationError(
                "circuit uses measure/reset/conditioned gates but the "
                "backend configuration disables conditional execution"
            )
        basis = set(cfg.basis_gates)
        for op in program.gates:
            gate = getattr(op, "gate", op)  # CGate wraps its unitary
            name = getattr(gate, "name", "")
            if name in ("measure", "reset"):
                continue
            if name.lower() not in basis:
                raise CircuitValidationError(
                    f"gate {name!r} is outside this backend's basis gates"
                )

    def _normalise_circuit(self, circuit: CircuitLike, key, num_qubits):
        """Returns ``(key, factory)``; raises CircuitValidationError."""
        knobs = dict(self._session_knobs)
        knobs["executor"] = self._executor
        if isinstance(circuit, str):
            try:
                program = parse_qasm(circuit)
            except QTaskError as exc:
                raise CircuitValidationError(f"unparsable QASM: {exc}") from exc
            circuit = program
        if isinstance(circuit, ParsedProgram):
            program = circuit
            self._validate_program(program)
            if key is None:
                key = _program_key(program)
            factory = lambda: QTask.from_program(program, **knobs)  # noqa: E731
            return key, factory
        if callable(circuit):
            if num_qubits is None:
                raise CircuitValidationError(
                    "builder-callable circuits need num_qubits="
                )
            if num_qubits > self.configuration.n_qubits:
                raise CircuitValidationError(
                    f"circuit needs {num_qubits} qubits; this backend's "
                    f"memory-derived cap is n_qubits={self.configuration.n_qubits}"
                )
            if key is None:
                mod = getattr(circuit, "__module__", "anon")
                qual = getattr(circuit, "__qualname__", repr(circuit))
                key = f"builder:{mod}.{qual}/{num_qubits}"
            builder = circuit

            def factory() -> QTask:
                session = QTask(num_qubits, **knobs)
                builder(session)
                return session

            return key, factory
        raise CircuitValidationError(
            f"circuit must be QASM text, a ParsedProgram or a builder "
            f"callable, got {type(circuit).__name__}"
        )

    # -- public API -----------------------------------------------------------

    def run(
        self,
        circuit: CircuitLike,
        *,
        shots: int = 0,
        seed: Optional[int] = None,
        observable=None,
        tenant: str = "default",
        key: Optional[str] = None,
        num_qubits: Optional[int] = None,
        return_state: bool = False,
    ) -> Job:
        """Validate, enqueue and return an async :class:`Job`.

        ``shots > 0`` samples a measurement histogram (trajectory sampling
        via ``run_shots`` when the circuit has classical bits, state
        sampling via ``counts`` otherwise); ``observable`` additionally
        evaluates an expectation value; ``return_state`` attaches the final
        state vector.  ``key`` overrides the derived circuit-family hash
        (two structurally different builders can share a warm base by
        sharing a key -- don't, unless they really build the same circuit).

        Raises :class:`CircuitValidationError` for requests outside the
        declared configuration and :class:`QueueFullError` /
        :class:`BackpressureError` when admission control rejects.
        """
        if self._closed:
            raise BackendClosedError("backend is closed")
        if shots < 0:
            raise CircuitValidationError(f"shots must be non-negative, got {shots}")
        if shots > self.configuration.max_shots:
            raise CircuitValidationError(
                f"shots={shots} exceeds max_shots={self.configuration.max_shots}"
            )
        key, factory = self._normalise_circuit(circuit, key, num_qubits)
        job = Job(self, f"job-{next(self._job_ids):06d}", tenant=tenant)
        job._request = _JobRequest(  # type: ignore[attr-defined]
            job, key, factory, shots, seed, observable, return_state, tenant
        )
        job.submit()
        return job

    def prometheus_text(self) -> str:
        """Prometheus text exposition of every backend metric (gauges fresh)."""
        self._refresh_gauges()
        return self.telemetry.metrics.prometheus_text()

    def tenant_metrics(self, tenant: str) -> MetricsRegistry:
        """The rollup registry accumulated from ``tenant``'s finished jobs.

        Counters and histograms from every job session (update latencies,
        kernel runs, COW adoption counts, ...) accumulated via
        :meth:`~repro.telemetry.metrics.MetricsRegistry.merge`; inspect with
        ``as_dict()`` or ``prometheus_text()``.
        """
        with self._tenant_lock:
            reg = self._tenant_registries.get(tenant)
            if reg is None:
                reg = self._tenant_registries[tenant] = MetricsRegistry()
            return reg

    def tenants(self) -> List[str]:
        with self._tenant_lock:
            return sorted(self._tenant_registries)

    def status(self) -> Dict[str, object]:
        """Point-in-time operational snapshot (what an LB health check reads)."""
        self._refresh_gauges()
        return {
            "backend_name": self.configuration.backend_name,
            "closed": self._closed,
            "queue_depth": self._queue.qsize(),
            "max_queued_jobs": self.configuration.max_queued_jobs,
            "active_jobs": int(self._gauge_active.value),
            "max_concurrent_jobs": self.configuration.max_concurrent_jobs,
            "executor_load": self._executor.load(),
            "degraded": self._degraded,
            "update_p95_seconds": self._update_rollup.percentile(0.95),
            "jobs": {
                "submitted": self._jobs_submitted.value,
                "completed": self._jobs_completed.value,
                "failed": self._jobs_failed.value,
                "rejected": self._jobs_rejected.value,
                "cancelled": self._jobs_cancelled.value,
            },
            "pool": self.pool.stats(),
        }

    def close(self, *, timeout: float = 10.0) -> None:
        """Stop accepting work, drain queued jobs, release the pool.

        Already-queued jobs still run to completion (their ``result()``
        resolves); new ``run()`` calls raise :class:`BackendClosedError`.
        """
        if self._closed:
            return
        self._closed = True
        for _ in self._dispatchers:
            self._queue.put(None)  # sentinel after all queued work
        for t in self._dispatchers:
            t.join(timeout=timeout)
        self.pool.close()
        if self._owns_executor:
            self._executor.close()

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- admission control ----------------------------------------------------

    def _admit(self, job: Job) -> None:
        """Called by ``Job.submit``: enforce backpressure, then the bound."""
        if self._closed:
            raise BackendClosedError("backend is closed")
        cfg = self.configuration
        depth = self._queue.qsize()
        soft = max(1, cfg.max_queued_jobs // 2)
        if depth >= soft:
            p95 = self._update_rollup.percentile(0.95)
            if (
                cfg.p95_reject_seconds is not None
                and self._update_rollup.count > 0
                and p95 > cfg.p95_reject_seconds
            ):
                self._jobs_rejected.inc()
                raise BackpressureError(
                    f"shedding load: update.seconds p95 {p95:.3f}s exceeds "
                    f"{cfg.p95_reject_seconds}s with {depth} jobs queued",
                    queue_depth=depth, limit=cfg.max_queued_jobs,
                    reason="p95", p95_seconds=p95,
                    threshold_seconds=cfg.p95_reject_seconds,
                )
            if self._degraded:
                self._jobs_rejected.inc()
                raise BackpressureError(
                    f"shedding load: backend degraded (recent recovery "
                    f"events) with {depth} jobs queued",
                    queue_depth=depth, limit=cfg.max_queued_jobs,
                    reason="degraded", p95_seconds=p95,
                    threshold_seconds=cfg.p95_reject_seconds,
                )
        try:
            self._queue.put_nowait(job._request)  # type: ignore[attr-defined]
        except queue.Full:
            self._jobs_rejected.inc()
            raise QueueFullError(
                f"admission queue full ({cfg.max_queued_jobs} jobs)",
                queue_depth=cfg.max_queued_jobs,
                limit=cfg.max_queued_jobs,
            ) from None
        job.submitted_at = time.perf_counter()
        self._jobs_submitted.inc()
        self._gauge_queue.set(self._queue.qsize())

    def _job_cancelled(self, job: Job) -> None:
        """Job moved to CANCELLED while queued (request skipped on dequeue)."""
        self._jobs_cancelled.inc()

    # -- dispatch -------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            request = self._queue.get()
            if request is None:
                return
            self._gauge_queue.set(self._queue.qsize())
            try:
                self._execute(request)
            except BaseException as exc:  # defensive: never kill a dispatcher
                if not request.job.done():
                    request.job._fail(exc)

    def _execute(self, request: _JobRequest) -> None:
        job = request.job
        if not job._start():  # cancelled while queued
            return
        queue_seconds = (
            time.perf_counter() - job.submitted_at
            if job.submitted_at is not None else 0.0
        )
        self._hist_queue_wait.observe(queue_seconds)
        self._gauge_active.set(self._gauge_active.value + 1)
        fork = None
        hit = False
        started = time.perf_counter()
        try:
            def warmed_factory() -> QTask:
                # Build AND warm here (the pool's own warming update is then
                # a no-op) so the base session's telemetry -- the expensive
                # full update's latency, any recovery events the build hit --
                # feeds the rollup that drives admission control.
                session = request.factory()
                session.update_state()
                self._absorb_session_telemetry(session, request.tenant)
                return session

            with self.telemetry.tracer.span(
                "job.run",
                {"job": job.job_id, "tenant": request.tenant, "key": request.key},
            ):
                fork, hit = self.pool.lease(request.key, warmed_factory)
                counts = None
                if request.shots > 0:
                    if fork.circuit.num_clbits > 0:
                        counts = fork.run_shots(request.shots, seed=request.seed)
                    else:
                        counts = fork.counts(request.shots, seed=request.seed)
                expectation = (
                    fork.expectation(request.observable)
                    if request.observable is not None else None
                )
                statevector = None
                if request.return_state:
                    fork.update_state()
                    statevector = np.array(fork.state(), copy=True)
            elapsed = time.perf_counter() - started
            job._finish(JobResult(
                job_id=job.job_id,
                tenant=request.tenant,
                key=request.key,
                pool_hit=hit,
                shots=request.shots,
                counts=counts,
                expectation=expectation,
                statevector=statevector,
                seconds=elapsed,
                queue_seconds=queue_seconds,
            ))
            self._jobs_completed.inc()
            self._hist_job.observe(elapsed)
        except BaseException as exc:
            self._jobs_failed.inc()
            job._fail(exc)
        finally:
            if fork is not None:
                self._absorb_session_telemetry(fork, request.tenant)
                fork.close()
                self.pool.release(request.key)
            self._gauge_active.set(max(0.0, self._gauge_active.value - 1))

    # -- telemetry plumbing ---------------------------------------------------

    def _absorb_session_telemetry(self, session: QTask, tenant: str) -> None:
        """Fold one session (a finished job's fork, or a base session right
        after its warming build) into the per-tenant and rollup views."""
        telemetry = session.telemetry
        self.tenant_metrics(tenant).merge(telemetry.metrics)
        update_hist = telemetry.metrics.get("update.seconds")
        if update_hist is not None and update_hist.count > 0:
            try:
                self._update_rollup.merge(update_hist)
            except ValueError:  # pragma: no cover - custom session bounds
                pass
            self._gauge_p95.set(self._update_rollup.percentile(0.95))
        recovery = telemetry.events.counts_by_kind()
        troubled = sum(recovery.get(kind, 0) for kind in RECOVERY_EVENT_KINDS)
        with self._health_lock:
            if troubled:
                self._degraded = True
                self._clean_streak = 0
            elif self._degraded:
                self._clean_streak += 1
                if self._clean_streak >= self.configuration.degraded_grace_jobs:
                    self._degraded = False
                    self._clean_streak = 0
            self._gauge_degraded.set(1.0 if self._degraded else 0.0)

    def _refresh_gauges(self) -> None:
        self._gauge_queue.set(self._queue.qsize())
        self._gauge_load.set(self._executor.load())
        self._gauge_degraded.set(1.0 if self._degraded else 0.0)
        self._gauge_p95.set(self._update_rollup.percentile(0.95))
        self.pool._refresh_gauges()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cfg = self.configuration
        return (
            f"Backend({cfg.backend_name}, n_qubits<={cfg.n_qubits}, "
            f"queue={self._queue.qsize()}/{cfg.max_queued_jobs}, "
            f"pool={len(self.pool)}/{cfg.max_pool_sessions})"
        )
