"""Typed errors of the service layer.

Everything the :class:`~repro.service.backend.Backend` rejects or fails is
a subclass of :class:`ServiceError`, so a caller can catch the whole family
with one clause -- but admission-control rejections
(:class:`QueueFullError`, :class:`BackpressureError`) carry structured
fields a load balancer can act on (retry elsewhere, back off), and are
deliberately distinct from *job* failures, which surface through
``Job.result()``.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ServiceError",
    "CircuitValidationError",
    "QueueFullError",
    "BackpressureError",
    "InvalidJobTransition",
    "JobCancelledError",
    "JobTimeoutError",
    "BackendClosedError",
]


class ServiceError(Exception):
    """Base class of every service-layer error."""


class CircuitValidationError(ServiceError):
    """The submitted circuit violates the backend's declared configuration.

    Raised synchronously by ``Backend.run`` (never from inside a job):
    too many qubits for the memory-derived ``n_qubits`` cap, a gate outside
    ``basis_gates``, ``shots`` beyond ``max_shots``, or unparsable QASM.
    """


class QueueFullError(ServiceError):
    """Admission rejected: the bounded job queue is at capacity.

    ``queue_depth`` and ``limit`` describe the queue at rejection time.
    The job was *not* enqueued; retry later or against another backend.
    """

    def __init__(self, message: str, *, queue_depth: int, limit: int) -> None:
        super().__init__(message)
        self.queue_depth = queue_depth
        self.limit = limit


class BackpressureError(QueueFullError):
    """Admission rejected by load shedding, not a hard queue bound.

    The queue still had room, but the backend's health signals -- the
    rolled-up ``update.seconds`` p95 above the configured threshold, or
    recent recovery events (shard respawns, breaker transitions) marking
    the engine degraded -- say accepting more work would only grow latency.
    ``reason`` is ``"p95"`` or ``"degraded"``; ``p95_seconds`` carries the
    gauge reading that tripped (0.0 for degraded-mode rejections).
    """

    def __init__(
        self,
        message: str,
        *,
        queue_depth: int,
        limit: int,
        reason: str,
        p95_seconds: float = 0.0,
        threshold_seconds: Optional[float] = None,
    ) -> None:
        super().__init__(message, queue_depth=queue_depth, limit=limit)
        self.reason = reason
        self.p95_seconds = p95_seconds
        self.threshold_seconds = threshold_seconds


class InvalidJobTransition(ServiceError):
    """A job method was called in a state that does not allow it."""


class JobCancelledError(ServiceError):
    """``result()`` was called on a job that was cancelled."""


class JobTimeoutError(ServiceError):
    """``result(timeout=...)`` expired before the job finished."""


class BackendClosedError(ServiceError):
    """The backend was closed; no further jobs are accepted."""
