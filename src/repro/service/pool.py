"""The warm session pool: COW fork fleets keyed by circuit hash.

Building a base :class:`~repro.qtask.QTask` session for a circuit means
parsing, levelizing and running the full initial ``update_state()`` --
hundreds of milliseconds to seconds.  *Forking* that session is ~0.1s and
sublinear in memory (the child references the parent's computed blocks
copy-on-write).  So the pool keeps one warm **base session per circuit
family** (keyed by circuit hash) and hands every job a fresh fork of it:
the first job of a family pays the build, every later job pays only the
fork.

Budget enforcement uses the COW accounting that makes the pool cheap in
the first place: a base session's cost is its
:attr:`~repro.core.cow.MemoryReport.owned_bytes` (blocks it materialised
itself, excluding what it shares with live forks), summed across entries
and bounded by ``memory_budget_bytes``.  When the pool is over budget or
over ``max_sessions``, idle entries (zero leased forks) are evicted --
most-unstable first (recovery events recorded on the base session: shard
respawns, breaker transitions, retries), then least-recently-used.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..qtask import QTask
from ..telemetry.metrics import MetricsRegistry

__all__ = ["SessionPool", "RECOVERY_EVENT_KINDS"]

#: event kinds on a base session's recovery log that mark it *unstable* --
#: an unstable warm session is evicted before a merely old one, because its
#: shards/backends have already misbehaved and a rebuild is likely cheaper
#: than another recovery cycle
RECOVERY_EVENT_KINDS: Tuple[str, ...] = (
    "update.retry",
    "store.recovery",
    "breaker.transition",
    "pool.respawn",
    "chunk.fallback",
)


class _PoolEntry:
    """One warm base session and its accounting."""

    __slots__ = (
        "key",
        "ready",
        "session",
        "error",
        "last_used",
        "hits",
        "leases",
        "owned_bytes",
        "build_seconds",
    )

    def __init__(self, key: str) -> None:
        self.key = key
        #: set once the creator thread finished building (or failed)
        self.ready = threading.Event()
        self.session: Optional[QTask] = None
        self.error: Optional[BaseException] = None
        self.last_used = time.perf_counter()
        self.hits = 0
        #: forks currently handed out against this base (eviction blocker)
        self.leases = 0
        self.owned_bytes = 0
        self.build_seconds = 0.0

    def instability(self) -> int:
        """Recovery events recorded on the base session (eviction priority)."""
        if self.session is None:
            return 0
        counts = self.session.telemetry.events.counts_by_kind()
        return sum(counts.get(kind, 0) for kind in RECOVERY_EVENT_KINDS)


class SessionPool:
    """Warm COW base sessions keyed by circuit hash, with budget eviction.

    ``lease(key, factory)`` returns ``(fork, hit)``: a fresh fork of the
    warm base for ``key`` (building it via ``factory()`` on first use) and
    whether that base was already warm.  Callers **must** pair every lease
    with :meth:`release` (the backend does this in a ``finally``) -- leases
    pin the base against eviction, since evicting a base whose forks still
    share its blocks would only *move* memory, not free it.
    """

    def __init__(
        self,
        *,
        max_sessions: int = 8,
        memory_budget_bytes: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be positive, got {max_sessions}")
        self.max_sessions = max_sessions
        self.memory_budget_bytes = memory_budget_bytes
        self._entries: Dict[str, _PoolEntry] = {}
        self._lock = threading.Lock()
        self._closed = False
        registry = registry if registry is not None else MetricsRegistry()
        self._hits = registry.counter(
            "service.pool_hits", help="leases served from a warm base session"
        )
        self._misses = registry.counter(
            "service.pool_misses", help="leases that had to build the base session"
        )
        self._evictions = registry.counter(
            "service.pool_evictions", help="warm base sessions evicted"
        )
        self._gauge_sessions = registry.gauge(
            "service.pool_sessions", help="warm base sessions currently held"
        )
        self._gauge_owned = registry.gauge(
            "service.pool_owned_bytes",
            unit="bytes",
            help="COW bytes owned by warm base sessions (MemoryReport.owned_bytes)",
        )

    # -- leasing ------------------------------------------------------------

    def lease(self, key: str, factory: Callable[[], QTask]) -> Tuple[QTask, bool]:
        """A fresh fork of the warm base for ``key``; build the base if cold.

        Exactly one thread runs ``factory()`` per cold key; concurrent
        leases of the same key block on the entry's ready event and then
        fork the same base.  A failed build is not cached: the entry is
        removed so the next lease retries.
        """
        creator = False
        with self._lock:
            if self._closed:
                raise RuntimeError("SessionPool is closed")
            entry = self._entries.get(key)
            if entry is None:
                entry = _PoolEntry(key)
                self._entries[key] = entry
                creator = True
            entry.leases += 1

        if creator:
            start = time.perf_counter()
            try:
                session = factory()
                session.update_state()  # warm: compute the full base state
                entry.build_seconds = time.perf_counter() - start
                entry.session = session
                entry.owned_bytes = session.memory_report().owned_bytes
            except BaseException as exc:
                entry.error = exc
                with self._lock:
                    entry.leases -= 1
                    self._entries.pop(key, None)
                entry.ready.set()
                raise
            entry.ready.set()
            self._misses.inc()
        else:
            entry.ready.wait()
            if entry.error is not None:
                with self._lock:
                    entry.leases -= 1
                raise entry.error
            self._hits.inc()
            with self._lock:
                entry.hits += 1

        assert entry.session is not None
        try:
            fork = entry.session.fork()
        except BaseException:
            with self._lock:
                entry.leases -= 1
            raise
        entry.last_used = time.perf_counter()
        self._enforce_budgets()
        return fork, not creator

    def release(self, key: str) -> None:
        """Return a lease taken by :meth:`lease` (the fork itself is closed
        by the caller).  Refreshes the base's owned-bytes accounting and
        re-runs budget enforcement -- closing forks can change what the
        base owns versus shares."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return
            entry.leases = max(0, entry.leases - 1)
            entry.last_used = time.perf_counter()
            session = entry.session
        if session is not None:
            entry.owned_bytes = session.memory_report().owned_bytes
        self._enforce_budgets()

    # -- eviction -----------------------------------------------------------

    def _over_budget_locked(self) -> bool:
        if len(self._entries) > self.max_sessions:
            return True
        if self.memory_budget_bytes is not None:
            total = sum(e.owned_bytes for e in self._entries.values())
            if total > self.memory_budget_bytes:
                return True
        return False

    def _pick_victim_locked(self) -> Optional[_PoolEntry]:
        candidates = [
            e
            for e in self._entries.values()
            if e.leases == 0 and e.ready.is_set() and e.session is not None
        ]
        if not candidates:
            return None
        # Most unstable first (recovery events on the base), then oldest.
        return max(candidates, key=lambda e: (e.instability(), -e.last_used))

    def _enforce_budgets(self) -> None:
        """Evict idle entries until within ``max_sessions`` and the byte
        budget (or nothing idle remains to evict)."""
        while True:
            with self._lock:
                if not self._over_budget_locked():
                    break
                victim = self._pick_victim_locked()
                if victim is None:
                    break  # everything is leased; budgets re-checked on release
                del self._entries[victim.key]
            session = victim.session
            if session is not None:
                session.close()
            self._evictions.inc()
        self._refresh_gauges()

    def _refresh_gauges(self) -> None:
        with self._lock:
            self._gauge_sessions.set(len(self._entries))
            self._gauge_owned.set(sum(e.owned_bytes for e in self._entries.values()))

    # -- introspection / lifecycle -----------------------------------------

    def stats(self) -> Dict[str, object]:
        """Point-in-time snapshot (entries sorted by recency, hot first)."""
        with self._lock:
            entries = sorted(
                self._entries.values(), key=lambda e: -e.last_used
            )
            return {
                "sessions": len(entries),
                "max_sessions": self.max_sessions,
                "memory_budget_bytes": self.memory_budget_bytes,
                "owned_bytes": sum(e.owned_bytes for e in entries),
                "entries": [
                    {
                        "key": e.key,
                        "hits": e.hits,
                        "leases": e.leases,
                        "owned_bytes": e.owned_bytes,
                        "build_seconds": e.build_seconds,
                        "instability": e.instability(),
                    }
                    for e in entries
                ],
            }

    def keys(self) -> List[str]:
        with self._lock:
            return list(self._entries)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            if entry.session is not None:
                entry.session.close()
        self._refresh_gauges()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SessionPool(sessions={len(self._entries)}/{self.max_sessions}, "
            f"budget={self.memory_budget_bytes})"
        )
