"""The async Job: one request's lifecycle through the backend.

A job moves ``QUEUED -> RUNNING -> DONE | ERROR | CANCELLED`` (with a brief
``INITIALIZING`` before :meth:`Job.submit` enqueues it, matching the
provider exemplars).  All transitions happen under the job's lock, the
terminal transition sets an event, and :meth:`Job.result` blocks on that
event -- so any number of threads can wait on, poll or cancel the same job
without touching backend internals.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, Optional

from .errors import (
    InvalidJobTransition,
    JobCancelledError,
    JobTimeoutError,
)

__all__ = ["JobStatus", "JobResult", "Job"]


class JobStatus(Enum):
    """Lifecycle states of a :class:`Job`."""

    INITIALIZING = "INITIALIZING"
    QUEUED = "QUEUED"
    RUNNING = "RUNNING"
    DONE = "DONE"
    ERROR = "ERROR"
    CANCELLED = "CANCELLED"

    @property
    def terminal(self) -> bool:
        return self in (JobStatus.DONE, JobStatus.ERROR, JobStatus.CANCELLED)


@dataclass(frozen=True)
class JobResult:
    """What a finished job computed, plus its service-side accounting."""

    job_id: str
    tenant: str
    key: str
    #: True when the job's circuit family was already warm in the session
    #: pool (the job forked an existing base session instead of building one)
    pool_hit: bool
    shots: int
    #: measurement histogram (``{bitstring: count}``) when ``shots > 0``
    counts: Optional[Dict[str, int]]
    #: ``<psi|H|psi>`` when an observable was requested
    expectation: Optional[float]
    #: the final state vector when ``return_state=True`` was requested
    statevector: Optional[Any]
    #: wall-clock seconds spent executing (excludes queue wait)
    seconds: float
    #: wall-clock seconds spent waiting in the admission queue
    queue_seconds: float


class Job:
    """An asynchronously executing backend request.

    Created by :meth:`repro.service.Backend.run` (which also submits it);
    hold the object and call :meth:`status`, :meth:`result` or
    :meth:`cancel` from any thread.
    """

    def __init__(self, backend, job_id: str, *, tenant: str) -> None:
        self._backend = backend
        self.job_id = job_id
        self.tenant = tenant
        self._status = JobStatus.INITIALIZING
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._result: Optional[JobResult] = None
        self._exception: Optional[BaseException] = None
        #: perf_counter timestamp of successful admission (queue-wait metric)
        self.submitted_at: Optional[float] = None

    # -- lifecycle ----------------------------------------------------------

    def submit(self) -> "Job":
        """Enqueue this job on its backend (QUEUED).

        Called by ``Backend.run`` -- calling it twice raises
        :class:`InvalidJobTransition`.  Admission control runs here:
        :class:`~repro.service.errors.QueueFullError` /
        :class:`~repro.service.errors.BackpressureError` propagate and the
        job stays unsubmitted.
        """
        with self._lock:
            if self._status is not JobStatus.INITIALIZING:
                raise InvalidJobTransition(
                    f"job {self.job_id} already submitted (status {self._status.value})"
                )
            self._status = JobStatus.QUEUED
        try:
            self._backend._admit(self)
        except BaseException:
            with self._lock:
                if self._status is JobStatus.QUEUED:
                    self._status = JobStatus.INITIALIZING
            raise
        return self

    def status(self) -> JobStatus:
        return self._status

    def done(self) -> bool:
        return self._status.terminal

    def running(self) -> bool:
        return self._status is JobStatus.RUNNING

    def cancelled(self) -> bool:
        return self._status is JobStatus.CANCELLED

    def cancel(self) -> bool:
        """Cancel the job if it has not started running.

        Returns ``True`` when the job moved to CANCELLED; ``False`` when it
        was already running or finished (a running simulation is never
        interrupted mid-update -- partial COW state must not leak into the
        warm pool).
        """
        with self._lock:
            if self._status in (JobStatus.INITIALIZING, JobStatus.QUEUED):
                self._status = JobStatus.CANCELLED
                self._done.set()
                self._backend._job_cancelled(self)
                return True
            return False

    def result(self, timeout: Optional[float] = None) -> JobResult:
        """Block until the job finishes and return its :class:`JobResult`.

        Raises :class:`JobTimeoutError` when ``timeout`` (seconds) expires,
        :class:`JobCancelledError` for cancelled jobs, and re-raises the
        job's own exception for ERROR jobs.
        """
        if not self._done.wait(timeout):
            raise JobTimeoutError(
                f"job {self.job_id} not finished after {timeout}s "
                f"(status {self._status.value})"
            )
        if self._status is JobStatus.CANCELLED:
            raise JobCancelledError(f"job {self.job_id} was cancelled")
        if self._exception is not None:
            raise self._exception
        assert self._result is not None
        return self._result

    # -- backend-side transitions (not public API) --------------------------

    def _start(self) -> bool:
        """QUEUED -> RUNNING; False when the job was cancelled in the queue."""
        with self._lock:
            if self._status is not JobStatus.QUEUED:
                return False
            self._status = JobStatus.RUNNING
            return True

    def _finish(self, result: JobResult) -> None:
        with self._lock:
            self._result = result
            self._status = JobStatus.DONE
        self._done.set()

    def _fail(self, exc: BaseException) -> None:
        with self._lock:
            self._exception = exc
            self._status = JobStatus.ERROR
        self._done.set()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Job({self.job_id}, tenant={self.tenant}, {self._status.value})"
