"""Declarative backend configuration, following the provider exemplars.

A backend advertises what it can do *before* any job runs: the basis gate
set, a ``max_shots`` bound, and -- as in the qiskit statevector providers
-- an ``n_qubits`` cap **derived from the machine's available memory** (a
state vector of ``n`` qubits costs ``16 * 2**n`` bytes of complex128
amplitudes; qTask's copy-on-write storage usually materialises much less,
but the cap must hold even for a worst-case dense circuit).

:data:`DEFAULT_CONFIGURATION` is the plain-dict declarative form;
:class:`BackendConfiguration` is the typed object the
:class:`~repro.service.backend.Backend` actually consults, constructible
from any partial dict (unknown keys rejected loudly, missing keys
defaulted).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields
from math import log2
from typing import Dict, Optional, Tuple

from ..core.gates import GATE_REGISTRY

__all__ = [
    "available_memory_bytes",
    "memory_qubit_cap",
    "BackendConfiguration",
    "DEFAULT_CONFIGURATION",
]

#: bytes per complex128 state-vector amplitude
_AMPLITUDE_BYTES = 16

#: conservative fallback when no memory introspection works (1 GiB)
_FALLBACK_MEMORY_BYTES = 1 << 30


def available_memory_bytes() -> int:
    """Best-effort available physical memory, in bytes.

    Prefers ``MemAvailable`` from ``/proc/meminfo`` (what the kernel says a
    new allocation can actually get), falls back to total physical memory
    via ``sysconf``, then to a conservative 1 GiB constant -- the cap must
    never crash a backend into existence.
    """
    try:
        with open("/proc/meminfo", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("MemAvailable:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        pages = os.sysconf("SC_PHYS_PAGES")
        page_size = os.sysconf("SC_PAGE_SIZE")
        if pages > 0 and page_size > 0:
            return pages * page_size
    except (ValueError, OSError, AttributeError):  # pragma: no cover - platform
        pass
    return _FALLBACK_MEMORY_BYTES  # pragma: no cover - platform


def memory_qubit_cap(
    memory_bytes: Optional[int] = None, *, headroom: float = 0.5
) -> int:
    """Largest ``n`` such that a dense ``n``-qubit state fits in memory.

    ``headroom`` keeps a fraction of memory for the engine itself (plans,
    pooled sessions, fork fleets); with the default 0.5, half the available
    bytes budget the worst-case dense state vector.
    """
    if memory_bytes is None:
        memory_bytes = available_memory_bytes()
    usable = max(1.0, memory_bytes * headroom)
    return max(1, int(log2(usable / _AMPLITUDE_BYTES)))


#: the declarative configuration dict, exemplar-style: everything a client
#: needs to know to decide whether a circuit can run here, without running it
DEFAULT_CONFIGURATION: Dict[str, object] = {
    "backend_name": "qtask_statevector",
    "backend_version": "1.0.0",
    "description": (
        "Incremental qTask state-vector simulator behind an async "
        "multi-tenant Backend/Job facade with a warm COW session pool"
    ),
    "simulator": True,
    "local": True,
    "conditional": True,  # measure / reset / c_if are first-class
    "memory": True,  # per-shot classical bits are returned (counts)
    "n_qubits": memory_qubit_cap(),
    "max_shots": 65536,
    "basis_gates": tuple(sorted(GATE_REGISTRY)),
    # service knobs (admission control, scheduling, session pool)
    "max_queued_jobs": 64,
    "max_concurrent_jobs": 4,
    "max_pool_sessions": 8,
    "pool_memory_budget_bytes": None,  # None = unbounded
    "p95_reject_seconds": None,  # None = p95-based shedding off
    "degraded_grace_jobs": 4,
}


@dataclass(frozen=True)
class BackendConfiguration:
    """Typed view of :data:`DEFAULT_CONFIGURATION`; see that dict's comments."""

    backend_name: str = "qtask_statevector"
    backend_version: str = "1.0.0"
    description: str = str(DEFAULT_CONFIGURATION["description"])
    simulator: bool = True
    local: bool = True
    conditional: bool = True
    memory: bool = True
    n_qubits: int = int(DEFAULT_CONFIGURATION["n_qubits"])
    max_shots: int = 65536
    basis_gates: Tuple[str, ...] = field(
        default_factory=lambda: tuple(sorted(GATE_REGISTRY))
    )
    max_queued_jobs: int = 64
    max_concurrent_jobs: int = 4
    max_pool_sessions: int = 8
    pool_memory_budget_bytes: Optional[int] = None
    p95_reject_seconds: Optional[float] = None
    degraded_grace_jobs: int = 4

    def __post_init__(self) -> None:
        if self.n_qubits < 1:
            raise ValueError(f"n_qubits must be positive, got {self.n_qubits}")
        if self.max_shots < 1:
            raise ValueError(f"max_shots must be positive, got {self.max_shots}")
        if self.max_queued_jobs < 1:
            raise ValueError(
                f"max_queued_jobs must be positive, got {self.max_queued_jobs}"
            )
        if self.max_concurrent_jobs < 1:
            raise ValueError(
                f"max_concurrent_jobs must be positive, "
                f"got {self.max_concurrent_jobs}"
            )
        if self.max_pool_sessions < 1:
            raise ValueError(
                f"max_pool_sessions must be positive, got {self.max_pool_sessions}"
            )
        object.__setattr__(self, "basis_gates", tuple(g.lower() for g in self.basis_gates))

    @classmethod
    def from_dict(cls, overrides: Optional[Dict[str, object]] = None) -> "BackendConfiguration":
        """Build from a partial dict; unknown keys raise instead of vanishing."""
        overrides = dict(overrides or {})
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(overrides) - known)
        if unknown:
            raise ValueError(
                f"unknown configuration key(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        return cls(**overrides)

    @classmethod
    def coerce(cls, configuration) -> "BackendConfiguration":
        """Accept ``None`` (defaults), a dict, or an existing configuration."""
        if configuration is None:
            return cls()
        if isinstance(configuration, cls):
            return configuration
        if isinstance(configuration, dict):
            return cls.from_dict(configuration)
        raise TypeError(
            f"configuration must be None, a dict or a BackendConfiguration, "
            f"got {type(configuration).__name__}"
        )

    def as_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}
