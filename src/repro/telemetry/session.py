"""The per-session telemetry bundle and its thread-local activation.

:class:`Telemetry` groups the three pillars -- metrics registry, tracer,
event log -- under one session id.  Each simulator session (including
every COW fork) owns one bundle; forks carry ``parent_session_id`` so
fleet aggregation can reassemble the family tree instead of silently
losing fork stats.

Deep modules (``core/faults``, ``core/kernels``) must not take a
telemetry object through every signature, and kernel backends are shared
across forked sessions -- so discovery is ambient: the simulator
*activates* its bundle on the current thread around an update
(:func:`activate`/:func:`deactivate`), the executor re-activates it
inside worker threads from the task's trace context, and anything
downstream reaches it via :func:`current` or fires events through
:func:`emit_event` (a no-op when nothing is active, which keeps the
fault-injection hot path allocation-free for untraced sessions).
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, Optional

from .events import EventLog
from .metrics import MetricsRegistry, next_session_id
from .tracing import Tracer

__all__ = [
    "Telemetry",
    "current",
    "activate",
    "deactivate",
    "emit_event",
]

_tls = threading.local()


class Telemetry:
    """One session's metrics + tracer + event log."""

    def __init__(
        self,
        *,
        tracing: Optional[bool] = None,
        parent: Optional["Telemetry"] = None,
        span_capacity: int = 4096,
        event_capacity: int = 512,
    ) -> None:
        if tracing is None:
            tracing = os.environ.get("QTASK_TRACING", "").lower() in (
                "1", "true", "yes", "on",
            )
        self.session_id = next_session_id()
        self.parent_session_id = parent.session_id if parent is not None else None
        self.metrics = MetricsRegistry(
            session_id=self.session_id,
            parent_session_id=self.parent_session_id,
        )
        self.tracer = Tracer(enabled=bool(tracing), capacity=span_capacity)
        self.events = EventLog(capacity=event_capacity)

    def report(self) -> Dict[str, Any]:
        """One dict with everything: ids, metrics digest, span/event health."""
        snapshot = self.metrics.as_dict()
        histograms = {}
        for name, summary in snapshot["histograms"].items():
            metric = self.metrics.get(name)
            entry = dict(summary)
            if metric is not None and metric.unit:
                entry["unit"] = metric.unit
            histograms[name] = entry
        return {
            "session_id": self.session_id,
            "parent_session_id": self.parent_session_id,
            "counters": snapshot["counters"],
            "gauges": snapshot["gauges"],
            "histograms": histograms,
            "spans": {
                "enabled": self.tracer.enabled,
                "recorded": len(self.tracer.spans()),
                "dropped": self.tracer.dropped,
            },
            "events": {
                "recorded": len(self.events),
                "dropped": self.events.dropped,
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Telemetry(session={self.session_id}, "
            f"parent={self.parent_session_id}, "
            f"tracing={self.tracer.enabled})"
        )


def current() -> Optional[Telemetry]:
    """The telemetry bundle active on this thread, if any."""
    return getattr(_tls, "telemetry", None)


def activate(telemetry: Optional[Telemetry]) -> Optional[Telemetry]:
    """Make ``telemetry`` current on this thread; returns the previous one.

    Restore with ``deactivate(previous)`` in a ``finally``.
    """
    prev = getattr(_tls, "telemetry", None)
    _tls.telemetry = telemetry
    return prev


def deactivate(prev: Optional[Telemetry]) -> None:
    _tls.telemetry = prev


def emit_event(kind: str, **fields: Any) -> None:
    """Emit into the active session's event log; no-op when none is active."""
    telemetry = getattr(_tls, "telemetry", None)
    if telemetry is not None:
        telemetry.events.emit(kind, **fields)
