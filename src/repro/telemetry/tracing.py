"""Structured tracing: nested spans with a chrome-trace/Perfetto exporter.

A :class:`Tracer` hands out :class:`Span` context managers.  Parentage is
implicit through a thread-local "current span" -- opening a span inside
another (on the same thread) nests it; crossing a thread boundary is
explicit via :meth:`Tracer.attach`/:meth:`Tracer.detach` (the executor
threads a ``(telemetry, parent_span_id)`` tuple on task closures and
attaches it inside ``_guarded``).  Crossing the process-pool fork boundary
is done by value: workers time their chunk with ``perf_counter`` (which is
``CLOCK_MONOTONIC`` on Linux, so fork children share the parent's
timebase), ship ``(name, start, duration, pid, attrs)`` records back with
their results, and the parent re-homes them with :meth:`Tracer.adopt`.

The disabled path is a single attribute check returning a module-level
null span -- no allocation, no branches downstream.  Enabled spans land in
a bounded ring buffer (``collections.deque(maxlen=...)``) so always-on
tracing cannot grow without bound; overwritten spans are counted in
``dropped``.

:meth:`Tracer.export_chrome_trace` emits the chrome trace-event JSON
(``ph:"X"`` complete events, microsecond timestamps) that
``chrome://tracing`` and https://ui.perfetto.dev load directly.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from collections import deque
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Span", "SpanRecord", "Tracer", "NULL_SPAN"]


class SpanRecord:
    """One finished span: immutable-by-convention timing record."""

    __slots__ = (
        "name", "span_id", "parent_id", "start", "duration",
        "pid", "thread_id", "thread_name", "attrs",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        start: float,
        duration: float,
        pid: int,
        thread_id: int,
        thread_name: str,
        attrs: Optional[Dict[str, Any]],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.duration = duration
        self.pid = pid
        self.thread_id = thread_id
        self.thread_name = thread_name
        self.attrs = attrs

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "pid": self.pid,
            "thread_id": self.thread_id,
            "thread_name": self.thread_name,
            "attrs": dict(self.attrs) if self.attrs else {},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpanRecord({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, dur={self.duration * 1e3:.3f}ms)"
        )


class _NullSpan:
    """The span returned when tracing is off: every operation is a no-op.

    A single module-level instance is shared, so the disabled hot path
    allocates nothing.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, key: str, value: Any) -> None:
        return None


NULL_SPAN = _NullSpan()


class Span:
    """A live span; use as a context manager.

    ``__enter__`` captures the thread-local parent and installs itself as
    the current span; ``__exit__`` restores the parent and appends the
    finished :class:`SpanRecord` to the tracer's ring buffer.  Attributes
    set via :meth:`set` are carried onto the record.
    """

    __slots__ = ("_tracer", "name", "span_id", "_parent_id", "_start", "attrs")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: Optional[Dict[str, Any]] = None) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = next(tracer._ids)
        self._parent_id: Optional[int] = None
        self._start = 0.0
        self.attrs = attrs

    def set(self, key: str, value: Any) -> None:
        if self.attrs is None:
            self.attrs = {}
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        tls = self._tracer._tls
        self._parent_id = getattr(tls, "span", None)
        tls.span = self.span_id
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = perf_counter() - self._start
        self._tracer._tls.span = self._parent_id
        if exc_type is not None:
            self.set("error", exc_type.__name__)
        thread = threading.current_thread()
        self._tracer._record(
            SpanRecord(
                self.name,
                self.span_id,
                self._parent_id,
                self._start,
                duration,
                os.getpid(),
                thread.ident or 0,
                thread.name,
                self.attrs,
            )
        )


class Tracer:
    """Span factory + bounded span store for one telemetry session."""

    def __init__(self, *, enabled: bool = False, capacity: int = 4096) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self.dropped = 0
        self._ids = itertools.count(1)
        self._tls = threading.local()
        self._spans: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    # -- span lifecycle ------------------------------------------------------

    def span(self, name: str, attrs: Optional[Dict[str, Any]] = None):
        """A context-managed span, or the shared null span when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._spans) == self.capacity:
                self.dropped += 1
            self._spans.append(record)

    # -- cross-thread propagation -------------------------------------------

    def current_span_id(self) -> Optional[int]:
        return getattr(self._tls, "span", None)

    def attach(self, span_id: Optional[int]) -> Optional[int]:
        """Install ``span_id`` as this thread's current span.

        Returns the previous current span id; pass it to :meth:`detach`
        to restore (use in a ``finally``).
        """
        prev = getattr(self._tls, "span", None)
        self._tls.span = span_id
        return prev

    def detach(self, prev: Optional[int]) -> None:
        self._tls.span = prev

    # -- cross-process adoption ----------------------------------------------

    def adopt(
        self,
        name: str,
        start: float,
        duration: float,
        *,
        parent_id: Optional[int],
        pid: int,
        thread_id: int = 0,
        thread_name: str = "pool-worker",
        attrs: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Record a span measured elsewhere (e.g. in a pool worker).

        ``start`` must be a ``perf_counter`` reading from the same machine
        (fork children share the parent's monotonic timebase on Linux).
        Returns the assigned span id.
        """
        span_id = next(self._ids)
        self._record(
            SpanRecord(name, span_id, parent_id, start, duration,
                       pid, thread_id, thread_name, attrs)
        )
        return span_id

    # -- inspection / export -------------------------------------------------

    def spans(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    def export_chrome_trace(self, path: Optional[str] = None):
        """Chrome trace-event JSON for chrome://tracing / Perfetto.

        Returns the trace dict; when ``path`` is given, also writes it
        there as JSON.  Span start times are rebased so the earliest span
        starts at t=0 (chrome's ``ts`` is microseconds).
        """
        records = self.spans()
        base = min((r.start for r in records), default=0.0)
        events: List[Dict[str, Any]] = []
        seen_threads: Dict[Tuple[int, int], str] = {}
        seen_pids: Dict[int, bool] = {}
        for r in records:
            if r.pid not in seen_pids:
                seen_pids[r.pid] = True
                events.append({
                    "name": "process_name", "ph": "M", "pid": r.pid, "tid": 0,
                    "args": {"name": f"qtask[{r.pid}]"},
                })
            key = (r.pid, r.thread_id)
            if key not in seen_threads:
                seen_threads[key] = r.thread_name
                events.append({
                    "name": "thread_name", "ph": "M",
                    "pid": r.pid, "tid": r.thread_id,
                    "args": {"name": r.thread_name},
                })
            args: Dict[str, Any] = {"span_id": r.span_id}
            if r.parent_id is not None:
                args["parent_id"] = r.parent_id
            if r.attrs:
                args.update(r.attrs)
            events.append({
                "name": r.name,
                "cat": "qtask",
                "ph": "X",
                "ts": (r.start - base) * 1e6,
                "dur": r.duration * 1e6,
                "pid": r.pid,
                "tid": r.thread_id,
                "args": args,
            })
        trace = {"traceEvents": events, "displayTimeUnit": "ms"}
        if path is not None:
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(trace, fh)
        return trace

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tracer(enabled={self.enabled}, spans={len(self._spans)}, "
            f"dropped={self.dropped})"
        )
