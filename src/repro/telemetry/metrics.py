"""Unified metrics: named counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` per session owns every quantitative signal the
engine produces -- the plan-pipeline counters, the recovery counters, the
per-update latency histogram, the bench harness's iteration timings.  The
registry replaces the scattered ``self._x += 1`` integers the simulator
used to keep: call sites hold the :class:`Counter`/:class:`Histogram`
object directly (one attribute load + method call on the hot path, no name
lookup), while reporting surfaces (``statistics()``, ``telemetry_report()``,
the Prometheus text dump) read the registry.

Design constraints:

* **Zero dependencies** -- stdlib only, importable everywhere (including
  fork pool workers).
* **Cheap writes.** ``Counter.inc`` is an unlocked integer add (GIL-atomic
  enough for reporting; the simulator's counters are written under the
  executor's task granularity, not per amplitude).  ``Histogram.observe``
  is a bisect into a fixed bucket table.
* **Mergeable.** Forked sessions get their *own* registry tagged with the
  parent's session id; :meth:`MetricsRegistry.merge` folds a fleet's
  registries into one, which is how ``SweepRunner`` aggregates fleet-wide
  stats instead of silently dropping them when forks close.
"""

from __future__ import annotations

import itertools
import threading
from bisect import bisect_left
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "next_session_id",
]

#: log-spaced latency buckets (seconds): 1 µs .. 30 s, the range one
#: update / plan build / kernel chunk plausibly spans.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = tuple(
    base * scale
    for scale in (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)
    for base in (1.0, 2.0, 5.0)
)[:-1] + (30.0,)

_session_ids = itertools.count(1)


def next_session_id() -> int:
    """Process-unique monotonically increasing session id."""
    return next(_session_ids)


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "unit", "help", "value")

    kind = "counter"

    def __init__(self, name: str, *, unit: str = "", help: str = "") -> None:
        self.name = name
        self.unit = unit
        self.help = help
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A named point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "unit", "help", "value")

    kind = "gauge"

    def __init__(self, name: str, *, unit: str = "", help: str = "") -> None:
        self.name = name
        self.unit = unit
        self.help = help
        self.value = 0.0

    def set(self, value) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.name}={self.value})"


class _HistogramTimer:
    """Context manager feeding one wall-clock interval into a histogram."""

    __slots__ = ("_hist", "_t0")

    def __init__(self, hist: "Histogram") -> None:
        self._hist = hist
        self._t0 = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._hist.observe(perf_counter() - self._t0)


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max and p50/p95 estimates.

    ``bounds`` are the inclusive upper bucket edges; one implicit overflow
    bucket catches everything beyond the last edge.  Percentiles are
    estimated by linear interpolation inside the bucket where the requested
    rank falls -- coarse, but stable, allocation-free and mergeable, which
    is what an always-on runtime histogram needs.  ``keep_samples=True``
    additionally retains every raw observation (the bench harness uses this
    for exact per-iteration series); runtime histograms leave it off.
    """

    __slots__ = (
        "name", "unit", "help", "bounds", "bucket_counts",
        "count", "total", "min", "max", "samples",
    )

    kind = "histogram"

    def __init__(
        self,
        name: str,
        *,
        unit: str = "",
        help: str = "",
        bounds: Optional[Iterable[float]] = None,
        keep_samples: bool = False,
    ) -> None:
        self.name = name
        self.unit = unit
        self.help = help
        self.bounds: Tuple[float, ...] = tuple(
            DEFAULT_TIME_BUCKETS if bounds is None else sorted(bounds)
        )
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.samples: Optional[List[float]] = [] if keep_samples else None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self.samples is not None:
            self.samples.append(value)

    def time(self) -> _HistogramTimer:
        """``with hist.time(): ...`` -- observe the block's wall time."""
        return _HistogramTimer(self)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Bucket-interpolated ``q``-quantile (``q`` in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.bucket_counts):
            if n == 0:
                continue
            if seen + n >= rank:
                lo = 0.0 if i == 0 else self.bounds[i - 1]
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                frac = (rank - seen) / n
                # clamp the bucket estimate into the observed range so
                # min <= pXX <= max always holds
                return min(max(lo + (hi - lo) * frac, self.min), self.max)
            seen += n
        return self.max  # pragma: no cover - unreachable (counts add up)

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histogram {other.name!r}: bucket bounds differ"
            )
        for i, n in enumerate(other.bucket_counts):
            self.bucket_counts[i] += n
        self.count += other.count
        self.total += other.total
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        if self.samples is not None and other.samples is not None:
            self.samples.extend(other.samples)

    def summary(self) -> Dict[str, float]:
        """The report-facing digest (count/sum/min/mean/max/p50/p95)."""
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "mean": 0.0,
                    "max": 0.0, "p50": 0.0, "p95": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "mean": self.mean,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram({self.name}, count={self.count})"


def _sanitize(name: str) -> str:
    """Dotted metric name -> Prometheus-legal identifier."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    ident = "".join(out)
    if ident and ident[0].isdigit():  # pragma: no cover - defensive
        ident = "_" + ident
    return ident


class MetricsRegistry:
    """Get-or-create registry of named metrics, tagged with a session id."""

    def __init__(
        self,
        *,
        session_id: Optional[int] = None,
        parent_session_id: Optional[int] = None,
    ) -> None:
        self.session_id = next_session_id() if session_id is None else session_id
        self.parent_session_id = parent_session_id
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    # -- get-or-create accessors -------------------------------------------

    def _get(self, cls, name: str, kwargs):
        metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, requested {cls.__name__}"
                )
            return metric
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, **kwargs)
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, requested {cls.__name__}"
                )
            return metric

    def counter(self, name: str, *, unit: str = "", help: str = "") -> Counter:
        return self._get(Counter, name, {"unit": unit, "help": help})

    def gauge(self, name: str, *, unit: str = "", help: str = "") -> Gauge:
        return self._get(Gauge, name, {"unit": unit, "help": help})

    def histogram(
        self,
        name: str,
        *,
        unit: str = "",
        help: str = "",
        bounds: Optional[Iterable[float]] = None,
        keep_samples: bool = False,
    ) -> Histogram:
        return self._get(
            Histogram,
            name,
            {"unit": unit, "help": help, "bounds": bounds,
             "keep_samples": keep_samples},
        )

    def get(self, name: str):
        """The registered metric named ``name``, or ``None``."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    # -- reporting ----------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """``{"counters": {...}, "gauges": {...}, "histograms": {...}}``."""
        counters: Dict[str, int] = {}
        gauges: Dict[str, object] = {}
        histograms: Dict[str, Dict[str, float]] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = metric.summary()
        return {
            "session_id": self.session_id,
            "parent_session_id": self.parent_session_id,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def prometheus_text(self, prefix: str = "qtask") -> str:
        """Prometheus text-exposition dump of every registered metric."""
        lines: List[str] = []
        labels = f'{{session="{self.session_id}"}}'
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            ident = f"{prefix}_{_sanitize(name)}"
            if metric.unit:
                ident = f"{ident}_{_sanitize(metric.unit)}"
            if metric.help:
                lines.append(f"# HELP {ident} {metric.help}")
            lines.append(f"# TYPE {ident} {metric.kind}")
            if isinstance(metric, (Counter, Gauge)):
                lines.append(f"{ident}{labels} {metric.value}")
                continue
            cumulative = 0
            for bound, n in zip(metric.bounds, metric.bucket_counts):
                cumulative += n
                lines.append(
                    f'{ident}_bucket{{session="{self.session_id}",'
                    f'le="{bound:g}"}} {cumulative}'
                )
            lines.append(
                f'{ident}_bucket{{session="{self.session_id}",le="+Inf"}} '
                f"{metric.count}"
            )
            lines.append(f"{ident}_sum{labels} {metric.total}")
            lines.append(f"{ident}_count{labels} {metric.count}")
        return "\n".join(lines) + "\n"

    # -- fleet aggregation ---------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other``'s metrics into this registry (in place).

        Counters and histograms accumulate; gauges take the other's value
        only where this registry has none (a gauge is a point-in-time
        reading -- summing two sessions' gauge values is meaningless).
        Returns ``self`` for chaining.
        """
        for name, metric in other._metrics.items():
            if isinstance(metric, Counter):
                self.counter(name, unit=metric.unit, help=metric.help).inc(
                    metric.value
                )
            elif isinstance(metric, Gauge):
                if name not in self._metrics:
                    self.gauge(name, unit=metric.unit, help=metric.help).set(
                        metric.value
                    )
            else:
                mine = self.histogram(
                    name,
                    unit=metric.unit,
                    help=metric.help,
                    bounds=metric.bounds,
                    keep_samples=metric.samples is not None,
                )
                mine.merge(metric)
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry(session={self.session_id}, "
            f"metrics={len(self._metrics)})"
        )
