"""Recovery event log: a bounded, timestamped record of discrete events.

Spans answer "where did the time go"; the event log answers "what did
recovery *do*" -- fault injected at which site, which run retried, which
chunk fell back to the legacy path, when the breaker demoted the backend,
which pool worker was respawned, which trajectory rolled back, which
checkpoint was saved/restored.  Events are tiny (kind + seq + two clocks +
a small field dict), land in a bounded deque, and are queryable by kind
and by sequence number so ``explain_last_update()`` can render "events
since the last update started" without scanning history.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

__all__ = ["TelemetryEvent", "EventLog"]


class TelemetryEvent:
    """One discrete event.

    ``time`` is ``perf_counter`` (correlates with span timings);
    ``wall_time`` is ``time.time`` (correlates with the outside world).
    """

    __slots__ = ("seq", "kind", "time", "wall_time", "fields")

    def __init__(self, seq: int, kind: str, fields: Dict[str, Any]) -> None:
        self.seq = seq
        self.kind = kind
        self.time = time.perf_counter()
        self.wall_time = time.time()
        self.fields = fields

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "time": self.time,
            "wall_time": self.wall_time,
            **self.fields,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v!r}" for k, v in self.fields.items())
        return f"TelemetryEvent(#{self.seq} {self.kind} {inner})"


class EventLog:
    """Bounded, append-only event store."""

    def __init__(self, capacity: int = 512) -> None:
        self.capacity = capacity
        self.dropped = 0
        self.last_seq = 0
        self._events: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def emit(self, kind: str, **fields: Any) -> TelemetryEvent:
        with self._lock:
            self.last_seq += 1
            event = TelemetryEvent(self.last_seq, kind, fields)
            if len(self._events) == self.capacity:
                self.dropped += 1
            self._events.append(event)
            return event

    def events(
        self,
        kind: Optional[str] = None,
        since: Optional[int] = None,
    ) -> List[TelemetryEvent]:
        """Events in order, optionally filtered by kind and/or ``seq > since``."""
        with self._lock:
            out = list(self._events)
        if since is not None:
            out = [e for e in out if e.seq > since]
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        return out

    def counts_by_kind(self) -> Dict[str, int]:
        """``{kind: occurrences}`` over the retained window (insertion order).

        Dropped events are not counted -- this is a health signal over the
        recent window, not a lifetime total (the service layer's session
        pool uses it to rank warm sessions by instability).
        """
        out: Dict[str, int] = {}
        with self._lock:
            for event in self._events:
                out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EventLog(events={len(self._events)}, dropped={self.dropped})"
