"""Zero-dependency observability: tracing, metrics, recovery event log.

Three pillars, one bundle per simulator session:

* :class:`~repro.telemetry.tracing.Tracer` -- nested spans (``update`` >
  ``plan.build`` > ``run.chunk`` ...) with a bounded ring buffer and a
  chrome://tracing / Perfetto JSON exporter.  Context crosses executor
  thread boundaries via attach/detach and the process-pool fork boundary
  via shipped span records.
* :class:`~repro.telemetry.metrics.MetricsRegistry` -- named counters,
  gauges and fixed-bucket histograms (p50/p95/max) with Prometheus text
  exposition and fleet-wide ``merge``.
* :class:`~repro.telemetry.events.EventLog` -- bounded timestamped log of
  discrete recovery events (fault injected, retry, fallback, breaker
  transition, respawn, rollback, checkpoint).

See the README's "Observability" section for usage.
"""

from .events import EventLog, TelemetryEvent
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, next_session_id
from .session import Telemetry, activate, current, deactivate, emit_event
from .tracing import NULL_SPAN, Span, SpanRecord, Tracer

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "SpanRecord",
    "Telemetry",
    "TelemetryEvent",
    "Tracer",
    "activate",
    "current",
    "deactivate",
    "emit_event",
    "next_session_id",
]
