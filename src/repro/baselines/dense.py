"""Ground-truth reference simulator (full 2^n x 2^n operators).

This simulator is deliberately naive and *independent* of the optimized
kernels: every gate is embedded into a dense ``2^n x 2^n`` matrix with an
index-loop construction and multiplied into the state.  It is exponentially
expensive and only meant as the oracle for correctness tests (which is why it
refuses to run beyond a small number of qubits).

Dynamic circuits are covered too: measure/reset collapse the dense vector
with plain index masks, classically-conditioned gates consult the oracle's
own :class:`~repro.core.classical.OutcomeRecord`.  The record uses the same
``(seed, op_index)``-keyed randomness as qTask, so a seeded dense run follows
the same trajectory as a seeded incremental run; for exact (1e-10) amplitude
equivalence tests, pass ``forced_outcomes`` to replay the collapse sequence
an incremental run recorded, eliminating knife-edge draws entirely.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from ..core.circuit import Circuit
from ..core.classical import OutcomeRecord
from ..core.exceptions import CircuitError
from ..core.gates import Gate, embed_gate_matrix
from .base import BaselineSimulator

__all__ = ["DenseReferenceSimulator"]

#: Refuse to build dense operators beyond this size (64 MiB per operator).
MAX_REFERENCE_QUBITS = 12


class DenseReferenceSimulator(BaselineSimulator):
    """Oracle simulator used by the test suite."""

    name = "dense-reference"

    def __init__(
        self,
        circuit: Circuit,
        *,
        seed: Optional[int] = None,
        record: Optional[OutcomeRecord] = None,
        forced_outcomes: Optional[Mapping[int, int]] = None,
    ) -> None:
        if circuit.num_qubits > MAX_REFERENCE_QUBITS:
            raise CircuitError(
                f"DenseReferenceSimulator supports at most {MAX_REFERENCE_QUBITS} "
                f"qubits, got {circuit.num_qubits}"
            )
        if record is not None and (seed is not None or forced_outcomes):
            raise CircuitError(
                "pass either a prebuilt record or seed/forced_outcomes, not both"
            )
        # trajectory state for dynamic circuits (every update_state starts a
        # fresh pass over the ops, so replayed/forced outcomes stay valid)
        if record is None:
            record = OutcomeRecord(
                circuit.num_clbits, seed=seed, forced=forced_outcomes
            )
        super().__init__(circuit, outcome_record=record)

    def _apply_gate(self, state: np.ndarray, gate: Gate) -> np.ndarray:
        return embed_gate_matrix(gate, self.circuit.num_qubits) @ state

    def _apply_circuit(self, state: np.ndarray) -> np.ndarray:
        for net in self.circuit.nets():
            for handle in net.gates:
                state = self._apply_operation(state, handle.gate)
        return state

    def unitary(self) -> np.ndarray:
        """The full circuit unitary (useful for equivalence-checking tests)."""
        if self.circuit.has_dynamic_ops:
            raise CircuitError(
                "a dynamic circuit (measure/reset/c_if) has no circuit unitary"
            )
        n = self.circuit.num_qubits
        u = np.eye(1 << n, dtype=complex)
        for net in self.circuit.nets():
            for handle in net.gates:
                u = embed_gate_matrix(handle.gate, n) @ u
        return u
