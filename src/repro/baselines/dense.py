"""Ground-truth reference simulator (full 2^n x 2^n operators).

This simulator is deliberately naive and *independent* of the optimized
kernels: every gate is embedded into a dense ``2^n x 2^n`` matrix with an
index-loop construction and multiplied into the state.  It is exponentially
expensive and only meant as the oracle for correctness tests (which is why it
refuses to run beyond a small number of qubits).
"""

from __future__ import annotations

import numpy as np

from ..core.circuit import Circuit
from ..core.exceptions import CircuitError
from ..core.gates import embed_gate_matrix
from .base import BaselineSimulator

__all__ = ["DenseReferenceSimulator"]

#: Refuse to build dense operators beyond this size (64 MiB per operator).
MAX_REFERENCE_QUBITS = 12


class DenseReferenceSimulator(BaselineSimulator):
    """Oracle simulator used by the test suite."""

    name = "dense-reference"

    def __init__(self, circuit: Circuit) -> None:
        if circuit.num_qubits > MAX_REFERENCE_QUBITS:
            raise CircuitError(
                f"DenseReferenceSimulator supports at most {MAX_REFERENCE_QUBITS} "
                f"qubits, got {circuit.num_qubits}"
            )
        super().__init__(circuit)

    def _apply_circuit(self, state: np.ndarray) -> np.ndarray:
        n = self.circuit.num_qubits
        for net in self.circuit.nets():
            for handle in net.gates:
                state = embed_gate_matrix(handle.gate, n) @ state
        return state

    def unitary(self) -> np.ndarray:
        """The full circuit unitary (useful for equivalence-checking tests)."""
        n = self.circuit.num_qubits
        u = np.eye(1 << n, dtype=complex)
        for net in self.circuit.nets():
            for handle in net.gates:
                u = embed_gate_matrix(handle.gate, n) @ u
        return u
