"""Qiskit-like baseline: generic per-gate operator application, full re-sim.

The paper's Qiskit numbers are consistently slower than Qulacs because the
generic execution path does not exploit gate structure.  This baseline plays
the same role: every gate -- diagonal, permutation or dense -- goes through
the generic row-gather kernel over the full index space, with per-gate Python
overhead, and every ``update_state`` call replays the whole circuit.
"""

from __future__ import annotations

import numpy as np

from ..core.circuit import Circuit
from ..core.gates import Gate
from ..core.kernels import ArrayReader, apply_matvec_range
from .base import BaselineSimulator

__all__ = ["QiskitLikeSimulator"]


class QiskitLikeSimulator(BaselineSimulator):
    """Generic full re-simulation baseline (the paper's Qiskit role)."""

    name = "qiskit-like"

    def _apply_gate(self, state: np.ndarray, gate: Gate) -> np.ndarray:
        reader = ArrayReader(state)
        return apply_matvec_range(
            reader, 0, state.shape[0] - 1, gate.qubits, gate.matrix()
        )

    def _apply_circuit(self, state: np.ndarray) -> np.ndarray:
        for net in self.circuit.nets():
            for handle in net.gates:
                # dispatch through the base so dynamic circuits (measure /
                # reset / c_if from parsed QASM) run on this baseline too
                state = self._apply_operation(state, handle.gate)
        return state
