"""Baseline simulators used by the paper's evaluation.

The paper compares qTask against Qulacs and Qiskit, two optimized C++
state-vector simulators that support circuit modification but *re-simulate
the whole circuit* on every update.  Neither ships in this offline
environment, so the package provides in-repo stand-ins that preserve the
property the experiments measure (full re-simulation on every update) while
running on the same machine and runtime as qTask:

* :class:`QulacsLikeSimulator` -- an optimized numpy state-vector engine with
  specialized diagonal/permutation kernels and reshape-based dense kernels
  (the "fast full simulator" role of Qulacs);
* :class:`QiskitLikeSimulator` -- a generic per-gate operator engine without
  the specialized fast paths (the "slower, more general simulator" role the
  paper's Qiskit numbers exhibit);
* :class:`DenseReferenceSimulator` -- an intentionally naive full-matrix
  simulator used as ground truth in the test suite.

See DESIGN.md ("Substitutions") for the justification of this substitution.
"""

from .base import BaselineResult, BaselineSimulator
from .dense import DenseReferenceSimulator
from .generic import QiskitLikeSimulator
from .statevector import QulacsLikeSimulator

__all__ = [
    "BaselineResult",
    "BaselineSimulator",
    "DenseReferenceSimulator",
    "QiskitLikeSimulator",
    "QulacsLikeSimulator",
]
