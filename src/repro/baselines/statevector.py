"""Qulacs-like baseline: optimized state-vector simulation, full re-sim.

Qulacs' defining traits for the paper's experiments are (1) highly optimized
per-gate kernels and (2) no incrementality -- every simulation call replays
the whole circuit.  This baseline mirrors both: diagonal and permutation
gates use vectorised in-place index kernels, everything else uses the dense
reshape kernel, and optional multi-threading splits the index space into
chunks executed by the shared work-stealing executor.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.circuit import Circuit
from ..core.gates import DiagonalAction, Gate, MonomialAction
from ..core.kernels import (
    ArrayReader,
    apply_action_range,
    apply_gate_dense,
    extract_local,
    replace_local,
)
from ..parallel import Executor, SequentialExecutor, chunk_indices, make_executor
from .base import BaselineSimulator

__all__ = ["QulacsLikeSimulator"]

#: Below this many amplitudes threading is pure overhead.
_MIN_PARALLEL_DIM = 1 << 12


class QulacsLikeSimulator(BaselineSimulator):
    """Optimized full re-simulation baseline (the paper's Qulacs role)."""

    name = "qulacs-like"

    def __init__(
        self,
        circuit: Circuit,
        *,
        num_workers: Optional[int] = None,
        executor: Optional[Executor] = None,
        chunk_size: int = 1 << 14,
    ) -> None:
        super().__init__(circuit)
        self._owns_executor = executor is None
        self.executor = executor or make_executor(num_workers)
        self.chunk_size = int(chunk_size)

    def close(self) -> None:
        if self._owns_executor:
            self.executor.close()

    # -- gate kernels -----------------------------------------------------

    def _apply_gate(self, state: np.ndarray, gate: Gate) -> np.ndarray:
        action = gate.action()
        if isinstance(action, DiagonalAction):
            self._apply_diagonal_inplace(state, gate, action)
            return state
        if isinstance(action, MonomialAction):
            return self._apply_monomial(state, gate, action)
        return self._apply_dense(state, gate)

    def _apply_diagonal_inplace(
        self, state: np.ndarray, gate: Gate, action: DiagonalAction
    ) -> None:
        # Scale only the touched amplitudes, in place (no copies -- the
        # "in place operations" guidance of the hpc-parallel guides).
        phases = np.asarray(action.phases, dtype=np.complex128)
        touched = action.touched_locals()
        if len(touched) == len(phases):
            # every local state gets a phase: vectorise over the whole vector
            idx = np.arange(state.shape[0], dtype=np.int64)
            state *= phases[extract_local(idx, gate.qubits)]
            return
        for l in touched:
            idx = self._indices_with_local(state.shape[0], gate.qubits, l)
            state[idx] *= phases[l]

    def _apply_monomial(
        self, state: np.ndarray, gate: Gate, action: MonomialAction
    ) -> np.ndarray:
        out = np.array(state, copy=True)
        perm = action.perm
        factors = action.factors
        for l_src, l_dst in enumerate(perm):
            factor = factors[l_src]
            if l_src == l_dst and abs(factor - 1.0) < 1e-15:
                continue
            src = self._indices_with_local(state.shape[0], gate.qubits, l_src)
            dst = replace_local(src, gate.qubits, np.full_like(src, l_dst))
            out[dst] = state[src] * factor
        return out

    def _apply_dense(self, state: np.ndarray, gate: Gate) -> np.ndarray:
        n = self.circuit.num_qubits
        if (
            state.shape[0] < _MIN_PARALLEL_DIM
            or isinstance(self.executor, SequentialExecutor)
            or self.executor.num_workers <= 1
        ):
            return apply_gate_dense(state, gate, n)
        # Chunked parallel application: each chunk of output amplitudes is
        # computed independently from the (read-only) input vector.
        reader = ArrayReader(state)
        action = gate.action()
        out = np.empty_like(state)
        chunks = chunk_indices(state.shape[0], self.chunk_size)

        def work(se):
            s, e = se
            out[s:e] = apply_action_range(reader, s, e - 1, gate.qubits, action)

        self.executor.map(work, chunks)
        return out

    @staticmethod
    def _indices_with_local(dim: int, qubits: Sequence[int], local: int) -> np.ndarray:
        """All global indices whose gate-qubit bits equal ``local``."""
        free_bits = [b for b in range(dim.bit_length() - 1) if b not in qubits]
        base = np.arange(1 << len(free_bits), dtype=np.int64)
        idx = np.zeros_like(base)
        for j, b in enumerate(free_bits):
            idx |= ((base >> j) & 1) << b
        offset = 0
        for j, q in enumerate(qubits):
            offset |= ((local >> j) & 1) << q
        return idx | np.int64(offset)

    # -- BaselineSimulator ----------------------------------------------------

    def _apply_circuit(self, state: np.ndarray) -> np.ndarray:
        for net in self.circuit.nets():
            for handle in net.gates:
                # dispatch through the base so dynamic circuits (measure /
                # reset / c_if from parsed QASM) run on this baseline too
                state = self._apply_operation(state, handle.gate)
        return state
