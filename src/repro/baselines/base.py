"""Common interface for the full-re-simulation baseline simulators."""

from __future__ import annotations

import math
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..core.circuit import Circuit
from ..core.classical import OutcomeRecord
from ..core.exceptions import CircuitError
from ..core.gates import Gate, extract_local
from ..core.ops import CGate, MeasureOp, ResetOp
from ..observables.engine import dense_expectation, statevector_counts

__all__ = ["BaselineResult", "BaselineSimulator"]


@dataclass
class BaselineResult:
    """What one baseline ``update_state`` call did (always a full re-sim)."""

    gates_applied: int = 0
    elapsed_seconds: float = 0.0
    was_incremental: bool = False  # baselines never update incrementally


class BaselineSimulator(ABC):
    """A simulator that re-simulates the entire circuit on every update.

    Baselines share the circuit-modifier workflow with qTask (the circuit
    object *is* shared), but ``update_state`` always starts from |0...0> and
    re-applies every gate -- which is exactly how the paper drives Qulacs and
    Qiskit in its incremental experiments.
    """

    name: str = "baseline"

    def __init__(
        self, circuit: Circuit, *, outcome_record: Optional[OutcomeRecord] = None
    ) -> None:
        self.circuit = circuit
        self.dim = 1 << circuit.num_qubits
        #: per-trajectory classical state for dynamic circuits (measure /
        #: reset / c_if); entropy-seeded unless the subclass passes one in
        self.outcomes = outcome_record or OutcomeRecord(circuit.num_clbits)
        self._state = self._fresh_state()
        self.last_update = BaselineResult()
        self._num_updates = 0

    def _fresh_state(self) -> np.ndarray:
        psi = np.zeros(self.dim, dtype=np.complex128)
        psi[0] = 1.0
        return psi

    @abstractmethod
    def _apply_circuit(self, state: np.ndarray) -> np.ndarray:
        """Apply every gate of the circuit (net order) to ``state``."""

    def _apply_gate(self, state: np.ndarray, gate: Gate) -> np.ndarray:
        """Subclass unitary kernel (required to use :meth:`_apply_operation`)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement a unitary kernel"
        )

    # -- dynamic operations (shared across every baseline) -------------------

    def _apply_operation(self, state: np.ndarray, op) -> np.ndarray:
        """Apply one circuit operation: unitary, conditioned, or collapse.

        Baselines dispatch through this so parsed circuits carrying dynamic
        operations run on every baseline; the unitary payload still goes
        through the subclass's own kernel (:meth:`_apply_gate`).
        """
        if isinstance(op, Gate):
            return self._apply_gate(state, op)
        if isinstance(op, CGate):
            if self.outcomes.value_of(op.condition_bits) == op.condition_value:
                return self._apply_gate(state, op.gate)
            return state
        if isinstance(op, (MeasureOp, ResetOp)):
            return self._collapse(op, state)
        raise CircuitError(f"unknown operation {op!r}")

    def _collapse(self, op, state: np.ndarray) -> np.ndarray:
        """Dense projective collapse (measure) / reset of one qubit."""
        q = op.qubit
        idx = np.arange(state.shape[0], dtype=np.int64)
        bits = (idx >> q) & 1
        probs = (state.conj() * state).real
        p1 = float(probs[bits == 1].sum())
        p0 = float(probs[bits == 0].sum())
        outcome = self.outcomes.choose(op.op_index, p0, p1)
        scale = 1.0 / math.sqrt(p1 if outcome else p0)
        if isinstance(op, MeasureOp):
            out = np.where(bits == outcome, state * scale, 0.0 + 0.0j)
            self.outcomes.set_bit(op.clbit, outcome)
            return out
        out = np.zeros_like(state)
        keep = bits == 0
        out[keep] = state[idx[keep] | (outcome << q)] * scale
        return out

    def update_state(self) -> BaselineResult:
        start = time.perf_counter()
        state = self._fresh_state()
        self.outcomes.begin_pass()  # each full pass is a fresh trajectory
        state = self._apply_circuit(state)
        self._state = state
        result = BaselineResult(
            gates_applied=self.circuit.num_gates,
            elapsed_seconds=time.perf_counter() - start,
            was_incremental=False,
        )
        self.last_update = result
        self._num_updates += 1
        return result

    # -- queries ------------------------------------------------------------

    def state(self) -> np.ndarray:
        return np.array(self._state, copy=True)

    def amplitude(self, basis_state: int) -> complex:
        return complex(self._state[basis_state])

    def probabilities(self) -> np.ndarray:
        return (self._state.conj() * self._state).real

    def norm(self) -> float:
        return float(np.linalg.norm(self._state))

    # -- observables & measurement (dense; A/B-comparable with qTask) --------

    def expectation(self, observable) -> float:
        """``<psi|H|psi>`` of a Hermitian Pauli observable (dense path)."""
        return dense_expectation(self._state, observable)

    def sample(self, shots: int, *, seed: Optional[int] = None) -> np.ndarray:
        """Draw ``shots`` basis-state samples from ``|psi|^2``."""
        probs = self.probabilities()
        probs = probs / probs.sum()
        rng = np.random.default_rng(seed)
        return rng.choice(self.dim, size=shots, p=probs)

    def counts(self, shots: int, *, seed: Optional[int] = None) -> Dict[str, int]:
        """Measurement histogram ``{bitstring: count}`` over ``shots`` draws."""
        return statevector_counts(self._state, shots, seed=seed)

    def marginal_probabilities(self, qubits: Sequence[int]) -> np.ndarray:
        """Outcome distribution of measuring ``qubits`` (qubits[0] = bit 0)."""
        qs = tuple(int(q) for q in qubits)
        probs = self.probabilities()
        local = extract_local(np.arange(self.dim, dtype=np.int64), qs)
        return np.bincount(local, weights=probs, minlength=1 << len(qs))

    def allocated_bytes(self) -> int:
        """Logical memory footprint (a working vector plus a scratch vector)."""
        return 2 * self._state.nbytes

    def close(self) -> None:  # pragma: no cover - symmetry with QTask
        pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(qubits={self.circuit.num_qubits})"
