"""Common interface for the full-re-simulation baseline simulators."""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..core.circuit import Circuit
from ..core.gates import extract_local
from ..observables.engine import dense_expectation, statevector_counts

__all__ = ["BaselineResult", "BaselineSimulator"]


@dataclass
class BaselineResult:
    """What one baseline ``update_state`` call did (always a full re-sim)."""

    gates_applied: int = 0
    elapsed_seconds: float = 0.0
    was_incremental: bool = False  # baselines never update incrementally


class BaselineSimulator(ABC):
    """A simulator that re-simulates the entire circuit on every update.

    Baselines share the circuit-modifier workflow with qTask (the circuit
    object *is* shared), but ``update_state`` always starts from |0...0> and
    re-applies every gate -- which is exactly how the paper drives Qulacs and
    Qiskit in its incremental experiments.
    """

    name: str = "baseline"

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self.dim = 1 << circuit.num_qubits
        self._state = self._fresh_state()
        self.last_update = BaselineResult()
        self._num_updates = 0

    def _fresh_state(self) -> np.ndarray:
        psi = np.zeros(self.dim, dtype=np.complex128)
        psi[0] = 1.0
        return psi

    @abstractmethod
    def _apply_circuit(self, state: np.ndarray) -> np.ndarray:
        """Apply every gate of the circuit (net order) to ``state``."""

    def update_state(self) -> BaselineResult:
        start = time.perf_counter()
        state = self._fresh_state()
        state = self._apply_circuit(state)
        self._state = state
        result = BaselineResult(
            gates_applied=self.circuit.num_gates,
            elapsed_seconds=time.perf_counter() - start,
            was_incremental=False,
        )
        self.last_update = result
        self._num_updates += 1
        return result

    # -- queries ------------------------------------------------------------

    def state(self) -> np.ndarray:
        return np.array(self._state, copy=True)

    def amplitude(self, basis_state: int) -> complex:
        return complex(self._state[basis_state])

    def probabilities(self) -> np.ndarray:
        return (self._state.conj() * self._state).real

    def norm(self) -> float:
        return float(np.linalg.norm(self._state))

    # -- observables & measurement (dense; A/B-comparable with qTask) --------

    def expectation(self, observable) -> float:
        """``<psi|H|psi>`` of a Hermitian Pauli observable (dense path)."""
        return dense_expectation(self._state, observable)

    def sample(self, shots: int, *, seed: Optional[int] = None) -> np.ndarray:
        """Draw ``shots`` basis-state samples from ``|psi|^2``."""
        probs = self.probabilities()
        probs = probs / probs.sum()
        rng = np.random.default_rng(seed)
        return rng.choice(self.dim, size=shots, p=probs)

    def counts(self, shots: int, *, seed: Optional[int] = None) -> Dict[str, int]:
        """Measurement histogram ``{bitstring: count}`` over ``shots`` draws."""
        return statevector_counts(self._state, shots, seed=seed)

    def marginal_probabilities(self, qubits: Sequence[int]) -> np.ndarray:
        """Outcome distribution of measuring ``qubits`` (qubits[0] = bit 0)."""
        qs = tuple(int(q) for q in qubits)
        probs = self.probabilities()
        local = extract_local(np.arange(self.dim, dtype=np.int64), qs)
        return np.bincount(local, weights=probs, minlength=1 << len(qs))

    def allocated_bytes(self) -> int:
        """Logical memory footprint (a working vector plus a scratch vector)."""
        return 2 * self._state.nbytes

    def close(self) -> None:  # pragma: no cover - symmetry with QTask
        pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(qubits={self.circuit.num_qubits})"
