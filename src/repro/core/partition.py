"""Partition derivation: from gate actions to partitioned data blocks.

This module implements the task-decomposition strategy of §III.C.  For a
non-superposition gate the state-vector indices it touches are grouped into
*orbit units* (amplitude pairs for permutation gates, single amplitudes for
diagonal gates).  Units are ordered by their smallest index, chunked into
*tasks* of ``B`` units (``B`` = block size), and consecutive tasks whose
memory regions overlap are merged into a single *partition* spanning
consecutive data blocks -- reproducing the layouts of Fig. 4/5 of the paper
(e.g. CNOT ``G6`` gives one partition of four blocks with two intra-gate
tasks, ``G7``/``G8`` give two partitions of two blocks each, ``G9`` two
partitions of three blocks each).

Superposition gates fall back to the matrix--vector path: one partition per
data block, preceded by a synchronisation barrier (handled at the graph
level).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .blocks import BlockRange, num_blocks, validate_block_size
from .gates import Action, DiagonalAction, MatVecAction, MonomialAction

__all__ = [
    "PartitionSpec",
    "UnitLayout",
    "unit_layout_of",
    "derive_partitions",
    "matvec_partitions",
]

#: Guard against accidentally enumerating astronomically many orbit units.
MAX_ENUMERATED_UNITS = 1 << 26


@dataclass(frozen=True)
class PartitionSpec:
    """A partition: consecutive data blocks plus its intra-gate task count."""

    block_range: BlockRange
    num_unit_tasks: int
    num_units: int

    @property
    def num_blocks(self) -> int:
        return len(self.block_range)


@dataclass(frozen=True)
class UnitLayout:
    """Orbit-unit description of a non-superposition action.

    Each entry of ``unit_locals`` is the tuple of local indices forming one
    orbit unit *type*; instantiating it over all values of the non-gate
    ("free") qubits yields the concrete units.  ``min_local``/``max_local``
    are precomputed per type.
    """

    unit_locals: Tuple[Tuple[int, ...], ...]

    @property
    def num_types(self) -> int:
        return len(self.unit_locals)

    def min_locals(self) -> Tuple[int, ...]:
        return tuple(min(u) for u in self.unit_locals)

    def max_locals(self) -> Tuple[int, ...]:
        return tuple(max(u) for u in self.unit_locals)


def unit_layout_of(action: Action) -> UnitLayout:
    """Orbit units of a non-superposition action.

    Diagonal actions contribute single-amplitude units for every touched
    local state; monomial actions contribute one unit per permutation cycle
    plus single-amplitude units for phase-only fixed points.
    """
    if isinstance(action, DiagonalAction):
        return UnitLayout(tuple((l,) for l in action.touched_locals()))
    if isinstance(action, MonomialAction):
        units: List[Tuple[int, ...]] = []
        in_cycle = set()
        for cyc in action.orbits():
            if len(cyc) == 1:
                units.append(cyc)
            else:
                units.append(tuple(sorted(cyc)))
            in_cycle.update(cyc)
        return UnitLayout(tuple(units))
    raise TypeError(
        f"unit layout is only defined for non-superposition actions, got {type(action)!r}"
    )


def _free_values(qubit_count: int, qubits: Sequence[int]) -> np.ndarray:
    """All values of the non-gate qubits, deposited into their bit positions.

    The result is sorted ascending because free bit positions are visited in
    ascending order and the deposit map is therefore monotonic.
    """
    free_bits = [b for b in range(qubit_count) if b not in qubits]
    count = 1 << len(free_bits)
    base = np.arange(count, dtype=np.int64)
    vals = np.zeros(count, dtype=np.int64)
    for j, b in enumerate(free_bits):
        vals |= ((base >> j) & 1) << b
    return vals


def _deposit_local(local: int, qubits: Sequence[int]) -> int:
    out = 0
    for j, q in enumerate(qubits):
        out |= ((local >> j) & 1) << q
    return out


def derive_partitions(
    action: Action,
    qubits: Sequence[int],
    qubit_count: int,
    block_size: int,
) -> List[PartitionSpec]:
    """Partition layout of a gate on a ``2**qubit_count`` state vector.

    Superposition actions delegate to :func:`matvec_partitions`; identity
    actions (nothing touched) produce no partitions at all.
    """
    block_size = validate_block_size(block_size)
    dim = 1 << qubit_count
    if isinstance(action, MatVecAction):
        return matvec_partitions(qubit_count, block_size)

    layout = unit_layout_of(action)
    if layout.num_types == 0:
        return []

    free = _free_values(qubit_count, qubits)
    n_units = layout.num_types * free.shape[0]
    if n_units > MAX_ENUMERATED_UNITS:
        raise MemoryError(
            f"refusing to enumerate {n_units} orbit units "
            f"(> {MAX_ENUMERATED_UNITS}); use a larger block size or fewer qubits"
        )

    mins_parts = []
    maxs_parts = []
    for unit in layout.unit_locals:
        offsets = [_deposit_local(l, qubits) for l in unit]
        off_min, off_max = min(offsets), max(offsets)
        mins_parts.append(free | np.int64(off_min))
        maxs_parts.append(free | np.int64(off_max))
    mins = np.concatenate(mins_parts)
    maxs = np.concatenate(maxs_parts)
    order = np.argsort(mins, kind="stable")
    mins = mins[order]
    maxs = maxs[order]

    # Chunk into tasks of `block_size` orbit units.
    chunk = block_size
    starts = np.arange(0, n_units, chunk, dtype=np.int64)
    task_lo = mins[starts]
    task_hi = np.maximum.reduceat(maxs, starts)
    # Also the span can never shrink below the largest min inside the chunk.
    chunk_min_max = np.maximum.reduceat(mins, starts)
    task_hi = np.maximum(task_hi, chunk_min_max)

    # Merge consecutive tasks whose block regions overlap.
    first_blocks = task_lo // block_size
    last_blocks = task_hi // block_size
    partitions: List[PartitionSpec] = []
    cur_first = int(first_blocks[0])
    cur_last = int(last_blocks[0])
    cur_tasks = 1
    cur_units = int(min(chunk, n_units))
    for i in range(1, starts.shape[0]):
        fb, lb = int(first_blocks[i]), int(last_blocks[i])
        units_here = int(min(chunk, n_units - starts[i]))
        if fb <= cur_last:  # block regions overlap (or touch within a block)
            cur_last = max(cur_last, lb)
            cur_tasks += 1
            cur_units += units_here
        else:
            partitions.append(
                PartitionSpec(BlockRange(cur_first, cur_last), cur_tasks, cur_units)
            )
            cur_first, cur_last, cur_tasks, cur_units = fb, lb, 1, units_here
    partitions.append(
        PartitionSpec(BlockRange(cur_first, cur_last), cur_tasks, cur_units)
    )
    return partitions


def matvec_partitions(qubit_count: int, block_size: int) -> List[PartitionSpec]:
    """One single-block partition per data block (the MxV layout of Fig. 4)."""
    block_size = validate_block_size(block_size)
    dim = 1 << qubit_count
    nb = num_blocks(dim, block_size)
    per_block_units = min(block_size, dim)
    return [
        PartitionSpec(BlockRange(b, b), 1, per_block_units) for b in range(nb)
    ]
