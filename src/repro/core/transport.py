"""Storage transports: where a :class:`~repro.core.cow.BlockStore` keeps bytes.

The COW store tracks *which* blocks a stage owns (dict entries, directory
notifications, share refcounts); a :class:`StorageTransport` decides *where*
the block payloads live.  Two placements ship:

* :class:`LocalTransport` -- the handle **is** the numpy array.  Every read
  returns the stored array itself and every write binds the caller's array,
  so the in-process path keeps its zero-copy publish contract and pays no
  per-call overhead (``BlockStore`` short-circuits around the transport when
  ``is_remote`` is false; this class documents -- and unit-tests -- the
  identity semantics the short-circuit assumes).
* :class:`ShardedTransport` -- block ranges are placed contiguously across N
  forked shard processes, each holding raw ``complex128`` payloads keyed by
  ``(store id, block)``.  The wire format is the checkpoint block codec of
  ``core/snapshot`` (raw little-endian complex128 bytes + CRC32), verified on
  both sides of every hop.  ``share_from``/fork semantics survive sharding
  because a share aliases the immutable payload bytes inside the owning
  shard (per-shard refcounting falls out of CPython refcounts on the shared
  ``bytes`` objects) while the parent keeps its usual shared/owned markers.

Shard processes are module-level and shared across simulators, exactly like
the kernel process pools of ``core/kernels``: one fleet of forked sessions
reuses one set of shards, and ``atexit`` reaps them.  A SIGKILLed shard
surfaces as :class:`TransportFailure` on the next round-trip; the simulator's
recovery stack respawns the shard (or falls back to local past the store
breaker threshold) and re-executes from the initial state.

The ``store.shard`` fault site fires parent-side before every shard
round-trip.  Injected faults are retried in place (each evaluation redraws
the seeded stream); only a run of consecutive fires escalates to a
:class:`TransportFailure`, which exercises the same recovery path a real
dead shard does.
"""

from __future__ import annotations

import atexit
import itertools
import logging
import os
import threading
import zlib
from contextlib import nullcontext
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from . import faults
from ..telemetry import session as tsession

__all__ = [
    "StorageTransport",
    "LocalTransport",
    "ShardedTransport",
    "TransportFailure",
    "make_transport",
    "encode_block",
    "decode_block",
    "LOCAL_TRANSPORT",
]

logger = logging.getLogger(__name__)

_DTYPE = np.complex128

#: consecutive injected ``store.shard`` faults absorbed in place before the
#: failure escalates to the transport-recovery path
_SHARD_FAULT_RETRIES = 5

_NO_SPAN = nullcontext()


class TransportFailure(RuntimeError):
    """A storage transport lost a shard or a payload.

    Raised on dead shard connections, missing remote blocks and CRC
    mismatches.  The simulator treats it as "stored state is gone": it
    respawns dead shards (or falls back to the local transport) and
    re-executes the circuit from the initial state.
    """


# -- wire codec -------------------------------------------------------------
#
# The checkpoint block codec (core/snapshot) doubles as the shard wire
# format: raw little-endian complex128 payloads with a CRC32 per block,
# verified by the shard on receive and by the parent on fetch.


def encode_block(arr: np.ndarray) -> Tuple[bytes, int]:
    """Serialise one block to ``(payload, crc32)``."""
    raw = np.ascontiguousarray(arr, dtype=_DTYPE).tobytes()
    return raw, zlib.crc32(raw) & 0xFFFFFFFF


def decode_block(raw: bytes, crc: int, expect_len: Optional[int] = None) -> np.ndarray:
    """Deserialise one block payload, verifying its CRC.

    Returns a read-only array viewing ``raw`` (blocks are immutable on
    publish, so nothing downstream needs write access).
    """
    if zlib.crc32(raw) & 0xFFFFFFFF != int(crc):
        raise TransportFailure("block payload failed CRC verification")
    arr = np.frombuffer(raw, dtype=_DTYPE)
    if expect_len is not None and arr.shape[0] != expect_len:
        raise TransportFailure(
            f"block payload holds {arr.shape[0]} amplitudes, expected {expect_len}"
        )
    return arr


class _RemoteBlock:
    """Parent-side handle for a block whose payload lives in a shard.

    Quacks like an array for the accounting paths (``nbytes``) so
    ``allocated_bytes``/``shared_bytes`` need no transport round-trips.
    """

    __slots__ = ("nbytes",)

    def __init__(self, nbytes: int) -> None:
        self.nbytes = int(nbytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"_RemoteBlock(nbytes={self.nbytes})"


# -- interface --------------------------------------------------------------


class StorageTransport:
    """Placement policy for block payloads.

    Handles returned by :meth:`write_range` are whatever the transport wants
    the store to keep in its block dict -- the array itself for the local
    case, an opaque :class:`_RemoteBlock` for remote ones.  All methods are
    block-granular; ``store`` is the owning :class:`BlockStore` (transports
    read its ``n_blocks``/``_tid`` and, locally, its block dict).
    """

    name = "abstract"
    #: remote transports pay a serialisation cost per access; stores branch
    #: on this once and keep their direct-dict hot path when it is False
    is_remote = False

    def attach_store(self, store) -> Optional[int]:
        """Register ``store`` and return its transport id (``None`` if unused)."""
        return None

    def detach_store(self, store) -> None:
        """Forget ``store`` and free every payload it still owns."""

    def write_range(
        self, store, first_block: int, arrays: Sequence[np.ndarray]
    ) -> List[object]:
        """Place consecutive block payloads; return the handles to keep."""
        raise NotImplementedError

    def read_range(self, store, first_block: int, last_block: int) -> List[np.ndarray]:
        """Fetch the payloads of blocks ``[first_block, last_block]``."""
        raise NotImplementedError

    def seal(self, store, blocks: Sequence[int]) -> None:
        """Mark published blocks immutable (export side of ``share_from``)."""

    def share(self, src_store, dst_store, blocks: Sequence[int]) -> None:
        """Alias ``src_store``'s payloads into ``dst_store`` (zero-copy fork)."""

    def release(self, store, blocks: Sequence[int]) -> None:
        """Free the payloads of dropped blocks."""

    def bytes_owned(self, store) -> int:
        """Bytes of ``store``'s payloads not shared from another store."""
        return store.allocated_bytes() - store.shared_bytes()

    def shard_report(self) -> List[Dict[str, int]]:
        """Per-shard occupancy breakdown (empty for single-process transports)."""
        return []

    def healthy(self) -> bool:
        return True

    def close(self) -> None:
        """Release transport resources (idempotent)."""


class LocalTransport(StorageTransport):
    """In-process placement: the handle is the array, reads return it as-is."""

    name = "local"
    is_remote = False

    def write_range(
        self, store, first_block: int, arrays: Sequence[np.ndarray]
    ) -> List[object]:
        return list(arrays)

    def read_range(self, store, first_block: int, last_block: int) -> List[np.ndarray]:
        blocks = store._blocks
        return [blocks[b] for b in range(first_block, last_block + 1)]

    def seal(self, store, blocks: Sequence[int]) -> None:
        store_blocks = store._blocks
        for b in blocks:
            store_blocks[b].setflags(write=False)


#: process-wide default; stores constructed without an explicit transport
#: all share this stateless instance
LOCAL_TRANSPORT = LocalTransport()


# -- sharded backend --------------------------------------------------------


def _shard_main(conn) -> None:  # pragma: no cover - runs in fork children
    """Shard process body: a dict of CRC-checked block payloads.

    Payloads are immutable ``bytes`` keyed by ``(store tid, block)``; a
    ``share`` aliases the bytes object under the destination key, so the
    per-shard refcount of a shared payload is CPython's refcount on the
    bytes itself and the ``shared`` flag only drives accounting.
    """
    payloads: Dict[Tuple[int, int], Tuple[bytes, int]] = {}
    shared: Dict[Tuple[int, int], bool] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        op = msg[0]
        try:
            if op == "put":
                _, tid, items = msg
                for block, raw, crc in items:
                    if zlib.crc32(raw) & 0xFFFFFFFF != crc:
                        raise ValueError(f"CRC mismatch on block {block}")
                for block, raw, crc in items:
                    key = (tid, block)
                    payloads[key] = (raw, crc)
                    shared.pop(key, None)
                reply = ("ok", None)
            elif op == "get":
                _, tid, blocks = msg
                out = []
                for b in blocks:
                    entry = payloads.get((tid, b))
                    if entry is None:
                        raise KeyError(f"store {tid} holds no block {b} here")
                    out.append((b, entry[0], entry[1]))
                reply = ("ok", out)
            elif op == "share":
                _, src_tid, dst_tid, blocks = msg
                for b in blocks:
                    entry = payloads.get((src_tid, b))
                    if entry is None:
                        raise KeyError(f"store {src_tid} holds no block {b} here")
                    key = (dst_tid, b)
                    payloads[key] = entry
                    shared[key] = True
                reply = ("ok", None)
            elif op == "release":
                _, tid, blocks = msg
                for b in blocks:
                    key = (tid, b)
                    payloads.pop(key, None)
                    shared.pop(key, None)
                reply = ("ok", None)
            elif op == "drop_tid":
                _, tid = msg
                for key in [k for k in payloads if k[0] == tid]:
                    payloads.pop(key, None)
                    shared.pop(key, None)
                reply = ("ok", None)
            elif op == "purge":
                payloads.clear()
                shared.clear()
                reply = ("ok", None)
            elif op == "report":
                owned = 0
                shared_b = 0
                for key, (raw, _) in payloads.items():
                    if shared.get(key):
                        shared_b += len(raw)
                    else:
                        owned += len(raw)
                reply = (
                    "ok",
                    {
                        "blocks": len(payloads),
                        "owned_bytes": owned,
                        "shared_bytes": shared_b,
                    },
                )
            elif op == "ping":
                reply = ("ok", None)
            elif op == "stop":
                conn.send(("ok", None))
                break
            else:
                reply = ("err", f"unknown op {op!r}")
        except Exception as exc:  # noqa: BLE001 - shard must answer, not die
            reply = ("err", f"{type(exc).__name__}: {exc}")
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


class _ShardRuntime:
    """One fleet of shard processes, shared across transports.

    Mirrors the module-level kernel process pools: every simulator (and
    every fork of it) selecting ``num_shards`` shards talks to the same
    processes, with per-shard locks serialising the duplex pipes across
    executor worker threads.
    """

    def __init__(self, num_shards: int) -> None:
        self.num_shards = num_shards
        self._procs: List[object] = []
        self._conns: List[object] = []
        self._locks = [threading.Lock() for _ in range(num_shards)]
        self._spawn_lock = threading.Lock()
        self.closed = False

    def started(self) -> bool:
        return bool(self._procs)

    def ensure_started(self) -> None:
        with self._spawn_lock:
            if self._procs or self.closed:
                return
            for _ in range(self.num_shards):
                proc, conn = self._spawn()
                self._procs.append(proc)
                self._conns.append(conn)

    @staticmethod
    def _spawn():
        import multiprocessing as mp

        if not hasattr(os, "fork"):
            raise TransportFailure("sharded transport needs the fork start method")
        ctx = mp.get_context("fork")
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(target=_shard_main, args=(child_conn,), daemon=True)
        proc.start()
        child_conn.close()
        return proc, parent_conn

    def alive(self, shard: int) -> bool:
        return bool(self._procs) and self._procs[shard].is_alive()

    def all_alive(self) -> bool:
        return bool(self._procs) and all(p.is_alive() for p in self._procs)

    def respawn_dead(self) -> int:
        """Replace every dead shard with a fresh (empty) process."""
        respawned = 0
        with self._spawn_lock:
            for i, proc in enumerate(self._procs):
                if proc.is_alive():
                    continue
                try:
                    self._conns[i].close()
                except OSError:  # pragma: no cover - already broken
                    pass
                proc.join(timeout=0.5)
                new_proc, new_conn = self._spawn()
                self._procs[i] = new_proc
                self._conns[i] = new_conn
                # a fresh lock: the old one may be held by a thread stuck on
                # the dead pipe
                self._locks[i] = threading.Lock()
                respawned += 1
        return respawned

    def request(self, shard: int, msg: tuple):
        """One locked round-trip to ``shard``; raises on a dead connection."""
        if not self._procs:
            self.ensure_started()
        conn = self._conns[shard]
        with self._locks[shard]:
            try:
                conn.send(msg)
                status, payload = conn.recv()
            except (EOFError, OSError, ValueError) as exc:
                raise TransportFailure(
                    f"shard {shard} connection failed: {exc}"
                ) from exc
        if status != "ok":
            raise TransportFailure(f"shard {shard}: {payload}")
        return payload

    def close(self) -> None:
        with self._spawn_lock:
            self.closed = True
            for i, proc in enumerate(self._procs):
                try:
                    self._conns[i].send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
                try:
                    self._conns[i].close()
                except OSError:  # pragma: no cover
                    pass
            for proc in self._procs:
                proc.join(timeout=1.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=1.0)
            self._procs.clear()
            self._conns.clear()


_shard_runtimes: Dict[int, _ShardRuntime] = {}
_runtime_lock = threading.Lock()
_tid_counter = itertools.count(1)


def _get_shard_runtime(num_shards: int) -> _ShardRuntime:
    with _runtime_lock:
        rt = _shard_runtimes.get(num_shards)
        if rt is None or rt.closed:
            rt = _shard_runtimes[num_shards] = _ShardRuntime(num_shards)
        return rt


def shutdown_shard_runtimes() -> None:
    """Stop every shared shard fleet (registered atexit)."""
    with _runtime_lock:
        runtimes = list(_shard_runtimes.values())
        _shard_runtimes.clear()
    for rt in runtimes:
        rt.close()


atexit.register(shutdown_shard_runtimes)


class ShardedTransport(StorageTransport):
    """Block payloads sharded across N forked processes.

    Placement is contiguous: a store's block range is split into
    ``num_shards`` equal spans, so the owner-run batching of the unified
    reader usually touches one shard per run.  Reads and writes carry the
    checkpoint wire codec (CRC-verified both ways) and are wrapped in
    ``store.read``/``store.ship`` spans when tracing is on.
    """

    name = "sharded"
    is_remote = True

    def __init__(self, num_shards: Optional[int] = None) -> None:
        if num_shards is None:
            env = os.environ.get("QTASK_STORE_SHARDS")
            num_shards = int(env) if env else 2
        self.num_shards = max(1, int(num_shards))
        self._runtime = _get_shard_runtime(self.num_shards)
        #: informational counters (mirrored into the metrics registry by
        #: the simulator's statistics refresh; GIL-atomic increments)
        self.remote_reads = 0
        self.bytes_shipped = 0
        self.shard_restarts = 0
        self.fault_trips = 0

    # -- placement ---------------------------------------------------------

    def _shard_of(self, store, block: int) -> int:
        # Contiguous spans: blocks [k*nb/N, (k+1)*nb/N) live on shard k.
        return min(block * self.num_shards // store.n_blocks, self.num_shards - 1)

    def _group_by_shard(self, store, blocks) -> Dict[int, List[int]]:
        grouped: Dict[int, List[int]] = {}
        for b in blocks:
            grouped.setdefault(self._shard_of(store, b), []).append(b)
        return grouped

    # -- fault envelope ----------------------------------------------------

    def _guarded_request(self, shard: int, msg: tuple):
        """One shard round-trip under the ``store.shard`` fault site.

        Injected faults retry in place (the seeded stream redraws per
        evaluation); a consecutive run of them -- or a genuinely dead
        shard -- escalates to :class:`TransportFailure`.
        """
        last: Optional[BaseException] = None
        for _ in range(_SHARD_FAULT_RETRIES):
            if faults.ACTIVE is not None:
                try:
                    faults.fire("store.shard")
                except faults.FaultInjected as exc:
                    last = exc
                    self.fault_trips += 1
                    continue
            return self._runtime.request(shard, msg)
        raise TransportFailure(
            f"store.shard fault fired {_SHARD_FAULT_RETRIES} consecutive times"
        ) from last

    # -- StorageTransport interface ---------------------------------------

    def attach_store(self, store) -> int:
        self._runtime.ensure_started()
        return next(_tid_counter)

    def detach_store(self, store) -> None:
        tid = getattr(store, "_tid", None)
        if tid is None or not self._runtime.started():
            return
        for shard in range(self.num_shards):
            try:
                self._runtime.request(shard, ("drop_tid", tid))
            except TransportFailure:  # pragma: no cover - teardown best effort
                pass

    def write_range(
        self, store, first_block: int, arrays: Sequence[np.ndarray]
    ) -> List[object]:
        tid = store._tid
        handles: List[object] = []
        per_shard: Dict[int, List[Tuple[int, bytes, int]]] = {}
        total = 0
        for off, arr in enumerate(arrays):
            b = first_block + off
            raw, crc = encode_block(arr)
            per_shard.setdefault(self._shard_of(store, b), []).append((b, raw, crc))
            handles.append(_RemoteBlock(len(raw)))
            total += len(raw)
        tel = tsession.current()
        tracer = tel.tracer if tel is not None else None
        span = (
            tracer.span("store.ship", {"blocks": len(handles), "bytes": total})
            if tracer is not None and tracer.enabled
            else _NO_SPAN
        )
        with span:
            for shard, items in per_shard.items():
                self._guarded_request(shard, ("put", tid, items))
        self.bytes_shipped += total
        return handles

    def read_range(self, store, first_block: int, last_block: int) -> List[np.ndarray]:
        tid = store._tid
        n = last_block - first_block + 1
        grouped = self._group_by_shard(store, range(first_block, last_block + 1))
        tel = tsession.current()
        tracer = tel.tracer if tel is not None else None
        span = (
            tracer.span("store.read", {"blocks": n})
            if tracer is not None and tracer.enabled
            else _NO_SPAN
        )
        out: List[Optional[np.ndarray]] = [None] * n
        with span:
            for shard, blocks in grouped.items():
                for b, raw, crc in self._guarded_request(shard, ("get", tid, blocks)):
                    out[b - first_block] = decode_block(raw, crc, store._block_len)
        self.remote_reads += n
        return out  # type: ignore[return-value]

    def seal(self, store, blocks: Sequence[int]) -> None:
        # Shard payloads are immutable bytes; nothing to do.
        return None

    def share(self, src_store, dst_store, blocks: Sequence[int]) -> None:
        # src and dst have identical dim/block_size (validated by
        # share_from), hence identical placement.
        for shard, ids in self._group_by_shard(src_store, blocks).items():
            self._guarded_request(
                shard, ("share", src_store._tid, dst_store._tid, ids)
            )

    def release(self, store, blocks: Sequence[int]) -> None:
        if not self._runtime.started():
            return
        for shard, ids in self._group_by_shard(store, blocks).items():
            self._runtime.request(shard, ("release", store._tid, ids))

    def shard_report(self) -> List[Dict[str, int]]:
        report: List[Dict[str, int]] = []
        for shard in range(self.num_shards):
            entry: Dict[str, int] = {"shard": shard, "alive": False}
            if self._runtime.started() and self._runtime.alive(shard):
                try:
                    stats = self._runtime.request(shard, ("report",))
                except TransportFailure:
                    stats = {"blocks": 0, "owned_bytes": 0, "shared_bytes": 0}
                else:
                    entry["alive"] = True
                entry.update(stats)
            else:
                entry.update({"blocks": 0, "owned_bytes": 0, "shared_bytes": 0})
            report.append(entry)
        return report

    # -- health / recovery -------------------------------------------------

    def healthy(self) -> bool:
        return not self._runtime.started() or self._runtime.all_alive()

    def respawn_dead(self) -> bool:
        """Replace dead shards with fresh ones; ``True`` when all alive after.

        Freshly spawned shards are empty: the caller owns re-executing from
        the initial state.  Surviving shards are purged so every store on
        this transport restarts from one consistent (empty) placement.
        """
        restarted = self._runtime.respawn_dead()
        self.shard_restarts += restarted
        if restarted:
            tsession.emit_event("store.respawn", shards=restarted)
        self.purge()
        return self._runtime.all_alive()

    def purge(self) -> None:
        """Best-effort: drop every payload on every live shard."""
        for shard in range(self.num_shards):
            if not self._runtime.started():
                return
            try:
                self._runtime.request(shard, ("purge",))
            except TransportFailure:  # pragma: no cover - dead shard
                continue

    def shard_pids(self) -> List[int]:
        """Live shard process ids (tests kill these to exercise recovery)."""
        self._runtime.ensure_started()
        return [p.pid for p in self._runtime._procs]

    def close(self) -> None:
        # The runtime is shared across transports (and fork fleets); closing
        # one simulator must not tear it down.  shutdown_shard_runtimes()
        # reaps at exit.
        return None


# -- selection --------------------------------------------------------------


def make_transport(spec=None) -> Tuple[StorageTransport, bool]:
    """Resolve a transport spec to ``(transport, fell_back)``.

    ``None`` reads ``QTASK_STORE_TRANSPORT`` (default ``local``).  A
    :class:`StorageTransport` *instance* passes through unchanged so callers
    can inject a pre-configured transport (custom shard count) or share one
    across sessions.  Requesting ``sharded`` on a host without ``fork``
    substitutes local and reports ``fell_back=True`` -- knob settings stay
    portable, matching ``make_backend``.
    """
    if isinstance(spec, StorageTransport):
        return spec, False
    if spec is None:
        spec = os.environ.get("QTASK_STORE_TRANSPORT", "local")
    name = str(spec).lower()
    if name == "local":
        return LOCAL_TRANSPORT, False
    if name == "sharded":
        if not hasattr(os, "fork"):
            logger.warning(
                "sharded store transport needs fork; falling back to local"
            )
            return LOCAL_TRANSPORT, True
        return ShardedTransport(), False
    raise ValueError(
        f"unknown store transport {spec!r}: expected 'local' or 'sharded'"
    )
