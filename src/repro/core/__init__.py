"""Core qTask machinery: gates, partitions, COW storage, graph, simulator."""

from .blocks import DEFAULT_BLOCK_SIZE, BlockRange, IntervalSet
from .circuit import Circuit, CircuitObserver, GateHandle, NetHandle
from .classical import ClassicalRegister, OutcomeRecord
from .cow import (
    BlockDirectory,
    BlockStore,
    DirectoryReader,
    InitialStateStore,
    MemoryReport,
    StoreChain,
)
from .exceptions import (
    CheckpointError,
    CircuitError,
    ExecutorError,
    GateArityError,
    NetDependencyError,
    QasmSyntaxError,
    QTaskError,
    QubitIndexError,
    StaleHandleError,
    UnknownGateError,
)
from .faults import FaultInjected, FaultPlan
from .gates import (
    Gate,
    GateSpec,
    STANDARD_GATE_NAMES,
    classify_gate,
    classify_matrix,
    gate_matrix,
    is_superposition_gate,
)
from .graph import PartitionGraph, PartitionNode
from .ops import CGate, MeasureOp, ResetOp, is_dynamic_op
from .partition import PartitionSpec, derive_partitions, matvec_partitions
from .simulator import QTaskSimulator, UpdateReport
from .stage import (
    ClassicallyControlledStage,
    DynamicStage,
    FusedUnitaryStage,
    MatVecStage,
    MeasureStage,
    ResetStage,
    Stage,
    UnitaryStage,
)

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "BlockRange",
    "IntervalSet",
    "Circuit",
    "CircuitObserver",
    "GateHandle",
    "NetHandle",
    "ClassicalRegister",
    "OutcomeRecord",
    "CGate",
    "MeasureOp",
    "ResetOp",
    "is_dynamic_op",
    "DynamicStage",
    "MeasureStage",
    "ResetStage",
    "ClassicallyControlledStage",
    "BlockDirectory",
    "BlockStore",
    "DirectoryReader",
    "InitialStateStore",
    "MemoryReport",
    "StoreChain",
    "QTaskError",
    "CircuitError",
    "NetDependencyError",
    "UnknownGateError",
    "GateArityError",
    "QubitIndexError",
    "StaleHandleError",
    "QasmSyntaxError",
    "ExecutorError",
    "CheckpointError",
    "FaultInjected",
    "FaultPlan",
    "Gate",
    "GateSpec",
    "STANDARD_GATE_NAMES",
    "classify_gate",
    "classify_matrix",
    "gate_matrix",
    "is_superposition_gate",
    "PartitionGraph",
    "PartitionNode",
    "PartitionSpec",
    "derive_partitions",
    "matvec_partitions",
    "QTaskSimulator",
    "UpdateReport",
    "FusedUnitaryStage",
    "MatVecStage",
    "Stage",
    "UnitaryStage",
]
