"""The circuit programming model: nets, gates and circuit modifiers.

The paper's programming model (§III.B, Table II) asks users to structure
gates *per net* -- a net is a group of gates that are parallel in structure
(pairwise disjoint qubits).  The circuit is simply an ordered list of nets.
:class:`Circuit` is the structural container: it owns the nets and gates,
validates the net invariant (inserting a dependent gate throws, as in
Listing 1), and notifies registered observers about every modifier so
simulators can maintain their incremental state.

Simulation itself lives in :mod:`repro.core.simulator` (qTask) and
:mod:`repro.baselines` (full re-simulation baselines).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from .classical import ClassicalRegister
from .exceptions import (
    CircuitError,
    NetDependencyError,
    QubitIndexError,
    StaleHandleError,
)
from .gates import Gate
from .ops import (
    CGate,
    MeasureOp,
    ResetOp,
    is_dynamic_op,
    op_clbits_read,
    op_clbits_written,
)

__all__ = ["GateHandle", "NetHandle", "CircuitObserver", "Circuit"]

_handle_counter = itertools.count()


class GateHandle:
    """A live reference to a gate inserted in a circuit."""

    __slots__ = ("uid", "gate", "net", "alive")

    def __init__(self, gate: Gate, net: "NetHandle") -> None:
        self.uid = next(_handle_counter)
        self.gate = gate
        self.net = net
        self.alive = True

    @property
    def name(self) -> str:
        return self.gate.name

    @property
    def qubits(self) -> Tuple[int, ...]:
        return self.gate.qubits

    def _check_alive(self) -> None:
        if not self.alive:
            raise StaleHandleError(f"gate handle {self!r} refers to a removed gate")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "" if self.alive else " (removed)"
        return f"<GateHandle #{self.uid} {self.gate}{status}>"


class NetHandle:
    """A live reference to a net (a level of structurally parallel gates)."""

    __slots__ = ("uid", "gates", "alive", "name")

    def __init__(self, name: str = "") -> None:
        self.uid = next(_handle_counter)
        self.gates: List[GateHandle] = []
        self.alive = True
        self.name = name or f"net{self.uid}"

    def qubits_in_use(self) -> set:
        return {q for h in self.gates for q in h.gate.qubits}

    def clbits_in_use(self) -> set:
        """Classical bits read or written by any operation in this net."""
        out: set = set()
        for h in self.gates:
            out.update(op_clbits_read(h.gate))
            out.update(op_clbits_written(h.gate))
        return out

    def _check_alive(self) -> None:
        if not self.alive:
            raise StaleHandleError(f"net handle {self!r} refers to a removed net")

    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self) -> Iterator[GateHandle]:
        return iter(self.gates)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "" if self.alive else " (removed)"
        return f"<NetHandle {self.name} gates={len(self.gates)}{status}>"


class CircuitObserver:
    """Interface for objects that track circuit modifications.

    All methods are optional no-ops so observers override only what they need.
    """

    def on_net_inserted(self, circuit: "Circuit", net: NetHandle, position: int) -> None:
        pass

    def on_net_removed(self, circuit: "Circuit", net: NetHandle,
                       removed_gates: Sequence[GateHandle]) -> None:
        pass

    def on_gate_inserted(self, circuit: "Circuit", handle: GateHandle) -> None:
        pass

    def on_gate_removed(self, circuit: "Circuit", handle: GateHandle) -> None:
        pass

    def on_gate_updated(
        self, circuit: "Circuit", handle: GateHandle, old_gate: Gate
    ) -> None:
        """``handle``'s gate was retuned in place (same name/qubits, new params)."""
        pass


class Circuit:
    """An ordered list of nets of structurally parallel gates."""

    def __init__(
        self,
        num_qubits: int,
        *,
        num_clbits: int = 0,
        allow_net_dependencies: bool = False,
    ) -> None:
        if num_qubits <= 0:
            raise CircuitError(f"number of qubits must be positive, got {num_qubits}")
        if num_clbits < 0:
            raise CircuitError(f"number of clbits must be >= 0, got {num_clbits}")
        self.num_qubits = int(num_qubits)
        #: anonymous classical bits declared up front; registers add more
        self.num_clbits = int(num_clbits)
        self._cregs: Dict[str, ClassicalRegister] = {}
        #: program-order counter assigning ``op_index`` to dynamic operations
        self._num_dynamic_ops = 0
        #: op indices live in this circuit (collision guard for reused ops)
        self._dynamic_indices: set = set()
        self._nets: List[NetHandle] = []
        self._observers: List[CircuitObserver] = []
        #: when True, the per-net structural-parallelism check is skipped
        #: (used by tools that build one net per gate and never rely on it)
        self.allow_net_dependencies = bool(allow_net_dependencies)

    # -- observers ----------------------------------------------------------

    def register_observer(self, observer: CircuitObserver) -> None:
        if observer not in self._observers:
            self._observers.append(observer)

    def unregister_observer(self, observer: CircuitObserver) -> None:
        if observer in self._observers:
            self._observers.remove(observer)

    # -- queries --------------------------------------------------------------

    def qubits(self) -> Tuple[int, ...]:
        """Qubit indices from most significant to least significant.

        Mirrors Listing 1: ``auto [q4, q3, q2, q1, q0] = ckt.qubits()``.
        """
        return tuple(range(self.num_qubits - 1, -1, -1))

    def nets(self) -> List[NetHandle]:
        return list(self._nets)

    # -- classical registers ---------------------------------------------------

    def add_classical_register(self, name: str, size: int) -> ClassicalRegister:
        """Declare ``size`` new classical bits under ``name``.

        The register's bits are appended after every bit already declared
        (constructor ``num_clbits`` first, then registers in declaration
        order), mirroring how multiple ``qreg`` declarations flatten into
        one global qubit index space.
        """
        if size <= 0:
            raise CircuitError(f"register size must be positive, got {size}")
        if name in self._cregs:
            raise CircuitError(f"classical register {name!r} already declared")
        reg = ClassicalRegister(name=name, offset=self.num_clbits, size=int(size))
        self._cregs[name] = reg
        self.num_clbits += int(size)
        return reg

    def classical_registers(self) -> List[ClassicalRegister]:
        """Declared classical registers, in declaration order."""
        return list(self._cregs.values())

    def creg(self, name: str) -> ClassicalRegister:
        try:
            return self._cregs[name]
        except KeyError:
            raise CircuitError(f"unknown classical register {name!r}") from None

    @property
    def num_dynamic_ops(self) -> int:
        """Dynamic (measure/reset/classically-controlled) operations inserted."""
        return self._num_dynamic_ops

    def dynamic_handles(self) -> List[GateHandle]:
        """Handles of every dynamic operation, in net order."""
        return [h for h in self.gates() if is_dynamic_op(h.gate)]

    @property
    def has_dynamic_ops(self) -> bool:
        return any(is_dynamic_op(h.gate) for h in self.gates())

    def net_position(self, net: NetHandle) -> int:
        net._check_alive()
        try:
            return self._nets.index(net)
        except ValueError:
            raise StaleHandleError(f"net {net!r} does not belong to this circuit") from None

    @property
    def num_nets(self) -> int:
        return len(self._nets)

    @property
    def num_gates(self) -> int:
        return sum(len(n.gates) for n in self._nets)

    @property
    def depth(self) -> int:
        """Number of non-empty nets (the circuit level/depth of §IV.B)."""
        return sum(1 for n in self._nets if n.gates)

    def gates(self) -> List[GateHandle]:
        """All gate handles in net order."""
        return [h for n in self._nets for h in n.gates]

    def count_gate(self, name: str) -> int:
        name = name.lower()
        aliases = {"cnot": "cx", "cx": "cx"}
        target = aliases.get(name, name)
        return sum(
            1
            for h in self.gates()
            if h.gate.name == target or h.gate.name == name
        )

    # -- circuit modifiers: nets ------------------------------------------

    def insert_net(self, after: Optional[NetHandle] = None) -> NetHandle:
        """Insert a new empty net.

        ``after=None`` appends at the end of the circuit; otherwise the net is
        inserted right after the given net (the paper's semantics).
        """
        net = NetHandle()
        if after is None:
            position = len(self._nets)
        else:
            position = self.net_position(after) + 1
        self._nets.insert(position, net)
        for obs in self._observers:
            obs.on_net_inserted(self, net, position)
        return net

    def prepend_net(self) -> NetHandle:
        """Insert a new empty net at the very front of the circuit."""
        net = NetHandle()
        self._nets.insert(0, net)
        for obs in self._observers:
            obs.on_net_inserted(self, net, 0)
        return net

    def remove_net(self, net: NetHandle) -> None:
        """Remove a net and all its gates from the circuit."""
        position = self.net_position(net)
        removed = list(net.gates)
        # Remove gates first so observers see individual gate removals.
        for handle in removed:
            self.remove_gate(handle)
        self._nets.pop(position)
        net.alive = False
        for obs in self._observers:
            obs.on_net_removed(self, net, removed)

    # -- circuit modifiers: gates -------------------------------------------

    def insert_gate(
        self,
        gate: Union[Gate, str],
        net: NetHandle,
        *qubits: int,
        params: Sequence[float] = (),
    ) -> GateHandle:
        """Insert a gate into an existing net.

        ``gate`` may be a :class:`~repro.core.gates.Gate` instance or a gate
        name; in the latter case ``qubits``/``params`` build the instance.
        Raises :class:`NetDependencyError` if the gate shares a qubit with a
        gate already present in the net (the paper's structural-parallelism
        rule), and :class:`QubitIndexError` for out-of-range qubits.
        """
        if isinstance(gate, str):
            gate = Gate(gate, tuple(qubits), tuple(params))
        elif qubits or params:
            raise CircuitError("pass qubits/params only when giving a gate name")
        return self.insert_operation(gate, net)

    def insert_operation(self, op, net: NetHandle) -> GateHandle:
        """Insert any operation (unitary gate or dynamic op) into a net.

        Validates qubit/clbit ranges and the net invariant: operations in one
        net must be pairwise disjoint in the qubits *and* the classical bits
        they touch, so within-net execution order can never matter.  Dynamic
        operations are assigned their program-order ``op_index`` here (on
        first insertion only -- clones re-inserting the same op keep it).
        """
        net._check_alive()
        if net not in self._nets:
            raise StaleHandleError(f"net {net!r} does not belong to this circuit")
        for q in op.qubits:
            if not 0 <= q < self.num_qubits:
                raise QubitIndexError(
                    f"qubit {q} out of range for a {self.num_qubits}-qubit circuit"
                )
        clbits = tuple(op_clbits_read(op)) + tuple(op_clbits_written(op))
        for c in clbits:
            if not 0 <= c < self.num_clbits:
                raise CircuitError(
                    f"classical bit {c} out of range for a circuit with "
                    f"{self.num_clbits} clbit(s)"
                )
        if not self.allow_net_dependencies:
            used = net.qubits_in_use()
            overlap = used.intersection(op.qubits)
            if overlap:
                raise NetDependencyError(
                    f"operation {op} would introduce a dependency in net "
                    f"{net.name}: qubits {sorted(overlap)} already in use"
                )
            if clbits:  # pure unitaries skip the clbit scan entirely
                cl_overlap = net.clbits_in_use().intersection(clbits)
                if cl_overlap:
                    raise NetDependencyError(
                        f"operation {op} would introduce a classical dependency "
                        f"in net {net.name}: clbits {sorted(cl_overlap)} already "
                        "in use"
                    )
        if is_dynamic_op(op):
            if op.op_index is None:
                op.op_index = self._num_dynamic_ops
            elif op.op_index in self._dynamic_indices:
                # an op object carried over from another circuit (or inserted
                # twice) would share its keyed random stream with an existing
                # op here -- refuse rather than silently corrupt trajectories
                raise CircuitError(
                    f"operation {op} carries op_index {op.op_index}, which is "
                    "already in use in this circuit; create a fresh operation "
                    "instead of reusing one across circuits"
                )
            self._dynamic_indices.add(op.op_index)
            # clones re-insert ops carrying indices; keep the counter ahead
            self._num_dynamic_ops = max(self._num_dynamic_ops, op.op_index + 1)
        handle = GateHandle(op, net)
        net.gates.append(handle)
        for obs in self._observers:
            obs.on_gate_inserted(self, handle)
        return handle

    # -- circuit modifiers: dynamic operations ---------------------------------

    def insert_measure(self, net: NetHandle, qubit: int, clbit: int) -> GateHandle:
        """Measure ``qubit`` in the Z basis into classical bit ``clbit``.

        The measurement collapses the state mid-circuit (block-wise
        projective collapse + renormalisation in the simulator) and writes
        the observed bit into the session's outcome record.
        """
        return self.insert_operation(MeasureOp(qubit, clbit), net)

    def insert_reset(self, net: NetHandle, qubit: int) -> GateHandle:
        """Reset ``qubit`` to |0> (projective measurement plus conditional flip)."""
        return self.insert_operation(ResetOp(qubit), net)

    def insert_cgate(
        self,
        gate: Union[Gate, str],
        net: NetHandle,
        *qubits: int,
        params: Sequence[float] = (),
        condition: Tuple[Union[ClassicalRegister, Sequence[int]], int],
    ) -> GateHandle:
        """Insert a classically-conditioned gate (``if (c == k) gate ...``).

        ``condition`` is ``(bits, value)`` where ``bits`` is a
        :class:`~repro.core.classical.ClassicalRegister` or an explicit
        clbit sequence (LSB first); the gate applies only when the bits hold
        exactly ``value`` at execution time.
        """
        if isinstance(gate, str):
            gate = Gate(gate, tuple(qubits), tuple(params))
        elif qubits or params:
            raise CircuitError("pass qubits/params only when giving a gate name")
        bits, value = condition
        if isinstance(bits, ClassicalRegister):
            bits = bits.bits
        return self.insert_operation(CGate(gate, bits, value), net)

    def remove_gate(self, handle: GateHandle) -> None:
        """Remove a gate from its net and the circuit."""
        handle._check_alive()
        net = handle.net
        if handle not in net.gates:
            raise StaleHandleError(f"gate {handle!r} does not belong to its net")
        net.gates.remove(handle)
        handle.alive = False
        if is_dynamic_op(handle.gate):
            # the index may be re-inserted later (synthesis loops move ops)
            self._dynamic_indices.discard(handle.gate.op_index)
        for obs in self._observers:
            obs.on_gate_removed(self, handle)

    def update_gate(self, handle: GateHandle, *params: float) -> GateHandle:
        """Retune an existing gate's parameters in place (the retune modifier).

        The gate keeps its name, its qubits, its net and -- crucially -- its
        handle identity, so observers can keep the gate's stage and the
        partition-graph topology intact and merely mark the stage dirty.
        Expressing the same edit as ``remove_gate`` + ``insert_gate`` would
        instead dismantle and rebuild the stage's graph neighbourhood.

        Raises :class:`~repro.core.exceptions.GateArityError` when the
        parameter count does not match the gate, and
        :class:`StaleHandleError` for removed handles.  Returns ``handle``.
        """
        handle._check_alive()
        net = handle.net
        if handle not in net.gates:
            raise StaleHandleError(f"gate {handle!r} does not belong to its net")
        old_gate = handle.gate
        if not isinstance(old_gate, Gate):
            raise CircuitError(
                f"only unitary gates can be retuned, not {old_gate}"
            )
        # Same name and qubits: the net invariant cannot be violated, and the
        # Gate constructor re-validates the parameter count.
        handle.gate = Gate(old_gate.name, old_gate.qubits, tuple(params))
        for obs in self._observers:
            obs.on_gate_updated(self, handle, old_gate)
        return handle

    # -- structural copy (session forking) ------------------------------------

    def clone(self) -> Tuple["Circuit", Dict[int, GateHandle], Dict[int, NetHandle]]:
        """A structural copy with fresh handles and no observers.

        Gates are immutable value objects and are shared by reference; the
        nets and handles are new, so modifiers on the clone never touch this
        circuit.  Returns ``(circuit, gate_map, net_map)`` where the maps key
        the clone's handles by *this* circuit's handle uids -- the
        translation table :meth:`repro.QTask.handle_for` serves on forked
        sessions.
        """
        child = Circuit(
            self.num_qubits,
            num_clbits=0,
            allow_net_dependencies=self.allow_net_dependencies,
        )
        # Mirror the classical declarations bit-for-bit: anonymous bits
        # first, then the named registers at their original offsets.
        child.num_clbits = self.num_clbits
        child._cregs = dict(self._cregs)
        gate_map: Dict[int, GateHandle] = {}
        net_map: Dict[int, NetHandle] = {}
        for net in self._nets:
            child_net = child.insert_net()
            net_map[net.uid] = child_net
            for handle in net.gates:
                # insert_operation reuses dynamic ops by reference, which
                # preserves their op_index (and with it the trajectory keying)
                gate_map[handle.uid] = child.insert_operation(handle.gate, child_net)
        return child, gate_map, net_map

    # -- bulk helpers ---------------------------------------------------------

    def append_level(self, gates: Iterable[Gate]) -> Tuple[NetHandle, List[GateHandle]]:
        """Append a new net containing ``gates`` (convenience for generators)."""
        net = self.insert_net()
        handles = [self.insert_gate(g, net) for g in gates]
        return net, handles

    def from_levels(self, levels: Iterable[Iterable[Gate]]) -> None:
        """Append one net per level of gates."""
        for level in levels:
            self.append_level(level)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Circuit(qubits={self.num_qubits}, nets={self.num_nets}, "
            f"gates={self.num_gates})"
        )
