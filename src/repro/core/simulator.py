"""The qTask simulator: incremental, task-parallel state-vector simulation.

:class:`QTaskSimulator` observes a :class:`~repro.core.circuit.Circuit` and
maintains, across circuit modifiers, the partition task graph of §III.C-D.
Calling :meth:`QTaskSimulator.update_state` re-simulates exactly the
partitions affected by the modifiers issued since the previous update (found
by DFS from the frontier list, §III.E), executing them as a Taskflow-style
task graph on the configured executor.  Stage inputs are resolved through
the simulator-owned :class:`~repro.core.cow.BlockDirectory` (O(log W) block
ownership lookups; ``block_directory=False`` falls back to the legacy O(S)
store-chain walk for A/B comparison), and partition bodies execute as
batched aligned block runs feeding the strided kernels.

The facade class most applications use is :class:`repro.QTask`, which bundles
a circuit and a simulator behind the paper's Table-II API.
"""

from __future__ import annotations

import logging
import math
import os
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, TextIO, Tuple

import numpy as np

from ..parallel import Executor, SequentialExecutor, TaskGraph, make_executor
from ..telemetry import Telemetry
from ..telemetry import session as tsession
from . import faults
from .faults import FaultInjected
from .blocks import BlockRange, DEFAULT_BLOCK_SIZE, num_blocks, validate_block_size
from .circuit import Circuit, CircuitObserver, GateHandle, NetHandle
from .classical import OutcomeRecord
from .cow import (
    BlockDirectory,
    DirectoryReader,
    InitialStateStore,
    MemoryReport,
    StoreChain,
)
from .exceptions import CircuitError
from .exec_plan import ExecutionPlan, PlanReport, StagePlan, build_execution_plan
from .gates import Gate, compose_actions, is_superposition_gate
from .graph import PartitionGraph, PartitionNode
from .kernels import (
    HAVE_NUMBA,
    KernelBackend,
    NumbaBackend,
    NumpyBatchBackend,
    execute_run,
    iter_table_runs,
    make_backend,
)
from .ops import CGate, MeasureOp, ResetOp, is_dynamic_op
from .stage import (
    ClassicallyControlledStage,
    DynamicStage,
    FusedUnitaryStage,
    MatVecStage,
    MeasureStage,
    ResetStage,
    Stage,
    UnitaryStage,
)
from .transport import StorageTransport, TransportFailure, make_transport

__all__ = ["UpdateReport", "QTaskSimulator"]

logger = logging.getLogger(__name__)

#: circuit-breaker degradation ladder, most capable first; a tripped
#: breaker quarantines the current backend and walks one rung down
_BACKEND_LADDER: Tuple[str, ...] = ("process", "numba", "numpy", "legacy")

#: bounded per-run re-executions inside the run-granular fallback loop
_RUN_FAULT_RETRIES = 5

#: bounded whole-update re-executions (the outermost recovery layer)
_UPDATE_FAULT_RETRIES = 3

#: bounded store-transport recoveries per update: attempt 1 respawns dead
#: shards, attempt 2 trips the store breaker (sharded -> local), after which
#: no further TransportFailure is possible -- 3 is pure headroom
_STORE_RECOVERY_RETRIES = 3


@dataclass
class UpdateReport:
    """What one ``update_state`` call did."""

    affected_partitions: int = 0
    total_partitions: int = 0
    executed_block_writes: int = 0
    elapsed_seconds: float = 0.0
    was_incremental: bool = False

    @property
    def affected_fraction(self) -> float:
        if self.total_partitions == 0:
            return 0.0
        return self.affected_partitions / self.total_partitions


class QTaskSimulator(CircuitObserver):
    """Incremental task-parallel simulator attached to a circuit."""

    def __init__(
        self,
        circuit: Circuit,
        *,
        block_size: int = DEFAULT_BLOCK_SIZE,
        executor: Optional[Executor] = None,
        num_workers: Optional[int] = None,
        copy_on_write: bool = True,
        fusion: bool = False,
        max_fused_qubits: int = 4,
        block_directory: bool = True,
        observable_cache: bool = True,
        kernel_backend: Optional[str] = None,
        store_transport: Optional[object] = None,
        seed: Optional[int] = None,
        tracing: Optional[bool] = None,
    ) -> None:
        self.circuit = circuit
        self.block_size = validate_block_size(block_size)
        self.copy_on_write = bool(copy_on_write)
        #: Resolve block reads through the O(log W) block directory instead
        #: of the legacy O(S) store-chain walk.  ``False`` keeps the linear
        #: chain alive as the pre-directory baseline for A/B benchmarks and
        #: the directory==chain property tests; results are bit-identical.
        self.block_directory = bool(block_directory)
        #: Fuse runs of consecutive non-superposition stages into single
        #: diagonal/monomial stages over the union qubit support.  Fusion
        #: relies on the net invariant (gates in one net are qubit-disjoint),
        #: so it is disabled for circuits built with
        #: ``allow_net_dependencies=True``, where within-net order is
        #: heuristic and fusing could reorder dependent gates.
        self.fusion = bool(fusion) and not circuit.allow_net_dependencies
        self.max_fused_qubits = int(max_fused_qubits)
        self.dim = 1 << circuit.num_qubits
        self.n_blocks = num_blocks(self.dim, self.block_size)
        if executor is not None and num_workers is not None:
            raise CircuitError("pass either an executor or num_workers, not both")
        self._owns_executor = executor is None
        self.executor: Executor = executor or make_executor(num_workers)

        #: requested backend spec: "auto" | "numpy" | "numba" | "process" |
        #: "legacy"; ``None`` defers to the ``QTASK_KERNEL_BACKEND``
        #: environment variable (default "auto"), which is how CI runs the
        #: whole suite under each backend without touching call sites.
        self.kernel_backend = (
            kernel_backend
            if kernel_backend is not None
            else os.environ.get("QTASK_KERNEL_BACKEND", "auto")
        )
        self._backend, fell_back = make_backend(self.kernel_backend)

        #: requested store transport spec: "local" | "sharded" (or a
        #: :class:`~repro.core.transport.StorageTransport` instance);
        #: ``None`` defers to the ``QTASK_STORE_TRANSPORT`` environment
        #: variable (default "local"), mirroring the kernel-backend knob so
        #: CI can run the whole suite against the sharded store without
        #: touching call sites.
        self.store_transport = (
            store_transport
            if store_transport is not None
            else os.environ.get("QTASK_STORE_TRANSPORT", "local")
        )
        self._store_transport, st_fell_back = make_transport(self.store_transport)

        self._init_telemetry(tracing=tracing, fell_back=fell_back)
        self._init_fault_tolerance()
        self._init_store_state(fell_back=st_fell_back)

        self._initial = InitialStateStore(self.dim, self.block_size)
        #: block-ownership index: block id -> stages holding it, seq-sorted.
        #: Maintained push-style by the stage stores through the partition
        #: graph's insert/remove hooks (see BlockDirectory in core.cow).
        self._directory = BlockDirectory(self._initial)
        self.graph = PartitionGraph(
            BlockRange(0, self.n_blocks - 1),
            on_stage_inserted=self._on_stage_entered,
            on_stage_removed=self._on_stage_left,
        )

        #: stages of each net, in within-net order
        self._net_stages: Dict[int, List[Stage]] = {}
        #: the (single) matvec stage of each net, when present
        self._matvec: Dict[int, MatVecStage] = {}
        #: stage owning each gate handle
        self._gate_stage: Dict[int, Stage] = {}
        #: gate handles whose gates each stage applies (member list for fused
        #: stages; single-element for unitary stages)
        self._stage_handles: Dict[int, List[GateHandle]] = {}
        #: uid of the net each stage is filed under (a fused stage is filed
        #: under the net of its most recently fused member)
        self._stage_net: Dict[int, int] = {}
        #: number of live fused stages (lets insertions skip conflict scans)
        self._num_fused = 0
        #: cached net-order index (net uid -> position) used by
        #: _global_position/_dissolve_conflicting; invalidated whenever a net
        #: is inserted or removed instead of being rebuilt on every gate.
        self._net_index: Optional[Dict[int, int]] = None
        self._net_uid_order: List[int] = []

        self.last_update: UpdateReport = UpdateReport()
        #: completed ``update_state`` calls; with the frontier set this is
        #: the state epoch fork fleets use to detect a diverged base session
        self._num_updates = 0

        #: per-trajectory classical state: measurement outcomes, classical
        #: bits and the keyed randomness that draws collapses.  Dynamic
        #: stages hold a reference to this record; forks clone their own.
        self.outcomes = OutcomeRecord(circuit.num_clbits, seed=seed)
        #: live dynamic stages, in no particular order (trajectory re-arming)
        self._dynamic_stages: Dict[int, DynamicStage] = {}

        #: cache per-(term, block) observable partials across updates; with
        #: ``False`` the (lazily created) observables engine recomputes every
        #: query from the block stores (the caching-ablation baseline).
        self.observable_cache = bool(observable_cache)
        #: dirty-block listeners: callables receiving the ids of every block
        #: (re)written by an update or orphaned by a stage removal.  The
        #: observables engine registers here so its per-block caches are
        #: invalidated by exactly the frontier the incremental update scopes.
        self._dirty_listeners: List[Callable[[Iterable[int]], None]] = []
        self._observables = None

        circuit.register_observer(self)
        self._sync_existing()

    def _init_telemetry(
        self,
        *,
        tracing: Optional[bool] = None,
        parent: Optional[Telemetry] = None,
        fell_back: bool = False,
    ) -> None:
        """One telemetry bundle per session; plan counters live in it.

        The plan-pipeline counters keep their ``self._x`` attribute names,
        but each is now a registry-owned :class:`~repro.telemetry.Counter`
        -- write sites call ``.inc()``, report sites read ``.value``, and
        the same numbers surface through ``telemetry_report()`` and the
        Prometheus dump without a second bookkeeping path.
        """
        self.telemetry = Telemetry(tracing=tracing, parent=parent)
        m = self.telemetry.metrics
        #: plan-pipeline counters (see :meth:`plan_report`)
        self._plans_built = m.counter(
            "plan.plans_built", help="stage plans compiled"
        )
        self._runs_batched = m.counter(
            "plan.runs_batched", help="block runs batched into plans"
        )
        self._plan_chunks = m.counter(
            "plan.chunks", help="executor-visible plan chunks"
        )
        self._updates_planned = m.counter(
            "plan.updates_planned", help="updates through the plan pipeline"
        )
        self._backend_fallbacks = m.counter(
            "recovery.backend_fallbacks",
            help="chunk executions that fell back run-granular",
        )
        if fell_back:
            self._backend_fallbacks.inc()
        self._update_seconds = m.histogram(
            "update.seconds", unit="s", help="update_state wall time"
        )
        #: event-log high-water mark when the last update began, so
        #: ``explain_last_update`` can scope "what recovery did" exactly.
        self._update_event_mark = 0

    def _init_fault_tolerance(self) -> None:
        """Per-session recovery state: retry counters + the circuit breaker."""
        #: consecutive chunk failures that trip the breaker; tune per session
        self.breaker_threshold = 3
        self._breaker_lock = threading.Lock()
        self._consecutive_chunk_failures = 0
        #: ladder transitions, oldest first ({from, to, reason, update})
        self._backend_transitions: List[Dict[str, object]] = []
        m = self.telemetry.metrics
        self._run_retries = m.counter(
            "recovery.run_retries", help="per-run fault retries"
        )
        self._update_retries = m.counter(
            "recovery.update_retries", help="whole-update fault retries"
        )

    def _init_store_state(self, *, fell_back: bool = False) -> None:
        """Per-session store-transport recovery state (the store breaker)."""
        #: transport failures that trip the sharded -> local store breaker;
        #: failure #1 respawns dead shards, failure #threshold falls back
        self.store_breaker_threshold = 2
        self._store_failures = 0
        #: store-breaker transitions, oldest first ({from, to, reason, update})
        self._store_transitions: List[Dict[str, object]] = []
        #: the sharded transport this session ever used, if any -- counters
        #: (remote_reads / bytes_shipped / shard_restarts) keep reporting
        #: from it even after the breaker swapped the live transport to local
        self._store_remote = (
            self._store_transport if self._store_transport.is_remote else None
        )
        if fell_back:
            # "sharded" requested on a fork-less host: record the substitution
            # the same way the breaker would, minus the event (no telemetry
            # session is active during construction).
            self._store_transitions.append(
                {
                    "from": "sharded",
                    "to": self._store_transport.name,
                    "reason": "transport unavailable",
                    "update": 0,
                }
            )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Detach from the circuit and release the executor (if owned)."""
        self.circuit.unregister_observer(self)
        if self._store_transport.is_remote:
            # Free this session's shard payloads; the shard processes are
            # module-shared (a fork fleet keeps using them) and are reaped
            # by shutdown_shard_runtimes() at exit.
            for stage in self.graph.stages:
                stage.store.release_remote()
        if self._owns_executor:
            self.executor.close()

    def __enter__(self) -> "QTaskSimulator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _sync_existing(self) -> None:
        """Adopt gates already present in the circuit at attach time."""
        for net in self.circuit.nets():
            self._net_stages.setdefault(net.uid, [])
            for handle in net.gates:
                self.on_gate_inserted(self.circuit, handle)

    # ------------------------------------------------------------------
    # session forking (copy-on-write children)
    # ------------------------------------------------------------------

    @property
    def state_epoch(self) -> Tuple[int, bool]:
        """``(completed updates, edits pending)`` -- the session's version.

        Two observations of the same epoch with no pending edits are
        guaranteed to describe the same simulated state; fork fleets compare
        epochs to detect that their base session has diverged.
        """
        return self._num_updates, bool(self.graph.frontiers)

    def fork(
        self,
        *,
        executor: Optional[Executor] = None,
        kernel_backend: Optional[str] = None,
        store_transport: Optional[object] = None,
    ) -> "QTaskSimulator":
        """A child simulator sharing this one's computed state copy-on-write.

        The child gets its own circuit (a structural clone with fresh
        handles), its own stages, partition graph, block directory and
        observables engine -- but every stage store *adopts* the parent
        stage's blocks by reference (:meth:`BlockStore.share_from`), so
        forking costs O(stages + stored blocks) bookkeeping and zero block
        copies.  The first write a child update makes to a block rebinds the
        child's entry, leaving the parent untouched; edits on either side
        never perturb the other.

        By default the child *shares the parent's executor* (``close()`` on
        the child will not shut it down), which is what lets a
        :class:`~repro.parallel.sweep.SweepRunner` fan many forked sessions
        out across one work-stealing pool; pass ``executor`` to give the
        child its own instead (a sweep typically hands each fork a
        :class:`~repro.parallel.SequentialExecutor` so parallelism lives at
        the sweep level, not nested inside each update).  Pending modifiers
        on this simulator are flushed first so the forked state is well
        defined; the child's gate-handle translation table is exposed as
        ``forked_gate_map`` (parent handle uid -> child handle).
        """
        # The forked state is "the state after all issued modifiers".
        if self.graph.frontiers or self._num_updates == 0:
            self.update_state()
        circuit, gate_map, net_map = self.circuit.clone()

        child = QTaskSimulator.__new__(QTaskSimulator)
        child.circuit = circuit
        child.block_size = self.block_size
        child.copy_on_write = self.copy_on_write
        child.block_directory = self.block_directory
        child.fusion = self.fusion
        child.max_fused_qubits = self.max_fused_qubits
        child.dim = self.dim
        child.n_blocks = self.n_blocks
        child._owns_executor = executor is not None
        child.executor = executor if executor is not None else self.executor
        # The kernel backend is shared by default (backends are stateless or
        # hold a module-level worker pool), so a run_shots / SweepRunner
        # fleet funnels every fork's plans through one set of workers; pass
        # ``kernel_backend`` to give a child a different engine.
        if kernel_backend is None:
            child.kernel_backend = self.kernel_backend
            child._backend = self._backend
            fell_back = False
        else:
            child.kernel_backend = kernel_backend
            child._backend, fell_back = make_backend(kernel_backend)
        # The store transport is shared by default: the child's stage stores
        # adopt the parent's blocks by reference, which only works when both
        # sides resolve payloads through the same placement (share_from
        # falls back to copying across transport boundaries).  A fleet of
        # forks therefore aliases one set of shard payloads; pass
        # ``store_transport`` to rehome a child explicitly.
        if store_transport is None:
            child.store_transport = self.store_transport
            child._store_transport = self._store_transport
            st_fell_back = False
        else:
            child.store_transport = store_transport
            child._store_transport, st_fell_back = make_transport(store_transport)
        # The child gets its own registry (counters start at zero) tagged
        # with this session's id, so fleet aggregation can merge fork stats
        # back instead of losing them -- see SweepRunner.merged_metrics().
        child._init_telemetry(
            tracing=self.telemetry.tracer.enabled,
            parent=self.telemetry,
            fell_back=fell_back,
        )
        child._init_fault_tolerance()
        child._init_store_state(fell_back=st_fell_back)
        child._initial = InitialStateStore(child.dim, child.block_size)
        child._directory = BlockDirectory(child._initial)
        child.graph = PartitionGraph(
            BlockRange(0, child.n_blocks - 1),
            on_stage_inserted=child._on_stage_entered,
            on_stage_removed=child._on_stage_left,
        )
        child._net_stages = {net.uid: [] for net in circuit.nets()}
        child._matvec = {}
        child._gate_stage = {}
        child._stage_handles = {}
        child._stage_net = {}
        child._num_fused = self._num_fused
        child._net_index = None
        child._net_uid_order = []
        child.last_update = UpdateReport()
        child._num_updates = self._num_updates
        child.observable_cache = self.observable_cache
        child._dirty_listeners = []
        child._observables = None
        # The child's trajectory starts as a verbatim copy of the parent's
        # classical state; the mirror hook below rebinds every cloned
        # dynamic stage to this record, so re-collapses stay fork-local.
        child.outcomes = self.outcomes.clone()
        child._dynamic_stages = {}

        # Mirror the parent's stages in its exact global order (the block
        # directory's seq-based resolution depends on it) and clone the
        # partition-graph topology verbatim -- O(nodes + edges), no
        # insertion scans.
        stage_map: Dict[int, Stage] = {}
        for stage in self.graph.stages:
            child_stage = stage.clone_for_fork()
            stage_map[stage.uid] = child_stage
            members = [gate_map[h.uid] for h in self._stage_handles[stage.uid]]
            child._stage_handles[child_stage.uid] = members
            for child_handle in members:
                child._gate_stage[child_handle.uid] = child_stage
            child._stage_net[child_stage.uid] = net_map[
                self._stage_net[stage.uid]
            ].uid
        child.graph.mirror_from(self.graph, stage_map)
        for net_uid, stages in self._net_stages.items():
            child_net = net_map.get(net_uid)
            if child_net is not None:
                child._net_stages[child_net.uid] = [
                    stage_map[s.uid] for s in stages
                ]
        for net_uid, stage in self._matvec.items():
            child._matvec[net_map[net_uid].uid] = stage_map[stage.uid]

        # Adopt the parent's computed blocks copy-on-write (zero copies);
        # the attached directory learns the ownership via store callbacks.
        for stage in self.graph.stages:
            stage_map[stage.uid].store.share_from(stage.store)

        # A warm observables cache is valid verbatim (identical state).
        if self._observables is not None:
            child._observables = self._observables.clone_for(child)

        child.forked_gate_map = gate_map
        circuit.register_observer(child)
        return child

    # ------------------------------------------------------------------
    # partition-graph hooks: keep the block directory in sync
    # ------------------------------------------------------------------

    def _on_stage_entered(self, stage: Stage) -> None:
        stage.store.bind_transport(self._store_transport)
        if isinstance(stage, DynamicStage):
            stage.bind_record(self.outcomes)
            if isinstance(stage, ClassicallyControlledStage):
                stage.bind_clbit_lookup(self._clbit_value_asof)
            self._dynamic_stages[stage.uid] = stage
        if self.block_directory:
            self._directory.attach(stage)

    def _clbit_value_asof(self, bit: int, before_seq: int) -> int:
        """The value of ``bit`` at program point ``before_seq``.

        Resolved from the recorded outcome of the latest measurement stage
        that writes ``bit`` and executes strictly before ``before_seq`` --
        never from the final classical register, whose bits a *later*
        measurement may have overwritten on a previous (partial) execution
        pass.  This is what makes incrementally re-executed c_if stages read
        the same values a from-scratch run would.
        """
        best_seq = -1
        value = 0
        for stage in self._dynamic_stages.values():
            if (
                isinstance(stage, MeasureStage)
                and stage.op.clbit == bit
                and best_seq < stage.seq < before_seq
            ):
                outcome = self.outcomes.outcome_of(stage.op.op_index)
                if outcome is not None:
                    best_seq = stage.seq
                    value = outcome
        return value

    def _on_stage_left(self, stage: Stage) -> None:
        # A departing stage's stored blocks now resolve to an *older* writer,
        # which changes the final state even when nothing re-executes (e.g.
        # removing the last gate of the circuit) -- so they are dirty now.
        self._notify_dirty(stage.store.stored_blocks())
        self._dynamic_stages.pop(stage.uid, None)
        if isinstance(stage, MeasureStage):
            # A removed measurement no longer backs its classical bit:
            # forget its outcome and fall back to the latest surviving
            # writer of the bit (0 when none), so downstream c_if stages --
            # which the removal's frontier re-executes -- read the value a
            # from-scratch run of the edited circuit would produce.
            self.outcomes.discard_op(stage.op.op_index)
            self._restore_clbit(stage.op.clbit)
        elif isinstance(stage, ResetStage):
            self.outcomes.discard_op(stage.op.op_index)
        if self.block_directory:
            self._directory.detach(stage)
        stage.store.release_remote()

    def _restore_clbit(self, clbit: int) -> None:
        """Rebind ``clbit`` to the last surviving measurement that wrote it."""
        value = 0
        for handle in self.circuit.gates():
            op = handle.gate
            if isinstance(op, MeasureOp) and op.clbit == clbit:
                outcome = self.outcomes.outcome_of(op.op_index)
                if outcome is not None:
                    value = outcome
        self.outcomes.set_bit(clbit, value)

    # ------------------------------------------------------------------
    # dirty-block listeners (observable caches)
    # ------------------------------------------------------------------

    def add_dirty_listener(self, listener: Callable[[Iterable[int]], None]) -> None:
        """Subscribe to dirty-block notifications (see ``_dirty_listeners``)."""
        if listener not in self._dirty_listeners:
            self._dirty_listeners.append(listener)

    def remove_dirty_listener(self, listener: Callable[[Iterable[int]], None]) -> None:
        if listener in self._dirty_listeners:
            self._dirty_listeners.remove(listener)

    def _notify_dirty(self, blocks: Iterable[int]) -> None:
        if not self._dirty_listeners:
            return
        blocks = tuple(blocks)
        if not blocks:
            return
        for listener in self._dirty_listeners:
            listener(blocks)

    # ------------------------------------------------------------------
    # CircuitObserver callbacks: maintain stages + partition graph
    # ------------------------------------------------------------------

    def on_net_inserted(self, circuit: Circuit, net: NetHandle, position: int) -> None:
        self._net_stages.setdefault(net.uid, [])
        self._net_index = None

    def on_net_removed(self, circuit: Circuit, net: NetHandle,
                       removed_gates: Sequence[GateHandle]) -> None:
        # Individual gate removals already dismantled the net's stages.
        self._net_stages.pop(net.uid, None)
        self._matvec.pop(net.uid, None)
        self._net_index = None

    def on_gate_inserted(self, circuit: Circuit, handle: GateHandle) -> None:
        net = handle.net
        self._net_stages.setdefault(net.uid, [])
        gate = handle.gate
        if is_dynamic_op(gate):
            self.outcomes.ensure_bits(circuit.num_clbits)
            stage = self._make_dynamic_stage(gate)
            self._insert_stage(handle, net, stage)
            return
        if is_superposition_gate(gate):
            stage = self._matvec.get(net.uid)
            if stage is not None:
                stage.add_gate(gate)
                self._gate_stage[handle.uid] = stage
                self._stage_handles[stage.uid].append(handle)
                if self.fusion:
                    # The gate joins a stage that executes earlier than its
                    # insertion time would suggest; fused runs downstream that
                    # pulled an earlier-net gate past this point must split.
                    self._dissolve_conflicting(stage.seq + 1, net, gate)
                self.graph.touch_stage(stage)
                return
            stage = MatVecStage(
                [gate], circuit.num_qubits, self.block_size, self.copy_on_write
            )
            self._matvec[net.uid] = stage
            self._insert_stage(handle, net, stage)
            return
        stage = UnitaryStage(
            gate, circuit.num_qubits, self.block_size, self.copy_on_write
        )
        self._insert_stage(handle, net, stage, try_fusion=self.fusion)

    def _make_dynamic_stage(self, op) -> DynamicStage:
        """Build the stage for a measure/reset/classically-controlled op."""
        args = (self.circuit.num_qubits, self.block_size, self.copy_on_write)
        if isinstance(op, MeasureOp):
            return MeasureStage(op, *args, record=self.outcomes)
        if isinstance(op, ResetOp):
            return ResetStage(op, *args, record=self.outcomes)
        if isinstance(op, CGate):
            return ClassicallyControlledStage(op, *args, record=self.outcomes)
        raise CircuitError(f"unknown dynamic operation {op!r}")

    def _heuristic_position(self, stages: List[Stage], new_stage: UnitaryStage) -> int:
        """Within-net position: matvec first, then ascending block count.

        The paper connects a net's non-superposition gates "in an increasing
        order of block count in partitions" so large partitions (which fan out
        widely) are deferred.  New stages are placed at their sorted position
        without reordering existing stages.
        """
        start = 0
        if stages and isinstance(stages[0], MatVecStage):
            start = 1
        new_count = new_stage.total_block_count()
        for i in range(start, len(stages)):
            other = stages[i]
            if isinstance(other, UnitaryStage) and other.total_block_count() > new_count:
                return i
        return len(stages)

    def _insert_stage(
        self,
        handle: GateHandle,
        net: NetHandle,
        stage: Stage,
        *,
        try_fusion: bool = False,
    ) -> None:
        within, position = self._place(net, stage, handle.gate)
        if try_fusion and position > 0:
            candidate = self.graph.stage_at(position - 1)
            if self._fuse_into(candidate, handle, net, position):
                return
        self._net_stages[net.uid].insert(within, stage)
        self.graph.insert_stage(stage, position)
        self._gate_stage[handle.uid] = stage
        self._stage_handles[stage.uid] = [handle]
        self._stage_net[stage.uid] = net.uid

    def _place(self, net: NetHandle, stage: Stage, gate: Gate) -> Tuple[int, int]:
        """Within-net and global insertion slots for ``stage``.

        With fusion enabled, any fused stage at or after the chosen slot that
        holds a member from an earlier net overlapping ``gate``'s qubits is
        dissolved first (the member must execute before ``gate`` but no longer
        would), and the slot is recomputed against the new layout.
        """
        while True:
            stages = self._net_stages.setdefault(net.uid, [])
            if isinstance(stage, MatVecStage):
                within = 0  # the matvec stage always leads its net
            elif isinstance(stage, DynamicStage):
                # Dynamic ops are qubit- and clbit-disjoint from their net
                # mates (the extended net invariant), so appending keeps the
                # block-count heuristic of the unitary stages untouched.
                within = len(stages)
            else:
                within = self._heuristic_position(stages, stage)
            position = self._global_position(net, within)
            if not self.fusion or not self._dissolve_conflicting(position, net, gate):
                return within, position

    # ------------------------------------------------------------------
    # stage fusion (runs of consecutive non-superposition gates)
    # ------------------------------------------------------------------

    def _fuse_into(
        self,
        candidate: Stage,
        handle: GateHandle,
        net: NetHandle,
        position: int,
    ) -> bool:
        """Fuse ``handle``'s gate into the immediately preceding stage.

        The fused stage takes the candidate's slot in the global order (the
        two are adjacent, so composing their actions preserves the execution
        order) and is filed under the new gate's net, which keeps every
        earlier-net member ahead of all later insertion points.
        """
        if not isinstance(candidate, UnitaryStage):
            return False
        gate = handle.gate
        if len(set(candidate.qubits) | set(gate.qubits)) > self.max_fused_qubits:
            return False
        action, union_qubits = compose_actions(
            candidate.action, candidate.qubits, gate.action(), gate.qubits
        )
        members = list(self._stage_handles[candidate.uid]) + [handle]
        fused = FusedUnitaryStage(
            [h.gate for h in members],
            self.circuit.num_qubits,
            self.block_size,
            self.copy_on_write,
            action=action,
            qubits=union_qubits,
        )
        cand_net_uid = self._stage_net.pop(candidate.uid)
        cand_list = self._net_stages[cand_net_uid]
        # A candidate from another net can only precede slot `position` when
        # this net contributes nothing before it, so the fused stage leads
        # this net's list; otherwise it takes the candidate's own index.
        index = cand_list.index(candidate) if cand_net_uid == net.uid else 0
        cand_list.remove(candidate)
        self._stage_handles.pop(candidate.uid)
        self.graph.remove_stage(candidate)
        self._net_stages[net.uid].insert(index, fused)
        self.graph.insert_stage(fused, position - 1)
        for h in members:
            self._gate_stage[h.uid] = fused
        self._stage_handles[fused.uid] = members
        self._stage_net[fused.uid] = net.uid
        if not isinstance(candidate, FusedUnitaryStage):
            self._num_fused += 1
        return True

    def _dissolve_conflicting(self, position: int, net: NetHandle, gate: Gate) -> bool:
        """Dissolve fused stages at/after ``position`` that ``gate`` invalidates.

        A fused stage downstream of the insertion slot may hold a member from
        a net *earlier* than ``net``; if that member shares qubits with
        ``gate`` it must execute before it, which the fused placement no
        longer guarantees.  Returns True when anything was dissolved.
        """
        if not self._num_fused:
            return False
        candidates = [
            s
            for s in self.graph.stages_after(position)
            if isinstance(s, FusedUnitaryStage)
        ]
        if not candidates:
            return False
        qubits = set(gate.qubits)
        net_positions = self._net_positions()
        net_pos = net_positions[net.uid]
        conflicting: List[FusedUnitaryStage] = []
        for stage in candidates:
            for h in self._stage_handles[stage.uid]:
                if qubits.intersection(h.gate.qubits) and (
                    net_positions[h.net.uid] < net_pos
                ):
                    conflicting.append(stage)
                    break
        for stage in conflicting:
            if stage.uid in self._stage_handles:  # not already dissolved
                self._dissolve(stage)
        return bool(conflicting)

    def _dissolve(
        self, stage: FusedUnitaryStage, skip: Optional[GateHandle] = None
    ) -> None:
        """Replace a fused stage with individual stages for its members.

        Each member is re-inserted through the normal placement path of its
        own net (no re-fusion), so net-order semantics are restored exactly.
        """
        handles = self._stage_handles.pop(stage.uid)
        net_uid = self._stage_net.pop(stage.uid)
        self._net_stages[net_uid].remove(stage)
        self._num_fused -= 1
        self.graph.remove_stage(stage)
        for h in handles:
            self._gate_stage.pop(h.uid, None)
        for h in handles:
            if h is skip:
                continue
            single = UnitaryStage(
                h.gate, self.circuit.num_qubits, self.block_size, self.copy_on_write
            )
            self._insert_stage(h, h.net, single)

    def _net_positions(self) -> Dict[int, int]:
        """Net uid -> circuit position, rebuilt only after net insert/remove."""
        cache = self._net_index
        if cache is None:
            self._net_uid_order = [n.uid for n in self.circuit.nets()]
            cache = {uid: i for i, uid in enumerate(self._net_uid_order)}
            self._net_index = cache
        return cache

    def _global_position(self, net: NetHandle, within: int) -> int:
        idx = self._net_positions().get(net.uid)
        if idx is None:
            # net not found (should not happen): append at the end
            return sum(len(s) for s in self._net_stages.values()) + within
        net_stages = self._net_stages
        pos = 0
        for uid in self._net_uid_order[:idx]:
            stages = net_stages.get(uid)
            if stages:
                pos += len(stages)
        return pos + within

    def on_gate_updated(
        self, circuit: Circuit, handle: GateHandle, old_gate: Gate
    ) -> None:
        """A gate was retuned in place: keep its stage, mark it dirty.

        The stage object, its store, and the partition-graph topology all
        survive a retune whenever the new parameters preserve the action's
        classification and partition layout (the overwhelmingly common case
        in variational sweeps: ``rz``/``rx``/``cp`` angle changes).  Only the
        stage's own partitions join the frontier; the incremental update then
        re-simulates exactly the downstream cone -- the same scope a newly
        inserted gate would have, without any graph surgery.

        When the retune *does* change the classification (e.g. ``rx(pi)``
        <-> ``rx(pi/2)`` crossing the permutation/superposition boundary) or
        the layout (angles collapsing a gate to the identity), the stage is
        rebuilt through the ordinary remove+insert observer path; the gate
        handle keeps its identity either way.
        """
        stage = self._gate_stage.get(handle.uid)
        if stage is None:
            return
        new_gate = handle.gate
        if isinstance(stage, MatVecStage):
            if is_superposition_gate(new_gate) and stage.retune_gate(
                old_gate, new_gate
            ):
                self.graph.touch_stage(stage)
                return
        elif isinstance(stage, FusedUnitaryStage):
            members = self._stage_handles[stage.uid]
            if not is_superposition_gate(new_gate) and stage.recompose(
                [h.gate for h in members]
            ):
                self.graph.touch_stage(stage)
                return
        else:
            if stage.retune(new_gate):
                self.graph.touch_stage(stage)
                return
        # Classification or partition layout changed: rebuild this gate's
        # stage via the remove+insert path.  The removal path must see the
        # *old* gate (matvec stages look members up by value).
        handle.gate = old_gate
        self.on_gate_removed(circuit, handle)
        handle.gate = new_gate
        self.on_gate_inserted(circuit, handle)

    def on_gate_removed(self, circuit: Circuit, handle: GateHandle) -> None:
        stage = self._gate_stage.pop(handle.uid, None)
        if stage is None:
            return
        net = handle.net
        if isinstance(stage, FusedUnitaryStage):
            # Removing one member splits the run back into single-gate stages.
            self._dissolve(stage, skip=handle)
            return
        if isinstance(stage, MatVecStage):
            stage.remove_gate(handle.gate)
            members = self._stage_handles.get(stage.uid)
            if members is not None and handle in members:
                members.remove(handle)
            if not stage.is_empty:
                self.graph.touch_stage(stage)
                return
            self._matvec.pop(net.uid, None)
        stages = self._net_stages.get(net.uid, [])
        if stage in stages:
            stages.remove(stage)
        self._stage_handles.pop(stage.uid, None)
        self._stage_net.pop(stage.uid, None)
        self.graph.remove_stage(stage)

    # ------------------------------------------------------------------
    # trajectories (dynamic circuits)
    # ------------------------------------------------------------------

    @property
    def num_dynamic_stages(self) -> int:
        """Live measure/reset/classically-controlled stages."""
        return len(self._dynamic_stages)

    def reset_trajectory(self, seed=None) -> None:
        """Re-arm every dynamic operation for a fresh trajectory.

        Clears the outcome record (reseeding its keyed randomness with
        ``seed``) and marks every dynamic stage -- including its sync
        barrier, where outcomes are drawn -- as a frontier, so the next
        :meth:`update_state` re-collapses from the first measurement onward
        while the unitary prefix stays cached (copy-on-write makes the
        re-collapse exactly as incremental as a gate update at the same
        depth).  This is the primitive :meth:`repro.QTask.run_shots` drives
        once per shot on its forked sessions.
        """
        self.outcomes.reseed(seed)
        for stage in self._dynamic_stages.values():
            self.graph.touch_stage_full(stage)

    # ------------------------------------------------------------------
    # state update (full or incremental)
    # ------------------------------------------------------------------

    def update_state(self) -> UpdateReport:
        """Re-simulate every partition affected by modifiers since last call.

        With copy-on-write disabled (the §IV.F ablation) every stage
        materialises -- and therefore depends on -- the entire previous state
        vector, so incremental scoping is not sound and every update
        re-simulates all partitions.  COW is precisely what makes scoped
        updates possible.
        """
        tel = self.telemetry
        self._update_event_mark = tel.events.last_seq
        prev = tsession.activate(tel)
        try:
            if tel.tracer.enabled:
                with tel.tracer.span("update") as span:
                    report = self._update_with_store_recovery()
                    span.set("affected", report.affected_partitions)
                    span.set("block_writes", report.executed_block_writes)
                    span.set("update", self._num_updates - 1)
            else:
                report = self._update_with_store_recovery()
            self._update_seconds.observe(report.elapsed_seconds)
            return report
        finally:
            tsession.deactivate(prev)

    def _update_with_store_recovery(self) -> UpdateReport:
        """Run the update inside the store-transport recovery envelope.

        With a remote transport, any read or publish can surface a
        :class:`TransportFailure` (a SIGKILLed shard, an escalated run of
        ``store.shard`` faults).  Remote payloads are then gone wholesale,
        so recovery is coarse: :meth:`_recover_store_transport` respawns the
        dead shards (or, past the store breaker threshold, falls back to
        the local transport), forsakes every stage store and re-marks every
        stage a full frontier.  The re-execution replays the *recorded*
        trajectory -- outcomes are temporarily forced so re-collapses land
        on the values already observed instead of redrawing -- and the
        caller's forcing table is restored afterwards.  The local transport
        cannot fail, so the common path is one straight call.
        """
        transport = self._store_transport
        if not transport.is_remote:
            return self._update_state_impl()
        rollback = self.outcomes.snapshot()
        recorded = self.outcomes.recorded_outcomes()
        saved_forced: Optional[Dict[int, int]] = None
        attempt = 0
        try:
            if not transport.healthy():
                self._recover_store_transport(
                    "shard process died between updates"
                )
                saved_forced = self.outcomes.replace_forced(recorded)
            while True:
                try:
                    return self._update_state_impl()
                except TransportFailure as exc:
                    attempt += 1
                    if attempt > _STORE_RECOVERY_RETRIES:
                        raise
                    self._recover_store_transport(
                        f"{type(exc).__name__}: {exc}"
                    )
                    self.outcomes.restore(rollback)
                    forced = self.outcomes.replace_forced(recorded)
                    if saved_forced is None:
                        saved_forced = forced
        finally:
            if saved_forced is not None:
                self.outcomes.replace_forced(saved_forced)

    def _recover_store_transport(self, reason: str) -> None:
        """Respawn-or-fallback after a transport failure, then rebuild.

        A dead shard loses its span and a respawn purges the survivors (one
        consistent, empty placement for every store on the runtime), so the
        previously computed blocks are unconditionally gone: every stage
        store forsakes its bookkeeping and every stage becomes a full
        frontier for the caller to re-execute.  The first failure respawns;
        reaching ``store_breaker_threshold`` trips the store breaker, which
        swaps this session to the local transport for good and emits the
        same ``breaker.transition`` event the backend ladder uses.
        """
        self._store_failures += 1
        transport = self._store_transport
        recovered = False
        if (
            transport.is_remote
            and self._store_failures < self.store_breaker_threshold
        ):
            try:
                recovered = transport.respawn_dead()
            except TransportFailure:  # pragma: no cover - respawn raced
                recovered = False
        if not recovered and transport.is_remote:
            self._store_transport, _ = make_transport("local")
            transition = {
                "from": transport.name,
                "to": self._store_transport.name,
                "reason": reason,
                "update": self._num_updates,
            }
            self._store_transitions.append(transition)
            tsession.emit_event("breaker.transition", **transition)
            logger.warning(
                "store breaker tripped: transport %r -> %r (%s)",
                transition["from"],
                transition["to"],
                reason,
            )
        else:
            logger.warning(
                "store transport failure (%s); shards respawned, "
                "re-executing from the initial state",
                reason,
            )
        tsession.emit_event(
            "store.recovery",
            reason=reason,
            transport=self._store_transport.name,
            failures=self._store_failures,
        )
        target = self._store_transport
        for stage in self.graph.stages:
            stage.store.forsake_blocks(target)
            self.graph.touch_stage_full(stage)
        # Derived caches hold values computed from the lost blocks.
        self._notify_dirty(range(self.n_blocks))

    def _update_state_impl(self) -> UpdateReport:
        start = time.perf_counter()
        if self.copy_on_write:
            affected = self.graph.affected_nodes()
        else:
            affected = sorted(
                self.graph.all_nodes(),
                key=lambda n: (n.stage.seq, 0 if n.is_sync else 1, n.block_range.first),
            )
            if not self.graph.frontiers and self._num_updates > 0:
                affected = []
        total_nodes = self.graph.num_nodes()
        report = UpdateReport(
            affected_partitions=len(affected),
            total_partitions=total_nodes,
            was_incremental=self._num_updates > 0,
        )
        if affected:
            report.executed_block_writes = self._execute_with_recovery(affected)
            if self._dirty_listeners:
                if self.copy_on_write:
                    dirty: Set[int] = set()
                    for node in affected:
                        if not node.is_sync:
                            dirty.update(node.block_range.blocks())
                else:
                    # dense mode rewrites (and back-fills) whole vectors
                    dirty = set(range(self.n_blocks))
                self._notify_dirty(dirty)
        self.graph.clear_frontiers()
        report.elapsed_seconds = time.perf_counter() - start
        self.last_update = report
        self._num_updates += 1
        return report

    def _execute_with_recovery(self, affected: List[PartitionNode]) -> int:
        """Run ``_execute`` inside the fault envelope.

        The armed scope is what lets an installed :class:`FaultPlan` fire
        inside this update (and nowhere else).  The bounded retry is the
        outermost recovery layer: stage outputs are deterministic overwrites
        of their own stores, so re-executing the whole affected cone is
        always safe -- provided the classical state is first rolled back to
        the attempt boundary, because a re-executed collapse would otherwise
        advance its keyed stream one extra draw and fork the trajectory away
        from a clean run's.  Anything the per-run and chunk-level layers
        could not absorb -- including an exhausted backend ladder -- lands
        here before giving up.
        """
        if faults.ACTIVE is None:
            return self._execute(affected)
        with faults.armed():
            attempt = 0
            rollback = self.outcomes.snapshot()
            while True:
                try:
                    return self._execute(affected)
                except FaultInjected as exc:
                    attempt += 1
                    if attempt > _UPDATE_FAULT_RETRIES:
                        raise
                    self.outcomes.restore(rollback)
                    self._update_retries.inc()
                    tsession.emit_event(
                        "trajectory.rollback", update=self._num_updates
                    )
                    tsession.emit_event(
                        "update.retry", attempt=attempt, reason=str(exc)
                    )
                    logger.warning(
                        "update attempt %d failed (%s); re-executing the "
                        "affected cone",
                        attempt,
                        exc,
                    )

    def _reader_for(self, stage: Stage, stage_order: List[Stage]):
        """The stage-input view: everything written strictly before ``stage``.

        Directory mode returns an O(1) :class:`DirectoryReader` (resolution
        is an O(log W) lookup per block); legacy mode builds the O(S) store
        chain the paper's naive formulation implies.
        """
        if self.block_directory:
            return DirectoryReader(self._directory, stage.seq)
        stores = [self._initial] + [s.store for s in stage_order[: stage.seq]]
        return StoreChain(stores)

    def _execute(self, affected: List[PartitionNode]) -> int:
        stage_order = self.graph.stages
        if not self.copy_on_write:
            # Dense mode re-simulates everything: drop previously materialised
            # blocks so no stale copy can shadow the recomputation.
            for stage in stage_order:
                stage.store.clear()
        if self._backend is not None:
            return self._execute_plan(affected, stage_order)
        return self._execute_legacy(affected, stage_order)

    # -- plan pipeline (kernel_backend != "legacy") ---------------------------

    def _execute_plan(
        self, affected: List[PartitionNode], stage_order: List[Stage]
    ) -> int:
        """Compile the frontier into one plan per stage and batch-execute it.

        One executor task per affected *stage* (not per partition): the task
        runs the stage's ``prepare`` when its sync barrier is affected,
        materialises the stage's run table, and hands it -- split into at
        most ``Executor.subflow_width`` chunk subflows -- to the kernel
        backend.  Stage-granular edges reproduce the partition graph's
        ordering (edges only ever point to later stages).
        """
        tel = self.telemetry
        if tel.tracer.enabled:
            with tel.tracer.span("plan.build") as pspan:
                plan = build_execution_plan(
                    affected, lambda stage: self._reader_for(stage, stage_order)
                )
                pspan.set("stages", plan.num_stages)
                pspan.set("runs", plan.total_runs())
        else:
            plan = build_execution_plan(
                affected, lambda stage: self._reader_for(stage, stage_order)
            )
        # Parent span for executor-side task spans: the enclosing ``update``
        # span on this thread (None when tracing is off).
        parent_span = tel.tracer.current_span_id()
        graph = TaskGraph("update_state")
        tasks: Dict[int, object] = {}
        for sp in plan.stage_plans:
            body = self._make_plan_body(sp)
            # Trace context rides on the closure: Executor._guarded sees it
            # and re-activates this session's telemetry (and span parent)
            # inside whichever worker thread steals the task.
            body.trace_context = (tel, parent_span)
            tasks[sp.stage.uid] = graph.emplace(body, name=sp.stage.label())
        for pred_uid, succ_uid in plan.edges:
            tasks[pred_uid].precede(tasks[succ_uid])
        self.executor.run(graph)

        self._plans_built.inc(plan.num_stages)
        self._runs_batched.inc(plan.total_runs())
        self._plan_chunks.inc(plan.total_chunks())
        self._updates_planned.inc()

        block_writes = plan.block_writes
        if not self.copy_on_write:
            readers = {sp.stage.uid: sp.reader for sp in plan.stage_plans}
            block_writes += self._fill_dense_blocks(affected, readers)
        return block_writes

    def _sync_prepare_runner(self, stage: Stage, reader):
        """An idempotent ``prepare`` thunk for sync (collapse) stages.

        Executor-level fault retries re-run whole task bodies; a collapse
        stage's ``prepare`` draws from a keyed stream, so a naive re-run
        would consume one extra draw and fork the trajectory away from a
        clean run's.  The thunk snapshots the classical state on first
        entry and rolls back before every re-entry, making re-preparation
        redraw the identical outcome.  Safe because sync stages are
        totally ordered by their all-blocks dependencies: no other
        record-writing task can be in flight concurrently.
        """
        snap: List[tuple] = []

        def run_prepare():
            if faults.ACTIVE is not None:
                if snap:
                    self.outcomes.restore(snap[0])
                else:
                    snap.append(self.outcomes.snapshot())
            stage.prepare(reader)

        return run_prepare

    def _make_plan_body(self, sp: StagePlan):
        width = max(1, int(getattr(self.executor, "subflow_width", 1)))
        run_prepare = (
            self._sync_prepare_runner(sp.stage, sp.reader) if sp.has_sync else None
        )

        tel = self.telemetry

        def body():
            if run_prepare is not None:
                if tel.tracer.enabled:
                    with tel.tracer.span(
                        "stage.prepare", {"stage": sp.stage.label()}
                    ):
                        run_prepare()
                else:
                    run_prepare()
            table = sp.build_table()
            if table.num_runs == 0:
                return None
            chunks = table.split(width)
            sp.num_chunks = len(chunks)
            if len(chunks) == 1:
                self._run_plan_chunk(sp, chunks[0])
                return None
            # Subflow children run on arbitrary worker threads; carry the
            # trace context (parented to the current span, i.e. the update)
            # onto each chunk closure so their spans nest correctly.
            parent = tel.tracer.current_span_id()
            subtasks = []
            for c in chunks:
                fn = (lambda c=c: self._run_plan_chunk(sp, c))
                fn.trace_context = (tel, parent)
                subtasks.append(fn)
            return subtasks

        return body

    def _run_plan_chunk(self, sp: StagePlan, chunk) -> None:
        if self.telemetry.tracer.enabled:
            amps = int((chunk.his - chunk.los + 1).sum()) if chunk.num_runs else 0
            with self.telemetry.tracer.span(
                "run.chunk",
                {
                    "stage": sp.stage.label(),
                    "backend": (
                        self._backend.name if self._backend is not None
                        else "legacy"
                    ),
                    "runs": chunk.num_runs,
                    "amps": amps,
                },
            ):
                self._run_plan_chunk_impl(sp, chunk)
        else:
            self._run_plan_chunk_impl(sp, chunk)

    def _run_plan_chunk_impl(self, sp: StagePlan, chunk) -> None:
        store = sp.stage.store
        if store.is_remote_backed:
            # Batch-fetch the chunk's input spans into the store read caches
            # up front: one transport round-trip per contiguous span instead
            # of one per cache-missing block inside the kernels.
            prefetch = getattr(sp.reader, "prefetch_blocks", None)
            if prefetch is not None:
                for first, last in chunk.block_spans(self.block_size):
                    prefetch(first, last)
            # Symmetrically, batch the output side: kernel publishes stay
            # local for the duration of the chunk and ship in contiguous
            # runs when the batch closes (one round-trip per run, not one
            # per publish).
            with store.publish_batch():
                self._execute_chunk(sp, chunk)
        else:
            self._execute_chunk(sp, chunk)

    def _execute_chunk(self, sp: StagePlan, chunk) -> None:
        backend = self._backend
        if backend is None:
            # The breaker degraded this session to legacy mid-update;
            # remaining chunks of the in-flight plan run run-granular.
            self._run_chunk_fallback(sp, chunk)
            return
        try:
            backend.execute_plan(sp.reader, sp.stage.store, chunk)
        except Exception as exc:
            # Environmental failures (a torn-down worker pool mid-run) and
            # injected faults must not lose the update: chunk writes are
            # deterministic overwrites, so re-executing run-granular
            # in-process is always safe.  Genuine programming errors from a
            # non-failure-safe backend still propagate.
            if not backend.failure_safe and not isinstance(exc, FaultInjected):
                raise
            self._backend_fallbacks.inc()
            tsession.emit_event(
                "chunk.fallback",
                stage=sp.stage.label(),
                backend=backend.name,
                reason=f"{type(exc).__name__}: {exc}",
            )
            with self._breaker_lock:
                self._consecutive_chunk_failures += 1
                tripped = (
                    self._consecutive_chunk_failures >= self.breaker_threshold
                )
                if tripped:
                    self._degrade_backend(f"{type(exc).__name__}: {exc}")
            if not tripped:
                logger.warning(
                    "backend %r failed on a plan chunk (%s); falling back "
                    "to run-granular execution",
                    backend.name,
                    exc,
                )
            self._run_chunk_fallback(sp, chunk)
        else:
            with self._breaker_lock:
                self._consecutive_chunk_failures = 0

    def _run_chunk_fallback(self, sp: StagePlan, chunk) -> None:
        """Run-granular chunk execution with bounded per-run fault retries.

        Each run is retried in place on an injected fault (it redraws the
        site streams, so retries converge); past the bound the fault
        propagates to the update-level retry.
        """
        for spec in iter_table_runs(chunk):
            attempt = 0
            while True:
                try:
                    execute_run(sp.reader, sp.stage.store, spec)
                    break
                except FaultInjected:
                    attempt += 1
                    if attempt > _RUN_FAULT_RETRIES:
                        raise
                    self._run_retries.inc()
                    tsession.emit_event(
                        "run.retry",
                        stage=sp.stage.label(),
                        attempt=attempt,
                    )

    def _degrade_backend(self, reason: str) -> bool:
        """Walk the breaker ladder one rung down (caller holds breaker lock).

        Quarantines the current backend for the rest of this session and
        swaps in the next constructible rung of ``_BACKEND_LADDER``; the
        transition is recorded for :meth:`plan_report`/:meth:`statistics`.
        Returns ``False`` only from the bottom rung (legacy), which cannot
        fail environmentally and has nowhere left to go.
        """
        current = self._backend.name if self._backend is not None else "legacy"
        try:
            idx = _BACKEND_LADDER.index(current)
        except ValueError:
            idx = 0  # custom backend: degrade into the standard ladder
        for name in _BACKEND_LADDER[idx + 1 :]:
            if name == "numba" and not HAVE_NUMBA:
                continue
            if name == "legacy":
                self._backend = None
            elif name == "numba":  # pragma: no cover - needs numba
                self._backend = NumbaBackend()
            else:
                self._backend = NumpyBatchBackend()
            self._consecutive_chunk_failures = 0
            transition = {
                "from": current,
                "to": name,
                "reason": reason,
                "update": self._num_updates,
            }
            self._backend_transitions.append(transition)
            tsession.emit_event("breaker.transition", **transition)
            logger.warning(
                "circuit breaker tripped: backend %r -> %r (%s)",
                current,
                name,
                reason,
            )
            return True
        return False

    # -- legacy per-run task path (kernel_backend == "legacy") ----------------

    def _execute_legacy(
        self, affected: List[PartitionNode], stage_order: List[Stage]
    ) -> int:
        readers: Dict[int, object] = {}
        for node in affected:
            if node.stage.uid not in readers:
                readers[node.stage.uid] = self._reader_for(node.stage, stage_order)

        graph = TaskGraph("update_state")
        tasks: Dict[int, object] = {}
        block_writes = 0

        for node in affected:
            reader = readers[node.stage.uid]
            if node.is_sync:
                task = graph.emplace(
                    self._make_sync_body(node, reader), name=node.name()
                )
            else:
                task = graph.emplace(
                    self._make_partition_body(node, reader), name=node.name()
                )
                block_writes += len(node.block_range)
            tasks[node.uid] = task

        affected_ids = set(tasks)
        for node in affected:
            for succ in node.succs:
                if succ.uid in affected_ids:
                    tasks[node.uid].precede(tasks[succ.uid])

        self.executor.run(graph)

        if not self.copy_on_write:
            block_writes += self._fill_dense_blocks(affected, readers)
        return block_writes

    def _make_sync_body(self, node: PartitionNode, reader):
        return self._sync_prepare_runner(node.stage, reader)

    def _make_partition_body(self, node: PartitionNode, reader):
        stage = node.stage
        block_range = node.block_range

        def body():
            # One closure per batched block run; single-run subflows are
            # executed inline by the executors themselves.
            return stage.block_tasks(reader, block_range)

        return body

    def _fill_dense_blocks(
        self,
        affected: List[PartitionNode],
        readers: Dict[int, object],
    ) -> int:
        """In non-COW mode every affected stage materialises its full vector.

        Blocks a stage's partitions did not write are copied from the stage
        input *after* the task graph ran, in ascending stage order, so that a
        fill never captures a value an earlier affected stage had yet to
        produce.
        """
        added = 0
        seen_stages: Dict[int, Stage] = {}
        covered: Dict[int, set] = {}
        for node in affected:
            if node.is_sync:
                continue
            seen_stages[node.stage.uid] = node.stage
            covered.setdefault(node.stage.uid, set()).update(node.block_range.blocks())
        for uid, stage in sorted(seen_stages.items(), key=lambda kv: kv[1].seq):
            reader = readers[uid]
            for b in range(stage.n_blocks):
                if b in covered[uid]:
                    continue
                stage.store.write_block(b, reader.resolve_block(b))
                added += 1
        return added

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def _full_chain(self):
        """A reader over the final state (all stages applied)."""
        if self.block_directory:
            return DirectoryReader(self._directory, sys.maxsize)
        stores = [self._initial] + [s.store for s in self.graph.stages]
        return StoreChain(stores)

    def state_reader(self):
        """A block-resolving :class:`StateReader` over the final state.

        The reader serves the state as of the last ``update_state`` call
        through the COW block resolution (O(1) construction in directory
        mode), which is how the observables engine reads amplitudes without
        materialising the full vector.
        """
        return self._full_chain()

    def state(self) -> np.ndarray:
        """The full state vector after the last ``update_state`` call."""
        return self._full_chain().full_vector()

    def amplitude(self, basis_state: int) -> complex:
        if not 0 <= basis_state < self.dim:
            raise IndexError(f"basis state {basis_state} out of range")
        chain = self._full_chain()
        return complex(chain.read_range(basis_state, basis_state)[0])

    def probabilities(self) -> np.ndarray:
        amps = self.state()
        return (amps.conj() * amps).real

    def probability(self, basis_state: int) -> float:
        a = self.amplitude(basis_state)
        return float((a.conjugate() * a).real)

    def norm(self) -> float:
        """The state's 2-norm, accumulated block-wise.

        Uses the observables engine's per-block probability masses (cached
        in its sampling tree and invalidated by the dirty frontier) instead
        of materialising the full ``probabilities()`` array.
        """
        return float(math.sqrt(self.observables.total_probability()))

    # -- observables --------------------------------------------------------

    @property
    def observables(self):
        """The lazily created observables engine bound to this simulator.

        One engine per simulator; its per-block caches subscribe to the
        dirty-block notifications and therefore stay consistent across
        incremental updates.  ``observable_cache=False`` disables caching.
        """
        if self._observables is None:
            from ..observables.engine import ObservablesEngine

            self._observables = ObservablesEngine(self, cache=self.observable_cache)
        return self._observables

    def expectation(self, observable) -> float:
        """``<psi|H|psi>`` of a Hermitian Pauli observable, block-wise.

        ``observable`` is a :class:`~repro.observables.PauliSum`,
        :class:`~repro.observables.PauliString` or label string.
        """
        return self.observables.expectation(observable)

    def sample(self, shots: int, *, seed: Optional[int] = None) -> np.ndarray:
        """Draw ``shots`` basis-state samples from ``|psi|^2``."""
        return self.observables.sample(shots, seed=seed)

    def counts(self, shots: int, *, seed: Optional[int] = None) -> Dict[str, int]:
        """Measurement histogram ``{bitstring: count}`` over ``shots`` draws."""
        return self.observables.counts(shots, seed=seed)

    def marginal_probabilities(self, qubits: Sequence[int]) -> np.ndarray:
        """Outcome distribution of measuring a subset of qubits."""
        return self.observables.marginal_probabilities(qubits)

    def memory_report(self) -> MemoryReport:
        """Logical COW storage accounting across every stage store.

        Returns a :class:`~repro.core.cow.MemoryReport` whose
        ``allocated_bytes`` counts only the blocks stages actually
        materialised, ``dense_bytes`` what one dense vector per stage would
        cost, and ``savings_fraction`` the headroom between the two (the
        §III.F.3 copy-on-write saving).
        """
        return MemoryReport.from_stores(
            (s.store for s in self.graph.stages),
            transport=self._store_transport,
        )

    def plan_report(self) -> PlanReport:
        """Dispatch-overhead accounting of the plan pipeline.

        The :meth:`memory_report` sibling for execution plans: plans
        compiled, runs batched into them, executor-visible chunks, the
        backend that executed them and how often execution fell back (an
        unavailable requested backend at construction, or a runtime
        failure of a failure-safe backend).  Under
        ``kernel_backend="legacy"`` every counter stays zero and the
        backend reads ``"legacy"``.
        """
        backend = self._backend
        requested = self.kernel_backend
        if isinstance(requested, KernelBackend):
            requested = requested.name
        return PlanReport(
            backend=backend.name if backend is not None else "legacy",
            requested_backend=requested,
            plans_built=self._plans_built.value,
            runs_batched=self._runs_batched.value,
            plan_chunks=self._plan_chunks.value,
            backend_fallbacks=self._backend_fallbacks.value,
            updates_planned=self._updates_planned.value,
            run_retries=self._run_retries.value,
            update_retries=self._update_retries.value,
            backend_transitions=tuple(dict(t) for t in self._backend_transitions),
        )

    def statistics(self) -> Dict[str, object]:
        """Counters describing the simulator's current incremental state.

        Combines the partition-graph shape (``num_stages``, ``num_nodes``,
        ``num_edges``, ``num_frontiers``) with the configuration knobs
        (block size/workers/COW/fusion/directory/observable cache) and the
        outcome of the most recent update (affected partitions, elapsed
        seconds), so benchmark rows and debugging sessions can snapshot one
        dict instead of poking internals.
        """
        stats = self.graph.stats().as_dict()
        stats.update(
            {
                "block_size": self.block_size,
                "num_updates": self._num_updates,
                "num_workers": self.executor.num_workers,
                "copy_on_write": self.copy_on_write,
                "block_directory": self.block_directory,
                "fusion": self.fusion,
                "num_fused_stages": self._num_fused,
                "num_dynamic_stages": self.num_dynamic_stages,
                "observable_cache": self.observable_cache,
                "cached_observable_partials": (
                    self._observables.cached_partials
                    if self._observables is not None
                    else 0
                ),
                "last_affected_partitions": self.last_update.affected_partitions,
                "last_elapsed_seconds": self.last_update.elapsed_seconds,
                "store_transport": self._store_transport.name,
                "store_remote_reads": getattr(
                    self._store_remote, "remote_reads", 0
                ),
                "store_bytes_shipped": getattr(
                    self._store_remote, "bytes_shipped", 0
                ),
                "store_shard_restarts": getattr(
                    self._store_remote, "shard_restarts", 0
                ),
                "store_transitions": len(self._store_transitions),
            }
        )
        stats.update(self.plan_report().as_dict())
        # Recovery visibility: executor-level fault retries plus whatever
        # attempt/respawn counters the kernel backend keeps (the process
        # backend reports shipping retries, pool respawns and timeouts).
        stats["task_retries"] = getattr(self.executor, "task_retries", 0)
        if self._backend is not None:
            stats.update(self._backend.backend_stats())
        self._refresh_gauges(stats)
        return stats

    def _refresh_gauges(self, stats: Dict[str, object]) -> None:
        """Mirror point-in-time statistics into the registry as gauges.

        Counters already live in the registry; the graph shape, last-update
        outcome and executor/pool mirrors are point-in-time readings, so
        they surface as gauges -- refreshed on every ``statistics()`` /
        ``telemetry_report()`` call rather than written on the hot path.
        """
        m = self.telemetry.metrics
        m.gauge("graph.num_stages").set(stats["num_stages"])
        m.gauge("graph.num_nodes").set(stats["num_nodes"])
        m.gauge("graph.num_edges").set(stats["num_edges"])
        m.gauge("graph.num_frontiers").set(stats["num_frontiers"])
        m.gauge("update.count").set(stats["num_updates"])
        m.gauge("update.last_affected_partitions").set(
            stats["last_affected_partitions"]
        )
        m.gauge("update.last_elapsed_seconds", unit="s").set(
            stats["last_elapsed_seconds"]
        )
        m.gauge("executor.task_retries").set(stats["task_retries"])
        for key in (
            "shipped_runs", "local_runs",
            "pool_retries", "pool_respawns", "pool_timeouts",
        ):
            if key in stats:
                m.gauge(f"pool.{key}").set(stats[key])
        # Transport counters live on the (possibly shared) transport object;
        # mirror them into this session's registry like the pool stats.
        m.gauge("store.remote_reads").set(stats["store_remote_reads"])
        m.gauge("store.bytes_shipped").set(stats["store_bytes_shipped"])
        m.gauge("store.shard_restarts").set(stats["store_shard_restarts"])
        m.gauge("store.transitions").set(stats["store_transitions"])

    def explain_last_update(self) -> str:
        """A human-readable account of the most recent ``update_state``.

        Renders the update report, the plan pipeline's view of it, and --
        the part no counter can answer -- the time-ordered recovery events
        (faults, retries, fallbacks, breaker transitions, respawns) that
        fired during the update.
        """
        report = self.last_update
        lines = [
            f"update #{self._num_updates - 1}"
            if self._num_updates else "no update yet",
            (
                f"  affected {report.affected_partitions}"
                f"/{report.total_partitions} partitions"
                f" ({report.affected_fraction:.1%}),"
                f" {report.executed_block_writes} block writes,"
                f" {report.elapsed_seconds * 1e3:.2f} ms"
            ),
            (
                f"  backend {self.plan_report().backend}"
                f" (requested {self.plan_report().requested_backend}),"
                f" {self._plan_chunks.value} chunks total"
            ),
        ]
        events = self.telemetry.events.events(since=self._update_event_mark)
        if events:
            lines.append(f"  recovery events ({len(events)}):")
            base = events[0].time
            for e in events:
                detail = ", ".join(
                    f"{k}={v}" for k, v in e.fields.items()
                )
                lines.append(
                    f"    +{(e.time - base) * 1e3:8.2f} ms  {e.kind}"
                    + (f"  [{detail}]" if detail else "")
                )
        else:
            lines.append("  recovery events: none")
        return "\n".join(lines)

    def dump_graph(self, stream: TextIO) -> None:
        """Write the current partition task graph in DOT format."""
        self.graph.dump(stream)
