"""Durable session checkpoints: serialize a session, resume after a crash.

A checkpoint captures everything a :class:`~repro.qtask.QTask` session needs
to resume *without re-simulating*: the circuit (nets, gates, dynamic ops
with their program-order ``op_index``, classical registers), the simulator's
configuration knobs, the global stage order with each stage's kind and
member gates, every materialised copy-on-write block (with a per-block CRC),
and the trajectory's classical state (seed, bits, recorded outcomes).

Restoration deliberately does **not** replay circuit modifiers through the
observer protocol: the original session's stage layout is a product of its
full edit history (fusion decisions, within-net heuristics, retunes), which
the final circuit alone cannot reproduce.  Instead the stage table is
reconstructed *directly*, in the checkpointed global order, the way
:meth:`~repro.core.simulator.QTaskSimulator.fork` rebuilds a child -- so the
loaded blocks land in stores whose sequence positions match the ownership
the block directory will derive.

File format (version 1)::

    8 bytes   magic  b"QTCKPT01"
    8 bytes   header length H (little-endian uint64)
    H bytes   JSON header (utf-8)
    N bytes   concatenated raw block payloads, complex128 little-endian,
              in header order (stage order, then ascending block id)

Every block carries a ``zlib.crc32`` in the header; a truncated or
bit-flipped file raises :class:`~repro.core.exceptions.CheckpointError`
instead of silently resuming from garbage.  Writes are atomic (tmp file +
``os.replace``) so a crash *during* checkpointing never clobbers the
previous good checkpoint.
"""

from __future__ import annotations

import json
import os
import struct
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..parallel import Executor, make_executor
from .blocks import BlockRange, num_blocks
from .circuit import Circuit, GateHandle
from .classical import OutcomeRecord
from .cow import BlockDirectory, InitialStateStore
from .exceptions import CheckpointError
from .gates import Gate
from .graph import PartitionGraph
from .kernels import KernelBackend, make_backend
from .ops import CGate, MeasureOp, ResetOp
from .simulator import QTaskSimulator, UpdateReport
from .stage import (
    ClassicallyControlledStage,
    FusedUnitaryStage,
    MatVecStage,
    MeasureStage,
    ResetStage,
    UnitaryStage,
)
from .transport import (
    TransportFailure,
    decode_block,
    encode_block,
    make_transport,
)

__all__ = ["CHECKPOINT_MAGIC", "save_checkpoint", "restore_simulator"]

CHECKPOINT_MAGIC = b"QTCKPT01"
_VERSION = 1
_DTYPE = np.complex128
_LEN_STRUCT = struct.Struct("<Q")


# ---------------------------------------------------------------------------
# serialization
# ---------------------------------------------------------------------------


def _encode_op(gate) -> Dict[str, object]:
    """One circuit operation as a JSON-safe dict (kind tag + payload)."""
    if isinstance(gate, MeasureOp):
        return {"t": "m", "q": gate.qubit, "c": gate.clbit, "i": gate.op_index}
    if isinstance(gate, ResetOp):
        return {"t": "r", "q": gate.qubit, "i": gate.op_index}
    if isinstance(gate, CGate):
        return {
            "t": "c",
            "n": gate.gate.name,
            "q": list(gate.gate.qubits),
            "p": list(gate.gate.params),
            "b": list(gate.condition_bits),
            "v": gate.condition_value,
            "i": gate.op_index,
        }
    return {"t": "g", "n": gate.name, "q": list(gate.qubits), "p": list(gate.params)}


def _build_header(sim: QTaskSimulator) -> Tuple[Dict[str, object], List[np.ndarray]]:
    """The JSON header plus the block arrays, in payload order."""
    circuit = sim.circuit
    requested = sim.kernel_backend
    if isinstance(requested, KernelBackend):
        requested = requested.name

    nets_json: List[List[Dict[str, object]]] = []
    flat_index: Dict[int, int] = {}
    for net in circuit.nets():
        entries = []
        for handle in net.gates:
            flat_index[handle.uid] = len(flat_index)
            entries.append(_encode_op(handle.gate))
        nets_json.append(entries)

    net_position = {net.uid: i for i, net in enumerate(circuit.nets())}
    block_len = min(sim.dim, sim.block_size)
    stages_json: List[Dict[str, object]] = []
    payload: List[np.ndarray] = []
    for stage in sim.graph.stages:
        members = sim._stage_handles.get(stage.uid)
        if members is None:
            raise CheckpointError(
                f"stage {stage!r} has no member bookkeeping; session is "
                "inconsistent and cannot be checkpointed"
            )
        blocks_json: List[List[int]] = []
        store = stage.store
        for b in store.stored_blocks():
            arr = store.get_block(b)
            arr = np.ascontiguousarray(arr, dtype=_DTYPE)
            if arr.shape != (block_len,):  # pragma: no cover - defensive
                raise CheckpointError(
                    f"stage {stage!r} block {b} has shape {arr.shape}, "
                    f"expected ({block_len},)"
                )
            # The checkpoint block codec doubles as the shard wire format
            # (core/transport): raw complex128 bytes + CRC32 per block.
            raw, crc = encode_block(arr)
            blocks_json.append([int(b), crc])
            payload.append(arr)
        entry: Dict[str, object] = {
            "kind": stage.kind,
            "gates": [flat_index[h.uid] for h in members],
            "net": net_position[sim._stage_net[stage.uid]],
            "blocks": blocks_json,
        }
        if isinstance(stage, MatVecStage):
            entry["combine_limit"] = stage.combine_limit
        stages_json.append(entry)

    outcomes = sim.outcomes
    registers = [
        {"name": r.name, "offset": r.offset, "size": r.size}
        for r in circuit.classical_registers()
    ]
    anon_clbits = circuit.num_clbits - sum(r["size"] for r in registers)

    header: Dict[str, object] = {
        "version": _VERSION,
        "num_qubits": circuit.num_qubits,
        "anon_clbits": anon_clbits,
        "registers": registers,
        "allow_net_dependencies": circuit.allow_net_dependencies,
        "knobs": {
            "block_size": sim.block_size,
            "copy_on_write": sim.copy_on_write,
            "fusion": sim.fusion,
            "max_fused_qubits": sim.max_fused_qubits,
            "block_directory": sim.block_directory,
            "observable_cache": sim.observable_cache,
            "kernel_backend": requested,
            "store_transport": sim._store_transport.name,
        },
        "num_updates": sim._num_updates,
        "nets": nets_json,
        "stages": stages_json,
        "outcomes": {
            "num_bits": outcomes.num_bits,
            "seed": outcomes.seed,
            "bits": sorted(outcomes._bits.items()),
            "ops": sorted(outcomes._op_outcomes.items()),
            "forced": sorted(outcomes._forced.items()),
        },
    }
    return header, payload


def save_checkpoint(sim: QTaskSimulator, path: str) -> str:
    """Serialize ``sim`` to ``path`` (atomically) and return the path.

    Pending circuit modifiers are flushed first (``update_state``) so the
    checkpoint always describes a fully computed state -- the same contract
    session forking uses.
    """
    if sim.graph.frontiers or sim._num_updates == 0:
        sim.update_state()
    with sim.telemetry.tracer.span("checkpoint.save") as span:
        header, payload = _build_header(sim)
        header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
        tmp = f"{path}.tmp.{os.getpid()}"
        written = 0
        try:
            with open(tmp, "wb") as fh:
                fh.write(CHECKPOINT_MAGIC)
                fh.write(_LEN_STRUCT.pack(len(header_bytes)))
                fh.write(header_bytes)
                written = len(CHECKPOINT_MAGIC) + _LEN_STRUCT.size + len(
                    header_bytes
                )
                for arr in payload:
                    raw = arr.tobytes()
                    fh.write(raw)
                    written += len(raw)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.remove(tmp)
        span.set("path", path)
        span.set("bytes", written)
    sim.telemetry.events.emit(
        "checkpoint.save", path=path, bytes=written, blocks=len(payload)
    )
    return path


# ---------------------------------------------------------------------------
# restoration
# ---------------------------------------------------------------------------


def _read_file(path: str) -> Tuple[Dict[str, object], bytes]:
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    prefix = len(CHECKPOINT_MAGIC) + _LEN_STRUCT.size
    if len(raw) < prefix or raw[: len(CHECKPOINT_MAGIC)] != CHECKPOINT_MAGIC:
        raise CheckpointError(f"{path!r} is not a qTask checkpoint (bad magic)")
    (header_len,) = _LEN_STRUCT.unpack(
        raw[len(CHECKPOINT_MAGIC) : prefix]
    )
    if len(raw) < prefix + header_len:
        raise CheckpointError(f"checkpoint {path!r} is truncated (header)")
    try:
        header = json.loads(raw[prefix : prefix + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(
            f"checkpoint {path!r} has a corrupt header: {exc}"
        ) from exc
    if header.get("version") != _VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has unsupported version "
            f"{header.get('version')!r} (expected {_VERSION})"
        )
    return header, raw[prefix + header_len :]


def _rebuild_circuit(header: Dict[str, object]) -> Tuple[Circuit, List[GateHandle]]:
    circuit = Circuit(
        int(header["num_qubits"]),
        num_clbits=int(header["anon_clbits"]),
        allow_net_dependencies=bool(header["allow_net_dependencies"]),
    )
    for reg in header["registers"]:
        created = circuit.add_classical_register(reg["name"], int(reg["size"]))
        if created.offset != int(reg["offset"]):  # pragma: no cover - defensive
            raise CheckpointError(
                f"classical register {reg['name']!r} landed at offset "
                f"{created.offset}, checkpoint says {reg['offset']}"
            )
    handles: List[GateHandle] = []
    for net_entries in header["nets"]:
        net = circuit.insert_net()
        for e in net_entries:
            kind = e["t"]
            if kind == "g":
                op = Gate(e["n"], tuple(e["q"]), tuple(e["p"]))
            elif kind == "m":
                op = MeasureOp(e["q"], e["c"])
                op.op_index = int(e["i"])
            elif kind == "r":
                op = ResetOp(e["q"])
                op.op_index = int(e["i"])
            elif kind == "c":
                op = CGate(
                    Gate(e["n"], tuple(e["q"]), tuple(e["p"])),
                    tuple(e["b"]),
                    int(e["v"]),
                )
                op.op_index = int(e["i"])
            else:
                raise CheckpointError(f"unknown operation kind {kind!r}")
            handles.append(circuit.insert_operation(op, net))
    return circuit, handles


def _build_stage(entry, members: List[GateHandle], sim: QTaskSimulator):
    kind = entry["kind"]
    args = (sim.circuit.num_qubits, sim.block_size, sim.copy_on_write)
    try:
        if kind == "unitary":
            return UnitaryStage(members[0].gate, *args)
        if kind == "fused":
            return FusedUnitaryStage([h.gate for h in members], *args)
        if kind == "matvec":
            return MatVecStage(
                [h.gate for h in members],
                *args,
                combine_limit=entry.get("combine_limit"),
            )
        if kind == "measure":
            return MeasureStage(members[0].gate, *args, record=sim.outcomes)
        if kind == "reset":
            return ResetStage(members[0].gate, *args, record=sim.outcomes)
        if kind == "c_if":
            return ClassicallyControlledStage(
                members[0].gate, *args, record=sim.outcomes
            )
    except (ValueError, IndexError) as exc:
        raise CheckpointError(
            f"cannot reconstruct {kind!r} stage from checkpoint: {exc}"
        ) from exc
    raise CheckpointError(f"unknown stage kind {kind!r}")


def restore_simulator(
    path: str,
    *,
    executor: Optional[Executor] = None,
    num_workers: Optional[int] = None,
    kernel_backend: Optional[str] = None,
    store_transport: Optional[object] = None,
) -> QTaskSimulator:
    """Reconstruct a :class:`QTaskSimulator` from a checkpoint file.

    The restored session holds the checkpointed computed state (no
    re-simulation happens) and is immediately editable: subsequent circuit
    modifiers re-simulate incrementally from the loaded blocks, exactly as
    they would have in the original session.  Execution resources are not
    part of the durable state -- pass ``executor``/``num_workers``/
    ``kernel_backend`` to override the checkpointed backend spec (the
    requested backend is restored, not any mid-session degradation).

    Trajectory randomness follows fork semantics: recorded outcomes and
    classical bits are restored verbatim, but the keyed per-op random
    streams are not serialized (matching :meth:`OutcomeRecord.clone`), so
    an edit that re-collapses a measurement draws from the start of its
    keyed stream -- a restored session and a fork taken at checkpoint time
    evolve identically under identical edits.
    """
    t0 = time.perf_counter()
    header, payload = _read_file(path)
    knobs = header["knobs"]
    circuit, handles = _rebuild_circuit(header)

    sim = QTaskSimulator.__new__(QTaskSimulator)
    sim.circuit = circuit
    sim.block_size = int(knobs["block_size"])
    sim.copy_on_write = bool(knobs["copy_on_write"])
    sim.block_directory = bool(knobs["block_directory"])
    sim.fusion = bool(knobs["fusion"])
    sim.max_fused_qubits = int(knobs["max_fused_qubits"])
    sim.dim = 1 << circuit.num_qubits
    sim.n_blocks = num_blocks(sim.dim, sim.block_size)
    sim._owns_executor = executor is None
    sim.executor = executor if executor is not None else make_executor(num_workers)
    sim.kernel_backend = (
        kernel_backend if kernel_backend is not None else knobs["kernel_backend"]
    )
    sim._backend, fell_back = make_backend(sim.kernel_backend)
    # Placement is execution-layer state like the executor: the restored
    # session re-ships its loaded blocks through whichever transport it is
    # given (override) or the checkpointed spec.  Old checkpoints predate
    # the knob and restore as local.
    sim.store_transport = (
        store_transport
        if store_transport is not None
        else knobs.get("store_transport", "local")
    )
    sim._store_transport, st_fell_back = make_transport(sim.store_transport)
    sim._init_telemetry(fell_back=fell_back)
    sim._init_fault_tolerance()
    sim._init_store_state(fell_back=st_fell_back)

    sim._initial = InitialStateStore(sim.dim, sim.block_size)
    sim._directory = BlockDirectory(sim._initial)
    sim.graph = PartitionGraph(
        BlockRange(0, sim.n_blocks - 1),
        on_stage_inserted=sim._on_stage_entered,
        on_stage_removed=sim._on_stage_left,
    )
    sim._net_stages = {net.uid: [] for net in circuit.nets()}
    sim._matvec = {}
    sim._gate_stage = {}
    sim._stage_handles = {}
    sim._stage_net = {}
    sim._num_fused = 0
    sim._net_index = None
    sim._net_uid_order = []
    sim.last_update = UpdateReport()
    sim._num_updates = 0
    sim.observable_cache = bool(knobs["observable_cache"])
    sim._dirty_listeners = []
    sim._observables = None

    rec = header["outcomes"]
    sim.outcomes = OutcomeRecord(int(rec["num_bits"]), seed=int(rec["seed"]))
    sim.outcomes._bits = {int(b): int(v) for b, v in rec["bits"]}
    sim.outcomes._op_outcomes = {int(i): int(v) for i, v in rec["ops"]}
    sim.outcomes._forced = {int(i): int(v) for i, v in rec["forced"]}
    sim._dynamic_stages = {}

    # Rebuild the stage table in the checkpointed global order.  Each
    # insert_stage call re-derives the partition-graph connectivity from
    # the final stage sequence (the honest reconstruction -- there is no
    # source graph to mirror), and the graph's insertion hook binds dynamic
    # records and attaches stores to the block directory.
    nets = circuit.nets()
    for i, entry in enumerate(header["stages"]):
        members = [handles[g] for g in entry["gates"]]
        stage = _build_stage(entry, members, sim)
        net = nets[int(entry["net"])]
        sim._net_stages[net.uid].append(stage)
        sim.graph.insert_stage(stage, i)
        sim._stage_handles[stage.uid] = members
        for h in members:
            sim._gate_stage[h.uid] = stage
        sim._stage_net[stage.uid] = net.uid
        if isinstance(stage, MatVecStage):
            sim._matvec[net.uid] = stage
        elif isinstance(stage, FusedUnitaryStage):
            sim._num_fused += 1

    # Load the block payloads (stage order, ascending block id), verifying
    # each CRC.  Stage seqs are final here, so the block directory learns
    # the ownership at the correct sequence positions.
    block_len = min(sim.dim, sim.block_size)
    block_bytes = block_len * np.dtype(_DTYPE).itemsize
    offset = 0
    stages = sim.graph.stages
    for entry, stage in zip(header["stages"], stages):
        for b, crc in entry["blocks"]:
            chunk = payload[offset : offset + block_bytes]
            if len(chunk) != block_bytes:
                raise CheckpointError(
                    f"checkpoint {path!r} is truncated (block {b} of "
                    f"stage {stage!r})"
                )
            try:
                arr = decode_block(chunk, crc, block_len)
            except TransportFailure as exc:
                raise CheckpointError(
                    f"checksum mismatch on block {b} of stage {stage!r}; "
                    f"checkpoint {path!r} is corrupt"
                ) from exc
            stage.store.write_block(int(b), arr, copy=False)
            offset += block_bytes
    if offset != len(payload):
        raise CheckpointError(
            f"checkpoint {path!r} has {len(payload) - offset} trailing "
            "payload bytes"
        )

    # The inserted stages all joined the frontier; the checkpointed state
    # is computed, so there is no pending work.
    sim.graph.clear_frontiers()
    sim._num_updates = max(1, int(header["num_updates"]))
    circuit.register_observer(sim)
    duration = time.perf_counter() - t0
    if sim.telemetry.tracer.enabled:
        sim.telemetry.tracer.adopt(
            "checkpoint.restore", t0, duration,
            parent_id=None, pid=os.getpid(),
            thread_id=0, thread_name="main",
            attrs={"path": path},
        )
    sim.telemetry.events.emit(
        "checkpoint.restore",
        path=path,
        bytes=len(payload),
        seconds=duration,
    )
    return sim
