"""Stages: the unit of per-net state-vector management.

The paper keeps several state vectors per net (§III.F.2): superposition gates
of a net are grouped into one matrix--vector *stage* that owns a state vector,
and every non-superposition gate of the net gets its own stage/state vector.
A stage owns

* the gate(s) it applies,
* its partition layout (:mod:`repro.core.partition`),
* its copy-on-write block store (:mod:`repro.core.cow`), and
* the numpy kernels that compute a partition's output blocks.

Stages know nothing about graph connectivity or scheduling; that is the job of
:mod:`repro.core.graph` and :mod:`repro.core.simulator`.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .blocks import BlockRange, aligned_block_runs, num_blocks
from .classical import OutcomeRecord
from .cow import BlockStore
from .exec_plan import RUN_ACTION, RUN_COLLAPSE, RUN_COPY, RUN_SLICE, RunSpec
from .gates import Action, Gate, MatVecAction, fuse_gate_actions
from .kernels import (
    StateReader,
    apply_gate_dense,
    execute_run,
    measured_masses,
)
from .ops import CGate
from .partition import PartitionSpec, derive_partitions, matvec_partitions

__all__ = [
    "Stage",
    "UnitaryStage",
    "FusedUnitaryStage",
    "MatVecStage",
    "DynamicStage",
    "MeasureStage",
    "ResetStage",
    "ClassicallyControlledStage",
    "MATVEC_COMBINE_LIMIT",
    "MAX_RUN_BLOCKS",
]

#: Compute MxV partitions directly from the combined operator's matrix rows
#: (the paper's "derive its subset of matrix rows on the fly") only when the
#: combined operator acts on at most this many qubits.  The default of 0 means
#: the faster prepared path (sequential reshape contraction over the full
#: input, then per-block stores) is always used -- in Python the row-gather
#: path is dominated by per-call overhead.  Tests exercise both paths via the
#: ``combine_limit`` constructor argument (see DESIGN.md "Notes on fidelity").
MATVEC_COMBINE_LIMIT = 0

#: Cap (in blocks, a power of two) on one batched block-run task.  Partition
#: block ranges are decomposed into aligned power-of-two runs of at most this
#: many blocks: each run is one kernel call plus one zero-copy range write
#: instead of one closure + copy per block, while staying small enough that
#: partitions still split into a few parallelisable chunks.
MAX_RUN_BLOCKS = 64

_stage_counter = itertools.count()


class Stage:
    """Base class: one state vector plus the gate work writing into it."""

    kind: str = "stage"

    def __init__(self, qubit_count: int, block_size: int, copy_on_write: bool = True) -> None:
        self.uid = next(_stage_counter)
        self.qubit_count = qubit_count
        self.dim = 1 << qubit_count
        self.block_size = block_size
        self.copy_on_write = copy_on_write
        self.store = BlockStore(self.dim, block_size)
        self.n_blocks = num_blocks(self.dim, block_size)
        #: sequence index in the simulator's global stage order (maintained
        #: externally by the partition graph)
        self.seq: int = -1

    # -- interface ----------------------------------------------------------

    def partition_specs(self) -> List[PartitionSpec]:
        raise NotImplementedError

    def label(self) -> str:
        raise NotImplementedError

    def gate_list(self) -> Tuple[Gate, ...]:
        raise NotImplementedError

    def writes_all_blocks(self) -> bool:
        """True when executing this stage rewrites the whole state vector."""
        return False

    def reads_all_blocks(self) -> bool:
        """True when this stage's input is the whole previous state vector."""
        return False

    #: ``True`` when :meth:`emit_runs` depends only on the stage's bound
    #: gates -- never on execution-time state (``prepare`` results, drawn
    #: outcomes, classical bits).  Static stages can have their runs
    #: compiled into an execution plan *before* the update runs.
    plan_static: bool = False

    def emit_runs(self, block_range: BlockRange) -> List[RunSpec]:
        """The kernel runs recomputing one partition, as data.

        This is the single shared path behind both execution modes: the
        legacy per-run task path wraps each spec in a closure
        (:meth:`block_tasks`), and the plan pipeline packs them into a
        :class:`~repro.core.exec_plan.RunTable` for a kernel backend.
        """
        raise NotImplementedError

    def block_tasks(
        self, reader: StateReader, block_range: BlockRange
    ) -> List[Callable[[], None]]:
        """Callables that compute and store the blocks of one partition."""
        store = self.store
        return [
            (lambda spec=spec: execute_run(reader, store, spec))
            for spec in self.emit_runs(block_range)
        ]

    def prepare(self, reader: StateReader) -> None:
        """Hook executed once per update before the stage's block tasks."""

    def clone_for_fork(self) -> "Stage":
        """A fresh stage applying the same gates with an *empty* store.

        Used by session forking: the clone keeps the gates, action and
        partition layout (gates are immutable value objects, shared by
        reference) but owns a brand-new :class:`~repro.core.cow.BlockStore`,
        which the fork then populates via
        :meth:`~repro.core.cow.BlockStore.share_from`.
        """
        raise NotImplementedError

    # -- helpers --------------------------------------------------------------

    def write_full(self, vector: np.ndarray) -> None:
        """Store an entire state vector (used by non-COW mode and matvec).

        Publishes through :meth:`~repro.core.cow.BlockStore.write_range`,
        the single transport-mediated path: with a remote store transport
        the vector is split into per-block payloads and shipped to the
        owning shards in one round-trip per shard, never held as local
        arrays.
        """
        arr = np.asarray(vector).reshape(-1)
        if arr.shape[0] != self.dim:
            raise ValueError(
                f"full write expects {self.dim} amplitudes, got {arr.shape[0]}"
            )
        self.store.write_range(0, arr)

    def _aligned_runs(self, block_range: BlockRange) -> List[Tuple[int, int]]:
        """``(lo, hi)`` amplitude bounds of each aligned power-of-two run."""
        block_size = self.block_size
        dim = self.dim
        return [
            (fb * block_size, min(dim, (lb + 1) * block_size) - 1)
            for fb, lb in aligned_block_runs(
                block_range.first, block_range.last, MAX_RUN_BLOCKS
            )
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.label()}, seq={self.seq})"


class UnitaryStage(Stage):
    """A single non-superposition gate (permutation or diagonal action)."""

    kind = "unitary"
    #: the bound action is fixed for the duration of an update, so the runs
    #: can be compiled into the plan before execution starts
    plan_static = True

    def __init__(
        self,
        gate: Gate,
        qubit_count: int,
        block_size: int,
        copy_on_write: bool = True,
    ) -> None:
        super().__init__(qubit_count, block_size, copy_on_write)
        self.gate = gate
        self.action: Action = gate.action()
        if self.action.creates_superposition:
            raise ValueError(
                f"gate {gate} creates superposition; it belongs in a MatVecStage"
            )
        self._finalize_action(self.action, gate.qubits)

    def _finalize_action(self, action: Action, qubits: Sequence[int]) -> None:
        """Shared constructor tail: bind the action and derive partitions."""
        self.action = action
        self.qubits: Tuple[int, ...] = tuple(qubits)
        self._specs = derive_partitions(
            action, self.qubits, self.qubit_count, self.block_size
        )

    def partition_specs(self) -> List[PartitionSpec]:
        return list(self._specs)

    def label(self) -> str:
        return str(self.gate)

    def gate_list(self) -> Tuple[Gate, ...]:
        return (self.gate,)

    def total_block_count(self) -> int:
        """Total number of blocks over all partitions (net-ordering heuristic)."""
        return sum(len(s.block_range) for s in self._specs)

    def clone_for_fork(self) -> "UnitaryStage":
        # Bypass __init__: gate, classified action and partition layout are
        # all immutable (stages rebind, never mutate them), so the clone
        # shares them by reference instead of re-deriving -- forking a deep
        # circuit must not re-run gate classification per stage.
        clone = type(self).__new__(type(self))
        Stage.__init__(clone, self.qubit_count, self.block_size, self.copy_on_write)
        clone.gate = self.gate
        clone.action = self.action
        clone.qubits = self.qubits
        clone._specs = self._specs
        return clone

    def emit_runs(self, block_range: BlockRange) -> List[RunSpec]:
        qubits = self.qubits
        action = self.action
        return [
            RunSpec(RUN_ACTION, lo, hi, qubits, action)
            for lo, hi in self._aligned_runs(block_range)
        ]

    def retune(self, gate: Gate) -> bool:
        """Rebind to a retuned gate when the partition layout is unchanged.

        A parameter change (e.g. ``rz(theta)`` -> ``rz(theta')``) usually
        keeps the classified action's sparsity structure, and with it the
        partition layout, intact -- the stage (and its graph nodes) can then
        be reused as-is and only needs re-execution.  Returns ``False`` when
        the new parameters change the classification or the layout (identity
        angles, permutation/superposition crossovers): the caller must then
        rebuild the stage through the remove+insert path.
        """
        if tuple(gate.qubits) != self.qubits:
            return False
        action = gate.action()
        if action.creates_superposition:
            return False
        specs = derive_partitions(
            action, gate.qubits, self.qubit_count, self.block_size
        )
        if specs != self._specs:
            return False
        self.gate = gate
        self._finalize_action(action, gate.qubits)
        return True


class FusedUnitaryStage(UnitaryStage):
    """A run of consecutive non-superposition gates fused into one action.

    The member gates' classified actions are composed (in application order)
    into a single :class:`~repro.core.gates.DiagonalAction` or
    :class:`~repro.core.gates.MonomialAction` over the union of their qubit
    supports, so the whole run costs one stage -- one partition layout, one
    state vector, one set of CoW block writes -- instead of one per gate.
    """

    kind = "fused"

    def __init__(
        self,
        gates: Sequence[Gate],
        qubit_count: int,
        block_size: int,
        copy_on_write: bool = True,
        *,
        action: Optional[Action] = None,
        qubits: Optional[Sequence[int]] = None,
    ) -> None:
        Stage.__init__(self, qubit_count, block_size, copy_on_write)
        if not gates:
            raise ValueError("a fused stage needs at least one gate")
        if (action is None) != (qubits is None):
            raise ValueError("pass action and qubits together, or neither")
        self.gates: Tuple[Gate, ...] = tuple(gates)
        self.gate = self.gates[0]
        if action is None:
            # caller may instead compose incrementally (one compose per
            # insert instead of re-fusing the whole run) and pass the result
            action, qubits = fuse_gate_actions(self.gates)
        self._finalize_action(action, qubits)

    def label(self) -> str:
        return "fused{" + ";".join(str(g) for g in self.gates) + "}"

    def gate_list(self) -> Tuple[Gate, ...]:
        return self.gates

    def retune(self, gate: Gate) -> bool:  # pragma: no cover - guard
        raise TypeError("retune a fused stage through recompose()")

    def clone_for_fork(self) -> "FusedUnitaryStage":
        clone = super().clone_for_fork()
        clone.gates = self.gates
        return clone

    def recompose(self, gates: Sequence[Gate]) -> bool:
        """Re-fuse the member run in place after one member was retuned.

        The composed action is rebuilt from the (updated) member gates; when
        its union support and partition layout are unchanged the fused stage
        keeps its identity and graph nodes.  Returns ``False`` when the new
        composition changes either (e.g. a retune that cancels the run to
        the identity), in which case the caller dissolves and rebuilds.
        """
        try:
            action, qubits = fuse_gate_actions(gates)
        except ValueError:
            return False
        if tuple(qubits) != self.qubits:
            return False
        specs = derive_partitions(
            action, qubits, self.qubit_count, self.block_size
        )
        if specs != self._specs:
            return False
        self.gates = tuple(gates)
        self.gate = self.gates[0]
        self._finalize_action(action, qubits)
        return True


class MatVecStage(Stage):
    """All superposition gates of one net, applied via matrix--vector product.

    Gates in a net act on disjoint qubits (the net invariant), so the combined
    operator is a tensor product.  For small combined arity the stage exposes
    the combined matrix and each partition computes its output block directly
    from the matrix rows (the paper's MxV tasks); for larger arity the stage's
    ``prepare`` hook applies the gates sequentially to the full input vector
    with the dense reshape kernel, and the block tasks merely store slices.
    """

    kind = "matvec"

    def __init__(
        self,
        gates: Sequence[Gate],
        qubit_count: int,
        block_size: int,
        copy_on_write: bool = True,
        combine_limit: Optional[int] = None,
    ) -> None:
        super().__init__(qubit_count, block_size, copy_on_write)
        self.gates: List[Gate] = []
        self._prepared: Optional[np.ndarray] = None
        self.combine_limit = (
            MATVEC_COMBINE_LIMIT if combine_limit is None else int(combine_limit)
        )
        for g in gates:
            self.add_gate(g)

    # -- gate membership (a matvec stage can gain/lose gates incrementally) --

    def add_gate(self, gate: Gate) -> None:
        used = {q for g in self.gates for q in g.qubits}
        if used.intersection(gate.qubits):
            raise ValueError(
                f"gate {gate} overlaps qubits already used in this net's "
                "superposition group"
            )
        self.gates.append(gate)

    def remove_gate(self, gate: Gate) -> None:
        self.gates.remove(gate)

    def retune_gate(self, old: Gate, new: Gate) -> bool:
        """Swap a retuned member in place (same qubits, new parameters).

        The MxV partition layout -- one partition per data block behind a
        sync barrier -- is independent of the member gates, so a retune
        never restructures anything; the stage only needs re-execution.
        """
        if new.qubits != old.qubits:
            return False
        try:
            i = self.gates.index(old)
        except ValueError:
            return False
        self.gates[i] = new
        return True

    @property
    def is_empty(self) -> bool:
        return not self.gates

    def clone_for_fork(self) -> "MatVecStage":
        return MatVecStage(
            self.gates,
            self.qubit_count,
            self.block_size,
            self.copy_on_write,
            combine_limit=self.combine_limit,
        )

    def combined_qubits(self) -> Tuple[int, ...]:
        out: List[int] = []
        for g in self.gates:
            out.extend(g.qubits)
        return tuple(out)

    def combined_matrix(self) -> np.ndarray:
        """Tensor product of the member gates (later gates = slower bits)."""
        mat = np.eye(1, dtype=complex)
        for g in self.gates:
            mat = np.kron(g.matrix(), mat)
        return mat

    # -- Stage interface ------------------------------------------------------

    def partition_specs(self) -> List[PartitionSpec]:
        if self.is_empty:
            return []
        return matvec_partitions(self.qubit_count, self.block_size)

    def label(self) -> str:
        return "MxV{" + ",".join(str(g) for g in self.gates) + "}"

    def gate_list(self) -> Tuple[Gate, ...]:
        return tuple(self.gates)

    def writes_all_blocks(self) -> bool:
        return not self.is_empty

    def reads_all_blocks(self) -> bool:
        return not self.is_empty

    def _use_combined(self) -> bool:
        return len(self.combined_qubits()) <= self.combine_limit

    def prepare(self, reader: StateReader) -> None:
        """Materialise the full output when the combined operator is too wide."""
        self._prepared = None
        if self.is_empty or self._use_combined():
            return
        state = reader.full_vector()
        for g in self.gates:
            state = apply_gate_dense(state, g, self.qubit_count)
        self._prepared = state

    def emit_runs(self, block_range: BlockRange) -> List[RunSpec]:
        # Emission happens strictly after prepare() (the sync node precedes
        # every partition), so _prepared is final here; it is rebound (never
        # mutated) by the next prepare(), so slice runs stay zero-copy safe.
        if self._prepared is not None:
            prepared = self._prepared
            return [
                RunSpec(RUN_SLICE, lo, hi, (), prepared)
                for lo, hi in self._aligned_runs(block_range)
            ]
        qubits = self.combined_qubits()
        action = MatVecAction(num_qubits=len(qubits), matrix=self.combined_matrix())
        return [
            RunSpec(RUN_ACTION, lo, hi, qubits, action)
            for lo, hi in self._aligned_runs(block_range)
        ]


# ---------------------------------------------------------------------------
# Dynamic-circuit stages (measure / reset / classical control)
# ---------------------------------------------------------------------------


class DynamicStage(Stage):
    """Base class for non-unitary operations driven by an outcome record.

    A dynamic stage carries the circuit-side operation object plus a
    reference to the simulator's per-trajectory
    :class:`~repro.core.classical.OutcomeRecord`; the record is *bound* by
    the owning simulator (and re-bound on session forks, so a fork's
    trajectory never writes into its parent's classical bits).
    """

    def __init__(
        self,
        op,
        qubit_count: int,
        block_size: int,
        copy_on_write: bool = True,
        record: Optional[OutcomeRecord] = None,
    ) -> None:
        super().__init__(qubit_count, block_size, copy_on_write)
        self.op = op
        self.record = record

    def bind_record(self, record: OutcomeRecord) -> None:
        self.record = record

    def label(self) -> str:
        return str(self.op)

    def gate_list(self) -> Tuple[Gate, ...]:
        return ()

    def clone_for_fork(self) -> "DynamicStage":
        # The op object is shared (immutable apart from its one-shot
        # op_index); the record is rebound by the forking simulator.
        clone = type(self).__new__(type(self))
        DynamicStage.__init__(
            clone, self.op, self.qubit_count, self.block_size, self.copy_on_write
        )
        return clone


class _CollapseStage(DynamicStage):
    """Shared machinery of measure and reset: draw, collapse, renormalise.

    The layout is the matrix--vector one: a sync barrier reading the whole
    previous state vector (the ``prepare`` hook accumulates the measured
    qubit's block-wise probability masses and draws the outcome) followed by
    one partition per data block that projects and rescales -- so a collapse
    re-executes, and invalidates downstream, exactly like a full-width gate
    update.
    """

    #: reset relocates surviving amplitudes to the |0> subspace
    _move: bool = False
    # class-level defaults so forked clones (which bypass this __init__, see
    # DynamicStage.clone_for_fork) still answer `.outcome` with None
    _outcome: Optional[int] = None
    _scale: float = 1.0

    def __init__(self, op, *args, **kwargs) -> None:
        super().__init__(op, *args, **kwargs)
        self._outcome = None
        self._scale = 1.0

    @property
    def qubit(self) -> int:
        return self.op.qubit

    @property
    def outcome(self) -> Optional[int]:
        """The most recently drawn outcome (``None`` before first execution)."""
        return self._outcome

    def partition_specs(self) -> List[PartitionSpec]:
        return matvec_partitions(self.qubit_count, self.block_size)

    def writes_all_blocks(self) -> bool:
        return True

    def reads_all_blocks(self) -> bool:
        return True

    def prepare(self, reader: StateReader) -> None:
        if self.record is None:
            raise RuntimeError(f"dynamic stage {self!r} has no outcome record bound")
        p0, p1 = measured_masses(reader, self.qubit, self.dim, self.block_size)
        outcome = self.record.choose(self.op.op_index, p0, p1)
        mass = p1 if outcome else p0
        self._outcome = outcome
        self._scale = 1.0 / math.sqrt(mass)
        self._record_outcome(outcome)

    def _record_outcome(self, outcome: int) -> None:
        pass

    def emit_runs(self, block_range: BlockRange) -> List[RunSpec]:
        # Emitted strictly after prepare() (the sync node precedes every
        # partition), so the drawn outcome and scale are final here.
        outcome = self._outcome
        if outcome is None:  # pragma: no cover - defensive
            raise RuntimeError(f"{self!r} executed before its prepare()")
        op = (self.qubit, outcome, self._scale, self._move)
        return [
            RunSpec(RUN_COLLAPSE, lo, hi, (), op)
            for lo, hi in self._aligned_runs(block_range)
        ]


class MeasureStage(_CollapseStage):
    """Mid-circuit projective Z measurement of one qubit into a clbit."""

    kind = "measure"
    _move = False

    def _record_outcome(self, outcome: int) -> None:
        self.record.set_bit(self.op.clbit, outcome)


class ResetStage(_CollapseStage):
    """Reset one qubit to |0>: projective measurement plus conditional flip."""

    kind = "reset"
    _move = True


class ClassicallyControlledStage(DynamicStage):
    """A unitary applied only when the outcome record satisfies a condition.

    The condition is evaluated at *execution* time, after every preceding
    stage (in particular the controlling measurements) has run -- partition
    dependencies guarantee the ordering.  When the inner gate is
    non-superposition the stage reuses its partition layout and applies the
    classified action (or an identity copy of the partition's blocks when
    the condition fails); a superposition inner gate falls back to the
    matrix--vector layout with a full-vector ``prepare``.

    Condition bits are read *as of this stage's program point*, not from the
    final classical register: the owning simulator installs a lookup
    (:meth:`bind_clbit_lookup`) resolving each bit to the outcome of the
    latest measurement that both writes it and precedes this stage.  A
    partial re-execution therefore never sees a value a *later* measurement
    left behind on a previous trajectory pass -- the semantics a
    from-scratch run of the same circuit would produce.
    """

    kind = "c_if"
    #: simulator-installed ``(bit, before_seq) -> 0/1`` program-point lookup;
    #: ``None`` (standalone/unit-test use) falls back to the final register
    _clbit_lookup = None

    def __init__(
        self,
        op: CGate,
        qubit_count: int,
        block_size: int,
        copy_on_write: bool = True,
        record: Optional[OutcomeRecord] = None,
    ) -> None:
        super().__init__(op, qubit_count, block_size, copy_on_write, record)
        self.gate = op.gate
        self.action: Action = self.gate.action()
        self.qubits: Tuple[int, ...] = tuple(self.gate.qubits)
        if self.action.creates_superposition:
            self._specs = matvec_partitions(qubit_count, block_size)
        else:
            # Condition-false executions must rewrite the same blocks the
            # condition-true layout writes (identity copies), so the layout
            # -- and with it the graph topology -- is condition-independent.
            self._specs = derive_partitions(
                self.action, self.qubits, qubit_count, block_size
            )
        self._prepared: Optional[np.ndarray] = None

    def clone_for_fork(self) -> "ClassicallyControlledStage":
        clone = super().clone_for_fork()
        # share the immutable classification work instead of re-deriving
        clone.gate = self.gate
        clone.action = self.action
        clone.qubits = self.qubits
        clone._specs = self._specs
        clone._prepared = None
        return clone

    def bind_clbit_lookup(self, lookup) -> None:
        """Install the simulator's program-point clbit resolver."""
        self._clbit_lookup = lookup

    def condition_met(self) -> bool:
        if self._clbit_lookup is not None:
            value = 0
            for j, bit in enumerate(self.op.condition_bits):
                value |= self._clbit_lookup(bit, self.seq) << j
            return value == self.op.condition_value
        if self.record is None:
            raise RuntimeError(f"dynamic stage {self!r} has no outcome record bound")
        return (
            self.record.value_of(self.op.condition_bits) == self.op.condition_value
        )

    def partition_specs(self) -> List[PartitionSpec]:
        return list(self._specs)

    def writes_all_blocks(self) -> bool:
        return self.action.creates_superposition

    def reads_all_blocks(self) -> bool:
        return self.action.creates_superposition

    def prepare(self, reader: StateReader) -> None:
        self._prepared = None
        if not self.action.creates_superposition:
            return
        state = reader.full_vector()
        if self.condition_met():
            state = apply_gate_dense(state, self.gate, self.qubit_count)
        self._prepared = state

    def emit_runs(self, block_range: BlockRange) -> List[RunSpec]:
        # The condition (and, for superposition gates, the prepared vector)
        # is resolved at emission time -- strictly after every controlling
        # measurement ran, courtesy of the partition dependencies.
        if self.action.creates_superposition:
            prepared = self._prepared
            if prepared is None:  # pragma: no cover - defensive
                raise RuntimeError(f"{self!r} executed before its prepare()")
            return [
                RunSpec(RUN_SLICE, lo, hi, (), prepared)
                for lo, hi in self._aligned_runs(block_range)
            ]
        if self.condition_met():
            return [
                RunSpec(RUN_ACTION, lo, hi, self.qubits, self.action)
                for lo, hi in self._aligned_runs(block_range)
            ]
        return [
            RunSpec(RUN_COPY, lo, hi, (), None)
            for lo, hi in self._aligned_runs(block_range)
        ]
