"""Standard-gate database and gate-action classification.

This module implements the paper's Table I (the standard OpenQASM gate set
supported by qTask) plus the composite gates the paper mentions (CZ, CCX,
SWAP, controlled rotations, ...), and the *classification* that drives the
task-decomposition strategy of §III.C:

* **diagonal** actions (Z, S, T, RZ, CZ, phase gates, ...) scale a subset of
  amplitudes in place,
* **monomial** (generalized-permutation) actions (X, Y, CNOT, SWAP, RX(pi),
  ...) permute amplitudes in place, possibly with phase factors,
* everything else creates **superposition** and falls back to the state
  transformation (matrix--vector) path.

The classification is computed from the unitary matrix itself, so
parameterised gates are classified per-instance: ``RZ(theta)`` is always
diagonal, ``RX(pi)`` is monomial, ``RX(pi/2)`` is a superposition gate --
exactly the behaviour described in the paper.

Qubit-ordering convention
-------------------------
For a gate acting on qubits ``(q0, q1, ..., qk-1)``, local basis index bit
``j`` corresponds to ``qj`` (i.e. ``qubits[0]`` is the least-significant bit
of the *local* index).  Global state indices use qubit 0 as the least
significant bit of the state index, matching OpenQASM's ``q[0]`` ordering.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from .exceptions import GateArityError, UnknownGateError

__all__ = [
    "Action",
    "DiagonalAction",
    "MonomialAction",
    "MatVecAction",
    "GateSpec",
    "Gate",
    "GATE_REGISTRY",
    "STANDARD_GATE_NAMES",
    "gate_matrix",
    "classify_matrix",
    "classify_gate",
    "register_gate",
    "get_spec",
    "is_superposition_gate",
    "controlled_matrix",
    "embed_gate_matrix",
    "compose_actions",
    "fuse_gate_actions",
    "extract_local",
    "replace_local",
]

_ATOL = 1e-12


# ---------------------------------------------------------------------------
# Bit manipulation helpers (vectorised; shared with the kernels)
# ---------------------------------------------------------------------------


def extract_local(indices: np.ndarray, qubits: Sequence[int]) -> np.ndarray:
    """Local gate index of each global index (``qubits[0]`` = local bit 0)."""
    idx = np.asarray(indices, dtype=np.int64)
    local = np.zeros_like(idx)
    for j, q in enumerate(qubits):
        local |= ((idx >> q) & 1) << j
    return local


def replace_local(
    indices: np.ndarray, qubits: Sequence[int], local_values: np.ndarray
) -> np.ndarray:
    """Replace the gate-qubit bits of each global index with ``local_values``."""
    idx = np.asarray(indices, dtype=np.int64)
    loc = np.asarray(local_values, dtype=np.int64)
    clear_mask = 0
    for q in qubits:
        clear_mask |= 1 << q
    out = idx & ~np.int64(clear_mask)
    for j, q in enumerate(qubits):
        out |= ((loc >> j) & 1) << q
    return out


# ---------------------------------------------------------------------------
# Actions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Action:
    """Base class describing how a gate acts on the state vector."""

    num_qubits: int

    @property
    def creates_superposition(self) -> bool:
        raise NotImplementedError


@dataclass(frozen=True)
class DiagonalAction(Action):
    """A diagonal unitary on the gate's local subspace.

    ``phases[l]`` is the multiplicative factor applied to every global
    amplitude whose local index (restricted to the gate qubits) equals ``l``.
    Entries equal to 1 are *untouched* and never generate work.
    """

    phases: Tuple[complex, ...] = ()

    @property
    def creates_superposition(self) -> bool:
        return False

    def touched_locals(self) -> Tuple[int, ...]:
        """Local indices whose amplitude actually changes."""
        return tuple(
            l for l, p in enumerate(self.phases) if abs(p - 1.0) > _ATOL
        )


@dataclass(frozen=True)
class MonomialAction(Action):
    """A generalized permutation (monomial matrix) on the local subspace.

    ``perm[l]`` is the local index the amplitude at local index ``l`` is
    moved *to*, and ``factors[l]`` the factor applied on the way.  Fixed
    points with factor 1 are untouched.
    """

    perm: Tuple[int, ...] = ()
    factors: Tuple[complex, ...] = ()

    @property
    def creates_superposition(self) -> bool:
        return False

    def touched_locals(self) -> Tuple[int, ...]:
        out = []
        for l, (p, f) in enumerate(zip(self.perm, self.factors)):
            if p != l or abs(f - 1.0) > _ATOL:
                out.append(l)
        return tuple(out)

    def orbits(self) -> Tuple[Tuple[int, ...], ...]:
        """Cycles of the local permutation restricted to touched indices.

        For all standard gates these cycles have length 1 (phase flips on a
        moved-to-itself index never happen for monomial non-diagonal parts)
        or 2 (swaps), but arbitrary cycle lengths are supported so composite
        user gates classify correctly.
        """
        seen = set()
        cycles = []
        touched = set(self.touched_locals())
        for start in sorted(touched):
            if start in seen:
                continue
            cyc = [start]
            seen.add(start)
            nxt = self.perm[start]
            while nxt != start:
                cyc.append(nxt)
                seen.add(nxt)
                nxt = self.perm[nxt]
            cycles.append(tuple(cyc))
        return tuple(cycles)


@dataclass(frozen=True)
class MatVecAction(Action):
    """Fallback: a dense unitary applied by matrix--vector multiplication."""

    matrix: np.ndarray = field(default_factory=lambda: np.eye(2, dtype=complex))

    def __post_init__(self) -> None:  # pragma: no cover - defensive
        object.__setattr__(self, "matrix", np.asarray(self.matrix, dtype=complex))

    @property
    def creates_superposition(self) -> bool:
        return True


def classify_matrix(matrix: np.ndarray, *, atol: float = _ATOL) -> Action:
    """Classify a unitary into diagonal / monomial / matvec action.

    The classification inspects the sparsity structure only; it is what lets
    qTask treat ``RX(pi)`` as a permutation but ``RX(pi/2)`` as a
    superposition gate (§III.C).
    """
    m = np.asarray(matrix, dtype=complex)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError(f"gate matrix must be square, got shape {m.shape}")
    dim = m.shape[0]
    k = int(round(math.log2(dim)))
    if 2**k != dim:
        raise ValueError(f"gate matrix dimension {dim} is not a power of two")

    nonzero = np.abs(m) > atol
    # Diagonal?
    if not np.any(nonzero & ~np.eye(dim, dtype=bool)):
        return DiagonalAction(num_qubits=k, phases=tuple(np.diag(m)))
    # Monomial (exactly one nonzero per row and per column)?
    if np.all(nonzero.sum(axis=0) == 1) and np.all(nonzero.sum(axis=1) == 1):
        perm = [0] * dim
        factors = [1.0 + 0.0j] * dim
        rows, cols = np.nonzero(nonzero)
        for r, c in zip(rows, cols):
            # column c (input local index) maps to row r (output local index)
            perm[c] = int(r)
            factors[c] = complex(m[r, c])
        return MonomialAction(num_qubits=k, perm=tuple(perm), factors=tuple(factors))
    return MatVecAction(num_qubits=k, matrix=m)


# ---------------------------------------------------------------------------
# Matrix builders
# ---------------------------------------------------------------------------


def _mat(rows: Sequence[Sequence[complex]]) -> np.ndarray:
    return np.array(rows, dtype=complex)


_I2 = _mat([[1, 0], [0, 1]])
_X = _mat([[0, 1], [1, 0]])
_Y = _mat([[0, -1j], [1j, 0]])
_Z = _mat([[1, 0], [0, -1]])
_H = _mat([[1, 1], [1, -1]]) / math.sqrt(2.0)
_S = _mat([[1, 0], [0, 1j]])
_SDG = _mat([[1, 0], [0, -1j]])
_T = _mat([[1, 0], [0, cmath.exp(1j * math.pi / 4)]])
_TDG = _mat([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]])
_SX = 0.5 * _mat([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]])


def _rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return _mat([[c, -1j * s], [-1j * s, c]])


def _ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return _mat([[c, -s], [s, c]])


def _rz(theta: float) -> np.ndarray:
    return _mat([[cmath.exp(-1j * theta / 2), 0], [0, cmath.exp(1j * theta / 2)]])


def _p(lam: float) -> np.ndarray:
    return _mat([[1, 0], [0, cmath.exp(1j * lam)]])


def _u2(phi: float, lam: float) -> np.ndarray:
    return _u3(math.pi / 2, phi, lam)


def _u3(theta: float, phi: float, lam: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return _mat(
        [
            [c, -cmath.exp(1j * lam) * s],
            [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c],
        ]
    )


def _local_index(bits: Sequence[int]) -> int:
    """local index from per-qubit bit values (qubit j is local bit j)."""
    idx = 0
    for j, b in enumerate(bits):
        idx |= (b & 1) << j
    return idx


def _matrix_from_map(
    num_qubits: int,
    mapping: Callable[[Tuple[int, ...]], Iterable[Tuple[Tuple[int, ...], complex]]],
) -> np.ndarray:
    """Build a local matrix from a function input-bits -> [(output-bits, amp)]."""
    dim = 2**num_qubits
    m = np.zeros((dim, dim), dtype=complex)
    for i in range(dim):
        bits = tuple((i >> j) & 1 for j in range(num_qubits))
        for out_bits, amp in mapping(bits):
            m[_local_index(out_bits), i] += amp
    return m


def controlled_matrix(base: np.ndarray, num_controls: int = 1) -> np.ndarray:
    """Return the controlled version of ``base``.

    Convention: controls occupy the *low* local bits, the base gate's qubits
    the high local bits, matching the ``(control..., target...)`` qubit-tuple
    order used throughout the circuit API.
    """
    base = np.asarray(base, dtype=complex)
    k = int(round(math.log2(base.shape[0])))
    dim = 2 ** (k + num_controls)
    m = np.eye(dim, dtype=complex)
    ctrl_mask = (1 << num_controls) - 1
    sel = [i for i in range(dim) if (i & ctrl_mask) == ctrl_mask]
    for ia in sel:
        for ib in sel:
            m[ia, ib] = base[ia >> num_controls, ib >> num_controls]
    return m


def _swap_matrix() -> np.ndarray:
    def f(bits):
        return [((bits[1], bits[0]), 1.0)]

    return _matrix_from_map(2, f)


def _rzz(theta: float) -> np.ndarray:
    d = np.ones(4, dtype=complex)
    for i in range(4):
        parity = ((i & 1) ^ ((i >> 1) & 1))
        d[i] = cmath.exp(1j * theta / 2) if parity else cmath.exp(-1j * theta / 2)
    return np.diag(d)


def _rxx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    m = np.eye(4, dtype=complex) * c
    anti = -1j * s
    for i in range(4):
        m[i ^ 3, i] = anti
        m[i, i] = c
    return m


# ---------------------------------------------------------------------------
# Gate registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GateSpec:
    """Static description of a gate type."""

    name: str
    num_qubits: int
    num_params: int
    matrix_fn: Callable[..., np.ndarray]
    description: str = ""
    aliases: Tuple[str, ...] = ()

    def matrix(self, *params: float) -> np.ndarray:
        if len(params) != self.num_params:
            raise GateArityError(
                f"gate '{self.name}' takes {self.num_params} parameter(s), "
                f"got {len(params)}"
            )
        return self.matrix_fn(*params)


GATE_REGISTRY: Dict[str, GateSpec] = {}


def register_gate(spec: GateSpec) -> GateSpec:
    """Add a gate spec (and its aliases) to the global registry."""
    GATE_REGISTRY[spec.name] = spec
    for alias in spec.aliases:
        GATE_REGISTRY[alias] = spec
    return spec


def _reg(name, nq, np_, fn, desc, aliases=()):
    return register_gate(
        GateSpec(
            name=name,
            num_qubits=nq,
            num_params=np_,
            matrix_fn=fn,
            description=desc,
            aliases=tuple(aliases),
        )
    )


# Table I -- standard gates supported by qTask (OpenQASM specification).
_reg("id", 1, 0, lambda: _I2, "Identity gate")
_reg("x", 1, 0, lambda: _X, "Pauli-X gate", aliases=("not",))
_reg("y", 1, 0, lambda: _Y, "Pauli-Y gate")
_reg("z", 1, 0, lambda: _Z, "Pauli-Z gate")
_reg("h", 1, 0, lambda: _H, "Hadamard gate")
_reg("s", 1, 0, lambda: _S, "sqrt(Z) phase")
_reg("sdg", 1, 0, lambda: _SDG, "Conjugate of sqrt(Z)")
_reg("t", 1, 0, lambda: _T, "sqrt(S) phase")
_reg("tdg", 1, 0, lambda: _TDG, "Conjugate of sqrt(S)")
_reg("sx", 1, 0, lambda: _SX, "sqrt(X) gate")
_reg("rx", 1, 1, _rx, "X-axis rotation")
_reg("ry", 1, 1, _ry, "Y-axis rotation")
_reg("rz", 1, 1, _rz, "Z-axis rotation")
_reg("p", 1, 1, _p, "Phase gate", aliases=("u1", "phase"))
_reg("u2", 1, 2, _u2, "Single-qubit u2 gate")
_reg("u3", 1, 3, _u3, "Generic single-qubit rotation", aliases=("u",))
_reg("cx", 2, 0, lambda: controlled_matrix(_X), "Controlled-NOT", aliases=("cnot",))
_reg("cy", 2, 0, lambda: controlled_matrix(_Y), "Controlled-Y")
_reg("cz", 2, 0, lambda: controlled_matrix(_Z), "Controlled-Z")
_reg("ch", 2, 0, lambda: controlled_matrix(_H), "Controlled-Hadamard")
_reg("swap", 2, 0, _swap_matrix, "SWAP gate")
_reg("crx", 2, 1, lambda t: controlled_matrix(_rx(t)), "Controlled RX")
_reg("cry", 2, 1, lambda t: controlled_matrix(_ry(t)), "Controlled RY")
_reg("crz", 2, 1, lambda t: controlled_matrix(_rz(t)), "Controlled RZ")
_reg("cp", 2, 1, lambda t: controlled_matrix(_p(t)), "Controlled phase", aliases=("cu1",))
_reg("rzz", 2, 1, _rzz, "ZZ interaction rotation")
_reg("rxx", 2, 1, _rxx, "XX interaction rotation")
_reg("ccx", 3, 0, lambda: controlled_matrix(_X, 2), "Toffoli gate", aliases=("toffoli",))
_reg("ccz", 3, 0, lambda: controlled_matrix(_Z, 2), "Doubly-controlled Z")
_reg("cswap", 3, 0, lambda: controlled_matrix(_swap_matrix(), 1), "Fredkin gate", aliases=("fredkin",))

#: The 12 gate names of the paper's Table I.
STANDARD_GATE_NAMES: Tuple[str, ...] = (
    "cnot",
    "x",
    "y",
    "z",
    "h",
    "s",
    "sdg",
    "t",
    "tdg",
    "rx",
    "ry",
    "rz",
)


def get_spec(name: str) -> GateSpec:
    """Look up a gate spec by (case-insensitive) name."""
    key = name.lower()
    try:
        return GATE_REGISTRY[key]
    except KeyError:
        raise UnknownGateError(f"unknown gate '{name}'") from None


def gate_matrix(name: str, *params: float) -> np.ndarray:
    """Return the unitary matrix of gate ``name`` with the given parameters."""
    return get_spec(name).matrix(*params)


# ---------------------------------------------------------------------------
# Gate instances
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Gate:
    """A gate instance: a named unitary applied to specific qubits.

    ``Gate`` objects are immutable value types; the circuit wraps them in
    handles (:class:`repro.core.circuit.GateHandle`) that track identity and
    membership.
    """

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        spec = get_spec(self.name)
        object.__setattr__(self, "name", spec.name)
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        object.__setattr__(self, "params", tuple(float(p) for p in self.params))
        if len(self.qubits) != spec.num_qubits:
            raise GateArityError(
                f"gate '{spec.name}' acts on {spec.num_qubits} qubit(s), "
                f"got {len(self.qubits)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise GateArityError(
                f"gate '{spec.name}' applied to duplicate qubits {self.qubits}"
            )
        if len(self.params) != spec.num_params:
            raise GateArityError(
                f"gate '{spec.name}' takes {spec.num_params} parameter(s), "
                f"got {len(self.params)}"
            )

    @property
    def spec(self) -> GateSpec:
        return get_spec(self.name)

    def matrix(self) -> np.ndarray:
        """The local unitary (qubits[0] = least-significant local bit)."""
        return self.spec.matrix(*self.params)

    def action(self) -> Action:
        """Classified action used by the partitioning engine."""
        return classify_matrix(self.matrix())

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        p = ", ".join(f"{x:g}" for x in self.params)
        q = ", ".join(f"q{q}" for q in self.qubits)
        return f"{self.name}({p})[{q}]" if p else f"{self.name}[{q}]"


def classify_gate(gate: Gate) -> Action:
    """Classify a gate instance (see :func:`classify_matrix`)."""
    return gate.action()


# ---------------------------------------------------------------------------
# Action composition (stage fusion)
# ---------------------------------------------------------------------------
#
# Non-superposition actions form a monoid under composition: a diagonal is a
# monomial with the identity permutation, and composing two monomials yields
# another monomial.  Fusing a run of consecutive diagonal/monomial gates into
# one action over the union of their qubit supports lets the simulator run
# one stage (one partition layout, one set of CoW block writes) instead of
# one per gate.


def _as_union_monomial(
    action: Action, qubits: Sequence[int], union: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Express ``action`` as ``(perm, factors)`` over the ``union`` support.

    ``union`` must contain every qubit of ``qubits``.  Diagonal actions map to
    the identity permutation with their phases as factors; monomial actions
    permute only the bits corresponding to ``qubits``.
    """
    dim = 1 << len(union)
    pos = {q: j for j, q in enumerate(union)}
    bits = [pos[q] for q in qubits]
    base = np.arange(dim, dtype=np.int64)
    local = extract_local(base, bits)
    if isinstance(action, DiagonalAction):
        phases = np.asarray(action.phases, dtype=complex)
        return base.copy(), phases[local]
    if isinstance(action, MonomialAction):
        perm = np.asarray(action.perm, dtype=np.int64)
        factors = np.asarray(action.factors, dtype=complex)
        return replace_local(base, bits, perm[local]), factors[local]
    raise TypeError(
        f"only non-superposition actions compose, got {type(action).__name__}"
    )


def compose_actions(
    first: Action,
    first_qubits: Sequence[int],
    second: Action,
    second_qubits: Sequence[int],
) -> Tuple[Action, Tuple[int, ...]]:
    """Fuse two non-superposition actions into one over the union support.

    Returns ``(action, union_qubits)`` such that applying ``action`` on
    ``union_qubits`` equals applying ``first`` on ``first_qubits`` and *then*
    ``second`` on ``second_qubits``.  diagonal∘diagonal multiplies phase
    tables, monomial∘monomial composes permutations and factors, and a
    diagonal absorbs into a monomial's factors; when the composed permutation
    collapses to the identity the result is classified back to a
    :class:`DiagonalAction`.
    """
    union = tuple(sorted(set(first_qubits) | set(second_qubits)))
    perm_a, fact_a = _as_union_monomial(first, first_qubits, union)
    perm_b, fact_b = _as_union_monomial(second, second_qubits, union)
    # amplitude at l moves to perm_a[l] (picking up fact_a[l]) and then to
    # perm_b[perm_a[l]] (picking up fact_b[perm_a[l]]).
    perm = perm_b[perm_a]
    factors = fact_a * fact_b[perm_a]
    k = len(union)
    if np.array_equal(perm, np.arange(1 << k, dtype=np.int64)):
        return DiagonalAction(num_qubits=k, phases=tuple(factors)), union
    return (
        MonomialAction(num_qubits=k, perm=tuple(int(p) for p in perm),
                       factors=tuple(factors)),
        union,
    )


def fuse_gate_actions(gates: Sequence[Gate]) -> Tuple[Action, Tuple[int, ...]]:
    """Fused action of a run of non-superposition gates, in application order."""
    if not gates:
        raise ValueError("cannot fuse an empty gate run")
    action: Action = gates[0].action()
    qubits: Tuple[int, ...] = gates[0].qubits
    if action.creates_superposition:
        raise ValueError(f"gate {gates[0]} creates superposition; cannot fuse")
    for g in gates[1:]:
        nxt = g.action()
        if nxt.creates_superposition:
            raise ValueError(f"gate {g} creates superposition; cannot fuse")
        action, qubits = compose_actions(action, qubits, nxt, g.qubits)
    return action, qubits


def is_superposition_gate(gate: Gate) -> bool:
    """True when the gate requires the matrix--vector fallback path."""
    return gate.action().creates_superposition


# ---------------------------------------------------------------------------
# Embedding helper (used by the baselines and the reference simulator)
# ---------------------------------------------------------------------------


def embed_gate_matrix(gate: Gate, num_qubits: int) -> np.ndarray:
    """Return the full ``2^n x 2^n`` operator of ``gate`` on ``num_qubits``.

    This is intentionally simple (index-loop construction) so it serves as an
    independent ground truth for tests; it is exponential and should only be
    used for small ``num_qubits``.
    """
    dim = 1 << num_qubits
    local = gate.matrix()
    k = gate.num_qubits
    qubits = gate.qubits
    m = np.zeros((dim, dim), dtype=complex)
    for col in range(dim):
        lin = 0
        for j, q in enumerate(qubits):
            lin |= ((col >> q) & 1) << j
        rest = col
        for q in qubits:
            rest &= ~(1 << q)
        for lout in range(1 << k):
            amp = local[lout, lin]
            if amp == 0:
                continue
            row = rest
            for j, q in enumerate(qubits):
                row |= ((lout >> j) & 1) << q
            m[row, col] += amp
    return m
