"""Block arithmetic and block-range utilities.

qTask divides every state vector into disjoint, equal-size *blocks* whose size
``B`` is a power of two (§III.C).  Partitions are runs of consecutive blocks,
and the incremental machinery reasons exclusively in terms of inclusive block
ranges ``[first, last]``.  This module provides the small but heavily used
vocabulary for that reasoning: :class:`BlockRange`, interval sets, and the
range-intersection helpers used by the circuit modifiers (§III.D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "validate_block_size",
    "num_blocks",
    "block_of",
    "block_bounds",
    "aligned_block_runs",
    "BlockRange",
    "IntervalSet",
    "ranges_intersect",
    "intersect_ranges",
    "merge_overlapping",
]

#: The paper's default block size (§IV: "The default block size of qTask is 256").
DEFAULT_BLOCK_SIZE = 256


def validate_block_size(block_size: int) -> int:
    """Check that ``block_size`` is a positive power of two and return it."""
    b = int(block_size)
    if b <= 0 or (b & (b - 1)) != 0:
        raise ValueError(f"block size must be a positive power of two, got {block_size}")
    return b


def num_blocks(dim: int, block_size: int) -> int:
    """Number of blocks needed to cover a state vector of length ``dim``.

    When ``dim < block_size`` there is a single (short) block; otherwise
    ``dim`` is always a multiple of the (power-of-two) block size.
    """
    if dim <= 0:
        raise ValueError(f"state dimension must be positive, got {dim}")
    return max(1, dim // block_size) if dim >= block_size else 1


def block_of(index: int, block_size: int) -> int:
    """Block id containing amplitude ``index``."""
    return index // block_size


def block_bounds(block: int, block_size: int, dim: int) -> Tuple[int, int]:
    """Inclusive index bounds ``(lo, hi)`` of ``block`` clipped to ``dim``."""
    lo = block * block_size
    hi = min(dim, lo + block_size) - 1
    return lo, hi


def aligned_block_runs(first: int, last: int, max_blocks: int) -> List[Tuple[int, int]]:
    """Split ``[first, last]`` into maximal aligned power-of-two runs.

    Each returned inclusive run ``(lo, hi)`` has a power-of-two length no
    larger than ``max_blocks`` (itself a power of two) and starts at a
    multiple of its length -- the buddy decomposition.  Blocks are a power of
    two amplitudes, so an aligned run of blocks is an aligned power-of-two
    amplitude range, which is exactly what the strided kernel fast paths in
    :mod:`repro.core.kernels` require.  A run of ``n`` blocks yields at most
    ``2*log2(n)`` chunks, so batched execution stays run-granular instead of
    block-granular.
    """
    if max_blocks <= 0 or max_blocks & (max_blocks - 1):
        raise ValueError(f"max_blocks must be a positive power of two, got {max_blocks}")
    runs: List[Tuple[int, int]] = []
    b = first
    remaining = last - first + 1
    while remaining > 0:
        align = (b & -b) if b else max_blocks
        size = min(align, 1 << (remaining.bit_length() - 1), max_blocks)
        runs.append((b, b + size - 1))
        b += size
        remaining -= size
    return runs


@dataclass(frozen=True, order=True)
class BlockRange:
    """An inclusive range of consecutive block ids ``[first, last]``."""

    first: int
    last: int

    def __post_init__(self) -> None:
        if self.first < 0 or self.last < self.first:
            raise ValueError(f"invalid block range [{self.first}, {self.last}]")

    def __len__(self) -> int:
        return self.last - self.first + 1

    def __contains__(self, block: int) -> bool:
        return self.first <= block <= self.last

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.first, self.last + 1))

    def blocks(self) -> range:
        """The block ids covered by this range."""
        return range(self.first, self.last + 1)

    def intersects(self, other: "BlockRange") -> bool:
        return self.first <= other.last and other.first <= self.last

    def intersection(self, other: "BlockRange") -> Optional["BlockRange"]:
        lo, hi = max(self.first, other.first), min(self.last, other.last)
        return BlockRange(lo, hi) if lo <= hi else None

    def union_span(self, other: "BlockRange") -> "BlockRange":
        """Smallest range covering both (used when merging partitions)."""
        return BlockRange(min(self.first, other.first), max(self.last, other.last))

    def index_bounds(self, block_size: int, dim: int) -> Tuple[int, int]:
        """Inclusive amplitude-index bounds covered by the range."""
        lo = self.first * block_size
        hi = min(dim, (self.last + 1) * block_size) - 1
        return lo, hi

    def to_tuple(self) -> Tuple[int, int]:
        return (self.first, self.last)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.first}, {self.last}]"


def ranges_intersect(a: BlockRange, b: BlockRange) -> bool:
    """Range-intersection predicate used throughout §III.D."""
    return a.intersects(b)


def intersect_ranges(a: BlockRange, b: BlockRange) -> Optional[BlockRange]:
    """The intersection of two block ranges, or ``None`` when disjoint."""
    return a.intersection(b)


def merge_overlapping(ranges: Sequence[BlockRange]) -> List[BlockRange]:
    """Merge a set of block ranges into maximal disjoint ranges."""
    if not ranges:
        return []
    srt = sorted(ranges, key=lambda r: (r.first, r.last))
    out: List[BlockRange] = [srt[0]]
    for r in srt[1:]:
        cur = out[-1]
        if r.first <= cur.last + 1:
            out[-1] = BlockRange(cur.first, max(cur.last, r.last))
        else:
            out.append(r)
    return out


class IntervalSet:
    """A mutable set of block ids stored as disjoint inclusive intervals.

    Used by the backward/forward scans of §III.D ("iteratively move backward
    and forward to find intersected partitions ... until the remaining blocks
    become empty"): the *remaining blocks* of the scanned partition are kept
    here and progressively subtracted as covering partitions are found.
    """

    def __init__(self, ranges: Iterable[BlockRange] = ()) -> None:
        self._ranges: List[BlockRange] = merge_overlapping(list(ranges))

    @classmethod
    def from_range(cls, r: BlockRange) -> "IntervalSet":
        return cls([r])

    def __bool__(self) -> bool:
        return bool(self._ranges)

    def __len__(self) -> int:
        return sum(len(r) for r in self._ranges)

    def __iter__(self) -> Iterator[int]:
        for r in self._ranges:
            yield from r

    def ranges(self) -> Tuple[BlockRange, ...]:
        return tuple(self._ranges)

    def copy(self) -> "IntervalSet":
        s = IntervalSet()
        s._ranges = list(self._ranges)
        return s

    def intersects(self, r: BlockRange) -> bool:
        return any(x.intersects(r) for x in self._ranges)

    def intersection(self, r: BlockRange) -> List[BlockRange]:
        out = []
        for x in self._ranges:
            i = x.intersection(r)
            if i is not None:
                out.append(i)
        return out

    def add(self, r: BlockRange) -> None:
        self._ranges = merge_overlapping(self._ranges + [r])

    def subtract(self, r: BlockRange) -> None:
        """Remove every block in ``r`` from the set."""
        out: List[BlockRange] = []
        for x in self._ranges:
            if not x.intersects(r):
                out.append(x)
                continue
            if x.first < r.first:
                out.append(BlockRange(x.first, min(x.last, r.first - 1)))
            if x.last > r.last:
                out.append(BlockRange(max(x.first, r.last + 1), x.last))
        self._ranges = out

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "{" + ", ".join(str(r) for r in self._ranges) + "}"
