"""Classical registers and measurement-outcome records for dynamic circuits.

Dynamic circuits interleave unitary evolution with *non-unitary* operations:
mid-circuit measurement, qubit reset and classically-conditioned gates.  The
structural side (which classical bits exist, which operations read or write
them) lives on the :class:`~repro.core.circuit.Circuit`; the *runtime* side
(the bit values observed along one trajectory, and the randomness that drew
them) lives in an :class:`OutcomeRecord` owned by each simulator, so forked
sessions carry independent trajectories over a shared circuit.

Randomness is keyed, not streamed: operation ``op_index`` of trajectory
``seed`` draws from ``default_rng((seed, op_index))``, so the outcome of one
measurement never depends on which executor worker ran it, how many other
measurements the circuit holds, or which fork of a fleet served the shot.
Re-executions of the same operation (incremental updates re-collapsing a
dirty measurement) consume successive values of that same per-op stream.

For oracle comparisons the record also supports *forced* outcomes: the dense
baseline replays the exact collapse sequence an incremental run recorded,
making trajectory equivalence a deterministic ``1e-10`` amplitude check
instead of a statistical one.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ClassicalRegister", "OutcomeRecord"]


@dataclass(frozen=True)
class ClassicalRegister:
    """A named, contiguous range of classical bits declared on a circuit."""

    name: str
    offset: int
    size: int

    @property
    def bits(self) -> Tuple[int, ...]:
        """The global clbit indices of this register, LSB first."""
        return tuple(range(self.offset, self.offset + self.size))

    def __len__(self) -> int:
        return self.size

    def __getitem__(self, i: int) -> int:
        if not 0 <= i < self.size:
            raise IndexError(f"bit {i} out of range for creg {self.name}[{self.size}]")
        return self.offset + i


class OutcomeRecord:
    """Per-trajectory classical state: bit values plus keyed randomness.

    One record belongs to one simulator (forks clone their own).  ``bits``
    hold the current value of every classical bit (0 until first written);
    ``outcome_of`` remembers the most recent collapse outcome of every
    dynamic operation, which is what trajectory-replay oracles consume.
    """

    def __init__(
        self,
        num_bits: int,
        *,
        seed: Optional[int] = None,
        forced: Optional[Mapping[int, int]] = None,
    ) -> None:
        #: declared bit count (used as the default ``bitstring`` width);
        #: registers declared after a simulator attaches grow it via
        #: :meth:`ensure_bits`, and storage is sparse so growth is free
        self.num_bits = int(num_bits)
        #: the trajectory seed actually in use (materialised from entropy
        #: when ``seed=None`` so a run is always reproducible after the fact)
        self.seed = self._materialise_seed(seed)
        self._bits: Dict[int, int] = {}
        #: op_index -> most recent collapse outcome (0/1)
        self._op_outcomes: Dict[int, int] = {}
        #: op_index -> lazily created keyed random stream
        self._streams: Dict[int, np.random.Generator] = {}
        #: op_index -> predetermined outcome (trajectory replay)
        self._forced: Dict[int, int] = dict(forced) if forced else {}

    @staticmethod
    def _materialise_seed(seed) -> int:
        if seed is None:
            return int(np.random.SeedSequence().entropy % (1 << 63))
        if isinstance(seed, (tuple, list)):
            # fold a composite key (e.g. (base_seed, shot_index)) into one int
            folded = np.random.SeedSequence(
                [int(s) % (1 << 63) for s in seed]
            ).generate_state(1, dtype=np.uint64)
            return int(folded[0])
        return int(seed) % (1 << 63)

    # -- lifecycle ---------------------------------------------------------

    def reseed(self, seed) -> None:
        """Start a fresh trajectory: new seed, cleared bits and outcomes."""
        self.seed = self._materialise_seed(seed)
        self._bits.clear()
        self._op_outcomes.clear()
        self._streams.clear()

    def ensure_bits(self, num_bits: int) -> None:
        """Grow the declared bit count (late classical-register declaration)."""
        self.num_bits = max(self.num_bits, int(num_bits))

    def begin_pass(self) -> None:
        """Clear the classical bits for a fresh full pass over the circuit.

        Full re-simulation (the baselines) replays every operation each
        ``update_state``; bits must start at 0 so a conditioned gate that
        *precedes* the measurement writing its bit reads 0, not the value
        the previous pass left behind.  Keyed streams and recorded outcomes
        are kept: re-executed draws advance their streams exactly like the
        incremental engine's re-collapses.
        """
        self._bits.clear()

    def snapshot(self) -> tuple:
        """Freeze bits, recorded outcomes and keyed-stream positions.

        The simulator takes one before each ``update_state`` attempt: an
        update-level fault retry re-executes every affected dynamic stage,
        and each re-executed ``choose`` would otherwise advance its keyed
        stream one extra draw -- silently forking the trajectory away from
        what a clean (un-faulted) run of the same session produces.
        """
        return (
            dict(self._bits),
            dict(self._op_outcomes),
            {
                op: copy.deepcopy(gen.bit_generator.state)
                for op, gen in self._streams.items()
            },
        )

    def restore(self, snap: tuple) -> None:
        """Roll classical state back to a :meth:`snapshot` (same record)."""
        bits, outcomes, streams = snap
        self._bits = dict(bits)
        self._op_outcomes = dict(outcomes)
        self._streams = {}
        for op, state in streams.items():
            gen = np.random.default_rng((self.seed, int(op)))
            gen.bit_generator.state = copy.deepcopy(state)
            self._streams[op] = gen

    def clone(self) -> "OutcomeRecord":
        """An independent copy (used by session forking)."""
        out = OutcomeRecord(self.num_bits, seed=self.seed, forced=self._forced)
        out._bits = dict(self._bits)
        out._op_outcomes = dict(self._op_outcomes)
        # streams are deliberately NOT copied: a fork's re-collapse draws
        # from the start of each keyed stream, exactly like a fresh session
        # with the same seed would.
        return out

    # -- classical bits -----------------------------------------------------

    def _check_bit(self, bit: int) -> None:
        if bit < 0:
            raise IndexError(f"classical bit {bit} is negative")

    def get_bit(self, bit: int) -> int:
        self._check_bit(bit)
        return self._bits.get(bit, 0)

    def set_bit(self, bit: int, value: int) -> None:
        self._check_bit(bit)
        self._bits[bit] = int(value) & 1
        self.num_bits = max(self.num_bits, bit + 1)

    def value_of(self, bits: Sequence[int]) -> int:
        """The integer held by ``bits`` (``bits[0]`` is the LSB)."""
        value = 0
        for j, b in enumerate(bits):
            value |= self.get_bit(b) << j
        return value

    def bitstring(self, bits: Optional[Sequence[int]] = None) -> str:
        """Bit values as text, highest bit leftmost (counts-dict convention)."""
        if bits is None:
            bits = range(self.num_bits)
        return "".join(str(self.get_bit(b)) for b in reversed(list(bits)))

    # -- collapse draws -----------------------------------------------------

    def choose(self, op_index: int, p0: float, p1: float) -> int:
        """Draw (or replay) the outcome of dynamic operation ``op_index``.

        ``p0``/``p1`` are the unnormalised outcome masses.  Forced entries
        win unconditionally; otherwise the next value of the op's keyed
        stream picks the outcome by inverse CDF, so equal seeds give equal
        trajectories across every simulator configuration that computes the
        same masses.
        """
        forced = self._forced.get(op_index)
        if forced is not None:
            outcome = int(forced) & 1
        else:
            total = p0 + p1
            if total <= 0.0:
                raise ValueError(
                    f"dynamic op {op_index}: zero total probability mass"
                )
            stream = self._streams.get(op_index)
            if stream is None:
                stream = self._streams[op_index] = np.random.default_rng(
                    (self.seed, int(op_index))
                )
            u = stream.random()
            outcome = 0 if u * total < p0 else 1
        self._op_outcomes[op_index] = outcome
        return outcome

    def outcome_of(self, op_index: int) -> Optional[int]:
        """The most recent outcome of a dynamic op (``None`` if never run)."""
        return self._op_outcomes.get(op_index)

    def discard_op(self, op_index: int) -> None:
        """Forget an operation's recorded outcome and stream (op removed)."""
        self._op_outcomes.pop(op_index, None)
        self._streams.pop(op_index, None)

    def recorded_outcomes(self) -> Dict[int, int]:
        """Snapshot of every op's most recent outcome (for replay oracles)."""
        return dict(self._op_outcomes)

    def force_outcomes(self, outcomes: Mapping[int, int]) -> None:
        """Predetermine outcomes per op index (replay/oracle mode)."""
        self._forced.update({int(k): int(v) & 1 for k, v in outcomes.items()})

    def replace_forced(self, outcomes: Mapping[int, int]) -> Dict[int, int]:
        """Swap the forced-outcome table wholesale, returning the old one.

        Store-transport recovery re-executes the whole circuit with the
        recorded trajectory forced (so collapses replay instead of
        redrawing), then restores whatever forcing the caller had.
        """
        previous = self._forced
        self._forced = {int(k): int(v) & 1 for k, v in outcomes.items()}
        return previous

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OutcomeRecord(bits={self.bitstring()}, seed={self.seed})"
