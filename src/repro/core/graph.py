"""The partition task graph: connectivity, frontiers and incremental scoping.

This module implements §III.D (circuit modifiers) and §III.E (incremental
update) of the paper:

* every stage contributes *partition nodes* (plus a ``sync`` node for
  matrix--vector stages);
* a connection exists between two partitions of different stages when they are
  the *closest pair of overlapped blocks*; connections are discovered with
  backward/forward scans driven by a range-intersection algorithm;
* removing a stage reconnects its predecessors to its successors when their
  block ranges overlap;
* a *frontier* list collects the partitions of newly inserted gates and the
  successors of removed partitions; the set of partitions affected by a
  sequence of circuit modifiers is everything reachable from the frontiers
  (depth-first search over successor edges).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, TextIO, Tuple

from .blocks import BlockRange, IntervalSet
from .stage import Stage

__all__ = ["PartitionNode", "PartitionGraph", "GraphStats"]

_node_counter = itertools.count()


class PartitionNode:
    """A node of the partition graph: one partition (or sync barrier)."""

    __slots__ = (
        "uid",
        "stage",
        "block_range",
        "num_unit_tasks",
        "num_units",
        "is_sync",
        "preds",
        "succs",
    )

    def __init__(
        self,
        stage: Stage,
        block_range: BlockRange,
        *,
        num_unit_tasks: int = 1,
        num_units: int = 0,
        is_sync: bool = False,
    ) -> None:
        self.uid = next(_node_counter)
        self.stage = stage
        self.block_range = block_range
        self.num_unit_tasks = num_unit_tasks
        self.num_units = num_units
        self.is_sync = is_sync
        self.preds: Set["PartitionNode"] = set()
        self.succs: Set["PartitionNode"] = set()

    # Sync nodes read the whole vector; ordinary partitions read what they write.
    @property
    def read_range(self) -> BlockRange:
        return self.block_range

    @property
    def write_range(self) -> Optional[BlockRange]:
        return None if self.is_sync else self.block_range

    def name(self) -> str:
        base = self.stage.label()
        if self.is_sync:
            return f"sync[{base}]"
        return f"{base} {self.block_range}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PartitionNode({self.name()})"


class GraphStats:
    """Lightweight counters describing the current partition graph."""

    def __init__(self, num_stages: int, num_nodes: int, num_edges: int,
                 num_frontiers: int) -> None:
        self.num_stages = num_stages
        self.num_nodes = num_nodes
        self.num_edges = num_edges
        self.num_frontiers = num_frontiers

    def as_dict(self) -> Dict[str, int]:
        return {
            "num_stages": self.num_stages,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "num_frontiers": self.num_frontiers,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphStats(stages={self.num_stages}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, frontiers={self.num_frontiers})"
        )


class PartitionGraph:
    """Ordered stages, their partition nodes, edges and the frontier list."""

    def __init__(
        self,
        full_block_range: BlockRange,
        *,
        on_stage_inserted: Optional[Callable[[Stage], None]] = None,
        on_stage_removed: Optional[Callable[[Stage], None]] = None,
    ) -> None:
        self._stages: List[Stage] = []
        self._nodes_by_stage: Dict[int, List[PartitionNode]] = {}
        self._sync_by_stage: Dict[int, Optional[PartitionNode]] = {}
        self._frontiers: Set[PartitionNode] = set()
        self._full_range = full_block_range
        self._num_nodes = 0
        #: seq-maintenance hooks: fired after a stage enters the global order
        #: (its seq is valid) and after it leaves it.  The simulator uses
        #: these to attach/detach stage stores to its block directory.  Both
        #: events renumber stage seqs, but never permute surviving stages
        #: relative to each other -- an invariant the directory relies on.
        self._on_stage_inserted = on_stage_inserted
        self._on_stage_removed = on_stage_removed

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def stages(self) -> List[Stage]:
        return list(self._stages)

    def stage_at(self, position: int) -> Stage:
        """The stage at ``position`` in the global order (no list copy)."""
        return self._stages[position]

    def stages_after(self, position: int) -> List[Stage]:
        """Stages at or after ``position`` (copies only the tail)."""
        return self._stages[position:]

    def stage_nodes(self, stage: Stage) -> List[PartitionNode]:
        """Every node of a stage (sync node first when present)."""
        nodes = list(self._nodes_by_stage.get(stage.uid, []))
        sync = self._sync_by_stage.get(stage.uid)
        return ([sync] if sync is not None else []) + nodes

    def partition_nodes(self, stage: Stage) -> List[PartitionNode]:
        """Only the writing partitions of a stage (no sync)."""
        return list(self._nodes_by_stage.get(stage.uid, []))

    def sync_node(self, stage: Stage) -> Optional[PartitionNode]:
        return self._sync_by_stage.get(stage.uid)

    def all_nodes(self) -> List[PartitionNode]:
        out: List[PartitionNode] = []
        for s in self._stages:
            out.extend(self.stage_nodes(s))
        return out

    def num_nodes(self) -> int:
        """Total node count, maintained incrementally (no graph traversal)."""
        return self._num_nodes

    @property
    def frontiers(self) -> Set[PartitionNode]:
        return set(self._frontiers)

    def clear_frontiers(self) -> None:
        self._frontiers.clear()

    def add_frontier(self, node: PartitionNode) -> None:
        self._frontiers.add(node)

    def num_edges(self) -> int:
        return sum(len(n.succs) for n in self.all_nodes())

    def stats(self) -> GraphStats:
        return GraphStats(
            num_stages=len(self._stages),
            num_nodes=self._num_nodes,
            num_edges=self.num_edges(),
            num_frontiers=len(self._frontiers),
        )

    def _reindex(self) -> None:
        for i, s in enumerate(self._stages):
            s.seq = i

    # ------------------------------------------------------------------
    # stage insertion
    # ------------------------------------------------------------------

    def insert_stage(self, stage: Stage, position: int) -> List[PartitionNode]:
        """Insert ``stage`` at ``position`` in the global order and wire it up.

        Returns the newly created partition nodes (the gate's frontier).
        """
        if not 0 <= position <= len(self._stages):
            raise IndexError(f"stage position {position} out of range")
        self._stages.insert(position, stage)
        self._reindex()
        if self._on_stage_inserted is not None:
            self._on_stage_inserted(stage)
        nodes = self._create_nodes(stage)
        for node in nodes:
            if node.is_sync:
                self._connect_sync(node)
            else:
                self._connect_partition(node)
        # Frontier: all partitions of a newly inserted gate (§III.E).
        for node in self._nodes_by_stage.get(stage.uid, []):
            self._frontiers.add(node)
        return nodes

    def _create_nodes(self, stage: Stage) -> List[PartitionNode]:
        specs = stage.partition_specs()
        nodes = [
            PartitionNode(
                stage,
                spec.block_range,
                num_unit_tasks=spec.num_unit_tasks,
                num_units=spec.num_units,
            )
            for spec in specs
        ]
        self._nodes_by_stage[stage.uid] = nodes
        sync: Optional[PartitionNode] = None
        if stage.reads_all_blocks() and nodes:
            sync = PartitionNode(stage, self._full_range, is_sync=True)
            for n in nodes:
                sync.succs.add(n)
                n.preds.add(sync)
        self._sync_by_stage[stage.uid] = sync
        created = ([sync] if sync is not None else []) + nodes
        self._num_nodes += len(created)
        return created

    # -- connection scans -------------------------------------------------

    def _writers_of(self, stage: Stage) -> List[PartitionNode]:
        """Nodes of ``stage`` that write blocks (never the sync node)."""
        return self._nodes_by_stage.get(stage.uid, [])

    def _connect_backward(self, node: PartitionNode, scan_range: BlockRange) -> List[PartitionNode]:
        """Find and connect the closest preceding writers covering ``scan_range``."""
        remaining = IntervalSet.from_range(scan_range)
        preds: List[PartitionNode] = []
        pos = node.stage.seq
        for stage in reversed(self._stages[:pos]):
            if not remaining:
                break
            for q in self._writers_of(stage):
                if remaining and remaining.intersects(q.block_range):
                    q.succs.add(node)
                    node.preds.add(q)
                    preds.append(q)
                    remaining.subtract(q.block_range)
            if stage.writes_all_blocks():
                # a matvec stage rewrites everything: nothing older can be the
                # closest writer of any still-remaining block
                break
        return preds

    def _connect_forward(self, node: PartitionNode, scan_range: BlockRange) -> List[PartitionNode]:
        """Find and connect the closest following readers of ``scan_range``."""
        remaining = IntervalSet.from_range(scan_range)
        succs: List[PartitionNode] = []
        pos = node.stage.seq
        for stage in self._stages[pos + 1 :]:
            if not remaining:
                break
            sync = self._sync_by_stage.get(stage.uid)
            if sync is not None:
                # the stage reads everything: connect and stop (it also
                # rewrites every block, shadowing all remaining ones)
                node.succs.add(sync)
                sync.preds.add(node)
                succs.append(sync)
                break
            for q in self._writers_of(stage):
                if remaining and remaining.intersects(q.block_range):
                    node.succs.add(q)
                    q.preds.add(node)
                    succs.append(q)
                    remaining.subtract(q.block_range)
        return succs

    def _connect_partition(self, node: PartitionNode) -> None:
        preds = self._connect_backward(node, node.block_range)
        succs = self._connect_forward(node, node.block_range)
        self._prune_transitive(node, preds, succs)

    def _connect_sync(self, node: PartitionNode) -> None:
        # The sync barrier reads the entire previous state vector.
        self._connect_backward(node, self._full_range)

    def _prune_transitive(
        self,
        node: PartitionNode,
        preds: Sequence[PartitionNode],
        succs: Sequence[PartitionNode],
    ) -> None:
        """Remove pred->succ edges now mediated by ``node`` (§III.D, Fig. 9).

        An edge A -> C is redundant only when every block of the overlap that
        justified it is covered by the new node, so ordering A -> node -> C
        subsumes it.
        """
        write = node.write_range
        if write is None:
            return
        succ_set = set(succs)
        for a in preds:
            for c in list(a.succs):
                if c not in succ_set or c is node:
                    continue
                overlap = a.block_range.intersection(c.read_range)
                if overlap is None:
                    continue
                if overlap.first >= write.first and overlap.last <= write.last:
                    a.succs.discard(c)
                    c.preds.discard(a)

    # ------------------------------------------------------------------
    # graph mirroring (session forking)
    # ------------------------------------------------------------------

    def mirror_from(self, other: "PartitionGraph",
                    stage_map: Dict[int, Stage]) -> None:
        """Clone another graph's stages, nodes and edges into this (empty) one.

        ``stage_map`` maps the other graph's stage uids to the stages this
        graph should hold (fresh clones with empty stores).  Connectivity is
        copied verbatim in O(nodes + edges) instead of re-running the
        insertion scans per stage (O(S) per partition), which is what makes
        forking a deep circuit cheap.  Frontiers are *not* mirrored: a fork
        inherits computed state, not pending work.
        """
        if self._stages:
            raise ValueError("mirror_from requires an empty graph")
        for stage in other._stages:
            self._stages.append(stage_map[stage.uid])
        self._reindex()
        node_map: Dict[int, PartitionNode] = {}
        for stage in other._stages:
            clone_stage = stage_map[stage.uid]
            if self._on_stage_inserted is not None:
                self._on_stage_inserted(clone_stage)
            nodes = []
            for node in other._nodes_by_stage.get(stage.uid, []):
                clone = PartitionNode(
                    clone_stage,
                    node.block_range,
                    num_unit_tasks=node.num_unit_tasks,
                    num_units=node.num_units,
                )
                node_map[node.uid] = clone
                nodes.append(clone)
            self._nodes_by_stage[clone_stage.uid] = nodes
            sync = other._sync_by_stage.get(stage.uid)
            if sync is not None:
                clone = PartitionNode(clone_stage, sync.block_range, is_sync=True)
                node_map[sync.uid] = clone
                self._sync_by_stage[clone_stage.uid] = clone
            else:
                self._sync_by_stage[clone_stage.uid] = None
            self._num_nodes += len(nodes) + (1 if sync is not None else 0)
        for node in other.all_nodes():
            clone = node_map[node.uid]
            for succ in node.succs:
                succ_clone = node_map[succ.uid]
                clone.succs.add(succ_clone)
                succ_clone.preds.add(clone)

    # ------------------------------------------------------------------
    # stage removal
    # ------------------------------------------------------------------

    def remove_stage(self, stage: Stage) -> List[PartitionNode]:
        """Remove ``stage`` and reconnect around it.

        Returns the *successors* of the removed partitions, which the caller
        adds to the frontier (§III.E: "for each removed gate, we add all
        successors of removed partitions to the frontier list").
        """
        if stage not in self._stages:
            raise KeyError(f"stage {stage!r} is not in the graph")
        removed = self.stage_nodes(stage)
        removed_set = set(removed)
        # External neighbourhood of the whole stage: predecessors/successors
        # that survive the removal.  (Edges internal to the stage -- e.g. the
        # sync barrier preceding its MxV partitions -- are ignored, otherwise
        # removing a matvec stage would reconnect nothing.)
        ext_preds: List[PartitionNode] = []
        ext_succs: List[PartitionNode] = []
        for node in removed:
            ext_preds.extend(p for p in node.preds if p not in removed_set)
            ext_succs.extend(s for s in node.succs if s not in removed_set)
        downstream: List[PartitionNode] = list(dict.fromkeys(ext_succs))
        # Reconnect surviving predecessors to surviving successors when their
        # blocks overlap (§III.D, Fig. 7).
        for a in dict.fromkeys(ext_preds):
            for c in downstream:
                if a.stage.seq < c.stage.seq and a.block_range.intersects(c.read_range):
                    a.succs.add(c)
                    c.preds.add(a)
        for node in removed:
            for p in node.preds:
                p.succs.discard(node)
            for s in node.succs:
                s.preds.discard(node)
            node.preds.clear()
            node.succs.clear()
            self._frontiers.discard(node)
        self._stages.remove(stage)
        self._nodes_by_stage.pop(stage.uid, None)
        self._sync_by_stage.pop(stage.uid, None)
        self._num_nodes -= len(removed)
        self._reindex()
        if self._on_stage_removed is not None:
            self._on_stage_removed(stage)
        for node in downstream:
            self._frontiers.add(node)
        return downstream

    # ------------------------------------------------------------------
    # stage refresh (matvec stage gaining/losing a member gate)
    # ------------------------------------------------------------------

    def touch_stage(self, stage: Stage) -> None:
        """Mark every partition of ``stage`` as needing recomputation."""
        for node in self._nodes_by_stage.get(stage.uid, []):
            self._frontiers.add(node)

    def touch_stage_full(self, stage: Stage) -> None:
        """``touch_stage`` plus the stage's sync barrier, when it has one.

        Dynamic stages draw their measurement outcome in ``prepare`` (the
        sync node's body); re-arming a trajectory must therefore re-execute
        the sync as well, not just the collapse partitions.
        """
        self.touch_stage(stage)
        sync = self._sync_by_stage.get(stage.uid)
        if sync is not None:
            self._frontiers.add(sync)

    # ------------------------------------------------------------------
    # incremental scoping
    # ------------------------------------------------------------------

    def affected_nodes(self) -> List[PartitionNode]:
        """All nodes reachable from the frontiers (frontiers included).

        The result is returned in a valid topological order: edges only ever
        point from earlier stages to later stages, so ordering by stage
        sequence (sync nodes first within a stage) is sufficient.
        """
        visited: Set[int] = set()
        out: List[PartitionNode] = []
        stack: List[PartitionNode] = list(self._frontiers)
        for node in stack:
            visited.add(node.uid)
        while stack:
            node = stack.pop()
            out.append(node)
            for s in node.succs:
                if s.uid not in visited:
                    visited.add(s.uid)
                    stack.append(s)
        # When any partition of a full-read stage (matvec, measure, reset,
        # superposition c_if) is affected, the whole stage is: its blocks are
        # computed from one shared prepared input / drawn outcome.
        extra: List[PartitionNode] = []
        touched_full: Set[int] = set()
        for node in out:
            if node.stage.reads_all_blocks():
                touched_full.add(node.stage.uid)
        for stage_uid in touched_full:
            for node in self._nodes_by_stage.get(stage_uid, []):
                if node.uid not in visited:
                    visited.add(node.uid)
                    extra.append(node)
            sync = self._sync_by_stage.get(stage_uid)
            if sync is not None and sync.uid not in visited:
                visited.add(sync.uid)
                extra.append(sync)
        out.extend(extra)
        out.sort(key=lambda n: (n.stage.seq, 0 if n.is_sync else 1, n.block_range.first))
        return out

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def to_dot(self, name: str = "qtask") -> str:
        """GraphViz DOT rendering of the current partition graph."""
        lines = [f'digraph "{name}" {{', "  rankdir=LR;"]
        ids: Dict[int, str] = {}
        for i, node in enumerate(self.all_nodes()):
            ids[node.uid] = f"n{i}"
            shape = "ellipse" if node.is_sync else "box"
            lines.append(f'  n{i} [label="{node.name()}", shape={shape}];')
        for node in self.all_nodes():
            for s in node.succs:
                if s.uid in ids and node.uid in ids:
                    lines.append(f"  {ids[node.uid]} -> {ids[s.uid]};")
        lines.append("}")
        return "\n".join(lines)

    def dump(self, stream: TextIO, name: str = "qtask") -> None:
        stream.write(self.to_dot(name) + "\n")
