"""Exception hierarchy for the qTask reproduction.

The paper's programming model reports user errors (e.g. inserting a gate into a
net where it would introduce a structural dependency) by throwing exceptions;
we mirror that behaviour with a small, explicit hierarchy so applications can
catch precisely the failure they care about.
"""

from __future__ import annotations

__all__ = [
    "QTaskError",
    "CircuitError",
    "NetDependencyError",
    "UnknownGateError",
    "GateArityError",
    "QubitIndexError",
    "StaleHandleError",
    "QasmSyntaxError",
    "ExecutorError",
    "CheckpointError",
]


class QTaskError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class CircuitError(QTaskError):
    """Any structural error while building or modifying a circuit."""


class NetDependencyError(CircuitError):
    """Raised when inserting a gate into a net would create a dependency.

    The paper (Listing 1) requires every gate in a net to be structurally
    parallel: two gates in the same net must not share a qubit.
    """


class UnknownGateError(CircuitError):
    """Raised when a gate name is not present in the gate database."""


class GateArityError(CircuitError):
    """Raised when a gate is applied to the wrong number of qubits/params."""


class QubitIndexError(CircuitError):
    """Raised when a qubit index is outside ``[0, num_qubits)``."""


class StaleHandleError(CircuitError):
    """Raised when a gate/net handle refers to an element already removed."""


class QasmSyntaxError(QTaskError):
    """Raised by the OpenQASM parser on malformed input."""


class ExecutorError(QTaskError):
    """Raised by the task-parallel runtime on invalid graphs (e.g. cycles)."""


class CheckpointError(QTaskError):
    """Raised when a session checkpoint cannot be written or restored.

    Covers unreadable files, bad magic/version, corrupt headers, truncated
    payloads and per-block checksum mismatches -- a damaged checkpoint fails
    loudly instead of resuming from garbage.
    """
