"""Copy-on-write (COW) block storage for per-stage state vectors.

qTask keeps one state vector per gate stage (the paper calls this *per-net
state vector management*, §III.F.2) so that incremental update can restart
from any intermediate result.  Storing every vector densely would be very
expensive, so each stage only materialises the blocks its partitions actually
write; every other block is implicitly inherited from the closest preceding
stage that wrote it (ultimately the |0...0> initial state).  This is the
*copy-on-write data optimization* of §III.F.3.

Two resolution strategies are provided:

* :class:`StoreChain` -- the naive reference: walk an ordered sequence of
  stores backwards until one holds the block.  O(S) per read for S stages,
  used by tests/benchmarks as the ground truth and by the simulator's legacy
  ``block_directory=False`` mode.
* :class:`BlockDirectory` + :class:`DirectoryReader` -- a simulator-owned
  index mapping each block id to the ordered list of stage *owners* that have
  materialised it.  "Which store owns block b as of stage k?" becomes a
  binary search over b's writers (O(log W), W = writers of b) instead of an
  O(S) chain walk, and building a per-stage reader is O(1) instead of an
  O(S) store-list copy.  The directory is maintained incrementally by the
  stores themselves on every ``write_block``/``drop_block``/``clear`` (stores
  carry an optional back-reference installed by
  :meth:`BlockDirectory.attach`).

Directory entries are kept sorted by the owner's ``seq`` (its position in the
global stage order).  Stage insertion/removal renumbers seqs, but never
changes the *relative* order of surviving stages, so the per-block sorted
lists stay sorted without any fix-up; removal purges the departing owner's
entries via :meth:`BlockDirectory.detach`.

Writes are single-copy: ``write_block`` copies at most once (``np.asarray``'s
dtype conversion already produces owned memory), and both ``write_block`` and
``write_range`` accept ``copy=False`` for freshly allocated kernel outputs so
publishing a computed run into the store is zero-copy (the store keeps views
of the kernel's output array).

Session forking extends the copy-on-write idea *across* simulators:
:meth:`BlockStore.share_from` adopts every block of another store by
reference (the arrays are marked read-only -- published blocks are immutable
by contract, stores rebind rather than mutate).  The origin store refcounts
each exported block (:attr:`BlockStore.exported_block_refs`), and the first
write to an adopted block in the sharing store simply rebinds the dict entry
to the freshly computed array and drops the reference -- copy-on-first-write
with zero copies at fork time.  :class:`MemoryReport` splits the accounting
into owned and shared bytes so a fleet of forked sessions can demonstrate
sublinear memory growth.

Where the block *payloads* live is delegated to a
:class:`~repro.core.transport.StorageTransport`: the default
:class:`~repro.core.transport.LocalTransport` keeps the numpy arrays in the
store's dict (the hot paths short-circuit around the transport entirely, so
the in-process case pays nothing), while
:class:`~repro.core.transport.ShardedTransport` places block ranges across
forked shard processes and the dict holds lightweight handles.  All the
ownership bookkeeping above -- directory notifications, shared markers,
export refcounts -- is transport-agnostic; remote stores additionally keep a
small bounded read cache so plan execution does not re-fetch a block per
run.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from . import faults
from .blocks import BlockRange, block_bounds, num_blocks, validate_block_size
from .transport import LOCAL_TRANSPORT, StorageTransport, TransportFailure

__all__ = [
    "BlockStore",
    "InitialStateStore",
    "StoreChain",
    "BlockDirectory",
    "DirectoryReader",
    "MemoryReport",
]

_DTYPE = np.complex128

#: bounded per-store read cache for remote transports (blocks, not bytes);
#: sized to cover a full MAX_RUN_BLOCKS batch with headroom
_READ_CACHE_BLOCKS = 128


class BlockStore:
    """Sparse per-stage storage of state-vector blocks.

    Only blocks written by this stage's partitions are present; everything
    else resolves to an earlier store through :class:`StoreChain`.
    """

    def __init__(
        self,
        dim: int,
        block_size: int,
        transport: Optional[StorageTransport] = None,
    ) -> None:
        self.dim = int(dim)
        self.block_size = validate_block_size(block_size)
        self.n_blocks = num_blocks(self.dim, self.block_size)
        #: block id -> payload handle: the array itself on a local
        #: transport, an opaque remote handle otherwise
        self._blocks: Dict[int, np.ndarray] = {}
        # Every block has the same length: dim is a power of two, so it is
        # either a multiple of the block size or smaller than one block.
        # Precomputing it keeps the hot write path free of per-call
        # block_bounds arithmetic.
        self._block_len = min(self.dim, self.block_size)
        #: optional :class:`BlockDirectory` back-reference (see attach())
        self._directory: Optional["BlockDirectory"] = None
        self._dir_owner: Optional[object] = None
        #: blocks adopted from another store (block id -> origin store);
        #: rebinding such a block on first write releases the origin's ref
        self._shared: Dict[int, "BlockStore"] = {}
        #: per-block count of live references other stores hold to blocks
        #: exported by :meth:`share_from` (mutated under ``_export_lock``:
        #: forked sessions release refs from worker threads)
        self._export_refs: Dict[int, int] = {}
        self._export_lock = threading.Lock()
        #: payload placement; ``_remote`` is the single hot-path branch --
        #: ``None`` means every read/write goes straight at the dict
        self.transport: StorageTransport = LOCAL_TRANSPORT
        self._remote: Optional[StorageTransport] = None
        self._tid: Optional[int] = None
        self._read_cache: Dict[int, np.ndarray] = {}
        #: publish batching (remote only): while a batch is open, writes
        #: bind the local array into ``_blocks`` and register here; the
        #: closing of the outermost batch ships every pending block in
        #: contiguous runs -- one transport round-trip per run instead of
        #: one per kernel publish
        self._batch_lock = threading.Lock()
        self._batch_depth = 0
        self._pending_publish: set = set()
        #: bumped by :meth:`forsake_blocks` (under ``_batch_lock``).  Remote
        #: ships capture the epoch before the round-trip and discard their
        #: handle rebind when it moved: a straggler chunk racing the
        #: transport-recovery path must not resurrect remote handles in a
        #: store that was just forsaken (and possibly rebound to local).
        self._epoch = 0
        if transport is not None:
            self.bind_transport(transport)

    # -- transport binding -------------------------------------------------

    @property
    def is_remote_backed(self) -> bool:
        """True when block payloads live outside this process."""
        return self._remote is not None

    def bind_transport(self, transport: Optional[StorageTransport]) -> None:
        """Adopt ``transport`` for payload placement.

        Stores are bound when their stage enters a simulator -- before any
        block is written -- so this is normally a pure attribute swap; held
        blocks are migrated (materialise + rewrite) for the defensive case.
        """
        if transport is None or transport is self.transport:
            return
        existing: List[Tuple[int, np.ndarray]] = []
        if self._blocks:
            existing = [(b, self.get_block(b)) for b in self.stored_blocks()]
            for b in tuple(self._shared):
                self._release_shared(b)
            if self._remote is not None:
                try:
                    self._remote.release(self, tuple(self._blocks))
                except TransportFailure:  # pragma: no cover - best effort
                    pass
            self._blocks.clear()
        self.transport = transport
        self._remote = transport if transport.is_remote else None
        with self._batch_lock:
            self._pending_publish.clear()
        self._read_cache.clear()
        self._tid = transport.attach_store(self) if self._remote is not None else None
        for b, arr in existing:
            self.write_block(b, arr, copy=True)

    def forsake_blocks(
        self, transport: Optional[StorageTransport] = None
    ) -> None:
        """Forget every block without any transport round-trips.

        The recovery path after shard loss: the payloads are already gone
        (dead or respawned-empty shards), so only the local bookkeeping --
        dict entries, directory ownership, shared markers, export refs --
        is torn down, and the caller re-executes from the initial state.
        Optionally rebinds the store to ``transport``.
        """
        if self._directory is not None and self._blocks:
            self._directory._on_clear(self._dir_owner, tuple(self._blocks))
        self._blocks.clear()
        self._shared.clear()
        with self._export_lock:
            self._export_refs.clear()
        with self._batch_lock:
            self._epoch += 1
            self._pending_publish.clear()
        self._read_cache.clear()
        if transport is not None and transport is not self.transport:
            self.transport = transport
            self._remote = transport if transport.is_remote else None
            self._tid = (
                transport.attach_store(self) if self._remote is not None else None
            )

    def release_remote(self) -> None:
        """Free shard-side payloads at store teardown; local stores no-op."""
        if self._remote is None:
            return
        with self._batch_lock:
            self._pending_publish.clear()
        self._read_cache.clear()
        try:
            self._remote.detach_store(self)
        except TransportFailure:  # pragma: no cover - teardown best effort
            pass

    # -- publish batching (remote transports) ------------------------------

    @contextlib.contextmanager
    def publish_batch(self):
        """Defer remote publishes until the outermost batch closes.

        Within the batch, written blocks stay as local arrays in ``_blocks``
        (reads see them directly, exactly as on a local transport); the last
        exit ships them in contiguous runs.  Concurrent chunk tasks of one
        stage nest their batches, so a whole stage wave usually ships once.
        Local stores pay a no-op.
        """
        if self._remote is None:
            yield
            return
        with self._batch_lock:
            self._batch_depth += 1
        try:
            yield
        finally:
            with self._batch_lock:
                self._batch_depth -= 1
                flush = self._batch_depth == 0
            if flush:
                self._flush_pending()

    def _flush_pending(self) -> None:
        """Ship every batched publish, one ``write_range`` per contiguous run.

        The shipped arrays seed the read cache: downstream stages reading a
        block this stage just published never pay a transport round-trip.
        """
        if self._remote is None:
            return
        blocks = self._blocks
        remote = self._remote
        with self._batch_lock:
            epoch = self._epoch
            pending = sorted(
                b for b in self._pending_publish
                if isinstance(blocks.get(b), np.ndarray)
            )
            self._pending_publish.clear()
        if not pending:
            return
        cache = self._read_cache
        i = 0
        while i < len(pending):
            j = i
            while j + 1 < len(pending) and pending[j + 1] == pending[j] + 1:
                j += 1
            run = pending[i : j + 1]
            arrays = [blocks[b] for b in run]
            handles = remote.write_range(self, run[0], arrays)
            with self._batch_lock:
                if self._epoch != epoch:
                    # Forsaken mid-flush (transport recovery on another
                    # thread); drop the rebinds, re-execution rewrites.
                    return
                for b, arr, handle in zip(run, arrays, handles):
                    cache[b] = arr
                    blocks[b] = handle
            i = j + 1
        while len(cache) > _READ_CACHE_BLOCKS:
            try:
                cache.pop(next(iter(cache)))
            except (StopIteration, KeyError, RuntimeError):  # pragma: no cover
                break

    def _local_payload(self, block: int) -> Optional[np.ndarray]:
        """Read-cache hit or pending (batched, unshipped) payload, if any."""
        got = self._read_cache.get(block)
        if got is not None:
            return got
        held = self._blocks.get(block)
        return held if isinstance(held, np.ndarray) else None

    # -- cross-store sharing (session forking) ----------------------------

    def share_from(self, other: "BlockStore") -> int:
        """Adopt every block of ``other`` as a shared copy-on-write reference.

        The arrays are shared, not copied: both stores reference the same
        (read-only) memory until this store's first write to a block rebinds
        its entry.  ``other`` refcounts each exported block so memory
        attribution stays honest while forks diverge.  Returns the number of
        blocks adopted.
        """
        if other.dim != self.dim or other.block_size != self.block_size:
            raise ValueError(
                "can only share blocks between stores of identical dim "
                f"and block size, got ({other.dim}, {other.block_size}) "
                f"vs ({self.dim}, {self.block_size})"
            )
        if self._remote is not other._remote:
            # Stores on different transports cannot alias payloads; fall
            # back to materialised copies (no shared accounting).
            return self._copy_from(other)
        if other._remote is not None:
            # Shard-side aliasing needs every payload shipped first.
            other._flush_pending()
        blocks = self._blocks
        new_blocks: List[int] = []
        shared_ids: List[int] = []
        # Published blocks are immutable by contract (kernels allocate
        # fresh outputs and stores rebind); the transport enforces it for
        # shared memory (setflags locally, a no-op for immutable shard
        # payloads).
        other.transport.seal(other, tuple(other._blocks))
        for b, arr in other._blocks.items():
            if b not in blocks:
                new_blocks.append(b)
            self._release_shared(b)
            blocks[b] = arr
            self._shared[b] = other
            shared_ids.append(b)
        if self._remote is not None and shared_ids:
            for b in shared_ids:
                self._read_cache.pop(b, None)
            self._remote.share(other, self, shared_ids)
        other._export_retain(shared_ids)
        if new_blocks and self._directory is not None:
            self._directory._on_write_many(self._dir_owner, new_blocks)
        return len(shared_ids)

    def _copy_from(self, other: "BlockStore") -> int:
        """Cross-transport adoption: materialise and rewrite each block."""
        count = 0
        for b in other.stored_blocks():
            arr = other.get_block(b)
            assert arr is not None
            self.write_block(b, arr, copy=True)
            count += 1
        return count

    def _export_retain(self, blocks: Sequence[int]) -> None:
        if not blocks:
            return
        with self._export_lock:
            refs = self._export_refs
            for b in blocks:
                refs[b] = refs.get(b, 0) + 1

    def _export_release(self, block: int) -> None:
        with self._export_lock:
            n = self._export_refs.get(block, 0) - 1
            if n <= 0:
                self._export_refs.pop(block, None)
            else:
                self._export_refs[block] = n

    def _release_shared(self, block: int) -> None:
        """Drop the shared marker of ``block`` (it is being rebound/removed)."""
        if not self._shared:
            return
        origin = self._shared.pop(block, None)
        if origin is not None:
            origin._export_release(block)

    @property
    def shared_block_count(self) -> int:
        """Blocks currently referencing another store's memory."""
        return len(self._shared)

    def shared_bytes(self) -> int:
        """Bytes of :meth:`allocated_bytes` that are shared, not owned."""
        blocks = self._blocks
        return sum(blocks[b].nbytes for b in self._shared)

    def exported_block_refs(self) -> Dict[int, int]:
        """Live per-block reference counts held by sharing stores."""
        with self._export_lock:
            return dict(self._export_refs)

    @property
    def num_exported_blocks(self) -> int:
        with self._export_lock:
            return len(self._export_refs)

    # -- write side -------------------------------------------------------

    def write_block(self, block: int, values: np.ndarray, *, copy: bool = True) -> None:
        """Store the full contents of ``block``.

        By default the values are copied into store-owned memory (at most one
        copy: a dtype conversion already yields a fresh array).  Pass
        ``copy=False`` only for freshly allocated arrays the caller will never
        touch again -- the store then adopts ``values`` (or a view of it)
        without copying.
        """
        # The publish fault site fires before any store mutation, so a
        # failed publish leaves the store exactly as it was and the run
        # that produced ``values`` can simply re-execute.
        if faults.ACTIVE is not None:
            faults.fire("cow.publish")
        arr = np.asarray(values, dtype=_DTYPE)
        if arr.shape != (self._block_len,):
            raise ValueError(
                f"block {block} expects {self._block_len} amplitudes, "
                f"got shape {arr.shape}"
            )
        if not 0 <= block < self.n_blocks:
            raise ValueError(f"block {block} out of range [0, {self.n_blocks})")
        blocks = self._blocks
        is_new = block not in blocks
        self._release_shared(block)
        if self._remote is not None:
            if self._batch_depth > 0:
                # Defer the ship: hold the array locally until the batch
                # closes.  The flush serialises later, so honour ``copy``.
                if copy and np.may_share_memory(arr, values):
                    arr = arr.copy()
                blocks[block] = arr
                self._read_cache.pop(block, None)
                with self._batch_lock:
                    self._pending_publish.add(block)
            else:
                # Serialisation copies regardless, so ``copy`` is moot here.
                epoch = self._epoch
                handle = self._remote.write_range(self, block, (arr,))[0]
                with self._batch_lock:
                    if self._epoch != epoch:
                        return  # forsaken mid-ship; discard the handle
                    blocks[block] = handle
                self._read_cache.pop(block, None)
        else:
            if copy and np.may_share_memory(arr, values):
                arr = arr.copy()
            blocks[block] = arr
        if is_new and self._directory is not None:
            self._directory._on_write(self._dir_owner, block)

    def write_range(self, lo: int, values: np.ndarray, *, copy: bool = True) -> None:
        """Write a block-aligned contiguous range starting at index ``lo``.

        With ``copy=False`` the per-block entries are *views* of ``values``
        (the zero-copy publish path for kernel outputs); the caller must not
        mutate ``values`` afterwards.  With ``copy=True`` the range is copied
        once as a whole, never block by block.  Directory notification is
        batched: one update covers every newly owned block of the range.
        """
        # Fires before any mutation; see write_block.
        if faults.ACTIVE is not None:
            faults.fire("cow.publish")
        if lo % self.block_size != 0:
            raise ValueError(f"range start {lo} is not block aligned")
        arr = np.asarray(values, dtype=_DTYPE)
        if arr.ndim != 1:
            raise ValueError(f"expected a 1-D amplitude range, got shape {arr.shape}")
        if (
            copy
            and (self._remote is None or self._batch_depth > 0)
            and np.may_share_memory(arr, values)
        ):
            # Local stores and open batches hold on to the array; only an
            # immediate ship serialises right away and can skip the copy.
            arr = arr.copy()
        size = self._block_len
        n = arr.shape[0]
        if n % size != 0:
            raise ValueError(
                f"range of {n} amplitudes is not a whole number of "
                f"{size}-amplitude blocks"
            )
        first = lo // self.block_size
        last = first + n // size - 1
        if not (0 <= first and last < self.n_blocks):
            raise ValueError(
                f"blocks [{first}, {last}] out of range [0, {self.n_blocks})"
            )
        blocks = self._blocks
        new_blocks: List[int] = []
        if self._remote is not None:
            views = [arr[offset : offset + size] for offset in range(0, n, size)]
            if self._batch_depth > 0:
                handles = views
                with self._batch_lock:
                    self._pending_publish.update(range(first, last + 1))
            else:
                epoch = self._epoch
                handles = self._remote.write_range(self, first, views)
                with self._batch_lock:
                    if self._epoch != epoch:
                        return  # forsaken mid-ship; discard the handles
            cache_pop = self._read_cache.pop
            for i, block in enumerate(range(first, last + 1)):
                if block not in blocks:
                    new_blocks.append(block)
                self._release_shared(block)
                blocks[block] = handles[i]
                cache_pop(block, None)
        else:
            block = first
            for offset in range(0, n, size):
                if block not in blocks:
                    new_blocks.append(block)
                self._release_shared(block)
                blocks[block] = arr[offset : offset + size]
                block += 1
        if new_blocks and self._directory is not None:
            self._directory._on_write_many(self._dir_owner, new_blocks)

    def drop_block(self, block: int) -> None:
        if self._blocks.pop(block, None) is not None:
            self._release_shared(block)
            if self._remote is not None:
                with self._batch_lock:
                    self._pending_publish.discard(block)
                self._read_cache.pop(block, None)
                try:
                    self._remote.release(self, (block,))
                except TransportFailure:  # pragma: no cover - best effort
                    pass
            if self._directory is not None:
                self._directory._on_drop(self._dir_owner, block)

    def clear(self) -> None:
        if self._directory is not None and self._blocks:
            self._directory._on_clear(self._dir_owner, tuple(self._blocks))
        for b in tuple(self._shared):
            self._release_shared(b)
        if self._remote is not None and self._blocks:
            with self._batch_lock:
                self._pending_publish.clear()
            self._read_cache.clear()
            try:
                self._remote.release(self, tuple(self._blocks))
            except TransportFailure:  # pragma: no cover - best effort
                pass
        self._blocks.clear()

    # -- read side --------------------------------------------------------

    def has_block(self, block: int) -> bool:
        return block in self._blocks

    def get_block(self, block: int) -> Optional[np.ndarray]:
        got = self._blocks.get(block)
        if got is None or self._remote is None:
            return got
        local = self._local_payload(block)
        if local is not None:
            return local
        return self._fetch_blocks(block, block)[0]

    def get_block_many(self, first: int, last: int) -> List[np.ndarray]:
        """Payloads of the contiguous held blocks ``[first, last]``.

        The batched read path of the unified reader: a remote store turns a
        whole same-owner run into one transport round-trip per shard
        instead of a fetch per block.
        """
        if self._remote is not None:
            return self._fetch_blocks(first, last)
        return [self.get_block(b) for b in range(first, last + 1)]

    def prefetch(self, first: int, last: int) -> None:
        """Warm the read cache with held blocks ``[first, last]`` (remote only)."""
        if self._remote is not None:
            self._fetch_blocks(first, last)

    def _fetch_blocks(self, first: int, last: int) -> List[np.ndarray]:
        """Fetch ``[first, last]`` from the transport, via the read cache.

        Worker threads may race on the cache dict; every operation used is
        GIL-atomic, so the worst case is a duplicate fetch, never a torn
        read.
        """
        cache = self._read_cache
        out: List[np.ndarray] = []
        b = first
        while b <= last:
            cached = self._local_payload(b)
            if cached is not None:
                out.append(cached)
                b += 1
                continue
            run_end = b
            while run_end < last and self._local_payload(run_end + 1) is None:
                run_end += 1
            fetched = self._remote.read_range(self, b, run_end)
            out.extend(fetched)
            for bb, arr in zip(range(b, run_end + 1), fetched):
                cache[bb] = arr
            b = run_end + 1
        while len(cache) > _READ_CACHE_BLOCKS:
            try:
                cache.pop(next(iter(cache)))
            except (StopIteration, KeyError, RuntimeError):  # pragma: no cover
                break
        return out

    def stored_blocks(self) -> Tuple[int, ...]:
        return tuple(sorted(self._blocks))

    # -- accounting -------------------------------------------------------

    @property
    def num_stored_blocks(self) -> int:
        return len(self._blocks)

    def allocated_bytes(self) -> int:
        return sum(b.nbytes for b in self._blocks.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BlockStore(dim={self.dim}, B={self.block_size}, "
            f"stored={self.num_stored_blocks}/{self.n_blocks})"
        )


class InitialStateStore(BlockStore):
    """The |0...0> initial state, materialised lazily block by block.

    Block 0 holds amplitude 1 at index 0; all other blocks are zero.  The
    store never allocates memory unless a block is explicitly requested, so an
    empty circuit costs (almost) nothing.
    """

    def __init__(self, dim: int, block_size: int) -> None:
        super().__init__(dim, block_size)

    def has_block(self, block: int) -> bool:  # every block is defined here
        return 0 <= block < self.n_blocks

    def get_block(self, block: int) -> np.ndarray:
        if not 0 <= block < self.n_blocks:
            raise IndexError(f"block {block} out of range [0, {self.n_blocks})")
        cached = self._blocks.get(block)
        if cached is not None:
            return cached
        lo, hi = block_bounds(block, self.block_size, self.dim)
        arr = np.zeros(hi - lo + 1, dtype=_DTYPE)
        if block == 0:
            arr[0] = 1.0
        self._blocks[block] = arr
        return arr

    def read_dense(self, lo: int, hi: int) -> np.ndarray:
        """Amplitudes of ``[lo, hi]`` in one allocation, without caching blocks.

        Readers that resolve a long run of never-written blocks to the
        initial state use this instead of per-block :meth:`get_block` calls,
        which would materialise (and cache) one zero array per block.
        Blocks already materialised in the cache (tests preload custom
        initial states there) overlay the implicit |0...0>.
        """
        out = np.zeros(hi - lo + 1, dtype=_DTYPE)
        if lo == 0:
            out[0] = 1.0
        for b, arr in self._blocks.items():
            blo, bhi = block_bounds(b, self.block_size, self.dim)
            if bhi < lo or blo > hi:
                continue
            s = max(lo, blo)
            e = min(hi, bhi)
            out[s - lo : e - lo + 1] = arr[s - blo : e - blo + 1]
        return out

    def allocated_bytes(self) -> int:
        # The initial state is conceptually free; cached zero blocks are an
        # implementation detail and excluded from the accounting.
        return 0


class _ResolvingReader:
    """The one read-side implementation behind every block resolver.

    Subclasses provide ``dim``/``block_size``/``n_blocks`` attributes and a
    single ``resolve_store`` method; range reads, gathers, full-vector
    materialisation and remote prefetching all derive from it.  Range reads
    batch maximal same-owner block runs: a run of never-written blocks
    becomes one dense zero allocation (:meth:`InitialStateStore.read_dense`)
    and a run owned by one store becomes one
    :meth:`BlockStore.get_block_many` call -- which, on a remote transport,
    is one round-trip per shard instead of one per block.

    Historically :class:`StoreChain` and :class:`DirectoryReader` each
    carried their own copy of this logic; they are now pure resolution
    strategies.
    """

    __slots__ = ()

    def resolve_store(self, block: int) -> BlockStore:
        """The store holding the current contents of ``block``."""
        raise NotImplementedError

    def resolve_block(self, block: int) -> np.ndarray:
        got = self.resolve_store(block).get_block(block)
        assert got is not None
        return got

    def _check_range(self, lo: int, hi: int) -> None:
        if lo < 0 or hi >= self.dim or lo > hi:
            raise ValueError(f"invalid index range [{lo}, {hi}] for dim {self.dim}")

    def owner_runs(
        self, first: int, last: int
    ) -> Iterator[Tuple[BlockStore, int, int]]:
        """Maximal runs ``(store, first_block, last_block)`` of same-owner blocks."""
        run_store: Optional[BlockStore] = None
        run_first = first
        for b in range(first, last + 1):
            store = self.resolve_store(b)
            if store is not run_store:
                if run_store is not None:
                    yield run_store, run_first, b - 1
                run_store, run_first = store, b
        if run_store is not None:
            yield run_store, run_first, last

    def read_range(self, lo: int, hi: int) -> np.ndarray:
        """Return amplitudes for the inclusive index range ``[lo, hi]``."""
        self._check_range(lo, hi)
        block_size = self.block_size
        first = lo // block_size
        last = hi // block_size
        parts: List[np.ndarray] = []
        for store, rf, rl in self.owner_runs(first, last):
            if isinstance(store, InitialStateStore):
                # whole run in one allocation, no per-block zero caching
                rlo = max(lo, rf * block_size)
                rhi = min(hi, (rl + 1) * block_size - 1, self.dim - 1)
                parts.append(store.read_dense(rlo, rhi))
                continue
            for b, blk in zip(range(rf, rl + 1), store.get_block_many(rf, rl)):
                blo, bhi = block_bounds(b, block_size, self.dim)
                s = max(lo, blo) - blo
                e = min(hi, bhi) - blo
                parts.append(blk[s : e + 1])
        if len(parts) == 1:
            return np.array(parts[0], copy=True)
        return np.concatenate(parts)

    def gather(self, indices: np.ndarray) -> np.ndarray:
        """Fancy-indexed read of arbitrary amplitude indices."""
        idx = np.asarray(indices, dtype=np.int64)
        out = np.empty(idx.shape, dtype=_DTYPE)
        if idx.size == 0:
            return out
        blocks = idx // self.block_size
        order = np.argsort(blocks, kind="stable")
        sorted_idx = idx[order]
        sorted_blocks = blocks[order]
        boundaries = np.flatnonzero(np.diff(sorted_blocks)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [idx.size]))
        for s, e in zip(starts, ends):
            b = int(sorted_blocks[s])
            blk = self.resolve_block(b)
            local = sorted_idx[s:e] - b * self.block_size
            out[order[s:e]] = blk[local]
        return out

    def full_vector(self) -> np.ndarray:
        """Materialise the whole state vector (mostly for queries/tests)."""
        return self.read_range(0, self.dim - 1)

    def prefetch_blocks(self, first: int, last: int) -> None:
        """Warm remote read caches for blocks ``[first, last]`` (best effort).

        Resolution groups the range into owner runs so each remote store
        sees one batched fetch; local stores are skipped entirely.
        """
        for store, rf, rl in self.owner_runs(first, last):
            if store.is_remote_backed:
                store.prefetch(rf, rl)


class StoreChain(_ResolvingReader):
    """Resolve blocks across an ordered sequence of stores.

    ``stores[0]`` is the oldest (usually an :class:`InitialStateStore`) and
    ``stores[-1]`` the most recent stage.  Reading block ``b`` walks the chain
    backwards until a store holds ``b``.
    """

    def __init__(self, stores: Sequence[BlockStore]) -> None:
        if not stores:
            raise ValueError("StoreChain needs at least one store")
        dims = {s.dim for s in stores}
        sizes = {s.block_size for s in stores}
        if len(dims) != 1 or len(sizes) != 1:
            raise ValueError("all stores in a chain must share dim and block size")
        self._stores: List[BlockStore] = list(stores)
        self.dim = stores[0].dim
        self.block_size = stores[0].block_size
        self.n_blocks = stores[0].n_blocks

    def resolve_store(self, block: int) -> BlockStore:
        for store in reversed(self._stores):
            if store.has_block(block):
                return store
        raise LookupError(f"block {block} resolved by no store in the chain")


class BlockDirectory:
    """Index of block ownership across all stages of one simulator.

    For every block id the directory keeps the list of *owners* (objects
    exposing ``.seq`` and ``.store``, in practice stages) whose store
    currently holds that block, sorted by ``seq``.  Resolution "as of"
    sequence ``k`` is a binary search for the rightmost owner with
    ``seq < k``; blocks nobody wrote fall back to the initial state.

    Maintenance is push-based: :meth:`attach` installs a back-reference on
    the owner's store, whose ``write_block``/``drop_block``/``clear`` then
    report ownership changes.  Entries survive stage re-sequencing because
    insertion/removal never reorders surviving stages relative to each
    other, so seq-sorted lists stay sorted under renumbering.

    Mutations take a lock (they happen on worker threads during execution);
    lookups are lock-free, which is safe because the partition task graph
    already orders every write of a block before any read that must see it.
    """

    def __init__(self, initial: BlockStore) -> None:
        self.initial = initial
        self.dim = initial.dim
        self.block_size = initial.block_size
        self.n_blocks = initial.n_blocks
        self._writers: Dict[int, List[object]] = {}
        self._lock = threading.Lock()

    # -- owner lifecycle --------------------------------------------------

    def attach(self, owner) -> None:
        """Start tracking ``owner.store`` (adopting any blocks it holds)."""
        store = owner.store
        store._directory = self
        store._dir_owner = owner
        for b in store.stored_blocks():
            self._on_write(owner, b)

    def detach(self, owner) -> None:
        """Stop tracking ``owner.store`` and purge its entries."""
        store = owner.store
        store._directory = None
        store._dir_owner = None
        with self._lock:
            for b in store.stored_blocks():
                lst = self._writers.get(b)
                if lst is not None and owner in lst:
                    lst.remove(owner)

    # -- store callbacks --------------------------------------------------

    @staticmethod
    def _bisect_seq(lst: List[object], seq: int) -> int:
        """Index of the first owner with ``.seq >= seq`` (bisect_left by seq).

        Hand-rolled because :func:`bisect.bisect_left` only grew ``key=`` in
        Python 3.10 and this package supports 3.9.
        """
        lo, hi = 0, len(lst)
        while lo < hi:
            mid = (lo + hi) >> 1
            if lst[mid].seq < seq:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _insert_sorted(self, lst: List[object], owner) -> None:
        # Fast path: owners usually arrive in seq order (stage execution,
        # fork adoption), making the insert a plain append.
        if not lst or lst[-1].seq < owner.seq:
            lst.append(owner)
            return
        lst.insert(self._bisect_seq(lst, owner.seq), owner)

    def _on_write(self, owner, block: int) -> None:
        with self._lock:
            lst = self._writers.get(block)
            if lst is None:
                lst = self._writers[block] = []
            if owner not in lst:
                self._insert_sorted(lst, owner)

    def _on_write_many(self, owner, blocks: Sequence[int]) -> None:
        writers = self._writers
        with self._lock:
            for block in blocks:
                lst = writers.get(block)
                if lst is None:
                    writers[block] = [owner]
                elif owner not in lst:
                    self._insert_sorted(lst, owner)

    def _on_drop(self, owner, block: int) -> None:
        with self._lock:
            lst = self._writers.get(block)
            if lst is not None and owner in lst:
                lst.remove(owner)

    def _on_clear(self, owner, blocks: Sequence[int]) -> None:
        with self._lock:
            for b in blocks:
                lst = self._writers.get(b)
                if lst is not None and owner in lst:
                    lst.remove(owner)

    # -- resolution -------------------------------------------------------

    def resolve_store(self, block: int, before_seq: int) -> BlockStore:
        """The store owning ``block`` as of stage sequence ``before_seq``.

        O(log W) in the number of writers of the block; falls back to the
        initial-state store when no stage with ``seq < before_seq`` holds it.
        """
        lst = self._writers.get(block)
        if lst:
            lo = self._bisect_seq(lst, before_seq)
            while lo:
                store = lst[lo - 1].store
                if store.has_block(block):
                    return store
                lo -= 1  # racing drop: fall back to the next older writer
        return self.initial

    def resolve_block(self, block: int, before_seq: int) -> np.ndarray:
        got = self.resolve_store(block, before_seq).get_block(block)
        assert got is not None
        return got

    def owner_runs(
        self, first: int, last: int, before_seq: int
    ) -> Iterator[Tuple[BlockStore, int, int]]:
        """Maximal runs ``(store, first_block, last_block)`` of same-owner blocks."""
        run_store: Optional[BlockStore] = None
        run_first = first
        for b in range(first, last + 1):
            store = self.resolve_store(b, before_seq)
            if store is not run_store:
                if run_store is not None:
                    yield run_store, run_first, b - 1
                run_store, run_first = store, b
        if run_store is not None:
            yield run_store, run_first, last

    def writers_of(self, block: int) -> Tuple[object, ...]:
        """The current owners of ``block`` in seq order (for introspection)."""
        return tuple(self._writers.get(block, ()))


class DirectoryReader(_ResolvingReader):
    """A :class:`StateReader` view of a directory "as of" one stage.

    Construction is O(1) -- unlike :class:`StoreChain` there is no store
    list to copy -- and every block lookup is an O(log W) directory
    resolution.  ``before_seq`` is exclusive: a stage reads the output of
    stages strictly before it.
    """

    __slots__ = ("directory", "before_seq", "dim", "block_size", "n_blocks")

    def __init__(self, directory: BlockDirectory, before_seq: int) -> None:
        self.directory = directory
        self.before_seq = before_seq
        self.dim = directory.dim
        self.block_size = directory.block_size
        self.n_blocks = directory.n_blocks

    def resolve_store(self, block: int) -> BlockStore:
        return self.directory.resolve_store(block, self.before_seq)


@dataclass(frozen=True)
class MemoryReport:
    """Logical memory accounting of a simulator's COW stores.

    ``allocated_bytes`` counts every block the stores reference;
    ``shared_bytes`` is the part referencing another session's memory
    (blocks adopted by :meth:`BlockStore.share_from` and not yet rewritten),
    so ``owned_bytes`` is the marginal footprint of this session -- the
    number a fleet of forked sessions sums to show sublinear memory growth.

    On a remote transport, ``transport`` names the placement and ``shards``
    holds the per-shard occupancy (``shard``/``alive``/``blocks``/
    ``owned_bytes``/``shared_bytes`` each); the shard-side owned bytes of
    one session sum to the same total the local transport reports, which
    the shard-scale benchmark gates on.
    """

    num_stores: int
    stored_blocks: int
    total_blocks: int
    allocated_bytes: int
    dense_bytes: int
    shared_blocks: int = 0
    shared_bytes: int = 0
    transport: str = "local"
    shards: Tuple[Dict[str, int], ...] = ()

    @property
    def owned_bytes(self) -> int:
        """Bytes owned outright (allocated minus shared-with-a-parent)."""
        return self.allocated_bytes - self.shared_bytes

    @property
    def savings_fraction(self) -> float:
        """Fraction of dense (non-COW) storage avoided, in [0, 1]."""
        if self.dense_bytes == 0:
            return 0.0
        return 1.0 - self.allocated_bytes / self.dense_bytes

    @property
    def allocated_gib(self) -> float:
        return self.allocated_bytes / 2**30

    @staticmethod
    def from_stores(
        stores: Iterable[BlockStore],
        transport: Optional[StorageTransport] = None,
    ) -> "MemoryReport":
        stores = list(stores)
        stored = sum(s.num_stored_blocks for s in stores)
        total = sum(s.n_blocks for s in stores)
        alloc = sum(s.allocated_bytes() for s in stores)
        dense = sum(s.dim * np.dtype(_DTYPE).itemsize for s in stores)
        shared = sum(s.shared_block_count for s in stores)
        shared_b = sum(s.shared_bytes() for s in stores)
        shards: Tuple[Dict[str, int], ...] = ()
        name = "local"
        if transport is not None:
            name = transport.name
            if transport.is_remote:
                shards = tuple(transport.shard_report())
        return MemoryReport(
            num_stores=len(stores),
            stored_blocks=stored,
            total_blocks=total,
            allocated_bytes=alloc,
            dense_bytes=dense,
            shared_blocks=shared,
            shared_bytes=shared_b,
            transport=name,
            shards=shards,
        )
