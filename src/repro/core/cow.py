"""Copy-on-write (COW) block storage for per-stage state vectors.

qTask keeps one state vector per gate stage (the paper calls this *per-net
state vector management*, §III.F.2) so that incremental update can restart
from any intermediate result.  Storing every vector densely would be very
expensive, so each stage only materialises the blocks its partitions actually
write; every other block is implicitly inherited from the closest preceding
stage that wrote it (ultimately the |0...0> initial state).  This is the
*copy-on-write data optimization* of §III.F.3.

The stores themselves do not know about stages -- resolution across stages is
performed by :class:`StoreChain`, which walks an ordered sequence of stores so
that removing a stage simply removes its store from the sequence (no dangling
parent pointers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .blocks import BlockRange, block_bounds, num_blocks, validate_block_size

__all__ = [
    "BlockStore",
    "InitialStateStore",
    "StoreChain",
    "MemoryReport",
]

_DTYPE = np.complex128


class BlockStore:
    """Sparse per-stage storage of state-vector blocks.

    Only blocks written by this stage's partitions are present; everything
    else resolves to an earlier store through :class:`StoreChain`.
    """

    def __init__(self, dim: int, block_size: int) -> None:
        self.dim = int(dim)
        self.block_size = validate_block_size(block_size)
        self.n_blocks = num_blocks(self.dim, self.block_size)
        self._blocks: Dict[int, np.ndarray] = {}

    # -- write side -------------------------------------------------------

    def write_block(self, block: int, values: np.ndarray) -> None:
        """Store the full contents of ``block`` (copying into owned memory)."""
        lo, hi = block_bounds(block, self.block_size, self.dim)
        expected = hi - lo + 1
        arr = np.asarray(values, dtype=_DTYPE)
        if arr.shape != (expected,):
            raise ValueError(
                f"block {block} expects {expected} amplitudes, got shape {arr.shape}"
            )
        self._blocks[block] = np.array(arr, dtype=_DTYPE, copy=True)

    def write_range(self, lo: int, values: np.ndarray) -> None:
        """Write a block-aligned contiguous range starting at index ``lo``."""
        if lo % self.block_size != 0:
            raise ValueError(f"range start {lo} is not block aligned")
        arr = np.asarray(values, dtype=_DTYPE)
        offset = 0
        block = lo // self.block_size
        while offset < arr.shape[0]:
            blo, bhi = block_bounds(block, self.block_size, self.dim)
            size = bhi - blo + 1
            self.write_block(block, arr[offset : offset + size])
            offset += size
            block += 1

    def drop_block(self, block: int) -> None:
        self._blocks.pop(block, None)

    def clear(self) -> None:
        self._blocks.clear()

    # -- read side --------------------------------------------------------

    def has_block(self, block: int) -> bool:
        return block in self._blocks

    def get_block(self, block: int) -> Optional[np.ndarray]:
        return self._blocks.get(block)

    def stored_blocks(self) -> Tuple[int, ...]:
        return tuple(sorted(self._blocks))

    # -- accounting -------------------------------------------------------

    @property
    def num_stored_blocks(self) -> int:
        return len(self._blocks)

    def allocated_bytes(self) -> int:
        return sum(b.nbytes for b in self._blocks.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BlockStore(dim={self.dim}, B={self.block_size}, "
            f"stored={self.num_stored_blocks}/{self.n_blocks})"
        )


class InitialStateStore(BlockStore):
    """The |0...0> initial state, materialised lazily block by block.

    Block 0 holds amplitude 1 at index 0; all other blocks are zero.  The
    store never allocates memory unless a block is explicitly requested, so an
    empty circuit costs (almost) nothing.
    """

    def __init__(self, dim: int, block_size: int) -> None:
        super().__init__(dim, block_size)

    def has_block(self, block: int) -> bool:  # every block is defined here
        return 0 <= block < self.n_blocks

    def get_block(self, block: int) -> np.ndarray:
        if not 0 <= block < self.n_blocks:
            raise IndexError(f"block {block} out of range [0, {self.n_blocks})")
        cached = self._blocks.get(block)
        if cached is not None:
            return cached
        lo, hi = block_bounds(block, self.block_size, self.dim)
        arr = np.zeros(hi - lo + 1, dtype=_DTYPE)
        if block == 0:
            arr[0] = 1.0
        self._blocks[block] = arr
        return arr

    def allocated_bytes(self) -> int:
        # The initial state is conceptually free; cached zero blocks are an
        # implementation detail and excluded from the accounting.
        return 0


class StoreChain:
    """Resolve blocks across an ordered sequence of stores.

    ``stores[0]`` is the oldest (usually an :class:`InitialStateStore`) and
    ``stores[-1]`` the most recent stage.  Reading block ``b`` walks the chain
    backwards until a store holds ``b``.
    """

    def __init__(self, stores: Sequence[BlockStore]) -> None:
        if not stores:
            raise ValueError("StoreChain needs at least one store")
        dims = {s.dim for s in stores}
        sizes = {s.block_size for s in stores}
        if len(dims) != 1 or len(sizes) != 1:
            raise ValueError("all stores in a chain must share dim and block size")
        self._stores: List[BlockStore] = list(stores)
        self.dim = stores[0].dim
        self.block_size = stores[0].block_size
        self.n_blocks = stores[0].n_blocks

    def resolve_block(self, block: int) -> np.ndarray:
        for store in reversed(self._stores):
            if store.has_block(block):
                got = store.get_block(block)
                assert got is not None
                return got
        raise LookupError(f"block {block} resolved by no store in the chain")

    def read_range(self, lo: int, hi: int) -> np.ndarray:
        """Return amplitudes for the inclusive index range ``[lo, hi]``."""
        if lo < 0 or hi >= self.dim or lo > hi:
            raise ValueError(f"invalid index range [{lo}, {hi}] for dim {self.dim}")
        first = lo // self.block_size
        last = hi // self.block_size
        parts = []
        for b in range(first, last + 1):
            blo, bhi = block_bounds(b, self.block_size, self.dim)
            blk = self.resolve_block(b)
            s = max(lo, blo) - blo
            e = min(hi, bhi) - blo
            parts.append(blk[s : e + 1])
        if len(parts) == 1:
            return np.array(parts[0], copy=True)
        return np.concatenate(parts)

    def gather(self, indices: np.ndarray) -> np.ndarray:
        """Fancy-indexed read of arbitrary amplitude indices."""
        idx = np.asarray(indices, dtype=np.int64)
        out = np.empty(idx.shape, dtype=_DTYPE)
        if idx.size == 0:
            return out
        blocks = idx // self.block_size
        order = np.argsort(blocks, kind="stable")
        sorted_idx = idx[order]
        sorted_blocks = blocks[order]
        boundaries = np.flatnonzero(np.diff(sorted_blocks)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [idx.size]))
        for s, e in zip(starts, ends):
            b = int(sorted_blocks[s])
            blk = self.resolve_block(b)
            local = sorted_idx[s:e] - b * self.block_size
            out[order[s:e]] = blk[local]
        return out

    def full_vector(self) -> np.ndarray:
        """Materialise the whole state vector (mostly for queries/tests)."""
        return self.read_range(0, self.dim - 1)


@dataclass(frozen=True)
class MemoryReport:
    """Logical memory accounting of a simulator's COW stores."""

    num_stores: int
    stored_blocks: int
    total_blocks: int
    allocated_bytes: int
    dense_bytes: int

    @property
    def savings_fraction(self) -> float:
        """Fraction of dense (non-COW) storage avoided, in [0, 1]."""
        if self.dense_bytes == 0:
            return 0.0
        return 1.0 - self.allocated_bytes / self.dense_bytes

    @property
    def allocated_gib(self) -> float:
        return self.allocated_bytes / 2**30

    @staticmethod
    def from_stores(stores: Iterable[BlockStore]) -> "MemoryReport":
        stores = list(stores)
        stored = sum(s.num_stored_blocks for s in stores)
        total = sum(s.n_blocks for s in stores)
        alloc = sum(s.allocated_bytes() for s in stores)
        dense = sum(s.dim * np.dtype(_DTYPE).itemsize for s in stores)
        return MemoryReport(
            num_stores=len(stores),
            stored_blocks=stored,
            total_blocks=total,
            allocated_bytes=alloc,
            dense_bytes=dense,
        )
