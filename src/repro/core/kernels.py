"""Vectorised numpy kernels for gate application on index ranges.

These kernels are the computational payload of qTask's partition tasks.  Each
kernel computes the *output* amplitudes of a contiguous index range ``[lo,
hi]`` of one stage from a *reader* exposing the stage input.  Because output
ranges of different tasks are disjoint, tasks can run in parallel without
locks; the heavy lifting is done by numpy (which releases the GIL), matching
the hpc-parallel guidance of vectorising inner loops instead of iterating in
Python.

Three families of kernels mirror the paper's gate classification (§III.C):

* ``diagonal`` -- scale amplitudes in place,
* ``monomial`` -- gather amplitudes along a generalized permutation,
* ``matvec``  -- dense matrix--vector fallback for superposition gates.
"""

from __future__ import annotations

import atexit
import logging
import os
import time
from typing import Dict, Iterator, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..telemetry import session as tsession
from ..telemetry.tracing import NULL_SPAN as _NO_SPAN
from . import faults
from .faults import FaultInjected
from .exec_plan import (
    RUN_ACTION,
    RUN_COLLAPSE,
    RUN_COPY,
    RUN_SLICE,
    PlanOp,
    RunSpec,
    RunTable,
)
from .gates import (
    DiagonalAction,
    MatVecAction,
    MonomialAction,
    extract_local,
    replace_local,
)

__all__ = [
    "StateReader",
    "ArrayReader",
    "extract_local",
    "replace_local",
    "apply_diagonal_range",
    "apply_monomial_range",
    "apply_matvec_range",
    "apply_action_range",
    "apply_action_run",
    "apply_gate_dense",
    "apply_matrix_dense",
    "measured_masses",
    "collapse_run",
    "execute_run",
    "iter_table_runs",
    "BackendUnavailable",
    "KernelBackend",
    "NumpyBatchBackend",
    "NumbaBackend",
    "ProcessPoolBackend",
    "make_backend",
    "available_backends",
    "shutdown_process_pools",
    "HAVE_NUMBA",
]

_DTYPE = np.complex128

logger = logging.getLogger(__name__)


class StateReader(Protocol):
    """Anything that can serve gate-input amplitudes.

    Implemented by :class:`~repro.core.cow.StoreChain`,
    :class:`~repro.core.cow.DirectoryReader` and :class:`ArrayReader`.
    """

    def read_range(self, lo: int, hi: int) -> np.ndarray: ...

    def gather(self, indices: np.ndarray) -> np.ndarray: ...

    def full_vector(self) -> np.ndarray: ...


class ArrayReader:
    """Adapt a plain ndarray to the :class:`StateReader` protocol."""

    def __init__(self, state: np.ndarray) -> None:
        self.state = np.asarray(state, dtype=_DTYPE)

    def read_range(self, lo: int, hi: int) -> np.ndarray:
        return self.state[lo : hi + 1]

    def gather(self, indices: np.ndarray) -> np.ndarray:
        return self.state[np.asarray(indices, dtype=np.int64)]

    def full_vector(self) -> np.ndarray:
        return np.array(self.state, copy=True)


# ---------------------------------------------------------------------------
# Range kernels (the bit helpers extract_local/replace_local live in .gates
# and are re-exported here for backward compatibility)
# ---------------------------------------------------------------------------


def _range_alignment(lo: int, n: int) -> int:
    """``log2(n)`` when ``[lo, lo+n)`` is an aligned power-of-two range, else -1.

    Every in-tree call site applies kernels one data block at a time, so the
    range is a whole (power-of-two, aligned) block: every state-index bit at
    or above ``log2(n)`` is then *constant* across the range and the
    per-amplitude local-index pattern repeats with the period set by the
    highest gate qubit below ``log2(n)``.  The strided fast paths exploit
    this to replace full-size ``arange``/``extract_local``/``replace_local``
    index arithmetic with one small per-period table.
    """
    if n <= 0 or n & (n - 1) or lo % n:
        return -1
    return n.bit_length() - 1


def _local_pattern(
    lo: int, nb: int, qubits: Sequence[int]
) -> Tuple[int, np.ndarray]:
    """Period and per-period local indices of ``qubits`` over an aligned range.

    Bits of qubits at or above ``nb`` are constant (taken from ``lo``); the
    remaining low qubits make the pattern repeat every ``2**(max_low+1)``
    amplitudes.
    """
    low = [q for q in qubits if q < nb]
    period = (1 << (max(low) + 1)) if low else 1
    base = np.arange(lo, lo + period, dtype=np.int64)
    return period, extract_local(base, qubits)


def apply_diagonal_range(
    reader: StateReader,
    lo: int,
    hi: int,
    qubits: Sequence[int],
    action: DiagonalAction,
) -> np.ndarray:
    """Output amplitudes of ``[lo, hi]`` for a diagonal gate."""
    src = np.asarray(reader.read_range(lo, hi), dtype=_DTYPE)
    phases = np.asarray(action.phases, dtype=_DTYPE)
    n = hi - lo + 1
    nb = _range_alignment(lo, n)
    if nb >= 0:
        # Strided fast path: one small phase table broadcasts over the range.
        period, local = _local_pattern(lo, nb, qubits)
        if period == 1:
            return src * phases[local[0]]
        return (src.reshape(-1, period) * phases[local]).reshape(-1)
    idx = np.arange(lo, hi + 1, dtype=np.int64)
    return src * phases[extract_local(idx, qubits)]


def apply_monomial_range(
    reader: StateReader,
    lo: int,
    hi: int,
    qubits: Sequence[int],
    action: MonomialAction,
) -> np.ndarray:
    """Output amplitudes of ``[lo, hi]`` for a generalized-permutation gate.

    The output amplitude at global index ``j`` with local index ``l`` is
    ``factors[perm^-1(l)] * input[replace(j, perm^-1(l))]``; the source index
    always lies inside the same gate orbit, which partitions are closed under,
    so the reads stay within the partition's index span.
    """
    perm = np.asarray(action.perm, dtype=np.int64)
    factors = np.asarray(action.factors, dtype=_DTYPE)
    dim = perm.shape[0]
    inv = np.empty(dim, dtype=np.int64)
    inv[perm] = np.arange(dim, dtype=np.int64)

    n = hi - lo + 1
    nb = _range_alignment(lo, n)
    if nb >= 0:
        period, local_out = _local_pattern(lo, nb, qubits)
        local_src = inv[local_out]
        pattern = replace_local(
            np.arange(lo, lo + period, dtype=np.int64), qubits, local_src
        )
        # The source bits above the period are constant whenever the
        # permutation maps the constant high-qubit bits to a single value;
        # the sources then tile the aligned mirror range [start, start+n)
        # and one contiguous read plus a small in-row gather suffices.
        start = int(pattern[0]) & ~(period - 1)
        offsets = pattern - start
        if np.all((offsets >= 0) & (offsets < period)):
            row_factors = factors[local_src]
            src = np.asarray(
                reader.read_range(start, start + n - 1), dtype=_DTYPE
            )
            if period == 1:
                return src * row_factors[0]
            return (src.reshape(-1, period)[:, offsets] * row_factors).reshape(-1)

    idx = np.arange(lo, hi + 1, dtype=np.int64)
    local_out = extract_local(idx, qubits)
    local_src = inv[local_out]
    src_idx = replace_local(idx, qubits, local_src)
    return reader.gather(src_idx) * factors[local_src]


def apply_matvec_range(
    reader: StateReader,
    lo: int,
    hi: int,
    qubits: Sequence[int],
    matrix: np.ndarray,
) -> np.ndarray:
    """Output amplitudes of ``[lo, hi]`` for a dense (superposition) gate.

    ``out[j] = sum_l  M[local(j), l] * in[replace(j, l)]`` -- i.e. the rows of
    the full transformation matrix restricted to the output range, exactly the
    role of the paper's MxV partitions, without materialising the 2^n x 2^n
    matrix.
    """
    m = np.asarray(matrix, dtype=_DTYPE)
    dim = m.shape[0]
    idx = np.arange(lo, hi + 1, dtype=np.int64)
    local_out = extract_local(idx, qubits)
    out = np.zeros(idx.shape[0], dtype=_DTYPE)
    for l_in in range(dim):
        col = m[local_out, l_in]
        nz = np.abs(col) > 0.0
        if not np.any(nz):
            continue
        src_idx = replace_local(idx, qubits, np.full_like(idx, l_in))
        out += col * reader.gather(src_idx)
    return out


def apply_action_range(
    reader: StateReader,
    lo: int,
    hi: int,
    qubits: Sequence[int],
    action,
) -> np.ndarray:
    """Dispatch on the classified action type."""
    if isinstance(action, DiagonalAction):
        return apply_diagonal_range(reader, lo, hi, qubits, action)
    if isinstance(action, MonomialAction):
        return apply_monomial_range(reader, lo, hi, qubits, action)
    if isinstance(action, MatVecAction):
        return apply_matvec_range(reader, lo, hi, qubits, action.matrix)
    raise TypeError(f"unknown action type {type(action)!r}")


def apply_action_run(
    reader: StateReader,
    store,
    lo: int,
    hi: int,
    qubits: Sequence[int],
    action,
) -> None:
    """Compute ``[lo, hi]`` and publish the result into ``store`` zero-copy.

    This is the run-granular entry point used by batched block-run tasks:
    one kernel invocation covers a whole aligned run of blocks (keeping the
    strided fast paths, which only need the range to be an aligned power of
    two) and the freshly allocated output is handed to
    ``BlockStore.write_range(..., copy=False)``, so the store keeps views of
    the kernel output instead of copying it block by block.
    """
    out = apply_action_range(reader, lo, hi, qubits, action)
    store.write_range(lo, out, copy=False)


def execute_run(reader: StateReader, store, spec: RunSpec) -> None:
    """Execute one :class:`~repro.core.exec_plan.RunSpec` against a store.

    The run-granular counterpart of the plan backends below, and the body of
    the legacy per-run task path (``Stage.block_tasks`` wraps one closure
    around each spec).  Every backend's fallback path funnels through here,
    so the two execution modes share the exact kernels.
    """
    if faults.ACTIVE is not None:
        faults.fire("kernel.run")
    kind = spec.kind
    if kind == RUN_ACTION:
        apply_action_run(reader, store, spec.lo, spec.hi, spec.qubits, spec.op)
    elif kind == RUN_SLICE:
        # op is a prepared full vector, rebound (never mutated) by the next
        # prepare() -- its slices are safe to publish zero-copy.
        store.write_range(spec.lo, spec.op[spec.lo : spec.hi + 1], copy=False)
    elif kind == RUN_COPY:
        # read_range returns a fresh array, safe to adopt zero-copy
        store.write_range(
            spec.lo, reader.read_range(spec.lo, spec.hi), copy=False
        )
    elif kind == RUN_COLLAPSE:
        qubit, outcome, scale, move = spec.op
        collapse_run(
            reader, store, spec.lo, spec.hi, qubit, outcome, scale, move=move
        )
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown run kind {kind!r}")


# ---------------------------------------------------------------------------
# Projective-collapse kernels (dynamic circuits: measure / reset)
# ---------------------------------------------------------------------------


def measured_masses(
    reader: StateReader, qubit: int, dim: int, block_size: int
) -> Tuple[float, float]:
    """Unnormalised probability masses ``(p0, p1)`` of measuring ``qubit``.

    Accumulated block by block through the COW block resolution -- the same
    per-block probability masses the observables engine's sampling tree and
    parity kernels are built on -- so a measurement's ``prepare`` never
    materialises the full ``2^n`` vector.  For qubits at or above the block
    width the bit is constant per block and a block contributes its whole
    mass to one side; below it, one reshape splits each block's probability
    rows into the two halves.
    """
    block_len = min(dim, block_size)
    n_blocks = dim // block_len
    p0 = 0.0
    p1 = 0.0
    nb_bits = block_len.bit_length() - 1
    if qubit >= nb_bits:
        for b in range(n_blocks):
            lo = b * block_len
            amps = np.asarray(
                reader.read_range(lo, lo + block_len - 1), dtype=_DTYPE
            )
            mass = float(np.real(np.vdot(amps, amps)))
            if (lo >> qubit) & 1:
                p1 += mass
            else:
                p0 += mass
        return p0, p1
    period = 1 << (qubit + 1)
    half = 1 << qubit
    for b in range(n_blocks):
        lo = b * block_len
        amps = np.asarray(reader.read_range(lo, lo + block_len - 1), dtype=_DTYPE)
        probs = (amps.conj() * amps).real.reshape(-1, period)
        p0 += float(probs[:, :half].sum())
        p1 += float(probs[:, half:].sum())
    return p0, p1


def collapse_run(
    reader: StateReader,
    store,
    lo: int,
    hi: int,
    qubit: int,
    outcome: int,
    scale: float,
    *,
    move: bool = False,
) -> None:
    """Collapse ``[lo, hi]`` onto ``qubit == outcome`` and publish zero-copy.

    With ``move=False`` (measurement) amplitudes whose ``qubit`` bit equals
    ``outcome`` are scaled by ``1/sqrt(p_outcome)`` and everything else is
    zeroed.  With ``move=True`` (reset) the surviving amplitudes are
    additionally relocated to the ``qubit = 0`` subspace, so the qubit ends
    in |0> whatever was measured.  Aligned power-of-two runs where the qubit
    bit is constant skip the index arithmetic entirely (and runs that
    collapse to zero never read their input at all).
    """
    n = hi - lo + 1
    nb = _range_alignment(lo, n)
    if nb >= 0 and qubit >= nb:
        bit = (lo >> qubit) & 1
        if not move:
            if bit == outcome:
                out = np.asarray(reader.read_range(lo, hi), dtype=_DTYPE) * scale
            else:
                out = np.zeros(n, dtype=_DTYPE)
        else:
            if bit == 0:
                src_lo = lo | (outcome << qubit)
                out = (
                    np.asarray(
                        reader.read_range(src_lo, src_lo + n - 1), dtype=_DTYPE
                    )
                    * scale
                )
            else:
                out = np.zeros(n, dtype=_DTYPE)
        store.write_range(lo, out, copy=False)
        return
    idx = np.arange(lo, hi + 1, dtype=np.int64)
    bits = (idx >> qubit) & 1
    if not move:
        src = np.asarray(reader.read_range(lo, hi), dtype=_DTYPE)
        out = np.where(bits == outcome, src * scale, 0.0 + 0.0j)
    else:
        out = np.zeros(n, dtype=_DTYPE)
        keep = bits == 0
        src_idx = idx[keep] | (outcome << qubit)
        out[keep] = reader.gather(src_idx) * scale
    store.write_range(lo, out, copy=False)


# ---------------------------------------------------------------------------
# Dense full-vector kernels (used by the baselines and the matvec fast path)
# ---------------------------------------------------------------------------


def apply_matrix_dense(
    state: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Apply a k-qubit unitary to a dense state vector via tensor reshaping.

    This is the classic statevector-simulator kernel (Qulacs/qsim style): view
    the state as an n-dimensional tensor, move the gate axes to the front,
    contract with the gate matrix, and move them back.  It is used by the
    baseline simulators and by qTask's superposition stages.
    """
    psi = np.asarray(state, dtype=_DTYPE).reshape([2] * num_qubits)
    k = len(qubits)
    # Axis j of the reshaped tensor corresponds to qubit (num_qubits - 1 - j):
    # the state index's most-significant bit is the first axis.
    axes = [num_qubits - 1 - q for q in qubits]
    perm = axes + [a for a in range(num_qubits) if a not in axes]
    psi_t = np.transpose(psi, perm)
    rest = psi_t.shape[k:]
    mat = np.asarray(matrix, dtype=_DTYPE)
    # Local index bit j corresponds to qubits[j]; axis order after transpose is
    # qubits[0], qubits[1], ... so axis j carries local bit j, and flattening
    # axes 0..k-1 in C order makes qubits[0] the *slowest* varying bit.  Build
    # the tensor form of the matrix accordingly.
    tensor = mat.reshape([2] * (2 * k))
    # tensor indices: (out bit k-1 ... out bit 0, in bit k-1 ... in bit 0) when
    # reshaped in C order from a (2^k, 2^k) matrix whose index bit j is local
    # bit j (bit 0 = fastest).  We need out/in axes ordered to match psi_t's
    # axis order (local bit 0 first), i.e. reverse each group.
    tensor = np.transpose(
        tensor,
        list(range(k - 1, -1, -1)) + list(range(2 * k - 1, k - 1, -1)),
    )
    contracted = np.tensordot(tensor, psi_t, axes=(list(range(k, 2 * k)), list(range(k))))
    out = np.transpose(
        contracted.reshape([2] * k + list(rest)), np.argsort(perm)
    )
    return out.reshape(-1)


def apply_gate_dense(state: np.ndarray, gate, num_qubits: int) -> np.ndarray:
    """Apply a :class:`repro.core.gates.Gate` to a dense state vector."""
    return apply_matrix_dense(state, gate.matrix(), gate.qubits, num_qubits)


# ---------------------------------------------------------------------------
# Kernel backends: batch-major execution of compiled run tables
# ---------------------------------------------------------------------------
#
# A backend consumes one RunTable (the runs of one stage, or a chunk of
# them) at a time through ``execute_plan(reader, store, table)``.  Runs of
# one table write disjoint ranges, so a backend is free to reorder or batch
# them; reads go through the block-resolving reader either way, so all
# backends observe the same stage input and produce bit-identical output.

#: optional dependency -- the numba backend degrades to unavailable when the
#: import fails (missing wheel, broken LLVM shared object, version skew);
#: anything else propagates so a genuinely broken environment fails loudly.
try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except ImportError:  # pragma: no cover - the common case in this container
    _numba = None
except (OSError, AttributeError) as _numba_exc:  # pragma: no cover
    # A present-but-broken install (e.g. llvmlite loading a bad .so).
    logger.warning("numba import failed, jit backend unavailable: %s", _numba_exc)
    _numba = None

HAVE_NUMBA = _numba is not None


class BackendUnavailable(RuntimeError):
    """Raised when a requested kernel backend cannot run on this host."""


def iter_table_runs(table: RunTable) -> Iterator[RunSpec]:
    """The rows of a run table as :class:`RunSpec` values, in table order."""
    los, his, op_ids, ops = table.los, table.his, table.op_ids, table.ops
    for i in range(los.shape[0]):
        op = ops[op_ids[i]]
        yield RunSpec(op.kind, int(los[i]), int(his[i]), op.qubits, op.op)


def _monomial_mirror(
    lo: int, n: int, qubits: Sequence[int], action: MonomialAction
) -> Optional[Tuple[int, int]]:
    """``(start, period)`` of the contiguous-mirror fast path, else ``None``.

    Mirrors the eligibility test inside :func:`apply_monomial_range` exactly
    -- the process-pool backend uses it to decide which source range to ship
    to a worker (the worker then deterministically takes the same branch).
    """
    nb = _range_alignment(lo, n)
    if nb < 0:
        return None
    perm = np.asarray(action.perm, dtype=np.int64)
    inv = np.empty(perm.shape[0], dtype=np.int64)
    inv[perm] = np.arange(perm.shape[0], dtype=np.int64)
    period, local_out = _local_pattern(lo, nb, qubits)
    local_src = inv[local_out]
    pattern = replace_local(
        np.arange(lo, lo + period, dtype=np.int64), qubits, local_src
    )
    start = int(pattern[0]) & ~(period - 1)
    offsets = pattern - start
    if np.all((offsets >= 0) & (offsets < period)):
        return start, period
    return None


class KernelBackend:
    """Interface: execute one compiled run table against a stage store.

    The base implementation is the run-granular reference loop -- every
    backend's fallback path and the behaviour contract the batched
    implementations must be bit-identical to.
    """

    name = "base"
    #: ``True`` for backends whose ``execute_plan`` may fail at runtime for
    #: environmental reasons (a broken worker pool); the simulator then
    #: retries the chunk through :func:`execute_run` and counts a fallback.
    failure_safe = False

    def execute_plan(self, reader: StateReader, store, table: RunTable) -> None:
        for spec in iter_table_runs(table):
            execute_run(reader, store, spec)

    def close(self) -> None:
        """Release backend resources (no-op by default)."""

    def backend_stats(self) -> Dict[str, int]:
        """Informational counters merged into ``statistics()`` (may be empty)."""
        return {}


class NumpyBatchBackend(KernelBackend):
    """Default backend: vectorised-numpy execution grouped by action.

    Homogeneous groups -- same classified action, same run length, every
    gate qubit below the run alignment (so the per-period local pattern is
    identical across runs) -- execute as a handful of stacked array ops:
    one ``(runs, n)`` source matrix, one broadcast multiply (plus one
    in-period gather for monomial actions), one view-publishing write per
    run.  Anything inhomogeneous falls back to the per-run reference loop,
    keeping output bit-identical to the legacy path by construction.
    """

    name = "numpy"

    def execute_plan(self, reader: StateReader, store, table: RunTable) -> None:
        for op, idx in table.groups():
            los = table.los[idx]
            his = table.his[idx]
            if op.kind == RUN_ACTION and isinstance(op.op, DiagonalAction):
                self._diagonal_group(reader, store, op, los, his)
            elif op.kind == RUN_ACTION and isinstance(op.op, MonomialAction):
                self._monomial_group(reader, store, op, los, his)
            else:
                for lo, hi in zip(los, his):
                    execute_run(
                        reader,
                        store,
                        RunSpec(op.kind, int(lo), int(hi), op.qubits, op.op),
                    )

    @staticmethod
    def _stack_alignment(
        los: np.ndarray, n: int, qubits: Sequence[int]
    ) -> int:
        """Shared alignment ``nb`` when the runs can stack, else -1.

        Stacking requires every run of the group to be an aligned power-of-
        two range of the same length with all gate qubits below the
        alignment -- then the per-period local pattern (and with it the
        phase/gather table) is the same for every run.
        """
        nb = _range_alignment(int(los[0]), n)
        if nb < 0 or (qubits and max(qubits) >= nb):
            return -1
        if np.any(los % n != 0):
            return -1
        return nb

    def _fallback(self, reader, store, op: PlanOp, los, his, sel) -> None:
        for j in sel:
            execute_run(
                reader,
                store,
                RunSpec(op.kind, int(los[j]), int(his[j]), op.qubits, op.op),
            )

    def _read_stack(self, reader, los, sel, n: int) -> np.ndarray:
        src = np.empty((sel.shape[0], n), dtype=_DTYPE)
        for i, j in enumerate(sel):
            lo = int(los[j])
            src[i] = reader.read_range(lo, lo + n - 1)
        return src

    def _diagonal_group(self, reader, store, op: PlanOp, los, his) -> None:
        qubits = op.qubits
        action = op.op
        phases = np.asarray(action.phases, dtype=_DTYPE)
        lengths = his - los + 1
        for n in np.unique(lengths):
            sel = np.flatnonzero(lengths == n)
            n = int(n)
            nb = self._stack_alignment(los[sel], n, qubits)
            if nb < 0 or sel.shape[0] < 2:
                self._fallback(reader, store, op, los, his, sel)
                continue
            period, local = _local_pattern(int(los[sel[0]]), nb, qubits)
            row = phases[local]
            src = self._read_stack(reader, los, sel, n)
            if period == 1:
                out = src * row[0]
            else:
                out = (src.reshape(sel.shape[0], -1, period) * row).reshape(
                    sel.shape[0], n
                )
            for i, j in enumerate(sel):
                store.write_range(int(los[j]), out[i], copy=False)

    def _monomial_group(self, reader, store, op: PlanOp, los, his) -> None:
        qubits = op.qubits
        action = op.op
        perm = np.asarray(action.perm, dtype=np.int64)
        factors = np.asarray(action.factors, dtype=_DTYPE)
        lengths = his - los + 1
        for n in np.unique(lengths):
            sel = np.flatnonzero(lengths == n)
            n = int(n)
            nb = self._stack_alignment(los[sel], n, qubits)
            if nb < 0 or sel.shape[0] < 2:
                self._fallback(reader, store, op, los, his, sel)
                continue
            # With every gate qubit below the alignment the source pattern
            # stays inside each run (start == lo), so one in-period gather
            # plus one broadcast multiply covers the whole stack.
            inv = np.empty(perm.shape[0], dtype=np.int64)
            inv[perm] = np.arange(perm.shape[0], dtype=np.int64)
            lo0 = int(los[sel[0]])
            period, local_out = _local_pattern(lo0, nb, qubits)
            local_src = inv[local_out]
            pattern = replace_local(
                np.arange(lo0, lo0 + period, dtype=np.int64), qubits, local_src
            )
            offsets = pattern - lo0
            if not np.all((offsets >= 0) & (offsets < period)):
                # defensive: cannot happen with qubits < nb, but never batch
                # a run the per-run fast path would route through a gather
                self._fallback(reader, store, op, los, his, sel)
                continue
            row_factors = factors[local_src]
            src = self._read_stack(reader, los, sel, n)
            if period == 1:
                out = src * row_factors[0]
            else:
                stacked = src.reshape(sel.shape[0], -1, period)
                out = (stacked[:, :, offsets] * row_factors).reshape(
                    sel.shape[0], n
                )
            for i, j in enumerate(sel):
                store.write_range(int(los[j]), out[i], copy=False)


# -- numba backend ----------------------------------------------------------
#
# The loop kernels are plain Python functions; when numba imports they are
# njit-wrapped at backend construction, otherwise ``NumbaBackend(jit=False)``
# runs them as interpreted loops (slow, but it lets the parity suite exercise
# the exact loop logic on hosts without numba).


def _diag_loop(src, table, period, out):  # pragma: no cover - jitted
    for i in range(src.shape[0]):
        out[i] = src[i] * table[i % period]


def _monomial_loop(src, offsets, factors, period, out):  # pragma: no cover
    for i in range(src.shape[0]):
        j = i % period
        out[i] = src[i - j + offsets[j]] * factors[j]


def _matvec_accum_loop(cols, srcs, out):  # pragma: no cover - jitted
    d = cols.shape[0]
    n = cols.shape[1]
    for l in range(d):
        for i in range(n):
            out[i] += cols[l, i] * srcs[l, i]


class NumbaBackend(KernelBackend):
    """Optional backend: njit'd diagonal/monomial/matvec inner loops.

    Auto-detected and importable-failure-safe: constructing it raises
    :class:`BackendUnavailable` when numba is missing, and
    :func:`make_backend` then substitutes the numpy backend.  ``jit=False``
    runs the same loop kernels interpreted (parity testing without numba).
    """

    name = "numba"

    def __init__(self, *, jit: bool = True) -> None:
        if jit and not HAVE_NUMBA:
            raise BackendUnavailable("numba is not importable on this host")
        self.jitted = bool(jit) and HAVE_NUMBA
        if self.jitted:  # pragma: no cover - needs numba
            self._diag = _numba.njit(cache=False)(_diag_loop)
            self._monomial = _numba.njit(cache=False)(_monomial_loop)
            self._matvec = _numba.njit(cache=False)(_matvec_accum_loop)
        else:
            self._diag = _diag_loop
            self._monomial = _monomial_loop
            self._matvec = _matvec_accum_loop

    def execute_plan(self, reader: StateReader, store, table: RunTable) -> None:
        for spec in iter_table_runs(table):
            if spec.kind != RUN_ACTION:
                execute_run(reader, store, spec)
            elif isinstance(spec.op, DiagonalAction):
                self._run_diagonal(reader, store, spec)
            elif isinstance(spec.op, MonomialAction):
                self._run_monomial(reader, store, spec)
            elif isinstance(spec.op, MatVecAction):
                self._run_matvec(reader, store, spec)
            else:  # pragma: no cover - defensive
                execute_run(reader, store, spec)

    def _run_diagonal(self, reader, store, spec: RunSpec) -> None:
        n = spec.hi - spec.lo + 1
        nb = _range_alignment(spec.lo, n)
        if nb < 0:
            execute_run(reader, store, spec)
            return
        period, local = _local_pattern(spec.lo, nb, spec.qubits)
        table = np.ascontiguousarray(
            np.asarray(spec.op.phases, dtype=_DTYPE)[local]
        )
        src = np.ascontiguousarray(
            np.asarray(reader.read_range(spec.lo, spec.hi), dtype=_DTYPE)
        )
        out = np.empty(n, dtype=_DTYPE)
        self._diag(src, table, period, out)
        store.write_range(spec.lo, out, copy=False)

    def _run_monomial(self, reader, store, spec: RunSpec) -> None:
        n = spec.hi - spec.lo + 1
        mirror = _monomial_mirror(spec.lo, n, spec.qubits, spec.op)
        if mirror is None:
            execute_run(reader, store, spec)
            return
        start, period = mirror
        perm = np.asarray(spec.op.perm, dtype=np.int64)
        inv = np.empty(perm.shape[0], dtype=np.int64)
        inv[perm] = np.arange(perm.shape[0], dtype=np.int64)
        _, local_out = _local_pattern(
            spec.lo, _range_alignment(spec.lo, n), spec.qubits
        )
        local_src = inv[local_out]
        pattern = replace_local(
            np.arange(spec.lo, spec.lo + period, dtype=np.int64),
            spec.qubits,
            local_src,
        )
        offsets = np.ascontiguousarray(pattern - start)
        factors = np.ascontiguousarray(
            np.asarray(spec.op.factors, dtype=_DTYPE)[local_src]
        )
        src = np.ascontiguousarray(
            np.asarray(reader.read_range(start, start + n - 1), dtype=_DTYPE)
        )
        out = np.empty(n, dtype=_DTYPE)
        self._monomial(src, offsets, factors, period, out)
        store.write_range(spec.lo, out, copy=False)

    def _run_matvec(self, reader, store, spec: RunSpec) -> None:
        # Gathers stay in numpy (they walk the block-resolving reader); the
        # jitted loop does the dense accumulation, in the same ascending
        # column order -- and with the same all-zero-column skip -- as
        # apply_matvec_range, so results match bit for bit.
        m = np.asarray(spec.op.matrix, dtype=_DTYPE)
        dim = m.shape[0]
        idx = np.arange(spec.lo, spec.hi + 1, dtype=np.int64)
        local_out = extract_local(idx, spec.qubits)
        cols: List[np.ndarray] = []
        srcs: List[np.ndarray] = []
        for l_in in range(dim):
            col = m[local_out, l_in]
            if not np.any(np.abs(col) > 0.0):
                continue
            src_idx = replace_local(idx, spec.qubits, np.full_like(idx, l_in))
            cols.append(col)
            srcs.append(np.asarray(reader.gather(src_idx), dtype=_DTYPE))
        out = np.zeros(idx.shape[0], dtype=_DTYPE)
        if cols:
            self._matvec(
                np.ascontiguousarray(np.stack(cols)),
                np.ascontiguousarray(np.stack(srcs)),
                out,
            )
        store.write_range(spec.lo, out, copy=False)


# -- process-pool backend ---------------------------------------------------
#
# Fork-based worker processes fed through SharedMemory: the parent
# materialises each shippable run's source range into one shared input
# buffer, workers apply the classified actions and write the outputs into a
# shared output buffer at the same offsets, and the parent publishes the
# results into the stage store.  Only fork is supported (spawn would
# re-import the host application); pools are module-level and shared across
# simulators so a fleet of forked sessions reuses one set of workers.

_process_pools: Dict[int, object] = {}


def _get_fork_pool(workers: int):
    import multiprocessing as mp

    pool = _process_pools.get(workers)
    if pool is None:
        ctx = mp.get_context("fork")
        pool = ctx.Pool(processes=workers)
        _process_pools[workers] = pool
    return pool


def _pool_alive(pool) -> bool:
    """``True`` while every worker process of ``pool`` is still running.

    The watchdog check: a SIGKILLed or OOM-killed worker shows up here as a
    dead ``Process`` even while the pool object happily accepts new work
    (plain ``multiprocessing.Pool`` repopulates lazily and loses any task
    the dead worker held).
    """
    procs = getattr(pool, "_pool", None)
    if not procs:
        return False
    return all(p.is_alive() for p in procs)


def _respawn_fork_pool(workers: int):
    """Tear down the shared pool for ``workers`` and start a fresh one."""
    pool = _process_pools.pop(workers, None)
    if pool is not None:
        pool.terminate()
        pool.join()
    return _get_fork_pool(workers)


def shutdown_process_pools() -> None:
    """Terminate every shared fork pool (registered atexit)."""
    for pool in _process_pools.values():
        pool.terminate()
        pool.join()
    _process_pools.clear()


atexit.register(shutdown_process_pools)


class _OffsetReader:
    """Serve one contiguous amplitude window ``[base_lo, base_lo + len)``.

    The reader a pool worker wraps around its shipped source slice; the
    parent only ships runs whose kernel reads stay inside the window, so
    ``gather`` never sees an out-of-window index.
    """

    __slots__ = ("base_lo", "arr")

    def __init__(self, base_lo: int, arr: np.ndarray) -> None:
        self.base_lo = base_lo
        self.arr = arr

    def read_range(self, lo: int, hi: int) -> np.ndarray:  # pragma: no cover
        return self.arr[lo - self.base_lo : hi + 1 - self.base_lo]

    def gather(self, indices: np.ndarray) -> np.ndarray:  # pragma: no cover
        return self.arr[np.asarray(indices, dtype=np.int64) - self.base_lo]

    def full_vector(self) -> np.ndarray:  # pragma: no cover - never shipped
        raise RuntimeError("full-vector reads are not shipped to pool workers")


def _pool_apply_chunk(args):  # pragma: no cover - runs in fork workers
    """Worker body: apply classified actions to shipped source windows.

    ``directive`` is the parent-side fault decision for this chunk (the
    parent evaluates the plan so injection stays deterministic regardless
    of pool scheduling): ``"raise"`` simulates a worker crash as a clean
    exception, ``"kill"`` SIGKILLs this worker mid-chunk -- a genuine
    abrupt death the parent-side watchdog/timeout must recover from.
    """
    from multiprocessing import shared_memory

    in_name, out_name, total, rows, ops, directive, trace = args
    kind, occurrence = directive if directive else (None, 0)
    if kind == "kill":
        import signal

        os.kill(os.getpid(), signal.SIGKILL)
    # Worker-side span timing: perf_counter is CLOCK_MONOTONIC on Linux, and
    # fork children share the parent's timebase, so the record the parent
    # adopts lines up with parent-side spans on one timeline.
    t0 = time.perf_counter() if trace else 0.0
    shm_in = shared_memory.SharedMemory(name=in_name)
    try:
        shm_out = shared_memory.SharedMemory(name=out_name)
    except OSError:
        # Failing to attach the second segment must not leak the first:
        # the child holds an mmap + fd on shm_in until close().
        shm_in.close()
        raise
    # Attaching registers the segments with this process's resource tracker,
    # which would double-count them against the parent's unlink; the parent
    # owns both segments' lifetimes, so hand tracking back immediately.
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm_in._name, "shared_memory")
        resource_tracker.unregister(shm_out._name, "shared_memory")
    except (ImportError, AttributeError, KeyError, ValueError) as exc:
        # Tracker internals vary across CPython versions; an unregister
        # miss only risks a spurious tracker warning at exit, never a leak.
        logger.warning("shared-memory tracker unregister failed: %s", exc)
    try:
        if kind == "raise":
            raise FaultInjected("pool.worker", occurrence)
        src_all = np.ndarray((total,), dtype=_DTYPE, buffer=shm_in.buf)
        out_all = np.ndarray((total,), dtype=_DTYPE, buffer=shm_out.buf)
        amps = 0
        for offset, base_lo, lo, hi, op_id in rows:
            qubits, action = ops[op_id]
            n = hi - lo + 1
            amps += n
            reader = _OffsetReader(base_lo, src_all[offset : offset + n])
            out_all[offset : offset + n] = apply_action_range(
                reader, lo, hi, qubits, action
            )
    finally:
        shm_in.close()
        shm_out.close()
    if trace:
        return (os.getpid(), t0, time.perf_counter() - t0, len(rows), amps)
    return None


class ProcessPoolBackend(KernelBackend):
    """Shared-memory process-pool backend: real cores instead of the GIL.

    Ships diagonal runs (whose only read is their own range) and
    contiguous-mirror monomial runs to fork workers; everything else -- and
    any table smaller than ``min_ship_amps`` amplitudes, where the
    serialise/launch overhead dominates -- executes in-parent through the
    numpy backend.  Worker count comes from ``num_workers``, the
    ``QTASK_PROCESS_WORKERS`` environment variable, or ``os.cpu_count()``.

    Every shipped table runs under a fault envelope: the blocking wait is
    bounded by ``ship_timeout`` seconds, a failed attempt (worker
    exception, SIGKILLed worker, broken pipe, timeout) is retried up to
    ``max_attempts`` times with exponential backoff, and a watchdog checks
    worker liveness before each attempt and respawns the shared fork pool
    when any worker died.  Only after the last attempt fails does the
    error propagate -- and the simulator then falls back to per-run
    execution (``failure_safe``) and, repeatedly, down the backend ladder.
    """

    name = "process"
    failure_safe = True

    def __init__(
        self,
        num_workers: Optional[int] = None,
        *,
        min_ship_amps: int = 1 << 14,
        ship_timeout: float = 60.0,
        max_attempts: int = 3,
        retry_backoff: float = 0.05,
    ) -> None:
        if not hasattr(os, "fork"):
            raise BackendUnavailable(
                "process backend needs the fork start method"
            )
        if num_workers is None:
            env = os.environ.get("QTASK_PROCESS_WORKERS")
            num_workers = int(env) if env else (os.cpu_count() or 1)
        self.num_workers = max(1, int(num_workers))
        self.min_ship_amps = int(min_ship_amps)
        self.ship_timeout = float(ship_timeout)
        self.max_attempts = max(1, int(max_attempts))
        self.retry_backoff = float(retry_backoff)
        self._inner = NumpyBatchBackend()
        #: informational counters (read by plan statistics; GIL-atomic
        #: increments are accurate enough for reporting)
        self.shipped_runs = 0
        self.local_runs = 0
        self.retries = 0
        self.respawns = 0
        self.timeouts = 0
        try:
            self._pool = _get_fork_pool(self.num_workers)
        except (OSError, ValueError, RuntimeError) as exc:
            logger.warning("could not start fork pool: %s", exc)
            raise BackendUnavailable(f"could not start fork pool: {exc}") from exc

    def backend_stats(self) -> Dict[str, int]:
        return {
            "shipped_runs": self.shipped_runs,
            "local_runs": self.local_runs,
            "pool_retries": self.retries,
            "pool_respawns": self.respawns,
            "pool_timeouts": self.timeouts,
        }

    def _shippable(self, spec: RunSpec) -> Optional[int]:
        """Source-window base of a worker-safe run, else ``None``."""
        if spec.kind != RUN_ACTION:
            return None
        n = spec.hi - spec.lo + 1
        if isinstance(spec.op, DiagonalAction):
            return spec.lo
        if isinstance(spec.op, MonomialAction):
            mirror = _monomial_mirror(spec.lo, n, spec.qubits, spec.op)
            if mirror is not None:
                return mirror[0]
        return None

    def _ensure_pool(self) -> None:
        """Watchdog: respawn the shared fork pool if any worker died."""
        if not _pool_alive(self._pool):
            logger.warning(
                "process backend found dead pool worker(s); respawning pool"
            )
            self._pool = _respawn_fork_pool(self.num_workers)
            self.respawns += 1
            tsession.emit_event("pool.respawn", reason="dead_worker")

    def _abandon_pool(self) -> None:
        """Replace the pool outright (used after a hung/timed-out map)."""
        self._pool = _respawn_fork_pool(self.num_workers)
        self.respawns += 1
        tsession.emit_event("pool.respawn", reason="abandoned")

    @staticmethod
    def _release_segments(*segments) -> None:
        """Close + unlink each segment independently.

        Each step runs in its own ``try`` so a failure on one segment (or a
        double-unlink on a retry path) can never leak the others into
        /dev/shm.
        """
        for shm in segments:
            if shm is None:
                continue
            try:
                shm.close()
            except OSError:  # pragma: no cover - close on a dead map
                pass
            try:
                shm.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover
                pass

    def _ship_once(self, reader, store, shippable, ops, total) -> None:
        """One ship/execute/receive attempt over fresh shm segments."""
        import multiprocessing as mp
        from multiprocessing import shared_memory

        tel = tsession.current()
        tracer = tel.tracer if tel is not None else None
        tracing = tracer is not None and tracer.enabled
        nbytes = total * np.dtype(_DTYPE).itemsize
        shm_in = None
        shm_out = None
        try:
            with (
                tracer.span(
                    "pool.ship",
                    {"runs": len(shippable), "amps": total,
                     "workers": self.num_workers},
                )
                if tracing
                else _NO_SPAN
            ):
                shm_in = shared_memory.SharedMemory(create=True, size=nbytes)
                shm_out = shared_memory.SharedMemory(create=True, size=nbytes)
                src_all = np.ndarray((total,), dtype=_DTYPE, buffer=shm_in.buf)
                for offset, base_lo, lo, hi, _ in shippable:
                    n = hi - lo + 1
                    src_all[offset : offset + n] = reader.read_range(
                        base_lo, base_lo + n - 1
                    )
                if faults.ACTIVE is not None:
                    faults.fire("pool.ship")
                stride = -(-len(shippable) // self.num_workers)
                chunks = [
                    shippable[i : i + stride]
                    for i in range(0, len(shippable), stride)
                ]
                jobs = []
                for chunk in chunks:
                    # Worker-fault decisions are drawn in the parent and
                    # shipped with the chunk so pool scheduling cannot
                    # perturb the seeded stream; ``pool.worker.kill`` turns
                    # into a real SIGKILL.
                    directive = None
                    if faults.ACTIVE is not None and faults.is_armed():
                        hit, occ = faults.ACTIVE.should_fire("pool.worker.kill")
                        if hit:
                            directive = ("kill", occ)
                        else:
                            hit, occ = faults.ACTIVE.should_fire("pool.worker")
                            if hit:
                                directive = ("raise", occ)
                    if directive is not None:
                        tsession.emit_event(
                            "fault.injected",
                            site=(
                                "pool.worker.kill"
                                if directive[0] == "kill"
                                else "pool.worker"
                            ),
                            occurrence=directive[1],
                        )
                    jobs.append(
                        (shm_in.name, shm_out.name, total, chunk, ops,
                         directive, tracing)
                    )
                try:
                    results = self._pool.map_async(_pool_apply_chunk, jobs).get(
                        timeout=self.ship_timeout
                    )
                except mp.TimeoutError:
                    # A SIGKILLed worker's tasks are silently lost by
                    # multiprocessing.Pool; the bounded wait is what turns
                    # that hang into a retryable failure.  Abandon the
                    # wedged pool.
                    self.timeouts += 1
                    tsession.emit_event(
                        "pool.timeout", seconds=self.ship_timeout
                    )
                    self._abandon_pool()
                    raise
                if tracing:
                    # Re-home the workers' chunk spans (timed in the fork
                    # children on the shared monotonic clock) under this
                    # ship span.
                    parent = tracer.current_span_id()
                    for rec in results:
                        if rec is None:
                            continue
                        pid, start, duration, n_rows, amps = rec
                        tracer.adopt(
                            "pool.chunk", start, duration,
                            parent_id=parent, pid=pid,
                            thread_id=pid, thread_name=f"pool-worker-{pid}",
                            attrs={"runs": n_rows, "amps": amps},
                        )
            with (
                tracer.span("pool.receive", {"amps": total})
                if tracing
                else _NO_SPAN
            ):
                if faults.ACTIVE is not None:
                    faults.fire("pool.receive")
                # One heap copy of the shared output, then view-publish per
                # run (the store must never keep views into soon-unlinked
                # shm).
                out_all = np.array(
                    np.ndarray((total,), dtype=_DTYPE, buffer=shm_out.buf),
                    copy=True,
                )
                for offset, _, lo, hi, _ in shippable:
                    n = hi - lo + 1
                    store.write_range(
                        lo, out_all[offset : offset + n], copy=False
                    )
        finally:
            self._release_segments(shm_in, shm_out)

    def execute_plan(self, reader: StateReader, store, table: RunTable) -> None:
        import multiprocessing as mp
        import multiprocessing.pool as mp_pool

        shippable: List[Tuple[int, int, int, int, int]] = []  # rows
        ops: List[Tuple[Tuple[int, ...], object]] = []
        op_index: Dict[int, int] = {}
        local: List[RunSpec] = []
        total = 0
        for spec in iter_table_runs(table):
            base_lo = self._shippable(spec)
            if base_lo is None:
                local.append(spec)
                continue
            op_id = op_index.get(id(spec.op))
            if op_id is None:
                op_id = op_index[id(spec.op)] = len(ops)
                ops.append((spec.qubits, spec.op))
            n = spec.hi - spec.lo + 1
            shippable.append((total, base_lo, spec.lo, spec.hi, op_id))
            total += n
        if (
            self.num_workers < 2
            or len(shippable) < 2
            or total < self.min_ship_amps
            # A remote-backed store already pays one serialisation hop per
            # block; shipping through SharedMemory would fetch every input
            # from the shards only to re-ship the outputs back -- strictly
            # worse than executing in-process against the read cache.
            or getattr(store, "is_remote_backed", False)
        ):
            self.local_runs += table.num_runs
            self._inner.execute_plan(reader, store, table)
            return

        retryable = (
            FaultInjected,
            mp.TimeoutError,
            OSError,
            ValueError,  # "Pool not running" after a concurrent teardown
            mp_pool.MaybeEncodingError,
        )
        last_exc: Optional[BaseException] = None
        for attempt in range(self.max_attempts):
            self._ensure_pool()
            try:
                self._ship_once(reader, store, shippable, ops, total)
                break
            except retryable as exc:
                last_exc = exc
                if attempt + 1 >= self.max_attempts:
                    logger.warning(
                        "process backend giving up after %d attempt(s): %s",
                        self.max_attempts,
                        exc,
                    )
                    raise
                self.retries += 1
                tsession.emit_event(
                    "pool.retry",
                    attempt=attempt + 1,
                    reason=f"{type(exc).__name__}: {exc}",
                )
                delay = self.retry_backoff * (2**attempt)
                logger.warning(
                    "process backend attempt %d/%d failed (%s); "
                    "retrying in %.3fs",
                    attempt + 1,
                    self.max_attempts,
                    exc,
                    delay,
                )
                if delay > 0:
                    time.sleep(delay)
        self.shipped_runs += len(shippable)
        self.local_runs += len(local)
        for spec in local:
            execute_run(reader, store, spec)


# -- backend selection ------------------------------------------------------


def available_backends() -> List[str]:
    """Backend names constructible on this host (plus always ``legacy``)."""
    names = ["numpy", "legacy"]
    if HAVE_NUMBA:
        names.insert(1, "numba")
    if hasattr(os, "fork"):
        names.insert(-1, "process")
    return names


def make_backend(
    name: Optional[str] = None, **kwargs
) -> Tuple[Optional[KernelBackend], bool]:
    """Resolve a backend spec to ``(backend, fell_back)``.

    ``None`` reads the ``QTASK_KERNEL_BACKEND`` environment variable
    (default ``auto``).  ``auto`` picks numba when importable, else numpy.
    ``legacy`` returns ``(None, False)`` -- the caller keeps the per-run
    task path.  Requesting an unavailable backend (numba without the
    package, process without fork) substitutes numpy and reports
    ``fell_back=True`` instead of raising, so a knob setting is portable
    across hosts.  A :class:`KernelBackend` *instance* passes through
    unchanged, so callers can inject a pre-configured backend (custom
    timeouts, ship thresholds) where a name would lose the knobs.
    """
    if isinstance(name, KernelBackend):
        return name, False
    if name is None:
        name = os.environ.get("QTASK_KERNEL_BACKEND", "auto")
    name = str(name).lower()
    if name == "legacy":
        return None, False
    if name == "auto":
        if HAVE_NUMBA:  # pragma: no cover - needs numba
            return NumbaBackend(**kwargs), False
        return NumpyBatchBackend(), False
    if name == "numpy":
        return NumpyBatchBackend(), False
    if name in ("numba", "process"):
        cls = NumbaBackend if name == "numba" else ProcessPoolBackend
        try:
            return cls(**kwargs), False
        except BackendUnavailable as exc:
            logger.warning(
                "kernel backend %r unavailable (%s); substituting numpy",
                name,
                exc,
            )
            return NumpyBatchBackend(), True
    raise ValueError(
        f"unknown kernel backend {name!r}; expected one of "
        "auto/numpy/numba/process/legacy"
    )
