"""Vectorised numpy kernels for gate application on index ranges.

These kernels are the computational payload of qTask's partition tasks.  Each
kernel computes the *output* amplitudes of a contiguous index range ``[lo,
hi]`` of one stage from a *reader* exposing the stage input.  Because output
ranges of different tasks are disjoint, tasks can run in parallel without
locks; the heavy lifting is done by numpy (which releases the GIL), matching
the hpc-parallel guidance of vectorising inner loops instead of iterating in
Python.

Three families of kernels mirror the paper's gate classification (§III.C):

* ``diagonal`` -- scale amplitudes in place,
* ``monomial`` -- gather amplitudes along a generalized permutation,
* ``matvec``  -- dense matrix--vector fallback for superposition gates.
"""

from __future__ import annotations

from typing import Protocol, Sequence, Tuple

import numpy as np

from .gates import DiagonalAction, MatVecAction, MonomialAction

__all__ = [
    "StateReader",
    "ArrayReader",
    "extract_local",
    "replace_local",
    "apply_diagonal_range",
    "apply_monomial_range",
    "apply_matvec_range",
    "apply_action_range",
    "apply_gate_dense",
    "apply_matrix_dense",
]

_DTYPE = np.complex128


class StateReader(Protocol):
    """Anything that can serve gate-input amplitudes (StoreChain, arrays...)."""

    def read_range(self, lo: int, hi: int) -> np.ndarray: ...

    def gather(self, indices: np.ndarray) -> np.ndarray: ...


class ArrayReader:
    """Adapt a plain ndarray to the :class:`StateReader` protocol."""

    def __init__(self, state: np.ndarray) -> None:
        self.state = np.asarray(state, dtype=_DTYPE)

    def read_range(self, lo: int, hi: int) -> np.ndarray:
        return self.state[lo : hi + 1]

    def gather(self, indices: np.ndarray) -> np.ndarray:
        return self.state[np.asarray(indices, dtype=np.int64)]


# ---------------------------------------------------------------------------
# Bit manipulation helpers (vectorised)
# ---------------------------------------------------------------------------


def extract_local(indices: np.ndarray, qubits: Sequence[int]) -> np.ndarray:
    """Local gate index of each global index (``qubits[0]`` = local bit 0)."""
    idx = np.asarray(indices, dtype=np.int64)
    local = np.zeros_like(idx)
    for j, q in enumerate(qubits):
        local |= ((idx >> q) & 1) << j
    return local


def replace_local(
    indices: np.ndarray, qubits: Sequence[int], local_values: np.ndarray
) -> np.ndarray:
    """Replace the gate-qubit bits of each global index with ``local_values``."""
    idx = np.asarray(indices, dtype=np.int64)
    loc = np.asarray(local_values, dtype=np.int64)
    clear_mask = 0
    for q in qubits:
        clear_mask |= 1 << q
    out = idx & ~np.int64(clear_mask)
    for j, q in enumerate(qubits):
        out |= ((loc >> j) & 1) << q
    return out


# ---------------------------------------------------------------------------
# Range kernels
# ---------------------------------------------------------------------------


def apply_diagonal_range(
    reader: StateReader,
    lo: int,
    hi: int,
    qubits: Sequence[int],
    action: DiagonalAction,
) -> np.ndarray:
    """Output amplitudes of ``[lo, hi]`` for a diagonal gate."""
    src = np.asarray(reader.read_range(lo, hi), dtype=_DTYPE)
    idx = np.arange(lo, hi + 1, dtype=np.int64)
    local = extract_local(idx, qubits)
    phases = np.asarray(action.phases, dtype=_DTYPE)
    return src * phases[local]


def apply_monomial_range(
    reader: StateReader,
    lo: int,
    hi: int,
    qubits: Sequence[int],
    action: MonomialAction,
) -> np.ndarray:
    """Output amplitudes of ``[lo, hi]`` for a generalized-permutation gate.

    The output amplitude at global index ``j`` with local index ``l`` is
    ``factors[perm^-1(l)] * input[replace(j, perm^-1(l))]``; the source index
    always lies inside the same gate orbit, which partitions are closed under,
    so the gathered reads stay within the partition's index span.
    """
    perm = np.asarray(action.perm, dtype=np.int64)
    factors = np.asarray(action.factors, dtype=_DTYPE)
    dim = perm.shape[0]
    inv = np.empty(dim, dtype=np.int64)
    inv[perm] = np.arange(dim, dtype=np.int64)

    idx = np.arange(lo, hi + 1, dtype=np.int64)
    local_out = extract_local(idx, qubits)
    local_src = inv[local_out]
    src_idx = replace_local(idx, qubits, local_src)
    return reader.gather(src_idx) * factors[local_src]


def apply_matvec_range(
    reader: StateReader,
    lo: int,
    hi: int,
    qubits: Sequence[int],
    matrix: np.ndarray,
) -> np.ndarray:
    """Output amplitudes of ``[lo, hi]`` for a dense (superposition) gate.

    ``out[j] = sum_l  M[local(j), l] * in[replace(j, l)]`` -- i.e. the rows of
    the full transformation matrix restricted to the output range, exactly the
    role of the paper's MxV partitions, without materialising the 2^n x 2^n
    matrix.
    """
    m = np.asarray(matrix, dtype=_DTYPE)
    dim = m.shape[0]
    idx = np.arange(lo, hi + 1, dtype=np.int64)
    local_out = extract_local(idx, qubits)
    out = np.zeros(idx.shape[0], dtype=_DTYPE)
    for l_in in range(dim):
        col = m[local_out, l_in]
        nz = np.abs(col) > 0.0
        if not np.any(nz):
            continue
        src_idx = replace_local(idx, qubits, np.full_like(idx, l_in))
        out += col * reader.gather(src_idx)
    return out


def apply_action_range(
    reader: StateReader,
    lo: int,
    hi: int,
    qubits: Sequence[int],
    action,
) -> np.ndarray:
    """Dispatch on the classified action type."""
    if isinstance(action, DiagonalAction):
        return apply_diagonal_range(reader, lo, hi, qubits, action)
    if isinstance(action, MonomialAction):
        return apply_monomial_range(reader, lo, hi, qubits, action)
    if isinstance(action, MatVecAction):
        return apply_matvec_range(reader, lo, hi, qubits, action.matrix)
    raise TypeError(f"unknown action type {type(action)!r}")


# ---------------------------------------------------------------------------
# Dense full-vector kernels (used by the baselines and the matvec fast path)
# ---------------------------------------------------------------------------


def apply_matrix_dense(
    state: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Apply a k-qubit unitary to a dense state vector via tensor reshaping.

    This is the classic statevector-simulator kernel (Qulacs/qsim style): view
    the state as an n-dimensional tensor, move the gate axes to the front,
    contract with the gate matrix, and move them back.  It is used by the
    baseline simulators and by qTask's superposition stages.
    """
    psi = np.asarray(state, dtype=_DTYPE).reshape([2] * num_qubits)
    k = len(qubits)
    # Axis j of the reshaped tensor corresponds to qubit (num_qubits - 1 - j):
    # the state index's most-significant bit is the first axis.
    axes = [num_qubits - 1 - q for q in qubits]
    perm = axes + [a for a in range(num_qubits) if a not in axes]
    psi_t = np.transpose(psi, perm)
    rest = psi_t.shape[k:]
    mat = np.asarray(matrix, dtype=_DTYPE)
    # Local index bit j corresponds to qubits[j]; axis order after transpose is
    # qubits[0], qubits[1], ... so axis j carries local bit j, and flattening
    # axes 0..k-1 in C order makes qubits[0] the *slowest* varying bit.  Build
    # the tensor form of the matrix accordingly.
    tensor = mat.reshape([2] * (2 * k))
    # tensor indices: (out bit k-1 ... out bit 0, in bit k-1 ... in bit 0) when
    # reshaped in C order from a (2^k, 2^k) matrix whose index bit j is local
    # bit j (bit 0 = fastest).  We need out/in axes ordered to match psi_t's
    # axis order (local bit 0 first), i.e. reverse each group.
    tensor = np.transpose(
        tensor,
        list(range(k - 1, -1, -1)) + list(range(2 * k - 1, k - 1, -1)),
    )
    contracted = np.tensordot(tensor, psi_t, axes=(list(range(k, 2 * k)), list(range(k))))
    out = np.transpose(
        contracted.reshape([2] * k + list(rest)), np.argsort(perm)
    )
    return out.reshape(-1)


def apply_gate_dense(state: np.ndarray, gate, num_qubits: int) -> np.ndarray:
    """Apply a :class:`repro.core.gates.Gate` to a dense state vector."""
    return apply_matrix_dense(state, gate.matrix(), gate.qubits, num_qubits)
