"""Vectorised numpy kernels for gate application on index ranges.

These kernels are the computational payload of qTask's partition tasks.  Each
kernel computes the *output* amplitudes of a contiguous index range ``[lo,
hi]`` of one stage from a *reader* exposing the stage input.  Because output
ranges of different tasks are disjoint, tasks can run in parallel without
locks; the heavy lifting is done by numpy (which releases the GIL), matching
the hpc-parallel guidance of vectorising inner loops instead of iterating in
Python.

Three families of kernels mirror the paper's gate classification (§III.C):

* ``diagonal`` -- scale amplitudes in place,
* ``monomial`` -- gather amplitudes along a generalized permutation,
* ``matvec``  -- dense matrix--vector fallback for superposition gates.
"""

from __future__ import annotations

from typing import Protocol, Sequence, Tuple

import numpy as np

from .gates import (
    DiagonalAction,
    MatVecAction,
    MonomialAction,
    extract_local,
    replace_local,
)

__all__ = [
    "StateReader",
    "ArrayReader",
    "extract_local",
    "replace_local",
    "apply_diagonal_range",
    "apply_monomial_range",
    "apply_matvec_range",
    "apply_action_range",
    "apply_action_run",
    "apply_gate_dense",
    "apply_matrix_dense",
    "measured_masses",
    "collapse_run",
]

_DTYPE = np.complex128


class StateReader(Protocol):
    """Anything that can serve gate-input amplitudes.

    Implemented by :class:`~repro.core.cow.StoreChain`,
    :class:`~repro.core.cow.DirectoryReader` and :class:`ArrayReader`.
    """

    def read_range(self, lo: int, hi: int) -> np.ndarray: ...

    def gather(self, indices: np.ndarray) -> np.ndarray: ...

    def full_vector(self) -> np.ndarray: ...


class ArrayReader:
    """Adapt a plain ndarray to the :class:`StateReader` protocol."""

    def __init__(self, state: np.ndarray) -> None:
        self.state = np.asarray(state, dtype=_DTYPE)

    def read_range(self, lo: int, hi: int) -> np.ndarray:
        return self.state[lo : hi + 1]

    def gather(self, indices: np.ndarray) -> np.ndarray:
        return self.state[np.asarray(indices, dtype=np.int64)]

    def full_vector(self) -> np.ndarray:
        return np.array(self.state, copy=True)


# ---------------------------------------------------------------------------
# Range kernels (the bit helpers extract_local/replace_local live in .gates
# and are re-exported here for backward compatibility)
# ---------------------------------------------------------------------------


def _range_alignment(lo: int, n: int) -> int:
    """``log2(n)`` when ``[lo, lo+n)`` is an aligned power-of-two range, else -1.

    Every in-tree call site applies kernels one data block at a time, so the
    range is a whole (power-of-two, aligned) block: every state-index bit at
    or above ``log2(n)`` is then *constant* across the range and the
    per-amplitude local-index pattern repeats with the period set by the
    highest gate qubit below ``log2(n)``.  The strided fast paths exploit
    this to replace full-size ``arange``/``extract_local``/``replace_local``
    index arithmetic with one small per-period table.
    """
    if n <= 0 or n & (n - 1) or lo % n:
        return -1
    return n.bit_length() - 1


def _local_pattern(
    lo: int, nb: int, qubits: Sequence[int]
) -> Tuple[int, np.ndarray]:
    """Period and per-period local indices of ``qubits`` over an aligned range.

    Bits of qubits at or above ``nb`` are constant (taken from ``lo``); the
    remaining low qubits make the pattern repeat every ``2**(max_low+1)``
    amplitudes.
    """
    low = [q for q in qubits if q < nb]
    period = (1 << (max(low) + 1)) if low else 1
    base = np.arange(lo, lo + period, dtype=np.int64)
    return period, extract_local(base, qubits)


def apply_diagonal_range(
    reader: StateReader,
    lo: int,
    hi: int,
    qubits: Sequence[int],
    action: DiagonalAction,
) -> np.ndarray:
    """Output amplitudes of ``[lo, hi]`` for a diagonal gate."""
    src = np.asarray(reader.read_range(lo, hi), dtype=_DTYPE)
    phases = np.asarray(action.phases, dtype=_DTYPE)
    n = hi - lo + 1
    nb = _range_alignment(lo, n)
    if nb >= 0:
        # Strided fast path: one small phase table broadcasts over the range.
        period, local = _local_pattern(lo, nb, qubits)
        if period == 1:
            return src * phases[local[0]]
        return (src.reshape(-1, period) * phases[local]).reshape(-1)
    idx = np.arange(lo, hi + 1, dtype=np.int64)
    return src * phases[extract_local(idx, qubits)]


def apply_monomial_range(
    reader: StateReader,
    lo: int,
    hi: int,
    qubits: Sequence[int],
    action: MonomialAction,
) -> np.ndarray:
    """Output amplitudes of ``[lo, hi]`` for a generalized-permutation gate.

    The output amplitude at global index ``j`` with local index ``l`` is
    ``factors[perm^-1(l)] * input[replace(j, perm^-1(l))]``; the source index
    always lies inside the same gate orbit, which partitions are closed under,
    so the reads stay within the partition's index span.
    """
    perm = np.asarray(action.perm, dtype=np.int64)
    factors = np.asarray(action.factors, dtype=_DTYPE)
    dim = perm.shape[0]
    inv = np.empty(dim, dtype=np.int64)
    inv[perm] = np.arange(dim, dtype=np.int64)

    n = hi - lo + 1
    nb = _range_alignment(lo, n)
    if nb >= 0:
        period, local_out = _local_pattern(lo, nb, qubits)
        local_src = inv[local_out]
        pattern = replace_local(
            np.arange(lo, lo + period, dtype=np.int64), qubits, local_src
        )
        # The source bits above the period are constant whenever the
        # permutation maps the constant high-qubit bits to a single value;
        # the sources then tile the aligned mirror range [start, start+n)
        # and one contiguous read plus a small in-row gather suffices.
        start = int(pattern[0]) & ~(period - 1)
        offsets = pattern - start
        if np.all((offsets >= 0) & (offsets < period)):
            row_factors = factors[local_src]
            src = np.asarray(
                reader.read_range(start, start + n - 1), dtype=_DTYPE
            )
            if period == 1:
                return src * row_factors[0]
            return (src.reshape(-1, period)[:, offsets] * row_factors).reshape(-1)

    idx = np.arange(lo, hi + 1, dtype=np.int64)
    local_out = extract_local(idx, qubits)
    local_src = inv[local_out]
    src_idx = replace_local(idx, qubits, local_src)
    return reader.gather(src_idx) * factors[local_src]


def apply_matvec_range(
    reader: StateReader,
    lo: int,
    hi: int,
    qubits: Sequence[int],
    matrix: np.ndarray,
) -> np.ndarray:
    """Output amplitudes of ``[lo, hi]`` for a dense (superposition) gate.

    ``out[j] = sum_l  M[local(j), l] * in[replace(j, l)]`` -- i.e. the rows of
    the full transformation matrix restricted to the output range, exactly the
    role of the paper's MxV partitions, without materialising the 2^n x 2^n
    matrix.
    """
    m = np.asarray(matrix, dtype=_DTYPE)
    dim = m.shape[0]
    idx = np.arange(lo, hi + 1, dtype=np.int64)
    local_out = extract_local(idx, qubits)
    out = np.zeros(idx.shape[0], dtype=_DTYPE)
    for l_in in range(dim):
        col = m[local_out, l_in]
        nz = np.abs(col) > 0.0
        if not np.any(nz):
            continue
        src_idx = replace_local(idx, qubits, np.full_like(idx, l_in))
        out += col * reader.gather(src_idx)
    return out


def apply_action_range(
    reader: StateReader,
    lo: int,
    hi: int,
    qubits: Sequence[int],
    action,
) -> np.ndarray:
    """Dispatch on the classified action type."""
    if isinstance(action, DiagonalAction):
        return apply_diagonal_range(reader, lo, hi, qubits, action)
    if isinstance(action, MonomialAction):
        return apply_monomial_range(reader, lo, hi, qubits, action)
    if isinstance(action, MatVecAction):
        return apply_matvec_range(reader, lo, hi, qubits, action.matrix)
    raise TypeError(f"unknown action type {type(action)!r}")


def apply_action_run(
    reader: StateReader,
    store,
    lo: int,
    hi: int,
    qubits: Sequence[int],
    action,
) -> None:
    """Compute ``[lo, hi]`` and publish the result into ``store`` zero-copy.

    This is the run-granular entry point used by batched block-run tasks:
    one kernel invocation covers a whole aligned run of blocks (keeping the
    strided fast paths, which only need the range to be an aligned power of
    two) and the freshly allocated output is handed to
    ``BlockStore.write_range(..., copy=False)``, so the store keeps views of
    the kernel output instead of copying it block by block.
    """
    out = apply_action_range(reader, lo, hi, qubits, action)
    store.write_range(lo, out, copy=False)


# ---------------------------------------------------------------------------
# Projective-collapse kernels (dynamic circuits: measure / reset)
# ---------------------------------------------------------------------------


def measured_masses(
    reader: StateReader, qubit: int, dim: int, block_size: int
) -> Tuple[float, float]:
    """Unnormalised probability masses ``(p0, p1)`` of measuring ``qubit``.

    Accumulated block by block through the COW block resolution -- the same
    per-block probability masses the observables engine's sampling tree and
    parity kernels are built on -- so a measurement's ``prepare`` never
    materialises the full ``2^n`` vector.  For qubits at or above the block
    width the bit is constant per block and a block contributes its whole
    mass to one side; below it, one reshape splits each block's probability
    rows into the two halves.
    """
    block_len = min(dim, block_size)
    n_blocks = dim // block_len
    p0 = 0.0
    p1 = 0.0
    nb_bits = block_len.bit_length() - 1
    if qubit >= nb_bits:
        for b in range(n_blocks):
            lo = b * block_len
            amps = np.asarray(
                reader.read_range(lo, lo + block_len - 1), dtype=_DTYPE
            )
            mass = float(np.real(np.vdot(amps, amps)))
            if (lo >> qubit) & 1:
                p1 += mass
            else:
                p0 += mass
        return p0, p1
    period = 1 << (qubit + 1)
    half = 1 << qubit
    for b in range(n_blocks):
        lo = b * block_len
        amps = np.asarray(reader.read_range(lo, lo + block_len - 1), dtype=_DTYPE)
        probs = (amps.conj() * amps).real.reshape(-1, period)
        p0 += float(probs[:, :half].sum())
        p1 += float(probs[:, half:].sum())
    return p0, p1


def collapse_run(
    reader: StateReader,
    store,
    lo: int,
    hi: int,
    qubit: int,
    outcome: int,
    scale: float,
    *,
    move: bool = False,
) -> None:
    """Collapse ``[lo, hi]`` onto ``qubit == outcome`` and publish zero-copy.

    With ``move=False`` (measurement) amplitudes whose ``qubit`` bit equals
    ``outcome`` are scaled by ``1/sqrt(p_outcome)`` and everything else is
    zeroed.  With ``move=True`` (reset) the surviving amplitudes are
    additionally relocated to the ``qubit = 0`` subspace, so the qubit ends
    in |0> whatever was measured.  Aligned power-of-two runs where the qubit
    bit is constant skip the index arithmetic entirely (and runs that
    collapse to zero never read their input at all).
    """
    n = hi - lo + 1
    nb = _range_alignment(lo, n)
    if nb >= 0 and qubit >= nb:
        bit = (lo >> qubit) & 1
        if not move:
            if bit == outcome:
                out = np.asarray(reader.read_range(lo, hi), dtype=_DTYPE) * scale
            else:
                out = np.zeros(n, dtype=_DTYPE)
        else:
            if bit == 0:
                src_lo = lo | (outcome << qubit)
                out = (
                    np.asarray(
                        reader.read_range(src_lo, src_lo + n - 1), dtype=_DTYPE
                    )
                    * scale
                )
            else:
                out = np.zeros(n, dtype=_DTYPE)
        store.write_range(lo, out, copy=False)
        return
    idx = np.arange(lo, hi + 1, dtype=np.int64)
    bits = (idx >> qubit) & 1
    if not move:
        src = np.asarray(reader.read_range(lo, hi), dtype=_DTYPE)
        out = np.where(bits == outcome, src * scale, 0.0 + 0.0j)
    else:
        out = np.zeros(n, dtype=_DTYPE)
        keep = bits == 0
        src_idx = idx[keep] | (outcome << qubit)
        out[keep] = reader.gather(src_idx) * scale
    store.write_range(lo, out, copy=False)


# ---------------------------------------------------------------------------
# Dense full-vector kernels (used by the baselines and the matvec fast path)
# ---------------------------------------------------------------------------


def apply_matrix_dense(
    state: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Apply a k-qubit unitary to a dense state vector via tensor reshaping.

    This is the classic statevector-simulator kernel (Qulacs/qsim style): view
    the state as an n-dimensional tensor, move the gate axes to the front,
    contract with the gate matrix, and move them back.  It is used by the
    baseline simulators and by qTask's superposition stages.
    """
    psi = np.asarray(state, dtype=_DTYPE).reshape([2] * num_qubits)
    k = len(qubits)
    # Axis j of the reshaped tensor corresponds to qubit (num_qubits - 1 - j):
    # the state index's most-significant bit is the first axis.
    axes = [num_qubits - 1 - q for q in qubits]
    perm = axes + [a for a in range(num_qubits) if a not in axes]
    psi_t = np.transpose(psi, perm)
    rest = psi_t.shape[k:]
    mat = np.asarray(matrix, dtype=_DTYPE)
    # Local index bit j corresponds to qubits[j]; axis order after transpose is
    # qubits[0], qubits[1], ... so axis j carries local bit j, and flattening
    # axes 0..k-1 in C order makes qubits[0] the *slowest* varying bit.  Build
    # the tensor form of the matrix accordingly.
    tensor = mat.reshape([2] * (2 * k))
    # tensor indices: (out bit k-1 ... out bit 0, in bit k-1 ... in bit 0) when
    # reshaped in C order from a (2^k, 2^k) matrix whose index bit j is local
    # bit j (bit 0 = fastest).  We need out/in axes ordered to match psi_t's
    # axis order (local bit 0 first), i.e. reverse each group.
    tensor = np.transpose(
        tensor,
        list(range(k - 1, -1, -1)) + list(range(2 * k - 1, k - 1, -1)),
    )
    contracted = np.tensordot(tensor, psi_t, axes=(list(range(k, 2 * k)), list(range(k))))
    out = np.transpose(
        contracted.reshape([2] * k + list(rest)), np.argsort(perm)
    )
    return out.reshape(-1)


def apply_gate_dense(state: np.ndarray, gate, num_qubits: int) -> np.ndarray:
    """Apply a :class:`repro.core.gates.Gate` to a dense state vector."""
    return apply_matrix_dense(state, gate.matrix(), gate.qubits, num_qubits)
