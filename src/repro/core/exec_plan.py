"""Batch-major execution plans: the dirty frontier as run tables.

Prior to this module, every incremental update turned each affected
partition node into its own executor task, and each task spawned one Python
closure per aligned block run (``Stage.block_tasks``) -- thousands of
closures, task-graph nodes and dependency counters for a deep dirty cone,
all dispatched under the GIL.  The plan layer compiles that frontier *once*
into a handful of batch-major structures instead:

* :class:`RunSpec` -- one aligned kernel run, described as data (kind,
  amplitude range, qubit tuple, classified action / payload) rather than as
  a closure.  Stages emit these through ``Stage.emit_runs``, the single
  shared path behind both the legacy per-run tasks and the plan pipeline.
* :class:`RunTable` -- the runs of one stage packed into contiguous arrays
  (``los``/``his``/``op_ids``) plus a deduplicated operation table, the
  shape a vectorised or compiled kernel backend consumes whole.
* :class:`StagePlan` -- one affected stage: its reader, whether its sync
  barrier (``prepare``) must run, and the block ranges to recompute.  For
  static stages (plain unitary/fused stages, whose runs depend on nothing
  drawn at execution time) the runs are emitted eagerly at plan-build time;
  dynamic and matrix--vector stages defer emission until after their
  ``prepare`` ran, exactly like the legacy path.
* :class:`ExecutionPlan` -- every stage plan of one update plus the
  stage-granular dependency edges derived from the partition graph.

The executors then receive one task per *stage* (optionally split into at
most ``Executor.subflow_width`` chunk subflows) instead of one per
partition, and a :class:`~repro.core.kernels.KernelBackend` executes each
run table in bulk.

This module is pure data/plumbing: it imports no kernels and no executor,
so the backend implementations in :mod:`repro.core.kernels` and the
orchestration in :mod:`repro.core.simulator` can both build on it without
cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "RUN_ACTION",
    "RUN_SLICE",
    "RUN_COPY",
    "RUN_COLLAPSE",
    "RunSpec",
    "PlanOp",
    "RunTable",
    "StagePlan",
    "ExecutionPlan",
    "PlanReport",
    "build_execution_plan",
]

#: Apply a classified (diagonal/monomial/matvec) action to the range.
RUN_ACTION = 0
#: Publish a slice of a prepared full vector (matvec / superposition c_if).
RUN_SLICE = 1
#: Identity-copy the range from the stage input (condition-false c_if).
RUN_COPY = 2
#: Projective collapse of the range (measure/reset); op = (qubit, outcome,
#: scale, move).
RUN_COLLAPSE = 3


class RunSpec(NamedTuple):
    """One aligned kernel run, as data instead of a closure.

    ``op`` is the kind-specific payload: the classified action for
    :data:`RUN_ACTION`, the prepared full vector for :data:`RUN_SLICE`,
    ``None`` for :data:`RUN_COPY` and the ``(qubit, outcome, scale, move)``
    tuple for :data:`RUN_COLLAPSE`.
    """

    kind: int
    lo: int
    hi: int
    qubits: Tuple[int, ...]
    op: object


class PlanOp(NamedTuple):
    """One deduplicated operation of a run table (shared by many runs)."""

    kind: int
    qubits: Tuple[int, ...]
    op: object


class RunTable:
    """The runs of one stage packed into contiguous arrays.

    ``los``/``his`` are the inclusive amplitude bounds per run and
    ``op_ids[i]`` indexes the deduplicated :attr:`ops` table -- the batch-
    major layout kernel backends consume whole (grouping runs by operation
    lets the numpy backend execute a homogeneous group in a handful of
    stacked array ops, and gives compiled backends plain int64 arrays to
    iterate without touching Python objects).
    """

    __slots__ = ("los", "his", "op_ids", "ops")

    def __init__(
        self,
        los: np.ndarray,
        his: np.ndarray,
        op_ids: np.ndarray,
        ops: List[PlanOp],
    ) -> None:
        self.los = los
        self.his = his
        self.op_ids = op_ids
        self.ops = ops

    @classmethod
    def from_runs(cls, runs: Sequence[RunSpec]) -> "RunTable":
        n = len(runs)
        los = np.empty(n, dtype=np.int64)
        his = np.empty(n, dtype=np.int64)
        op_ids = np.empty(n, dtype=np.int32)
        ops: List[PlanOp] = []
        index: Dict[Tuple[int, int, Tuple[int, ...]], int] = {}
        for i, r in enumerate(runs):
            los[i] = r.lo
            his[i] = r.hi
            key = (r.kind, id(r.op), r.qubits)
            op_id = index.get(key)
            if op_id is None:
                op_id = index[key] = len(ops)
                ops.append(PlanOp(r.kind, r.qubits, r.op))
            op_ids[i] = op_id
        return cls(los, his, op_ids, ops)

    @property
    def num_runs(self) -> int:
        return int(self.los.shape[0])

    def groups(self) -> Iterator[Tuple[PlanOp, np.ndarray]]:
        """Yield ``(op, run_indices)`` per distinct operation, in op order."""
        for op_id, op in enumerate(self.ops):
            idx = np.flatnonzero(self.op_ids == op_id)
            if idx.size:
                yield op, idx

    def block_spans(self, block_size: int) -> List[Tuple[int, int]]:
        """Merged, sorted block spans covering every run's amplitude range.

        Remote-backed stores prefetch these before executing a chunk so the
        chunk pays one transport round-trip per contiguous span instead of
        one per cache-missing block (address resolution stays block-granular
        -- this only batches the fetch; aligned runs read within their own
        range, so the output spans are also the input spans).
        """
        n = self.num_runs
        if n == 0:
            return []
        first = self.los // int(block_size)
        last = self.his // int(block_size)
        order = np.argsort(first, kind="stable")
        spans: List[Tuple[int, int]] = []
        cur_f = int(first[order[0]])
        cur_l = int(last[order[0]])
        for i in order[1:]:
            f = int(first[i])
            l = int(last[i])
            if f <= cur_l + 1:
                cur_l = max(cur_l, l)
            else:
                spans.append((cur_f, cur_l))
                cur_f, cur_l = f, l
        spans.append((cur_f, cur_l))
        return spans

    def split(self, parts: int) -> List["RunTable"]:
        """At most ``parts`` contiguous sub-tables covering every run.

        Runs of one stage write disjoint ranges, so the sub-tables can
        execute concurrently; the operation table is shared by reference.
        """
        n = self.num_runs
        parts = max(1, min(int(parts), n)) if n else 1
        if parts <= 1:
            return [self]
        bounds = np.linspace(0, n, parts + 1, dtype=np.int64)
        out: List[RunTable] = []
        for a, b in zip(bounds[:-1], bounds[1:]):
            if b > a:
                out.append(
                    RunTable(self.los[a:b], self.his[a:b], self.op_ids[a:b], self.ops)
                )
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RunTable(runs={self.num_runs}, ops={len(self.ops)})"


class StagePlan:
    """Everything one stage contributes to an update's execution plan."""

    __slots__ = (
        "stage",
        "reader",
        "has_sync",
        "block_ranges",
        "block_writes",
        "_static_runs",
        "emitted_runs",
        "num_chunks",
    )

    def __init__(self, stage, reader) -> None:
        self.stage = stage
        self.reader = reader
        self.has_sync = False
        #: block ranges of the stage's affected (non-sync) partition nodes
        self.block_ranges: List[object] = []
        self.block_writes = 0
        #: runs emitted at build time for static stages; ``None`` defers
        #: emission to execution time (after ``prepare`` ran)
        self._static_runs: Optional[List[RunSpec]] = None
        #: filled in by the executing task body (one writer, read after join)
        self.emitted_runs = 0
        self.num_chunks = 0

    def freeze_static(self) -> None:
        """Pre-emit the runs of a stage whose emission is input-independent."""
        if getattr(self.stage, "plan_static", False):
            self._static_runs = self._emit()

    def _emit(self) -> List[RunSpec]:
        runs: List[RunSpec] = []
        for br in self.block_ranges:
            runs.extend(self.stage.emit_runs(br))
        return runs

    def build_table(self) -> RunTable:
        """The stage's run table (static, or emitted now, post-``prepare``)."""
        runs = self._static_runs if self._static_runs is not None else self._emit()
        self.emitted_runs = len(runs)
        return RunTable.from_runs(runs)


class ExecutionPlan:
    """One update's worth of stage plans plus stage-granular dependencies."""

    __slots__ = ("stage_plans", "edges", "block_writes")

    def __init__(
        self,
        stage_plans: List[StagePlan],
        edges: List[Tuple[int, int]],
        block_writes: int,
    ) -> None:
        self.stage_plans = stage_plans
        #: ``(pred stage uid, succ stage uid)`` pairs, deduplicated
        self.edges = edges
        self.block_writes = block_writes

    @property
    def num_stages(self) -> int:
        return len(self.stage_plans)

    def total_runs(self) -> int:
        return sum(sp.emitted_runs for sp in self.stage_plans)

    def total_chunks(self) -> int:
        return sum(sp.num_chunks for sp in self.stage_plans)


def build_execution_plan(
    affected: Sequence[object],
    reader_for: Callable[[object], object],
) -> ExecutionPlan:
    """Compile the affected partition nodes into one plan per stage.

    ``affected`` must be in the partition graph's topological order (stage
    seq ascending, sync nodes leading their stage -- exactly what
    ``PartitionGraph.affected_nodes`` returns).  The frontier is walked
    once: each node folds into its stage's :class:`StagePlan`, and every
    cross-stage partition edge collapses onto one stage-granular edge.
    Coarsening node edges to stage edges only *adds* ordering (edges always
    point from earlier to later stages, partitions of one stage never
    depend on each other), so the plan DAG is a correct, smaller schedule.
    """
    plans: Dict[int, StagePlan] = {}
    order: List[StagePlan] = []
    block_writes = 0
    for node in affected:
        uid = node.stage.uid
        sp = plans.get(uid)
        if sp is None:
            sp = plans[uid] = StagePlan(node.stage, reader_for(node.stage))
            order.append(sp)
        if node.is_sync:
            sp.has_sync = True
        else:
            sp.block_ranges.append(node.block_range)
            sp.block_writes += len(node.block_range)
            block_writes += len(node.block_range)
    for sp in order:
        sp.freeze_static()

    edge_set: set = set()
    edges: List[Tuple[int, int]] = []
    for node in affected:
        pred_uid = node.stage.uid
        for succ in node.succs:
            succ_uid = succ.stage.uid
            if succ_uid == pred_uid or succ_uid not in plans:
                continue
            key = (pred_uid, succ_uid)
            if key not in edge_set:
                edge_set.add(key)
                edges.append(key)
    return ExecutionPlan(order, edges, block_writes)


@dataclass(frozen=True)
class PlanReport:
    """Dispatch-overhead accounting of the plan pipeline (one session).

    The :class:`~repro.core.cow.MemoryReport` sibling for execution plans:
    how many plans were compiled, how many runs they batched, how many
    executor-visible chunks those became, which backend executed them and
    how often a requested backend had to fall back.  ``runs_per_plan`` is
    the headline number -- the dispatch work one executor task now absorbs.
    """

    backend: str
    requested_backend: str
    plans_built: int
    runs_batched: int
    plan_chunks: int
    backend_fallbacks: int
    updates_planned: int
    #: per-run re-executions after an injected/environmental fault inside
    #: the run-granular fallback loop
    run_retries: int = 0
    #: whole-update re-executions after a fault escaped every lower layer
    update_retries: int = 0
    #: circuit-breaker ladder transitions, oldest first; each entry is a
    #: dict with ``from``/``to``/``reason``/``update`` keys
    backend_transitions: Tuple[Dict[str, object], ...] = ()

    @property
    def runs_per_plan(self) -> float:
        if self.plans_built == 0:
            return 0.0
        return self.runs_batched / self.plans_built

    def as_dict(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "requested_backend": self.requested_backend,
            "plans_built": self.plans_built,
            "runs_batched": self.runs_batched,
            "plan_chunks": self.plan_chunks,
            "backend_fallbacks": self.backend_fallbacks,
            "updates_planned": self.updates_planned,
            "runs_per_plan": self.runs_per_plan,
            "run_retries": self.run_retries,
            "update_retries": self.update_retries,
            "backend_transitions": list(self.backend_transitions),
        }
