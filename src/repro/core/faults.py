"""Seeded fault injection for chaos-testing the execution stack.

The fault-tolerance machinery (retries, the backend degradation ladder,
pool respawn, checkpoint recovery) is only trustworthy if every failure
path can be exercised *deterministically*.  This module provides that:
a :class:`FaultPlan` is a seeded schedule of synthetic failures at named
**fault sites** threaded through the hot paths:

====================  =====================================================
site                  where it fires
====================  =====================================================
``kernel.run``        per-run kernel execution (``core.kernels.execute_run``)
``pool.worker``       process-pool worker chunk body (raises in the child)
``pool.worker.kill``  process-pool worker SIGKILLs itself mid-chunk
``pool.ship``         SharedMemory ship (parent -> workers)
``pool.receive``      SharedMemory receive (workers -> parent)
``executor.task``     work-stealing executor task body
``cow.publish``       block publish into a :class:`~repro.core.cow.BlockStore`
``store.shard``       sharded-transport round-trip (parent side, before send)
====================  =====================================================

Design constraints (all load-bearing):

* **Off by default, zero hot-path cost.**  Every site is guarded by a
  single ``if faults.ACTIVE is not None`` module-global check; with no
  plan installed the hot paths pay one pointer comparison.

* **Armed scope.**  Even with a plan installed, faults only fire inside
  an :func:`armed` scope.  The simulator arms the plan around recovered
  regions (``update_state``); direct unit-test calls to ``write_block``
  or ``execute_plan`` outside an update therefore never see synthetic
  faults, which is what lets the chaos CI job run the *whole* tier-1
  suite with a plan installed and still expect green.

* **Deterministic and replayable.**  Probabilistic firing draws from a
  per-site ``random.Random`` stream keyed ``(seed, site)``, so the k-th
  *armed* evaluation of a site fires identically across runs for a given
  seed, independent of what other sites did.  Scripted triggers fire on
  exact armed-occurrence indices.  Worker-side decisions are made in the
  parent and shipped with the chunk so pool scheduling cannot perturb
  them.
"""

from __future__ import annotations

import os
import random
import threading
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..telemetry.session import emit_event

__all__ = [
    "FAULT_SITES",
    "FaultInjected",
    "FaultPlan",
    "ACTIVE",
    "install",
    "uninstall",
    "active_plan",
    "plan_from_env",
    "fire",
    "armed",
    "is_armed",
]

#: Every site name threaded through the execution stack.  ``FaultPlan``
#: rejects unknown sites so a typo'd probability map fails loudly.
FAULT_SITES: Tuple[str, ...] = (
    "kernel.run",
    "pool.worker",
    "pool.worker.kill",
    "pool.ship",
    "pool.receive",
    "executor.task",
    "cow.publish",
    "store.shard",
)


class FaultInjected(RuntimeError):
    """A synthetic fault raised by an armed :class:`FaultPlan`.

    Recovery layers treat this exactly like a real infrastructure error;
    tests match on the type to assert the *recovery* worked rather than
    the fault being swallowed.
    """

    def __init__(self, site: str, occurrence: int):
        super().__init__(f"injected fault at {site!r} (occurrence {occurrence})")
        self.site = site
        self.occurrence = occurrence

    def __reduce__(self):
        # Pool workers raise these across the process boundary; default
        # exception pickling would replay __init__ with the formatted
        # message as ``site`` and drop ``occurrence``.
        return (FaultInjected, (self.site, self.occurrence))


class FaultPlan:
    """A seeded, deterministic schedule of synthetic faults.

    Parameters
    ----------
    seed:
        Seeds the per-site probability streams.  Same seed => same
        firing pattern for the same sequence of armed site evaluations.
    probability:
        Default per-evaluation firing probability applied to every site
        not listed in ``probabilities``.
    probabilities:
        Per-site overrides, e.g. ``{"pool.ship": 0.2}``.  A site mapped
        to ``0.0`` never fires probabilistically.
    script:
        Exact triggers: an iterable of ``(site, occurrence)`` pairs; the
        plan fires on that site's N-th armed evaluation (1-based),
        regardless of probabilities.  This is how tests stage "the
        second ship of the third update dies" scenarios.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        probability: float = 0.0,
        probabilities: Optional[Dict[str, float]] = None,
        script: Optional[Iterable[Tuple[str, int]]] = None,
    ):
        self.seed = int(seed)
        overrides = dict(probabilities or {})
        for site in overrides:
            if site not in FAULT_SITES:
                raise ValueError(f"unknown fault site {site!r}")
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        self._probs: Dict[str, float] = {
            site: float(overrides.get(site, probability)) for site in FAULT_SITES
        }
        self._script: Dict[str, set] = {}
        for site, occurrence in script or ():
            if site not in FAULT_SITES:
                raise ValueError(f"unknown fault site {site!r}")
            if occurrence < 1:
                raise ValueError(
                    f"scripted occurrence must be >= 1, got {occurrence}"
                )
            self._script.setdefault(site, set()).add(int(occurrence))
        self._lock = threading.Lock()
        self._rngs: Dict[str, random.Random] = {
            site: random.Random(f"{self.seed}:{site}") for site in FAULT_SITES
        }
        self._calls: Dict[str, int] = {site: 0 for site in FAULT_SITES}
        self._injected: Dict[str, int] = {site: 0 for site in FAULT_SITES}

    # -- decision ----------------------------------------------------------

    def should_fire(self, site: str) -> Tuple[bool, int]:
        """Advance ``site``'s stream one armed evaluation.

        Returns ``(fire, occurrence)`` where ``occurrence`` is the
        1-based index of this evaluation.  Thread-safe: concurrent
        executor workers evaluating the same site serialize on the plan
        lock so counters stay exact (the *order* of concurrent draws is
        scheduling-dependent, but the multiset of decisions is not).
        """
        if site not in self._probs:
            raise ValueError(f"unknown fault site {site!r}")
        with self._lock:
            self._calls[site] += 1
            occurrence = self._calls[site]
            fire_now = occurrence in self._script.get(site, ())
            p = self._probs[site]
            if p > 0.0:
                # Always advance the stream so scripted hits do not shift
                # later probabilistic draws.
                draw = self._rngs[site].random() < p
                fire_now = fire_now or draw
            if fire_now:
                self._injected[site] += 1
            return fire_now, occurrence

    def fire(self, site: str) -> None:
        """Evaluate ``site`` and raise :class:`FaultInjected` if it fires."""
        fire_now, occurrence = self.should_fire(site)
        if fire_now:
            emit_event("fault.injected", site=site, occurrence=occurrence)
            raise FaultInjected(site, occurrence)

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-site ``{"calls": n, "injected": m}`` counters."""
        with self._lock:
            return {
                site: {
                    "calls": self._calls[site],
                    "injected": self._injected[site],
                }
                for site in FAULT_SITES
                if self._calls[site]
            }

    def total_injected(self) -> int:
        with self._lock:
            return sum(self._injected.values())

    def reset(self) -> None:
        """Rewind counters and RNG streams to the initial state."""
        with self._lock:
            for site in FAULT_SITES:
                self._calls[site] = 0
                self._injected[site] = 0
                self._rngs[site] = random.Random(f"{self.seed}:{site}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        active = {s: p for s, p in self._probs.items() if p > 0.0}
        return (
            f"FaultPlan(seed={self.seed}, probabilities={active!r}, "
            f"scripted={sorted(self._script)!r})"
        )


#: The installed plan, or ``None``.  Hot paths check this one global.
ACTIVE: Optional[FaultPlan] = None

#: Armed-scope depth.  Process-global (not thread-local) on purpose: the
#: thread that arms a scope (``update_state``) is not the thread that hits
#: the sites -- executor workers and the process-pool parent path run on
#: pool threads -- so a thread-local flag would never fire there.
_armed_depth = 0
_armed_lock = threading.Lock()


def install(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` as the process-wide fault plan (``None`` clears).

    Returns the previously installed plan so callers can restore it.
    """
    global ACTIVE
    previous = ACTIVE
    ACTIVE = plan
    return previous


def uninstall() -> None:
    """Remove any installed plan."""
    install(None)


def active_plan() -> Optional[FaultPlan]:
    return ACTIVE


def is_armed() -> bool:
    return _armed_depth > 0


@contextmanager
def armed() -> Iterator[None]:
    """Scope inside which an installed plan's sites may fire.

    Re-entrant and process-wide; the plan stays armed until every open
    scope has exited.
    """
    global _armed_depth
    with _armed_lock:
        _armed_depth += 1
    try:
        yield
    finally:
        with _armed_lock:
            _armed_depth -= 1


def fire(site: str) -> None:
    """Evaluate ``site`` against the installed plan, if armed.

    This is the helper hot paths call *after* their cheap
    ``faults.ACTIVE is not None`` guard.
    """
    plan = ACTIVE
    if plan is not None and is_armed():
        plan.fire(site)


def plan_from_env(environ: Optional[Dict[str, str]] = None) -> Optional[FaultPlan]:
    """Build a plan from ``QTASK_FAULT_*`` environment variables.

    * ``QTASK_FAULT_P`` — default probability (required to enable; a
      missing or zero value returns ``None``).
    * ``QTASK_FAULT_SEED`` — seed (default 0).
    * ``QTASK_FAULT_SITES`` — optional comma-separated whitelist; listed
      sites get ``QTASK_FAULT_P``, everything else 0.

    ``pool.worker.kill`` is never enabled probabilistically from the
    environment unless explicitly whitelisted: a SIGKILL storm turns a
    chaos smoke run into a pure respawn benchmark.
    """
    env = os.environ if environ is None else environ
    raw_p = env.get("QTASK_FAULT_P", "").strip()
    if not raw_p:
        return None
    p = float(raw_p)
    if p <= 0.0:
        return None
    seed = int(env.get("QTASK_FAULT_SEED", "0") or 0)
    raw_sites = env.get("QTASK_FAULT_SITES", "").strip()
    if raw_sites:
        sites: Sequence[str] = [s.strip() for s in raw_sites.split(",") if s.strip()]
        probabilities = {site: p for site in sites}
        return FaultPlan(seed, probability=0.0, probabilities=probabilities)
    probabilities = {"pool.worker.kill": 0.0}
    return FaultPlan(seed, probability=p, probabilities=probabilities)
