"""Non-unitary circuit operations: measurement, reset and classical control.

These objects fill the ``gate`` slot of an ordinary
:class:`~repro.core.circuit.GateHandle` -- the circuit's net structure,
observer protocol and handle lifecycle are shared with unitary gates -- but
they are *operations*, not unitaries: they have no matrix, they may read or
write classical bits, and (for measure/reset) they collapse the state.

``op_index`` identifies an operation across simulator configurations and
session forks: it is assigned by the circuit at first insertion, in program
order, and preserved by :meth:`Circuit.clone`.  The per-trajectory random
stream of a collapse (see :class:`~repro.core.classical.OutcomeRecord`) is
keyed by it, which is what makes seeded trajectories reproducible across
fusion/COW/directory knobs and fork fleets.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from .gates import Gate

__all__ = [
    "MeasureOp",
    "ResetOp",
    "CGate",
    "is_dynamic_op",
    "op_clbits_read",
    "op_clbits_written",
]


class MeasureOp:
    """Projective Z-basis measurement of one qubit into one classical bit."""

    __slots__ = ("qubit", "clbit", "op_index")

    name = "measure"
    params: Tuple[float, ...] = ()

    def __init__(self, qubit: int, clbit: int) -> None:
        self.qubit = int(qubit)
        self.clbit = int(clbit)
        #: program-order id, assigned by the circuit at first insertion
        self.op_index: Optional[int] = None

    @property
    def qubits(self) -> Tuple[int, ...]:
        return (self.qubit,)

    @property
    def num_qubits(self) -> int:
        return 1

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"measure[q{self.qubit}->c{self.clbit}]"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MeasureOp(q{self.qubit} -> c{self.clbit}, op={self.op_index})"


class ResetOp:
    """Reset one qubit to |0> (measure, then flip on outcome 1)."""

    __slots__ = ("qubit", "op_index")

    name = "reset"
    params: Tuple[float, ...] = ()

    def __init__(self, qubit: int) -> None:
        self.qubit = int(qubit)
        self.op_index: Optional[int] = None

    @property
    def qubits(self) -> Tuple[int, ...]:
        return (self.qubit,)

    @property
    def num_qubits(self) -> int:
        return 1

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"reset[q{self.qubit}]"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResetOp(q{self.qubit}, op={self.op_index})"


class CGate:
    """A unitary gate applied only when classical bits hold a given value.

    ``condition_bits[j]`` is compared against bit ``j`` of
    ``condition_value`` -- the OpenQASM ``if (c == k) gate ...;`` semantics
    when the bits are a whole register.  The wrapped ``gate`` is an ordinary
    immutable :class:`~repro.core.gates.Gate`.
    """

    __slots__ = ("gate", "condition_bits", "condition_value", "op_index")

    params: Tuple[float, ...] = ()

    def __init__(
        self,
        gate: Gate,
        condition_bits: Sequence[int],
        condition_value: int,
    ) -> None:
        if not isinstance(gate, Gate):
            raise TypeError(
                f"CGate wraps a unitary Gate, got {type(gate).__name__}"
            )
        bits = tuple(int(b) for b in condition_bits)
        if not bits:
            raise ValueError("a classically controlled gate needs condition bits")
        if len(set(bits)) != len(bits):
            raise ValueError(f"duplicate condition bits {bits}")
        value = int(condition_value)
        if not 0 <= value < (1 << len(bits)):
            raise ValueError(
                f"condition value {value} out of range for {len(bits)} bit(s)"
            )
        self.gate = gate
        self.condition_bits = bits
        self.condition_value = value
        self.op_index: Optional[int] = None

    @property
    def name(self) -> str:
        return self.gate.name

    @property
    def qubits(self) -> Tuple[int, ...]:
        return self.gate.qubits

    @property
    def num_qubits(self) -> int:
        return self.gate.num_qubits

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        bits = ",".join(f"c{b}" for b in self.condition_bits)
        return f"if({bits}=={self.condition_value}){self.gate}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CGate({self.gate}, bits={self.condition_bits}, value={self.condition_value})"


def is_dynamic_op(op) -> bool:
    """True for operations outside the pure-unitary path."""
    return isinstance(op, (MeasureOp, ResetOp, CGate))


def op_clbits_read(op) -> Tuple[int, ...]:
    """Classical bits an operation's behaviour depends on."""
    if isinstance(op, CGate):
        return op.condition_bits
    return ()


def op_clbits_written(op) -> Tuple[int, ...]:
    """Classical bits an operation writes."""
    if isinstance(op, MeasureOp):
        return (op.clbit,)
    return ()
