"""The user-facing qTask facade (the paper's Table-II API).

:class:`QTask` bundles a :class:`~repro.core.circuit.Circuit` with a
:class:`~repro.core.simulator.QTaskSimulator` behind the exact programming
model of Listing 1:

>>> from repro import QTask
>>> ckt = QTask(5)
>>> q4, q3, q2, q1, q0 = ckt.qubits()
>>> net1 = ckt.insert_net()
>>> net2 = ckt.insert_net(net1)
>>> G1 = ckt.insert_gate("h", net1, q4)
>>> G6 = ckt.insert_gate("cnot", net2, q3, q4)
>>> ckt.update_state()        # full simulation          # doctest: +ELLIPSIS
UpdateReport(...)
>>> ckt.remove_gate(G6)
>>> ckt.update_state()        # incremental simulation   # doctest: +ELLIPSIS
UpdateReport(...)
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, Sequence, TextIO, Tuple, Union

import numpy as np

from .core.blocks import DEFAULT_BLOCK_SIZE
from .core.circuit import Circuit, GateHandle, NetHandle
from .core.classical import ClassicalRegister, OutcomeRecord
from .core.cow import MemoryReport
from .core.exceptions import CircuitError, StaleHandleError
from .core.gates import Gate
from .core.simulator import QTaskSimulator, UpdateReport
from .observables.pauli import PauliLike
from .parallel import Executor, SequentialExecutor

__all__ = ["QTask"]


class QTask:
    """Incremental quantum circuit simulator with the paper's API surface."""

    def __init__(
        self,
        num_qubits: int,
        *,
        num_clbits: int = 0,
        block_size: int = DEFAULT_BLOCK_SIZE,
        num_workers: Optional[int] = None,
        executor: Optional[Executor] = None,
        copy_on_write: bool = True,
        fusion: bool = False,
        max_fused_qubits: int = 4,
        block_directory: bool = True,
        observable_cache: bool = True,
        kernel_backend: Optional[str] = None,
        store_transport: Optional[object] = None,
        seed: Optional[int] = None,
        tracing: Optional[bool] = None,
    ) -> None:
        self.circuit = Circuit(num_qubits, num_clbits=num_clbits)
        self.simulator = QTaskSimulator(
            self.circuit,
            block_size=block_size,
            num_workers=num_workers,
            executor=executor,
            copy_on_write=copy_on_write,
            fusion=fusion,
            max_fused_qubits=max_fused_qubits,
            block_directory=block_directory,
            observable_cache=observable_cache,
            kernel_backend=kernel_backend,
            store_transport=store_transport,
            seed=seed,
            tracing=tracing,
        )
        #: parent handle uid -> this session's handle (forked sessions only)
        self._fork_gate_map: Optional[Dict[int, GateHandle]] = None

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def from_program(cls, program, **knobs) -> "QTask":
        """A session pre-loaded with a parsed OpenQASM program.

        ``program`` is a :class:`~repro.qasm.ParsedProgram`; it is levelized
        QASMBench-style (one net per structural level, dynamic operations
        serialised per classical bit) and loaded into a fresh session.
        ``knobs`` are the :class:`QTask` constructor keywords (``executor``,
        ``kernel_backend``, ``seed``, ...).  Call ``update_state()`` to
        simulate.
        """
        from .qasm.levelize import program_to_circuit

        session = cls.__new__(cls)
        session.circuit = program_to_circuit(program)
        session.simulator = QTaskSimulator(session.circuit, **knobs)
        session._fork_gate_map = None
        return session

    @classmethod
    def from_qasm(cls, text: str, **knobs) -> "QTask":
        """A session pre-loaded from OpenQASM 2.0 source text.

        Convenience over :func:`repro.qasm.parse_qasm` +
        :meth:`from_program`::

            ckt = QTask.from_qasm(open("bv_n14.qasm").read())
            ckt.update_state()
        """
        from .qasm import parse_qasm

        return cls.from_program(parse_qasm(text), **knobs)

    def fork(
        self,
        *,
        executor: Optional[Executor] = None,
        kernel_backend: Optional[str] = None,
        store_transport: Optional[object] = None,
    ) -> "QTask":
        """A cheap child session sharing this session's state copy-on-write.

        The child has its own circuit (fresh handles), simulator, block
        directory and observables cache, but its stage stores reference the
        parent's computed blocks until first write -- forking copies no
        amplitudes.  Edits on either session never perturb the other, and
        both run on the *shared* executor by default, so many forks can
        update concurrently (see :class:`~repro.parallel.sweep.SweepRunner`);
        pass ``executor`` to give the child its own (e.g. a
        :class:`~repro.parallel.SequentialExecutor` when the parallelism
        lives one level up, across forks).

        Translate parent gate handles with :meth:`handle_for`::

            g = ckt.insert_gate("rz", net, q0, params=[0.1])
            ckt.update_state()
            child = ckt.fork()
            child.update_gate(child.handle_for(g), 0.7)
            child.update_state()          # incremental, parent untouched

        Pending modifiers on this session are flushed (``update_state``)
        before forking so the inherited state is well defined.
        """
        child = QTask.__new__(QTask)
        child.simulator = self.simulator.fork(
            executor=executor,
            kernel_backend=kernel_backend,
            store_transport=store_transport,
        )
        child.circuit = child.simulator.circuit
        child._fork_gate_map = child.simulator.forked_gate_map
        return child

    @property
    def is_fork(self) -> bool:
        """True when this session was created by :meth:`fork`."""
        return self._fork_gate_map is not None

    def handle_for(self, parent_handle: GateHandle) -> GateHandle:
        """This forked session's gate handle mirroring a parent's handle.

        Only gates that existed at fork time have a mirror; handles inserted
        into the parent afterwards (or into a non-forked session) raise.
        """
        if self._fork_gate_map is None:
            raise CircuitError("handle_for() is only available on forked sessions")
        mapped = self._fork_gate_map.get(parent_handle.uid)
        if mapped is None:
            raise StaleHandleError(
                f"gate handle {parent_handle!r} has no counterpart in this fork "
                "(inserted after the fork?)"
            )
        return mapped

    # -- durable checkpoints ---------------------------------------------------

    def checkpoint(self, path: str) -> str:
        """Serialize this session to ``path`` so it can survive a crash.

        The checkpoint captures the circuit, every configuration knob, the
        global stage order, all materialised copy-on-write blocks (each with
        a CRC) and the trajectory's classical state (seed, bits, recorded
        outcomes) in a versioned binary format.  Pending modifiers are
        flushed first, and the file is written atomically, so an existing
        checkpoint at ``path`` is never clobbered by a crash mid-write.
        Returns ``path``.
        """
        from .core.snapshot import save_checkpoint

        return save_checkpoint(self.simulator, path)

    @classmethod
    def restore(
        cls,
        path: str,
        *,
        executor: Optional[Executor] = None,
        num_workers: Optional[int] = None,
        kernel_backend: Optional[str] = None,
        store_transport: Optional[object] = None,
    ) -> "QTask":
        """Resume a session from a :meth:`checkpoint` file, without re-simulating.

        The restored session holds the checkpointed computed state and is
        immediately editable -- subsequent modifiers re-simulate
        incrementally from the loaded blocks.  Execution resources are not
        durable state: pass ``executor``/``num_workers``/``kernel_backend``
        to override what the checkpoint requested (a backend the original
        session had *degraded* to is not restored; the requested spec is).
        Raises :class:`~repro.core.exceptions.CheckpointError` on corrupt,
        truncated or incompatible files.
        """
        from .core.snapshot import restore_simulator

        session = cls.__new__(cls)
        session.simulator = restore_simulator(
            path,
            executor=executor,
            num_workers=num_workers,
            kernel_backend=kernel_backend,
            store_transport=store_transport,
        )
        session.circuit = session.simulator.circuit
        session._fork_gate_map = None
        return session

    def close(self) -> None:
        self.simulator.close()

    def __enter__(self) -> "QTask":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- structural queries ----------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return self.circuit.num_qubits

    @property
    def num_gates(self) -> int:
        return self.circuit.num_gates

    @property
    def num_nets(self) -> int:
        return self.circuit.num_nets

    def qubits(self) -> Tuple[int, ...]:
        """Qubit indices from most to least significant (as in Listing 1)."""
        return self.circuit.qubits()

    def nets(self) -> List[NetHandle]:
        return self.circuit.nets()

    # -- circuit modifiers (Table II) -----------------------------------------

    def insert_net(self, after: Optional[NetHandle] = None) -> NetHandle:
        """Insert a new empty net (after ``after``, or at the end)."""
        return self.circuit.insert_net(after)

    def remove_net(self, net: NetHandle) -> None:
        """Remove a net and all its gates from the circuit."""
        self.circuit.remove_net(net)

    def insert_gate(
        self,
        gate: Union[Gate, str],
        net: NetHandle,
        *qubits: int,
        params: Sequence[float] = (),
    ) -> GateHandle:
        """Insert a gate into an existing net."""
        return self.circuit.insert_gate(gate, net, *qubits, params=params)

    def remove_gate(self, handle: GateHandle) -> None:
        """Remove a gate from its net and the circuit."""
        self.circuit.remove_gate(handle)

    def update_gate(self, handle: GateHandle, *params: float) -> GateHandle:
        """Retune an existing gate's parameters in place (retune modifier).

        Unlike ``remove_gate`` + ``insert_gate``, the gate keeps its handle,
        its stage and the partition-graph topology; the next
        :meth:`update_state` re-simulates only the retuned stage's downstream
        cone.  This is the natural modifier for variational parameter sweeps::

            g = ckt.insert_gate("rz", net, q0, params=[0.1])
            ckt.update_state()
            ckt.update_gate(g, 0.2)      # same gate, new angle
            ckt.update_state()           # incremental re-simulation
        """
        return self.circuit.update_gate(handle, *params)

    # -- dynamic circuits (Table II extensions) --------------------------------

    @property
    def num_clbits(self) -> int:
        return self.circuit.num_clbits

    def add_classical_register(self, name: str, size: int) -> ClassicalRegister:
        """Declare ``size`` new classical bits under ``name``."""
        return self.circuit.add_classical_register(name, size)

    def creg(self, name: str) -> ClassicalRegister:
        """Look up a declared classical register by name."""
        return self.circuit.creg(name)

    def measure(self, net: NetHandle, qubit: int, clbit: int) -> GateHandle:
        """Measure ``qubit`` (Z basis) into classical bit ``clbit``.

        The measurement is a first-class circuit operation: the next
        :meth:`update_state` collapses and renormalises the state block-wise
        at that point of the circuit, writes the observed bit into
        :attr:`outcomes`, and invalidates downstream incremental caches
        exactly like a gate update at the same depth.
        """
        return self.circuit.insert_measure(net, qubit, clbit)

    def reset(self, net: NetHandle, qubit: int) -> GateHandle:
        """Reset ``qubit`` to |0> (projective measurement + conditional flip)."""
        return self.circuit.insert_reset(net, qubit)

    def c_if(
        self,
        gate: Union[Gate, str],
        net: NetHandle,
        *qubits: int,
        params: Sequence[float] = (),
        condition: Tuple[object, int],
    ) -> GateHandle:
        """Insert a classically-conditioned gate (``if (c == k) gate ...``).

        ``condition`` is ``(bits, value)``: a
        :class:`~repro.core.classical.ClassicalRegister` (or explicit clbit
        sequence, LSB first) compared against the integer ``value`` at
        execution time::

            c = ckt.add_classical_register("c", 1)
            ckt.measure(net1, q0, c[0])
            ckt.c_if("x", net2, q1, condition=(c, 1))   # X iff c == 1
        """
        return self.circuit.insert_cgate(
            gate, net, *qubits, params=params, condition=condition
        )

    @property
    def outcomes(self) -> OutcomeRecord:
        """This session's classical state (bits, outcomes, trajectory seed)."""
        return self.simulator.outcomes

    def classical_value(self, bits) -> int:
        """The integer a register (or clbit sequence) currently holds."""
        if isinstance(bits, ClassicalRegister):
            bits = bits.bits
        return self.simulator.outcomes.value_of(bits)

    def run_shots(
        self,
        shots: int,
        *,
        seed: Optional[int] = None,
        num_forks: Optional[int] = None,
    ) -> Dict[str, int]:
        """Sample ``shots`` trajectories of a dynamic circuit.

        Returns a histogram over the classical register bits (leftmost
        character = highest clbit), one entry per shot.  Each shot is an
        independent trajectory: the session is forked copy-on-write (the
        unitary prefix before the first measurement is computed once and
        shared across the whole fleet), the fork's keyed randomness is
        re-seeded with ``(seed, shot_index)``, and only the collapse cone is
        re-simulated per shot.  Shot outcomes therefore depend only on
        ``seed`` and the shot index -- never on the fleet size, executor
        width or scheduling -- and the shots of a fleet run on the session's
        shared executor in parallel (one fork per worker by default; cap
        with ``num_forks``).
        """
        if shots < 0:
            raise ValueError(f"shots must be non-negative, got {shots}")
        if self.circuit.num_clbits == 0:
            raise CircuitError(
                "run_shots needs classical bits; declare them with "
                "QTask(num_clbits=...) or add_classical_register()"
            )
        if shots == 0:
            return {}
        base_seed = OutcomeRecord._materialise_seed(seed)
        executor = self.simulator.executor
        workers = max(1, int(getattr(executor, "num_workers", 1)))
        limit = workers if num_forks is None else max(1, int(num_forks))
        fleet = min(shots, limit)
        # Each fork updates on its own sequential executor: one shot is one
        # coarse task, and the shared pool parallelises across forks.
        forks = [self.fork(executor=SequentialExecutor()) for _ in range(fleet)]
        n_clbits = self.circuit.num_clbits

        tracer = self.simulator.telemetry.tracer

        def run_chunk(fork_id: int) -> List[str]:
            child = forks[fork_id]
            out: List[str] = []
            for shot in range(fork_id, shots, fleet):
                if tracer.enabled:
                    # Shot spans land on the *parent* session's tracer (one
                    # exported timeline for the whole fleet), tagged with
                    # the shot index and which fork ran it.
                    with tracer.span("shot", {"shot": shot, "fork": fork_id}):
                        child.simulator.reset_trajectory((base_seed, shot))
                        child.update_state()
                else:
                    child.simulator.reset_trajectory((base_seed, shot))
                    child.update_state()
                out.append(child.outcomes.bitstring(range(n_clbits)))
            return out

        counts: Dict[str, int] = {}
        try:
            for chunk in executor.map(run_chunk, list(range(fleet))):
                for bits in chunk:
                    counts[bits] = counts.get(bits, 0) + 1
        finally:
            for child in forks:
                child.close()
        return counts

    # -- state update -------------------------------------------------------------

    def update_state(self) -> UpdateReport:
        """Update state amplitudes, incrementally when possible."""
        return self.simulator.update_state()

    # -- queries ------------------------------------------------------------------

    def dump_graph(self, stream: Optional[TextIO] = None) -> str:
        """Dump the current partition graph in DOT format.

        Returns the DOT text; also writes it to ``stream`` when given.
        """
        buf = io.StringIO()
        self.simulator.dump_graph(buf)
        text = buf.getvalue()
        if stream is not None:
            stream.write(text)
        return text

    def state(self) -> np.ndarray:
        return self.simulator.state()

    def amplitude(self, basis_state: int) -> complex:
        return self.simulator.amplitude(basis_state)

    def probabilities(self) -> np.ndarray:
        return self.simulator.probabilities()

    def probability(self, basis_state: int) -> float:
        return self.simulator.probability(basis_state)

    def norm(self) -> float:
        """The state's 2-norm, accumulated block-wise (never materialised)."""
        return self.simulator.norm()

    # -- observables & measurement --------------------------------------------

    def expectation(self, observable: PauliLike) -> float:
        """``<psi|H|psi>`` of a Hermitian Pauli observable.

        ``observable`` is a :class:`~repro.observables.PauliSum`,
        :class:`~repro.observables.PauliString` or a dense label string such
        as ``"ZZI"``.  Evaluation is block-wise against the copy-on-write
        stores with per-(term, block) caching invalidated by the incremental
        update's dirty frontier -- repeated evaluations during a variational
        sweep only recompute what the circuit edits actually changed.
        """
        return self.simulator.expectation(observable)

    def sample(self, shots: int, *, seed: Optional[int] = None) -> np.ndarray:
        """Draw ``shots`` measurement samples (basis-state indices)."""
        return self.simulator.sample(shots, seed=seed)

    def counts(self, shots: int, *, seed: Optional[int] = None) -> Dict[str, int]:
        """Measurement histogram ``{bitstring: count}`` over ``shots`` draws."""
        return self.simulator.counts(shots, seed=seed)

    def marginal_probabilities(self, qubits: Sequence[int]) -> np.ndarray:
        """Outcome distribution of measuring ``qubits`` (qubits[0] = bit 0)."""
        return self.simulator.marginal_probabilities(qubits)

    def memory_report(self) -> MemoryReport:
        """Logical copy-on-write storage accounting across all stage stores.

        The returned :class:`~repro.core.cow.MemoryReport` compares the
        blocks actually materialised (``allocated_bytes``, ``stored_blocks``)
        with what dense per-stage vectors would cost (``dense_bytes``);
        ``savings_fraction`` is the §III.F.3 copy-on-write saving.
        """
        return self.simulator.memory_report()

    def plan_report(self):
        """Dispatch-overhead accounting of the execution-plan pipeline.

        The returned :class:`~repro.core.exec_plan.PlanReport` counts the
        plans compiled across every update so far, the kernel runs batched
        into them, the executor-visible chunks they were split into, the
        backend that executed them and any fallbacks -- ``runs_per_plan``
        is the dispatch work one executor task absorbs compared to the
        legacy one-task-per-partition path.
        """
        return self.simulator.plan_report()

    def statistics(self) -> dict:
        """A flat dict snapshot of the simulator's incremental state.

        Includes the partition-graph shape (stages/nodes/edges/frontiers),
        every configuration knob (block size, workers, COW, fusion, block
        directory, observable cache, kernel backend) and the last update's
        outcome plus the plan-pipeline counters -- the record benchmarks
        and bug reports attach to a run.
        """
        return self.simulator.statistics()

    # -- observability ---------------------------------------------------------

    @property
    def telemetry(self):
        """This session's :class:`~repro.telemetry.Telemetry` bundle.

        One per session (forks get their own, tagged with the parent's
        session id): the metrics registry behind :meth:`statistics`, the
        tracer behind :meth:`export_trace` and the recovery event log
        behind :meth:`explain_last_update`.
        """
        return self.simulator.telemetry

    def telemetry_report(self) -> dict:
        """Everything the telemetry subsystem knows, as one nested dict.

        Session ids, every counter, every gauge (refreshed from the live
        graph/executor state first), every histogram's
        count/sum/min/mean/max/p50/p95, and span/event buffer health.  The
        flat legacy view with stable keys remains :meth:`statistics`;
        Prometheus text exposition is
        ``session.telemetry.metrics.prometheus_text()``.
        """
        self.simulator.statistics()  # refresh point-in-time gauges
        return self.simulator.telemetry.report()

    def explain_last_update(self) -> str:
        """A human-readable account of the most recent update.

        Shows what the update touched, which backend executed it, and the
        time-ordered recovery events (injected faults, retries, fallbacks,
        breaker transitions, pool respawns) that fired during it.
        """
        return self.simulator.explain_last_update()

    def export_trace(self, path: Optional[str] = None):
        """Export recorded spans as chrome-trace JSON (Perfetto-loadable).

        Requires the session to have been created with ``tracing=True`` (or
        ``QTASK_TRACING=1``); returns the trace dict and, when ``path`` is
        given, also writes it there.  Load the file at
        https://ui.perfetto.dev or ``chrome://tracing``.
        """
        return self.simulator.telemetry.tracer.export_chrome_trace(path)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QTask(qubits={self.num_qubits}, nets={self.num_nets}, "
            f"gates={self.num_gates}, B={self.simulator.block_size})"
        )
