"""OpenQASM 2.0 subset parser.

Supported constructs (enough to consume QASMBench-style circuits):

* ``OPENQASM 2.0;`` header and ``include`` statements (includes are ignored;
  the ``qelib1.inc`` gate set is built in),
* ``qreg`` / ``creg`` declarations (multiple quantum registers are flattened
  into one global qubit index space, first-declared register at the low
  indices),
* gate applications with parameter expressions (``rz(pi/4) q[1];``),
  register broadcasting (``h q;`` applies H to every qubit of ``q``),
* user gate definitions ``gate name(params) args { body }`` expanded as
  macros down to built-in gates,
* ``barrier`` (recorded as level separators),
* dynamic-circuit operations: ``measure q[i] -> c[j];`` (with register
  broadcasting), ``reset q[i];`` and classically-conditioned gates
  ``if (c == k) gate ...;`` -- these emit
  :class:`~repro.core.ops.MeasureOp` / :class:`~repro.core.ops.ResetOp` /
  :class:`~repro.core.ops.CGate` entries alongside the unitary gates,
* ``//`` and ``/* ... */`` comments.

Unsupported constructs (``opaque``, conditioned measure/reset) raise
:class:`QasmSyntaxError`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.exceptions import QasmSyntaxError
from ..core.gates import GATE_REGISTRY, Gate
from ..core.ops import CGate, MeasureOp, ResetOp
from .expressions import evaluate_expression

__all__ = ["ParsedProgram", "GateDefinition", "parse_qasm", "parse_qasm_file"]

# qelib1.inc composite gates not in the registry, expanded to registry gates.
# Each entry: (params, qubit arity, body) where body lines use formal names.
_QELIB_MACROS: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...], Tuple[str, ...]]] = {
    "cu3": (("theta", "phi", "lambda"), ("a", "b"), (
        "p((lambda+phi)/2) a",
        "p((lambda-phi)/2) b",
        "cx a,b",
        "u3(-theta/2,0,-(phi+lambda)/2) b",
        "cx a,b",
        "u3(theta/2,phi,0) b",
    )),
    "rccx": ((), ("a", "b", "c"), (
        "u2(0,pi) c", "p(pi/4) c", "cx b,c", "p(-pi/4) c",
        "cx a,c", "p(pi/4) c", "cx b,c", "p(-pi/4) c", "u2(0,pi) c",
    )),
    "c3x": ((), ("a", "b", "c", "d"), (
        "h d", "p(pi/8) a", "p(pi/8) b", "p(pi/8) c", "p(pi/8) d",
        "cx a,b", "p(-pi/8) b", "cx a,b", "cx b,c", "p(-pi/8) c",
        "cx a,c", "p(pi/8) c", "cx b,c", "p(-pi/8) c", "cx a,c",
        "cx c,d", "p(-pi/8) d", "cx b,d", "p(pi/8) d", "cx c,d",
        "p(-pi/8) d", "cx a,d", "p(pi/8) d", "cx c,d", "p(-pi/8) d",
        "cx b,d", "p(pi/8) d", "cx c,d", "p(-pi/8) d", "cx a,d", "h d",
    )),
}


@dataclass
class GateDefinition:
    """A user-defined gate (macro) from a ``gate`` block."""

    name: str
    params: Tuple[str, ...]
    qubits: Tuple[str, ...]
    body: Tuple[str, ...]


@dataclass
class ParsedProgram:
    """Result of parsing an OpenQASM program."""

    num_qubits: int
    #: unitary gates and dynamic operations (measure/reset/c_if), program order
    gates: List[object] = field(default_factory=list)
    #: indices into ``gates`` where an explicit ``barrier`` occurred
    barriers: List[int] = field(default_factory=list)
    #: quantum register name -> (offset, size)
    registers: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: classical register name -> (offset, size)
    cregisters: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    num_classical_bits: int = 0
    definitions: Dict[str, GateDefinition] = field(default_factory=dict)

    @property
    def num_gates(self) -> int:
        return len(self.gates)

    @property
    def has_dynamic_ops(self) -> bool:
        return any(isinstance(g, (MeasureOp, ResetOp, CGate)) for g in self.gates)


_COMMENT_BLOCK = re.compile(r"/\*.*?\*/", re.DOTALL)
_COMMENT_LINE = re.compile(r"//[^\n]*")
_QREG = re.compile(r"^(qreg|creg)\s+([A-Za-z_][\w]*)\s*\[\s*(\d+)\s*\]$")
_NAME = re.compile(r"^([A-Za-z_][\w]*)\s*")
_OPERAND = re.compile(r"^([A-Za-z_][\w]*)(\s*\[\s*(\d+)\s*\])?$")


def _split_call(stmt: str) -> Tuple[str, List[str], List[str]]:
    """Split ``name(p1, p2) a, b`` into name, parameter texts and operands.

    Parameter expressions may contain nested parentheses (e.g. ``(a+b)/2``),
    so the parameter list is extracted by balancing parentheses rather than
    with a regular expression.
    """
    m = _NAME.match(stmt.strip())
    if not m:
        raise QasmSyntaxError(f"malformed statement {stmt!r}")
    name = m.group(1)
    rest = stmt.strip()[m.end():].lstrip()
    params: List[str] = []
    if rest.startswith("("):
        depth = 0
        for i, ch in enumerate(rest):
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    inner = rest[1:i]
                    params = [p.strip() for p in _split_top_level(inner) if p.strip()]
                    rest = rest[i + 1 :].strip()
                    break
        else:
            raise QasmSyntaxError(f"unbalanced parentheses in {stmt!r}")
    operands = [o.strip() for o in rest.split(",") if o.strip()]
    return name, params, operands


def _split_top_level(text: str) -> List[str]:
    """Split a comma-separated list, ignoring commas inside parentheses."""
    out, depth, start = [], 0, 0
    for i, ch in enumerate(text):
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif ch == "," and depth == 0:
            out.append(text[start:i])
            start = i + 1
    out.append(text[start:])
    return out


def parse_qasm_file(path: str) -> ParsedProgram:
    """Parse an OpenQASM 2.0 file from disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_qasm(fh.read())


def parse_qasm(text: str) -> ParsedProgram:
    """Parse OpenQASM 2.0 source text into a :class:`ParsedProgram`."""
    cleaned = _COMMENT_LINE.sub("", _COMMENT_BLOCK.sub("", text))
    statements, definitions = _split_statements(cleaned)

    program = ParsedProgram(num_qubits=0)
    for name, definition in definitions.items():
        program.definitions[name] = definition

    offset = 0
    for stmt in statements:
        stmt = stmt.strip()
        if not stmt:
            continue
        lowered = stmt.lower()
        if lowered.startswith("openqasm") or lowered.startswith("include"):
            continue
        m = _QREG.match(stmt)
        if m:
            kind, name, size = m.group(1), m.group(2), int(m.group(3))
            if kind == "qreg":
                program.registers[name] = (offset, size)
                offset += size
                program.num_qubits = offset
            else:
                program.cregisters[name] = (program.num_classical_bits, size)
                program.num_classical_bits += size
            continue
        if lowered.startswith("barrier"):
            program.barriers.append(len(program.gates))
            continue
        if lowered.startswith("measure"):
            _emit_measure(stmt, program)
            continue
        if lowered.startswith("reset"):
            _emit_reset(stmt, program)
            continue
        if lowered.startswith("if"):
            _emit_conditional(stmt, program, definitions)
            continue
        if lowered.startswith("opaque"):
            raise QasmSyntaxError(f"opaque gates are not supported: {stmt!r}")
        _emit_gate(stmt, program, definitions, {})
    if program.num_qubits == 0:
        raise QasmSyntaxError("program declares no quantum register")
    return program


# ---------------------------------------------------------------------------
# internals
# ---------------------------------------------------------------------------


def _split_statements(text: str) -> Tuple[List[str], Dict[str, GateDefinition]]:
    """Split source into top-level statements and user gate definitions."""
    statements: List[str] = []
    definitions: Dict[str, GateDefinition] = {}
    i = 0
    n = len(text)
    while i < n:
        # gate definition?
        m = re.match(r"\s*gate\s+", text[i:])
        if m:
            brace_open = text.index("{", i)
            brace_close = text.index("}", brace_open)
            header = text[i + m.end() : brace_open].strip()
            body_text = text[brace_open + 1 : brace_close]
            definition = _parse_gate_definition(header, body_text)
            definitions[definition.name] = definition
            i = brace_close + 1
            continue
        j = text.find(";", i)
        if j == -1:
            rest = text[i:].strip()
            if rest:
                statements.append(rest)
            break
        statements.append(text[i:j].strip())
        i = j + 1
    return statements, definitions


def _parse_gate_definition(header: str, body_text: str) -> GateDefinition:
    name, params, qubits = _split_call(header.strip())
    body = tuple(s.strip() for s in body_text.split(";") if s.strip())
    return GateDefinition(name=name, params=tuple(params), qubits=tuple(qubits), body=body)


def _resolve_operand(
    token: str,
    program: ParsedProgram,
) -> List[int]:
    """Resolve ``q[3]`` to [index] or a bare register ``q`` to all its qubits."""
    m = _OPERAND.match(token.strip())
    if not m:
        raise QasmSyntaxError(f"malformed operand {token!r}")
    reg, _, idx = m.group(1), m.group(2), m.group(3)
    if reg not in program.registers:
        raise QasmSyntaxError(f"unknown quantum register {reg!r}")
    offset, size = program.registers[reg]
    if idx is None:
        return [offset + k for k in range(size)]
    k = int(idx)
    if k >= size:
        raise QasmSyntaxError(f"index {k} out of range for register {reg}[{size}]")
    return [offset + k]


def _resolve_clbit_operand(token: str, program: ParsedProgram) -> List[int]:
    """Resolve ``c[3]`` to [index] or a bare creg ``c`` to all its clbits."""
    m = _OPERAND.match(token.strip())
    if not m:
        raise QasmSyntaxError(f"malformed classical operand {token!r}")
    reg, _, idx = m.group(1), m.group(2), m.group(3)
    if reg not in program.cregisters:
        raise QasmSyntaxError(f"unknown classical register {reg!r}")
    offset, size = program.cregisters[reg]
    if idx is None:
        return [offset + k for k in range(size)]
    k = int(idx)
    if k >= size:
        raise QasmSyntaxError(f"index {k} out of range for register {reg}[{size}]")
    return [offset + k]


_MEASURE = re.compile(r"^measure\s+(.+?)\s*->\s*(.+)$", re.IGNORECASE)
_RESET = re.compile(r"^reset\s+(.+)$", re.IGNORECASE)
_IF = re.compile(
    r"^if\s*\(\s*([A-Za-z_][\w]*)\s*==\s*(\d+)\s*\)\s*(.+)$", re.IGNORECASE
)


def _emit_measure(stmt: str, program: ParsedProgram) -> None:
    m = _MEASURE.match(stmt.strip())
    if not m:
        raise QasmSyntaxError(f"malformed measure statement {stmt!r}")
    qubits = _resolve_operand(m.group(1), program)
    clbits = _resolve_clbit_operand(m.group(2), program)
    if len(qubits) != len(clbits):
        raise QasmSyntaxError(
            f"measure broadcast mismatch: {len(qubits)} qubit(s) -> "
            f"{len(clbits)} clbit(s) in {stmt!r}"
        )
    for q, c in zip(qubits, clbits):
        program.gates.append(MeasureOp(q, c))


def _emit_reset(stmt: str, program: ParsedProgram) -> None:
    m = _RESET.match(stmt.strip())
    if not m:
        raise QasmSyntaxError(f"malformed reset statement {stmt!r}")
    for q in _resolve_operand(m.group(1), program):
        program.gates.append(ResetOp(q))


def _emit_conditional(
    stmt: str,
    program: ParsedProgram,
    definitions: Mapping[str, GateDefinition],
) -> None:
    m = _IF.match(stmt.strip())
    if not m:
        raise QasmSyntaxError(f"malformed if statement {stmt!r}")
    reg, value, inner = m.group(1), int(m.group(2)), m.group(3).strip()
    if reg not in program.cregisters:
        raise QasmSyntaxError(f"unknown classical register {reg!r} in {stmt!r}")
    offset, size = program.cregisters[reg]
    if value >= (1 << size):
        raise QasmSyntaxError(
            f"condition value {value} out of range for {reg}[{size}]"
        )
    lowered = inner.lower()
    if lowered.startswith(("measure", "reset", "if", "barrier")):
        raise QasmSyntaxError(
            f"only gate applications can be conditioned: {stmt!r}"
        )
    bits = tuple(range(offset, offset + size))
    # A macro body may expand to several gates; the condition (being purely
    # classical) distributes over each expanded gate unchanged.
    start = len(program.gates)
    _emit_gate(inner, program, definitions, {})
    for i in range(start, len(program.gates)):
        program.gates[i] = CGate(program.gates[i], bits, value)


def _emit_gate(
    stmt: str,
    program: ParsedProgram,
    definitions: Mapping[str, GateDefinition],
    bindings: Mapping[str, float],
) -> None:
    name, raw_params, raw_operands = _split_call(stmt)
    name = name.lower()
    params = tuple(evaluate_expression(p, bindings) for p in raw_params)

    operand_sets = [_resolve_operand(tok, program) for tok in raw_operands]
    if not operand_sets:
        raise QasmSyntaxError(f"gate {name!r} applied to no qubits: {stmt!r}")

    # Register broadcasting: all multi-qubit operands must have equal length.
    lengths = {len(s) for s in operand_sets if len(s) > 1}
    if len(lengths) > 1:
        raise QasmSyntaxError(f"mismatched register broadcast in {stmt!r}")
    repeat = lengths.pop() if lengths else 1

    for rep in range(repeat):
        qubits = tuple(s[rep] if len(s) > 1 else s[0] for s in operand_sets)
        _emit_single(name, params, qubits, program, definitions)


def _emit_single(
    name: str,
    params: Tuple[float, ...],
    qubits: Tuple[int, ...],
    program: ParsedProgram,
    definitions: Mapping[str, GateDefinition],
) -> None:
    if name in GATE_REGISTRY:
        program.gates.append(Gate(name, qubits, params))
        return
    definition = definitions.get(name) or _builtin_macro(name)
    if definition is None:
        raise QasmSyntaxError(f"unknown gate {name!r}")
    if len(definition.params) != len(params) or len(definition.qubits) != len(qubits):
        raise QasmSyntaxError(
            f"gate {name!r} expects {len(definition.params)} params / "
            f"{len(definition.qubits)} qubits"
        )
    bindings = dict(zip(definition.params, params))
    qubit_map = dict(zip(definition.qubits, qubits))
    for stmt in definition.body:
        _emit_macro_statement(stmt, bindings, qubit_map, program, definitions)


def _builtin_macro(name: str) -> Optional[GateDefinition]:
    entry = _QELIB_MACROS.get(name)
    if entry is None:
        return None
    params, qubits, body = entry
    return GateDefinition(name=name, params=params, qubits=qubits, body=body)


def _emit_macro_statement(
    stmt: str,
    bindings: Mapping[str, float],
    qubit_map: Mapping[str, int],
    program: ParsedProgram,
    definitions: Mapping[str, GateDefinition],
) -> None:
    name, raw_params, raw_operands = _split_call(stmt.strip())
    name = name.lower()
    if name == "barrier":
        return
    params = tuple(evaluate_expression(p, bindings) for p in raw_params)
    try:
        qubits = tuple(qubit_map[q] for q in raw_operands)
    except KeyError as exc:
        raise QasmSyntaxError(f"unknown formal qubit {exc.args[0]!r} in {stmt!r}") from None
    _emit_single(name, params, qubits, program, definitions)
