"""Safe evaluation of OpenQASM parameter expressions.

OpenQASM 2.0 gate parameters are arithmetic expressions over numbers, ``pi``
and (inside gate definitions) formal parameter names, using ``+ - * / ^`` and
a few unary functions.  Evaluation uses Python's :mod:`ast` with a strict
whitelist -- no ``eval`` of arbitrary code.
"""

from __future__ import annotations

import ast
import math
import operator
from typing import Dict, Mapping, Optional

from ..core.exceptions import QasmSyntaxError

__all__ = ["evaluate_expression"]

_BINOPS = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: operator.mul,
    ast.Div: operator.truediv,
    ast.Pow: operator.pow,
    ast.Mod: operator.mod,
}

_UNARYOPS = {
    ast.USub: operator.neg,
    ast.UAdd: operator.pos,
}

_FUNCTIONS = {
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "exp": math.exp,
    "ln": math.log,
    "log": math.log,
    "sqrt": math.sqrt,
    "asin": math.asin,
    "acos": math.acos,
    "atan": math.atan,
}

_CONSTANTS = {"pi": math.pi, "tau": 2 * math.pi, "e": math.e}


def evaluate_expression(text: str, variables: Optional[Mapping[str, float]] = None) -> float:
    """Evaluate an OpenQASM arithmetic expression to a float."""
    variables = dict(variables or {})
    # OpenQASM uses ^ for exponentiation; Python uses **.
    source = text.replace("^", "**").strip()
    # OpenQASM parameter names may collide with Python keywords (``lambda`` is
    # ubiquitous in qelib1.inc); rename them before handing the text to ast.
    import keyword
    import re as _re

    for name in list(variables):
        if keyword.iskeyword(name):
            safe = f"_{name}_"
            source = _re.sub(rf"\b{_re.escape(name)}\b", safe, source)
            variables[safe] = variables.pop(name)
    # An *unbound* keyword identifier would be an ast-level SyntaxError;
    # rename it too so it fails with the clearer unknown-identifier error.
    source = _re.sub(r"\blambda\b", "_lambda_", source)
    if not source:
        raise QasmSyntaxError("empty parameter expression")
    try:
        tree = ast.parse(source, mode="eval")
    except SyntaxError as exc:
        raise QasmSyntaxError(f"invalid parameter expression {text!r}: {exc}") from None

    def walk(node: ast.AST) -> float:
        if isinstance(node, ast.Expression):
            return walk(node.body)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float)):
                return float(node.value)
            raise QasmSyntaxError(f"invalid literal {node.value!r} in {text!r}")
        if isinstance(node, ast.Name):
            if node.id in variables:
                return float(variables[node.id])
            # Case-exact: OpenQASM identifiers are case-sensitive, so an
            # unbound ``PI`` is an error, not a sloppy alias for ``pi``.
            if node.id in _CONSTANTS:
                return _CONSTANTS[node.id]
            raise QasmSyntaxError(f"unknown identifier {node.id!r} in {text!r}")
        if isinstance(node, ast.BinOp):
            op = _BINOPS.get(type(node.op))
            if op is None:
                raise QasmSyntaxError(f"operator not allowed in {text!r}")
            return op(walk(node.left), walk(node.right))
        if isinstance(node, ast.UnaryOp):
            op = _UNARYOPS.get(type(node.op))
            if op is None:
                raise QasmSyntaxError(f"unary operator not allowed in {text!r}")
            return op(walk(node.operand))
        if isinstance(node, ast.Call):
            if not isinstance(node.func, ast.Name):
                raise QasmSyntaxError(f"invalid function call in {text!r}")
            fn = _FUNCTIONS.get(node.func.id.lower())
            if fn is None or node.keywords or len(node.args) != 1:
                raise QasmSyntaxError(f"function {node.func.id!r} not allowed in {text!r}")
            return fn(walk(node.args[0]))
        raise QasmSyntaxError(f"unsupported syntax in parameter expression {text!r}")

    return float(walk(tree))
