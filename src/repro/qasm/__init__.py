"""OpenQASM 2.0 substrate: parser, levelizer and writer.

The paper evaluates qTask on QASMBench, a suite of OpenQASM circuits.  This
package provides the substrate needed to consume such files offline:

* :func:`~repro.qasm.parser.parse_qasm` -- parse an OpenQASM 2.0 subset
  (qelib1 standard gates, user gate definitions with macro expansion, qreg /
  creg, barrier / measure / reset are accepted and ignored) into a flat list
  of :class:`~repro.core.gates.Gate` operations;
* :func:`~repro.qasm.levelize.levelize` -- ASAP-schedule a gate list into
  *nets* of structurally parallel gates (the paper constructs one net per
  level, §IV.B);
* :func:`~repro.qasm.writer.to_qasm` -- write a circuit back out.
"""

from .levelize import levelize, levels_to_circuit
from .parser import ParsedProgram, parse_qasm, parse_qasm_file
from .writer import to_qasm

__all__ = [
    "ParsedProgram",
    "parse_qasm",
    "parse_qasm_file",
    "levelize",
    "levels_to_circuit",
    "to_qasm",
]
