"""Serialize circuits back to OpenQASM 2.0 text."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from ..core.circuit import Circuit
from ..core.exceptions import QasmSyntaxError
from ..core.gates import Gate
from ..core.ops import CGate, MeasureOp, ResetOp, op_clbits_read, op_clbits_written

__all__ = ["to_qasm"]

_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


def _format_gate(gate: Gate) -> str:
    params = ""
    if gate.params:
        params = "(" + ",".join(f"{p:.12g}" for p in gate.params) + ")"
    operands = ",".join(f"q[{q}]" for q in gate.qubits)
    return f"{gate.name}{params} {operands};"


def _clbit_name(circuit: Optional[Circuit], clbit: int) -> str:
    """Register-relative name of a classical bit (``c[i]`` when anonymous)."""
    if circuit is not None:
        for reg in circuit.classical_registers():
            if reg.offset <= clbit < reg.offset + reg.size:
                return f"{reg.name}[{clbit - reg.offset}]"
    return f"c[{clbit}]"


def _condition_register(
    circuit: Optional[Circuit],
    op: CGate,
    fallback_bits: tuple = (),
) -> str:
    """The register name whose bits exactly match the condition bits.

    OpenQASM 2.0 conditions compare a *whole* classical register, so a
    condition must cover either a declared register or the anonymous
    fallback register ``c`` the writer emits (``fallback_bits``) exactly;
    arbitrary bit subsets cannot be expressed and raise.
    """
    if circuit is not None:
        for reg in circuit.classical_registers():
            if reg.bits == op.condition_bits:
                return reg.name
    if fallback_bits and op.condition_bits == fallback_bits:
        return "c"
    raise QasmSyntaxError(
        f"condition bits {op.condition_bits} do not form a declared classical "
        "register; OpenQASM 2.0 cannot express bit-subset conditions"
    )


def _format_op(op, circuit: Optional[Circuit], fallback_bits: tuple = ()) -> str:
    if isinstance(op, Gate):
        return _format_gate(op)
    if isinstance(op, MeasureOp):
        return f"measure q[{op.qubit}] -> {_clbit_name(circuit, op.clbit)};"
    if isinstance(op, ResetOp):
        return f"reset q[{op.qubit}];"
    if isinstance(op, CGate):
        reg = _condition_register(circuit, op, fallback_bits)
        return f"if({reg}=={op.condition_value}) " + _format_gate(op.gate)
    raise QasmSyntaxError(f"cannot serialise operation {op!r}")


def to_qasm(circuit_or_levels: Union[Circuit, Sequence[Iterable[object]]],
            num_qubits: int | None = None) -> str:
    """Render a circuit (or a list of gate levels) as OpenQASM 2.0 source.

    Nets/levels are separated by ``barrier`` statements so a round trip
    through :func:`repro.qasm.parse_qasm` + :func:`repro.qasm.levelize`
    reconstructs the same level structure.  Dynamic operations serialise to
    ``measure``/``reset``/``if (reg == k)`` statements; the circuit's
    declared classical registers are emitted as ``creg`` lines (anonymous
    clbits fall back to one ``creg c[...]`` covering them).
    """
    circuit: Optional[Circuit] = None
    if isinstance(circuit_or_levels, Circuit):
        circuit = circuit_or_levels
        num_qubits = circuit.num_qubits
        levels: List[List[object]] = [
            [h.gate for h in net.gates] for net in circuit.nets() if net.gates
        ]
    else:
        if num_qubits is None:
            raise ValueError("num_qubits is required when passing raw levels")
        levels = [list(level) for level in circuit_or_levels]

    lines = [_HEADER, f"qreg q[{num_qubits}];"]
    fallback_bits: tuple = ()
    if circuit is not None and circuit.num_clbits > 0:
        regs = circuit.classical_registers()
        anonymous = circuit.num_clbits - sum(r.size for r in regs)
        if anonymous > 0:
            # constructor-declared bits occupy the low indices, before any
            # named register; emit them as one anonymous register, which
            # whole-register conditions may then reference as ``c``
            if any(r.name == "c" for r in regs):
                raise QasmSyntaxError(
                    "cannot emit anonymous clbits: register name 'c' is taken"
                )
            lines.append(f"creg c[{anonymous}];")
            fallback_bits = tuple(range(anonymous))
        for reg in regs:
            lines.append(f"creg {reg.name}[{reg.size}];")
    else:
        # raw levels (or a clbit-free circuit): size the fallback register
        # to cover every clbit the operations actually touch, so the output
        # re-parses even when a measure targets c[i] with i >= num_qubits
        max_clbit = -1
        for level in levels:
            for op in level:
                for c in (*op_clbits_read(op), *op_clbits_written(op)):
                    max_clbit = max(max_clbit, c)
        fallback_size = max(num_qubits, max_clbit + 1)
        lines.append(f"creg c[{fallback_size}];")
        fallback_bits = tuple(range(fallback_size))
    for i, level in enumerate(levels):
        if i > 0:
            lines.append("barrier q;")
        for op in level:
            lines.append(_format_op(op, circuit, fallback_bits))
    return "\n".join(lines) + "\n"
