"""Serialize circuits back to OpenQASM 2.0 text."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

from ..core.circuit import Circuit
from ..core.gates import Gate

__all__ = ["to_qasm"]

_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


def _format_gate(gate: Gate) -> str:
    params = ""
    if gate.params:
        params = "(" + ",".join(f"{p:.12g}" for p in gate.params) + ")"
    operands = ",".join(f"q[{q}]" for q in gate.qubits)
    return f"{gate.name}{params} {operands};"


def to_qasm(circuit_or_levels: Union[Circuit, Sequence[Iterable[Gate]]],
            num_qubits: int | None = None) -> str:
    """Render a circuit (or a list of gate levels) as OpenQASM 2.0 source.

    Nets/levels are separated by ``barrier`` statements so a round trip
    through :func:`repro.qasm.parse_qasm` + :func:`repro.qasm.levelize`
    reconstructs the same level structure.
    """
    if isinstance(circuit_or_levels, Circuit):
        num_qubits = circuit_or_levels.num_qubits
        levels: List[List[Gate]] = [
            [h.gate for h in net.gates] for net in circuit_or_levels.nets() if net.gates
        ]
    else:
        if num_qubits is None:
            raise ValueError("num_qubits is required when passing raw levels")
        levels = [list(level) for level in circuit_or_levels]

    lines = [_HEADER, f"qreg q[{num_qubits}];", f"creg c[{num_qubits}];"]
    for i, level in enumerate(levels):
        if i > 0:
            lines.append("barrier q;")
        for gate in level:
            lines.append(_format_gate(gate))
    return "\n".join(lines) + "\n"
