"""Levelization: gate lists -> nets of structurally parallel gates.

The paper constructs circuits "following the convention of QASMBench: create
a net per level and insert all parallel gates at that level to the net"
(§IV.B).  :func:`levelize` performs the classic ASAP scheduling that computes
those levels from a flat gate list, and :func:`levels_to_circuit` loads the
levels into a :class:`~repro.core.circuit.Circuit`.

Dynamic operations participate with an extended dependency rule: beyond the
qubits they act on, operations that *touch* classical bits (measurements
write them, classically-conditioned gates read them) are serialised per
clbit, so a conditioned gate always lands on a level strictly after the
measurement that feeds its condition -- even when their qubits are disjoint.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..core.circuit import Circuit
from ..core.gates import Gate
from ..core.ops import op_clbits_read, op_clbits_written
from .parser import ParsedProgram

__all__ = ["levelize", "levels_to_circuit", "program_to_circuit"]


def _touched_clbits(op) -> List[int]:
    return list(op_clbits_read(op)) + list(op_clbits_written(op))


def levelize(
    gates: Sequence[object], *, barriers: Optional[Sequence[int]] = None
) -> List[List[object]]:
    """ASAP-schedule operations into levels (nets).

    An operation is placed at the earliest level strictly after the last
    level that uses any of its qubits *or classical bits*.  Optional
    ``barriers`` (gate indices) force every later operation to start on a
    fresh level, mirroring OpenQASM ``barrier``.
    """
    levels: List[List[object]] = []
    qubit_level: dict[int, int] = {}
    clbit_level: dict[int, int] = {}
    barrier_floor = 0
    barrier_set = set(barriers or ())
    for i, gate in enumerate(gates):
        if i in barrier_set:
            barrier_floor = len(levels)
        earliest = barrier_floor
        for q in gate.qubits:
            earliest = max(earliest, qubit_level.get(q, 0))
        clbits = _touched_clbits(gate)
        for c in clbits:
            earliest = max(earliest, clbit_level.get(c, 0))
        while len(levels) <= earliest:
            levels.append([])
        levels[earliest].append(gate)
        for q in gate.qubits:
            qubit_level[q] = earliest + 1
        for c in clbits:
            clbit_level[c] = earliest + 1
    return [lvl for lvl in levels if lvl]


def levels_to_circuit(
    num_qubits: int,
    levels: Iterable[Iterable[object]],
    *,
    num_clbits: int = 0,
) -> Circuit:
    """Build a circuit with one net per level."""
    circuit = Circuit(num_qubits, num_clbits=num_clbits)
    circuit.from_levels(levels)
    return circuit


def program_to_circuit(program: ParsedProgram) -> Circuit:
    """Levelize a parsed OpenQASM program into a circuit (one net per level).

    Classical registers declared by the program are re-declared on the
    circuit (same names, same bit offsets), so register-conditioned gates
    and measure targets keep their meaning, and the circuit round-trips
    through :func:`repro.qasm.to_qasm`.
    """
    levels = levelize(program.gates, barriers=program.barriers)
    circuit = Circuit(program.num_qubits)
    for name, (offset, size) in sorted(
        program.cregisters.items(), key=lambda kv: kv[1][0]
    ):
        reg = circuit.add_classical_register(name, size)
        assert reg.offset == offset, "creg offsets must mirror the program"
    circuit.from_levels(levels)
    return circuit
