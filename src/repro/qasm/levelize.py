"""Levelization: gate lists -> nets of structurally parallel gates.

The paper constructs circuits "following the convention of QASMBench: create
a net per level and insert all parallel gates at that level to the net"
(§IV.B).  :func:`levelize` performs the classic ASAP scheduling that computes
those levels from a flat gate list, and :func:`levels_to_circuit` loads the
levels into a :class:`~repro.core.circuit.Circuit`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..core.circuit import Circuit
from ..core.gates import Gate
from .parser import ParsedProgram

__all__ = ["levelize", "levels_to_circuit", "program_to_circuit"]


def levelize(gates: Sequence[Gate], *, barriers: Optional[Sequence[int]] = None) -> List[List[Gate]]:
    """ASAP-schedule gates into levels (nets).

    A gate is placed at the earliest level strictly after the last level that
    uses any of its qubits.  Optional ``barriers`` (gate indices) force every
    later gate to start on a fresh level, mirroring OpenQASM ``barrier``.
    """
    levels: List[List[Gate]] = []
    qubit_level: dict[int, int] = {}
    barrier_floor = 0
    barrier_set = set(barriers or ())
    for i, gate in enumerate(gates):
        if i in barrier_set:
            barrier_floor = len(levels)
        earliest = barrier_floor
        for q in gate.qubits:
            earliest = max(earliest, qubit_level.get(q, 0))
        while len(levels) <= earliest:
            levels.append([])
        levels[earliest].append(gate)
        for q in gate.qubits:
            qubit_level[q] = earliest + 1
    return [lvl for lvl in levels if lvl]


def levels_to_circuit(num_qubits: int, levels: Iterable[Iterable[Gate]]) -> Circuit:
    """Build a circuit with one net per level."""
    circuit = Circuit(num_qubits)
    circuit.from_levels(levels)
    return circuit


def program_to_circuit(program: ParsedProgram) -> Circuit:
    """Levelize a parsed OpenQASM program into a circuit (one net per level)."""
    levels = levelize(program.gates, barriers=program.barriers)
    return levels_to_circuit(program.num_qubits, levels)
