"""Plain-text rendering of benchmark results (tables and ASCII curves)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from .metrics import FigureSeries, Table3Row

__all__ = ["format_table3", "format_series_table", "ascii_plot", "geometric_mean"]


def geometric_mean(values: Sequence[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return float("nan")
    prod = 1.0
    for v in vals:
        prod *= v
    return prod ** (1.0 / len(vals))


def format_table3(rows: Sequence[Table3Row], simulators: Sequence[str]) -> str:
    """Render Table III: per-circuit full/inc runtime (ms) and memory (GB)."""
    header = ["Circuit", "Qubits", "Gates", "CNOT"]
    for sim in simulators:
        header += [f"{sim} full(ms)", f"{sim} inc(ms)", f"{sim} mem(MB)"]
    lines = ["\t".join(header)]
    speedups: Dict[str, List[float]] = {s: [] for s in simulators}
    inc_speedups: Dict[str, List[float]] = {s: [] for s in simulators}
    for row in rows:
        cells = [row.circuit, str(row.qubits), str(row.gates), str(row.cnots)]
        for sim in simulators:
            full_s, inc_s, mem = row.results.get(sim, (float("nan"), float("nan"), 0))
            cells += [f"{full_s*1e3:.2f}", f"{inc_s*1e3:.2f}", f"{mem/2**20:.2f}"]
        lines.append("\t".join(cells))
        if "qTask" in row.results:
            qf, qi, _ = row.results["qTask"]
            for sim in simulators:
                if sim == "qTask" or sim not in row.results:
                    continue
                bf, bi, _ = row.results[sim]
                if qf > 0:
                    speedups[sim].append(bf / qf)
                if qi > 0:
                    inc_speedups[sim].append(bi / qi)
    summary = []
    for sim in simulators:
        if sim == "qTask" or not speedups.get(sim):
            continue
        summary.append(
            f"qTask speedup over {sim}: "
            f"full {geometric_mean(speedups[sim]):.2f}x, "
            f"incremental {geometric_mean(inc_speedups[sim]):.2f}x"
        )
    return "\n".join(lines + [""] + summary)


def format_series_table(series: Sequence[FigureSeries], x_label: str, y_label: str) -> str:
    """Render figure series as a tab-separated table (x, one column per series)."""
    xs = sorted({x for s in series for x in s.xs()})
    lines = ["\t".join([x_label] + [s.label for s in series]) + f"   ({y_label})"]
    lookup = [{p.x: p.y for p in s.points} for s in series]
    for x in xs:
        cells = [f"{x:g}"]
        for table in lookup:
            y = table.get(x)
            cells.append(f"{y:.4g}" if y is not None else "-")
        lines.append("\t".join(cells))
    return "\n".join(lines)


def ascii_plot(series: Sequence[FigureSeries], *, width: int = 64, height: int = 16,
               title: str = "") -> str:
    """A tiny ASCII scatter/line plot for quick terminal inspection."""
    points = [(p.x, p.y) for s in series for p in s.points]
    if not points:
        return f"{title}\n(no data)"
    xs, ys = zip(*points)
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@"
    for si, s in enumerate(series):
        mark = markers[si % len(markers)]
        for p in s.points:
            col = int((p.x - xmin) / xspan * (width - 1))
            row = height - 1 - int((p.y - ymin) / yspan * (height - 1))
            grid[row][col] = mark
    legend = "  ".join(f"{markers[i % len(markers)]}={s.label}" for i, s in enumerate(series))
    lines = [title, f"y: [{ymin:.3g}, {ymax:.3g}]  x: [{xmin:.3g}, {xmax:.3g}]", legend]
    lines += ["|" + "".join(r) for r in grid]
    return "\n".join(lines)
