"""Benchmark workloads: full simulation and the incremental modifier sweeps.

All workloads take the circuit as *levels* (lists of gates, one list per net)
plus a :class:`~repro.bench.adapters.SimulatorFactory`, build a fresh circuit,
drive the simulator through the modifier/update sequence the paper describes,
and return a :class:`~repro.bench.metrics.WorkloadResult`.

Timing includes both the circuit modifiers and the simulation call of each
iteration, which is how the paper defines an incremental iteration
("a sequence of circuit modifiers followed by a simulation call", §IV.C).
Each iteration is timed by the adapter's telemetry histogram
(``adapter.iteration()``) rather than ad-hoc ``perf_counter`` pairs, so the
bench rows and runtime telemetry share one instrument.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..core.circuit import Circuit, GateHandle, NetHandle
from ..core.gates import Gate
from .adapters import SimulatorAdapter, SimulatorFactory
from .metrics import WorkloadResult

__all__ = [
    "full_simulation",
    "levelwise_incremental",
    "insertion_sweep",
    "removal_sweep",
    "mixed_sweep",
]

Levels = Sequence[Sequence[Gate]]


def _new_circuit(num_qubits: int) -> Circuit:
    return Circuit(num_qubits)


def _track_peak(adapter: SimulatorAdapter, peak: int) -> int:
    try:
        return max(peak, adapter.allocated_bytes())
    except Exception:  # pragma: no cover - defensive
        return peak


def _result(
    adapter: SimulatorAdapter, workload: str, circuit_name: str, peak: int
) -> WorkloadResult:
    """Build the result row from the adapter's iteration histogram.

    The per-iteration series and the total both come from the one
    ``bench.iteration_seconds`` instrument the ``adapter.iteration()``
    blocks fed, so the bench JSON and runtime telemetry agree by
    construction.
    """
    per_iter = adapter.iteration_seconds
    return WorkloadResult(
        simulator=adapter.name,
        workload=workload,
        circuit=circuit_name,
        total_seconds=adapter.total_iteration_seconds,
        per_iteration_seconds=per_iter,
        peak_allocated_bytes=peak,
        num_updates=len(per_iter),
    )


def full_simulation(
    num_qubits: int, levels: Levels, factory: SimulatorFactory, *, circuit_name: str = ""
) -> WorkloadResult:
    """Construct the whole circuit, then issue a single simulation call."""
    circuit = _new_circuit(num_qubits)
    adapter = factory.create(circuit)
    try:
        with adapter.iteration():
            for level in levels:
                net = circuit.insert_net()
                for gate in level:
                    circuit.insert_gate(gate, net)
            adapter.update_state()
        peak = _track_peak(adapter, 0)
        return _result(adapter, "full", circuit_name, peak)
    finally:
        adapter.close()


def levelwise_incremental(
    num_qubits: int, levels: Levels, factory: SimulatorFactory, *, circuit_name: str = ""
) -> WorkloadResult:
    """The paper's "inc" column: one simulation call per net, level by level."""
    circuit = _new_circuit(num_qubits)
    adapter = factory.create(circuit)
    peak = 0
    try:
        for level in levels:
            with adapter.iteration():
                net = circuit.insert_net()
                for gate in level:
                    circuit.insert_gate(gate, net)
                adapter.update_state()
            peak = _track_peak(adapter, peak)
        return _result(adapter, "levelwise", circuit_name, peak)
    finally:
        adapter.close()


def insertion_sweep(
    num_qubits: int,
    levels: Levels,
    factory: SimulatorFactory,
    *,
    levels_per_iteration: int = 2,
    seed: int = 1,
    circuit_name: str = "",
) -> WorkloadResult:
    """Fig. 14: random gate insertions until the circuit is fully constructed.

    All (empty) nets are created up front; each iteration picks a few random
    not-yet-populated levels, inserts all their gates, and calls update.
    """
    rng = random.Random(seed)
    circuit = _new_circuit(num_qubits)
    adapter = factory.create(circuit)
    peak = 0
    try:
        nets: List[NetHandle] = [circuit.insert_net() for _ in levels]
        pending = list(range(len(levels)))
        rng.shuffle(pending)
        while pending:
            chosen = [pending.pop() for _ in range(min(levels_per_iteration, len(pending)))]
            with adapter.iteration():
                for idx in chosen:
                    for gate in levels[idx]:
                        circuit.insert_gate(gate, nets[idx])
                adapter.update_state()
            peak = _track_peak(adapter, peak)
        return _result(adapter, "insertions", circuit_name, peak)
    finally:
        adapter.close()


def removal_sweep(
    num_qubits: int,
    levels: Levels,
    factory: SimulatorFactory,
    *,
    levels_per_iteration: int = 2,
    seed: int = 2,
    circuit_name: str = "",
) -> WorkloadResult:
    """Fig. 15: start from the complete circuit, randomly remove levels.

    Iteration 0 is the full simulation; every following iteration removes all
    gates of a few random still-populated levels and re-simulates, until the
    circuit is empty.
    """
    rng = random.Random(seed)
    circuit = _new_circuit(num_qubits)
    adapter = factory.create(circuit)
    peak = 0
    try:
        handles: Dict[int, List[GateHandle]] = {}
        with adapter.iteration():
            for idx, level in enumerate(levels):
                net = circuit.insert_net()
                handles[idx] = [circuit.insert_gate(g, net) for g in level]
            adapter.update_state()
        peak = _track_peak(adapter, peak)

        remaining = [i for i in range(len(levels)) if handles[i]]
        rng.shuffle(remaining)
        while remaining:
            chosen = [remaining.pop() for _ in range(min(levels_per_iteration, len(remaining)))]
            with adapter.iteration():
                for idx in chosen:
                    for h in handles[idx]:
                        circuit.remove_gate(h)
                    handles[idx] = []
                adapter.update_state()
            peak = _track_peak(adapter, peak)
        return _result(adapter, "removals", circuit_name, peak)
    finally:
        adapter.close()


def mixed_sweep(
    num_qubits: int,
    levels: Levels,
    factory: SimulatorFactory,
    *,
    iterations: int = 50,
    levels_per_iteration: int = 1,
    seed: int = 3,
    circuit_name: str = "",
) -> WorkloadResult:
    """Fig. 16: alternate random gate removals and insertions for N iterations.

    The circuit starts fully constructed; every iteration removes the gates of
    a few random populated levels and re-inserts the gates of a few random
    empty levels, then calls update.
    """
    rng = random.Random(seed)
    circuit = _new_circuit(num_qubits)
    adapter = factory.create(circuit)
    peak = 0
    try:
        nets: List[NetHandle] = []
        handles: Dict[int, List[GateHandle]] = {}
        # The construction update is deliberately untimed (the sweep
        # measures steady-state edit iterations), so it stays outside
        # the adapter's iteration instrument.
        for idx, level in enumerate(levels):
            net = circuit.insert_net()
            nets.append(net)
            handles[idx] = [circuit.insert_gate(g, net) for g in level]
        adapter.update_state()
        peak = _track_peak(adapter, peak)

        for _ in range(iterations):
            with adapter.iteration():
                populated = [i for i in range(len(levels)) if handles[i]]
                empty = [i for i in range(len(levels)) if not handles[i]]
                rng.shuffle(populated)
                rng.shuffle(empty)
                for idx in populated[:levels_per_iteration]:
                    for h in handles[idx]:
                        circuit.remove_gate(h)
                    handles[idx] = []
                for idx in empty[:levels_per_iteration]:
                    handles[idx] = [circuit.insert_gate(g, nets[idx]) for g in levels[idx]]
                adapter.update_state()
            peak = _track_peak(adapter, peak)
        return _result(adapter, "mixed", circuit_name, peak)
    finally:
        adapter.close()
