"""Benchmark workloads: full simulation and the incremental modifier sweeps.

All workloads take the circuit as *levels* (lists of gates, one list per net)
plus a :class:`~repro.bench.adapters.SimulatorFactory`, build a fresh circuit,
drive the simulator through the modifier/update sequence the paper describes,
and return a :class:`~repro.bench.metrics.WorkloadResult`.

Timing includes both the circuit modifiers and the simulation call of each
iteration, which is how the paper defines an incremental iteration
("a sequence of circuit modifiers followed by a simulation call", §IV.C).
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Sequence

from ..core.circuit import Circuit, GateHandle, NetHandle
from ..core.gates import Gate
from .adapters import SimulatorAdapter, SimulatorFactory
from .metrics import WorkloadResult

__all__ = [
    "full_simulation",
    "levelwise_incremental",
    "insertion_sweep",
    "removal_sweep",
    "mixed_sweep",
]

Levels = Sequence[Sequence[Gate]]


def _new_circuit(num_qubits: int) -> Circuit:
    return Circuit(num_qubits)


def _track_peak(adapter: SimulatorAdapter, peak: int) -> int:
    try:
        return max(peak, adapter.allocated_bytes())
    except Exception:  # pragma: no cover - defensive
        return peak


def full_simulation(
    num_qubits: int, levels: Levels, factory: SimulatorFactory, *, circuit_name: str = ""
) -> WorkloadResult:
    """Construct the whole circuit, then issue a single simulation call."""
    circuit = _new_circuit(num_qubits)
    adapter = factory.create(circuit)
    try:
        start = time.perf_counter()
        for level in levels:
            net = circuit.insert_net()
            for gate in level:
                circuit.insert_gate(gate, net)
        adapter.update_state()
        elapsed = time.perf_counter() - start
        peak = _track_peak(adapter, 0)
        return WorkloadResult(
            simulator=factory.name,
            workload="full",
            circuit=circuit_name,
            total_seconds=elapsed,
            per_iteration_seconds=[elapsed],
            peak_allocated_bytes=peak,
            num_updates=1,
        )
    finally:
        adapter.close()


def levelwise_incremental(
    num_qubits: int, levels: Levels, factory: SimulatorFactory, *, circuit_name: str = ""
) -> WorkloadResult:
    """The paper's "inc" column: one simulation call per net, level by level."""
    circuit = _new_circuit(num_qubits)
    adapter = factory.create(circuit)
    per_iter: List[float] = []
    peak = 0
    try:
        for level in levels:
            t0 = time.perf_counter()
            net = circuit.insert_net()
            for gate in level:
                circuit.insert_gate(gate, net)
            adapter.update_state()
            per_iter.append(time.perf_counter() - t0)
            peak = _track_peak(adapter, peak)
        return WorkloadResult(
            simulator=factory.name,
            workload="levelwise",
            circuit=circuit_name,
            total_seconds=sum(per_iter),
            per_iteration_seconds=per_iter,
            peak_allocated_bytes=peak,
            num_updates=len(per_iter),
        )
    finally:
        adapter.close()


def insertion_sweep(
    num_qubits: int,
    levels: Levels,
    factory: SimulatorFactory,
    *,
    levels_per_iteration: int = 2,
    seed: int = 1,
    circuit_name: str = "",
) -> WorkloadResult:
    """Fig. 14: random gate insertions until the circuit is fully constructed.

    All (empty) nets are created up front; each iteration picks a few random
    not-yet-populated levels, inserts all their gates, and calls update.
    """
    rng = random.Random(seed)
    circuit = _new_circuit(num_qubits)
    adapter = factory.create(circuit)
    per_iter: List[float] = []
    peak = 0
    try:
        nets: List[NetHandle] = [circuit.insert_net() for _ in levels]
        pending = list(range(len(levels)))
        rng.shuffle(pending)
        while pending:
            chosen = [pending.pop() for _ in range(min(levels_per_iteration, len(pending)))]
            t0 = time.perf_counter()
            for idx in chosen:
                for gate in levels[idx]:
                    circuit.insert_gate(gate, nets[idx])
            adapter.update_state()
            per_iter.append(time.perf_counter() - t0)
            peak = _track_peak(adapter, peak)
        return WorkloadResult(
            simulator=factory.name,
            workload="insertions",
            circuit=circuit_name,
            total_seconds=sum(per_iter),
            per_iteration_seconds=per_iter,
            peak_allocated_bytes=peak,
            num_updates=len(per_iter),
        )
    finally:
        adapter.close()


def removal_sweep(
    num_qubits: int,
    levels: Levels,
    factory: SimulatorFactory,
    *,
    levels_per_iteration: int = 2,
    seed: int = 2,
    circuit_name: str = "",
) -> WorkloadResult:
    """Fig. 15: start from the complete circuit, randomly remove levels.

    Iteration 0 is the full simulation; every following iteration removes all
    gates of a few random still-populated levels and re-simulates, until the
    circuit is empty.
    """
    rng = random.Random(seed)
    circuit = _new_circuit(num_qubits)
    adapter = factory.create(circuit)
    per_iter: List[float] = []
    peak = 0
    try:
        handles: Dict[int, List[GateHandle]] = {}
        t0 = time.perf_counter()
        for idx, level in enumerate(levels):
            net = circuit.insert_net()
            handles[idx] = [circuit.insert_gate(g, net) for g in level]
        adapter.update_state()
        per_iter.append(time.perf_counter() - t0)
        peak = _track_peak(adapter, peak)

        remaining = [i for i in range(len(levels)) if handles[i]]
        rng.shuffle(remaining)
        while remaining:
            chosen = [remaining.pop() for _ in range(min(levels_per_iteration, len(remaining)))]
            t0 = time.perf_counter()
            for idx in chosen:
                for h in handles[idx]:
                    circuit.remove_gate(h)
                handles[idx] = []
            adapter.update_state()
            per_iter.append(time.perf_counter() - t0)
            peak = _track_peak(adapter, peak)
        return WorkloadResult(
            simulator=factory.name,
            workload="removals",
            circuit=circuit_name,
            total_seconds=sum(per_iter),
            per_iteration_seconds=per_iter,
            peak_allocated_bytes=peak,
            num_updates=len(per_iter),
        )
    finally:
        adapter.close()


def mixed_sweep(
    num_qubits: int,
    levels: Levels,
    factory: SimulatorFactory,
    *,
    iterations: int = 50,
    levels_per_iteration: int = 1,
    seed: int = 3,
    circuit_name: str = "",
) -> WorkloadResult:
    """Fig. 16: alternate random gate removals and insertions for N iterations.

    The circuit starts fully constructed; every iteration removes the gates of
    a few random populated levels and re-inserts the gates of a few random
    empty levels, then calls update.
    """
    rng = random.Random(seed)
    circuit = _new_circuit(num_qubits)
    adapter = factory.create(circuit)
    per_iter: List[float] = []
    peak = 0
    try:
        nets: List[NetHandle] = []
        handles: Dict[int, List[GateHandle]] = {}
        for idx, level in enumerate(levels):
            net = circuit.insert_net()
            nets.append(net)
            handles[idx] = [circuit.insert_gate(g, net) for g in level]
        adapter.update_state()
        peak = _track_peak(adapter, peak)

        for _ in range(iterations):
            t0 = time.perf_counter()
            populated = [i for i in range(len(levels)) if handles[i]]
            empty = [i for i in range(len(levels)) if not handles[i]]
            rng.shuffle(populated)
            rng.shuffle(empty)
            for idx in populated[:levels_per_iteration]:
                for h in handles[idx]:
                    circuit.remove_gate(h)
                handles[idx] = []
            for idx in empty[:levels_per_iteration]:
                handles[idx] = [circuit.insert_gate(g, nets[idx]) for g in levels[idx]]
            adapter.update_state()
            per_iter.append(time.perf_counter() - t0)
            peak = _track_peak(adapter, peak)
        return WorkloadResult(
            simulator=factory.name,
            workload="mixed",
            circuit=circuit_name,
            total_seconds=sum(per_iter),
            per_iteration_seconds=per_iter,
            peak_allocated_bytes=peak,
            num_updates=len(per_iter),
        )
    finally:
        adapter.close()
