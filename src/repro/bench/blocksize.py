"""Figure 19: impact of the block size on full and incremental runtime.

Sweeps ``B = 2^k`` for qTask on one circuit (qft by default), running both a
full simulation and a mixed incremental workload at each block size.

Run directly::

    python -m repro.bench.blocksize --circuit qft --min-log 2 --max-log 12
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence, Tuple

from ..circuits import build_levels
from .adapters import qtask_factory
from .metrics import FigureSeries
from .report import ascii_plot, format_series_table
from .workloads import full_simulation, mixed_sweep

__all__ = ["figure19_blocksize", "main"]


def figure19_blocksize(
    circuit: str = "qft",
    *,
    log_block_sizes: Optional[Sequence[int]] = None,
    num_workers: Optional[int] = None,
    iterations: int = 20,
    num_qubits: Optional[int] = None,
) -> Tuple[FigureSeries, FigureSeries]:
    """(full, incremental) runtime series indexed by log2(block size)."""
    qubits, levels = build_levels(circuit, num_qubits=num_qubits)
    if log_block_sizes is None:
        log_block_sizes = list(range(1, min(qubits, 14) + 1))
    full_series = FigureSeries(label="full")
    inc_series = FigureSeries(label="incremental")
    for log_b in log_block_sizes:
        block = 1 << log_b
        factory = qtask_factory(block_size=block, num_workers=num_workers)
        full = full_simulation(qubits, levels, factory, circuit_name=circuit)
        factory = qtask_factory(block_size=block, num_workers=num_workers)
        inc = mixed_sweep(qubits, levels, factory, iterations=iterations,
                          circuit_name=circuit)
        full_series.add(log_b, full.total_seconds * 1e3)
        inc_series.add(log_b, inc.total_seconds)
    return full_series, inc_series


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--circuit", default="qft")
    parser.add_argument("--qubits", type=int, default=None)
    parser.add_argument("--min-log", type=int, default=1)
    parser.add_argument("--max-log", type=int, default=12)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--iterations", type=int, default=20)
    args = parser.parse_args(argv)

    full_series, inc_series = figure19_blocksize(
        args.circuit,
        log_block_sizes=range(args.min_log, args.max_log + 1),
        num_workers=args.workers,
        iterations=args.iterations,
        num_qubits=args.qubits,
    )
    print(format_series_table([full_series], "log2(B)", "full ms"))
    print()
    print(format_series_table([inc_series], "log2(B)", "incremental s"))
    print()
    print(ascii_plot([full_series], title=f"Fig 19 (full): {args.circuit}"))
    print(ascii_plot([inc_series], title=f"Fig 19 (incremental): {args.circuit}"))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
