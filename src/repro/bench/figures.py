"""Figures 14-16: incremental simulation under random circuit modifiers.

* Fig. 14 -- cumulative runtime of random *gate insertions* (qft, big_adder),
* Fig. 15 -- per-iteration runtime of random *gate removals*,
* Fig. 16 -- per-iteration runtime of mixed removals + insertions.

Run directly::

    python -m repro.bench.figures --figure 14 --circuit qft
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from ..circuits import build_levels
from .adapters import SimulatorFactory, qtask_factory, qulacs_like_factory
from .metrics import FigureSeries, WorkloadResult
from .report import ascii_plot, format_series_table
from .workloads import insertion_sweep, mixed_sweep, removal_sweep

__all__ = [
    "figure14_insertions",
    "figure15_removals",
    "figure16_mixed",
    "default_factories",
    "main",
]

#: The two circuits the paper uses for Figs. 14-18.
FIGURE_CIRCUITS = ("qft", "big_adder")


def default_factories(num_workers: Optional[int] = None,
                      block_size: int = 256) -> List[SimulatorFactory]:
    """qTask vs. Qulacs-like (the paper drops Qiskit after Table III)."""
    return [
        qtask_factory(block_size=block_size, num_workers=num_workers),
        qulacs_like_factory(num_workers=num_workers),
    ]


def _to_series(results: Sequence[WorkloadResult], *, cumulative: bool) -> List[FigureSeries]:
    series = []
    for res in results:
        s = FigureSeries(label=res.simulator)
        ys = res.cumulative_seconds if cumulative else res.per_iteration_seconds
        for i, y in enumerate(ys):
            s.add(float(i), y * 1e3)
        series.append(s)
    return series


def figure14_insertions(
    circuit: str = "qft",
    *,
    factories: Optional[Sequence[SimulatorFactory]] = None,
    levels_per_iteration: int = 2,
    num_qubits: Optional[int] = None,
    seed: int = 1,
) -> List[FigureSeries]:
    """Cumulative runtime over random-insertion iterations (Fig. 14)."""
    qubits, levels = build_levels(circuit, num_qubits=num_qubits)
    factories = list(factories or default_factories())
    results = [
        insertion_sweep(qubits, levels, f, levels_per_iteration=levels_per_iteration,
                        seed=seed, circuit_name=circuit)
        for f in factories
    ]
    return _to_series(results, cumulative=True)


def figure15_removals(
    circuit: str = "qft",
    *,
    factories: Optional[Sequence[SimulatorFactory]] = None,
    levels_per_iteration: int = 2,
    num_qubits: Optional[int] = None,
    seed: int = 2,
) -> List[FigureSeries]:
    """Per-iteration runtime over random-removal iterations (Fig. 15)."""
    qubits, levels = build_levels(circuit, num_qubits=num_qubits)
    factories = list(factories or default_factories())
    results = [
        removal_sweep(qubits, levels, f, levels_per_iteration=levels_per_iteration,
                      seed=seed, circuit_name=circuit)
        for f in factories
    ]
    return _to_series(results, cumulative=False)


def figure16_mixed(
    circuit: str = "qft",
    *,
    factories: Optional[Sequence[SimulatorFactory]] = None,
    iterations: int = 50,
    num_qubits: Optional[int] = None,
    seed: int = 3,
) -> List[FigureSeries]:
    """Per-iteration runtime of mixed removals + insertions (Fig. 16)."""
    qubits, levels = build_levels(circuit, num_qubits=num_qubits)
    factories = list(factories or default_factories())
    results = [
        mixed_sweep(qubits, levels, f, iterations=iterations, seed=seed,
                    circuit_name=circuit)
        for f in factories
    ]
    return _to_series(results, cumulative=False)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--figure", type=int, choices=[14, 15, 16], default=14)
    parser.add_argument("--circuit", default="qft")
    parser.add_argument("--qubits", type=int, default=None)
    parser.add_argument("--iterations", type=int, default=50)
    parser.add_argument("--workers", type=int, default=None)
    args = parser.parse_args(argv)

    factories = default_factories(num_workers=args.workers)
    if args.figure == 14:
        series = figure14_insertions(args.circuit, factories=factories,
                                     num_qubits=args.qubits)
        y_label, title = "cumulative ms", f"Fig 14: insertions ({args.circuit})"
    elif args.figure == 15:
        series = figure15_removals(args.circuit, factories=factories,
                                   num_qubits=args.qubits)
        y_label, title = "ms per iteration", f"Fig 15: removals ({args.circuit})"
    else:
        series = figure16_mixed(args.circuit, factories=factories,
                                iterations=args.iterations, num_qubits=args.qubits)
        y_label, title = "ms per iteration", f"Fig 16: mixed ({args.circuit})"
    print(format_series_table(series, "iteration", y_label))
    print()
    print(ascii_plot(series, title=title))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
