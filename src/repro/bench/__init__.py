"""Benchmark harness reproducing the paper's evaluation (§IV).

Submodules map one-to-one onto the paper's tables and figures:

* :mod:`repro.bench.table3`  -- Table III (full / incremental runtime + memory
  for the 20 QASMBench-family circuits, three simulators),
* :mod:`repro.bench.figures` -- Figs. 14/15/16 (random insertion, removal and
  mixed modifier sweeps),
* :mod:`repro.bench.scaling` -- Figs. 17/18 (runtime vs. number of cores),
* :mod:`repro.bench.blocksize` -- Fig. 19 (runtime vs. block size),
* :mod:`repro.bench.memory` -- §IV.F (copy-on-write memory ablation).

Each module exposes plain functions (used by the pytest-benchmark suites in
``benchmarks/``) and a ``main()`` so it can be run directly, e.g.::

    python -m repro.bench.table3 --scale medium --quick
"""

from .adapters import (
    SimulatorAdapter,
    SimulatorFactory,
    qiskit_like_factory,
    qtask_factory,
    qulacs_like_factory,
    standard_factories,
)
from .metrics import FigurePoint, FigureSeries, Table3Row, WorkloadResult
from .workloads import (
    full_simulation,
    insertion_sweep,
    levelwise_incremental,
    mixed_sweep,
    removal_sweep,
)

__all__ = [
    "SimulatorAdapter",
    "SimulatorFactory",
    "qtask_factory",
    "qulacs_like_factory",
    "qiskit_like_factory",
    "standard_factories",
    "WorkloadResult",
    "Table3Row",
    "FigurePoint",
    "FigureSeries",
    "full_simulation",
    "levelwise_incremental",
    "insertion_sweep",
    "removal_sweep",
    "mixed_sweep",
]
