"""Uniform adapters over qTask and the baseline simulators.

The workloads in :mod:`repro.bench.workloads` drive every simulator through
the same tiny interface -- attach to a circuit, ``update_state``, report
memory, close -- so a benchmark row differs between simulators only in which
factory produced the adapter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..baselines import QiskitLikeSimulator, QulacsLikeSimulator
from ..core.blocks import DEFAULT_BLOCK_SIZE
from ..core.circuit import Circuit, GateHandle
from ..core.simulator import QTaskSimulator
from ..telemetry import MetricsRegistry

__all__ = [
    "SimulatorAdapter",
    "SimulatorFactory",
    "qtask_factory",
    "qulacs_like_factory",
    "qiskit_like_factory",
    "standard_factories",
]


class SimulatorAdapter:
    """Minimal uniform surface over qTask and the baselines.

    Iteration timing is *not* hand-rolled ``perf_counter`` bookkeeping:
    each adapter owns a ``bench.iteration_seconds`` histogram -- registered
    in the wrapped simulator's own telemetry registry when it has one
    (qTask), in a standalone registry otherwise (the baselines) -- so the
    numbers a benchmark row reports and the numbers runtime telemetry
    exposes come from one instrument and cannot drift apart.
    """

    def __init__(
        self,
        name: str,
        impl,
        *,
        incremental: bool,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.name = name
        self.impl = impl
        self.incremental = incremental
        if registry is None:
            telemetry = getattr(impl, "telemetry", None)
            registry = (
                telemetry.metrics if telemetry is not None else MetricsRegistry()
            )
        self.metrics = registry
        self._iterations = registry.histogram(
            "bench.iteration_seconds",
            unit="s",
            help="benchmark workload iteration wall time",
            keep_samples=True,
        )

    # -- iteration timing (the workloads' single stopwatch) ------------------

    def iteration(self):
        """``with adapter.iteration(): ...`` times one workload iteration."""
        return self._iterations.time()

    @property
    def iteration_seconds(self) -> List[float]:
        """Per-iteration wall times observed so far, in order."""
        return list(self._iterations.samples or ())

    @property
    def total_iteration_seconds(self) -> float:
        return self._iterations.total

    def update_state(self):
        return self.impl.update_state()

    def state(self):
        return self.impl.state()

    def probabilities(self) -> np.ndarray:
        return self.impl.probabilities()

    def norm(self) -> float:
        return self.impl.norm()

    # -- observables & modifiers (uniform over qTask and the baselines) ------

    def expectation(self, observable) -> float:
        """``<psi|H|psi>`` of a Pauli observable on the current state."""
        return self.impl.expectation(observable)

    def sample(self, shots: int, *, seed: Optional[int] = None) -> np.ndarray:
        return self.impl.sample(shots, seed=seed)

    def counts(self, shots: int, *, seed: Optional[int] = None) -> Dict[str, int]:
        return self.impl.counts(shots, seed=seed)

    def marginal_probabilities(self, qubits: Sequence[int]) -> np.ndarray:
        return self.impl.marginal_probabilities(qubits)

    def update_gate(self, handle: GateHandle, *params: float) -> GateHandle:
        """Retune a gate of the shared circuit (every adapter sees the edit)."""
        return self.impl.circuit.update_gate(handle, *params)

    def allocated_bytes(self) -> int:
        if hasattr(self.impl, "memory_report"):
            return self.impl.memory_report().allocated_bytes
        return self.impl.allocated_bytes()

    def close(self) -> None:
        self.impl.close()


@dataclass(frozen=True)
class SimulatorFactory:
    """Creates a :class:`SimulatorAdapter` attached to a circuit."""

    name: str
    builder: Callable[[Circuit], SimulatorAdapter]

    def create(self, circuit: Circuit) -> SimulatorAdapter:
        return self.builder(circuit)


def qtask_factory(
    *,
    block_size: int = DEFAULT_BLOCK_SIZE,
    num_workers: Optional[int] = None,
    copy_on_write: bool = True,
    fusion: bool = False,
    max_fused_qubits: int = 4,
    block_directory: bool = True,
    observable_cache: bool = True,
    kernel_backend: Optional[str] = None,
    store_transport: Optional[object] = None,
    name: str = "qTask",
) -> SimulatorFactory:
    def build(circuit: Circuit) -> SimulatorAdapter:
        sim = QTaskSimulator(
            circuit,
            block_size=block_size,
            num_workers=num_workers,
            copy_on_write=copy_on_write,
            fusion=fusion,
            max_fused_qubits=max_fused_qubits,
            block_directory=block_directory,
            observable_cache=observable_cache,
            kernel_backend=kernel_backend,
            store_transport=store_transport,
        )
        return SimulatorAdapter(name, sim, incremental=True)

    return SimulatorFactory(name=name, builder=build)


def qulacs_like_factory(
    *, num_workers: Optional[int] = None, name: str = "Qulacs-like"
) -> SimulatorFactory:
    def build(circuit: Circuit) -> SimulatorAdapter:
        sim = QulacsLikeSimulator(circuit, num_workers=num_workers)
        return SimulatorAdapter(name, sim, incremental=False)

    return SimulatorFactory(name=name, builder=build)


def qiskit_like_factory(*, name: str = "Qiskit-like") -> SimulatorFactory:
    def build(circuit: Circuit) -> SimulatorAdapter:
        return SimulatorAdapter(name, QiskitLikeSimulator(circuit), incremental=False)

    return SimulatorFactory(name=name, builder=build)


def standard_factories(
    *,
    block_size: int = DEFAULT_BLOCK_SIZE,
    num_workers: Optional[int] = None,
) -> List[SimulatorFactory]:
    """The three simulators of Table III, in the paper's column order."""
    return [
        qulacs_like_factory(num_workers=num_workers),
        qiskit_like_factory(),
        qtask_factory(block_size=block_size, num_workers=num_workers),
    ]
