"""Result records produced by the benchmark workloads."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["WorkloadResult", "Table3Row", "FigurePoint", "FigureSeries"]


@dataclass
class WorkloadResult:
    """Timing/memory outcome of one workload run on one simulator."""

    simulator: str
    workload: str
    circuit: str
    total_seconds: float
    per_iteration_seconds: List[float] = field(default_factory=list)
    peak_allocated_bytes: int = 0
    num_updates: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def total_ms(self) -> float:
        return self.total_seconds * 1e3

    @property
    def cumulative_seconds(self) -> List[float]:
        out, acc = [], 0.0
        for t in self.per_iteration_seconds:
            acc += t
            out.append(acc)
        return out


@dataclass
class Table3Row:
    """One circuit row of Table III (three simulators x full/inc/mem)."""

    circuit: str
    description: str
    qubits: int
    gates: int
    cnots: int
    #: simulator name -> (full seconds, incremental seconds, peak bytes)
    results: Dict[str, Tuple[float, float, int]] = field(default_factory=dict)

    def speedup_over(self, baseline: str, target: str = "qTask") -> Tuple[float, float]:
        """(full, incremental) speedup of ``target`` over ``baseline``."""
        bf, bi, _ = self.results[baseline]
        tf, ti, _ = self.results[target]
        return (bf / tf if tf else float("nan"), bi / ti if ti else float("nan"))


@dataclass
class FigurePoint:
    """One (x, y) point of a figure series."""

    x: float
    y: float


@dataclass
class FigureSeries:
    """A named series of points (one curve of a paper figure)."""

    label: str
    points: List[FigurePoint] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.points.append(FigurePoint(x, y))

    def xs(self) -> List[float]:
        return [p.x for p in self.points]

    def ys(self) -> List[float]:
        return [p.y for p in self.points]
