"""§IV.F ablation: memory impact of the copy-on-write block optimization.

Runs the same level-by-level incremental workload with copy-on-write enabled
and disabled and reports the peak logical memory of qTask's per-stage stores.
The paper reports 20-50% savings from COW; the same comparison is produced
here for any catalog circuit.

Run directly::

    python -m repro.bench.memory --circuit qft
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..circuits import build_levels
from .adapters import qtask_factory
from .workloads import levelwise_incremental

__all__ = ["CowComparison", "cow_memory_comparison", "main"]


@dataclass
class CowComparison:
    """Peak memory with and without copy-on-write for one circuit."""

    circuit: str
    qubits: int
    with_cow_bytes: int
    without_cow_bytes: int
    with_cow_seconds: float
    without_cow_seconds: float

    @property
    def savings_fraction(self) -> float:
        if self.without_cow_bytes == 0:
            return 0.0
        return 1.0 - self.with_cow_bytes / self.without_cow_bytes


def cow_memory_comparison(
    circuit: str = "qft",
    *,
    block_size: int = 256,
    num_qubits: Optional[int] = None,
    max_levels: Optional[int] = None,
) -> CowComparison:
    qubits, levels = build_levels(circuit, num_qubits=num_qubits)
    if max_levels is not None:
        levels = levels[:max_levels]
    with_cow = levelwise_incremental(
        qubits, levels,
        qtask_factory(block_size=block_size, copy_on_write=True, name="qTask-cow"),
        circuit_name=circuit,
    )
    without_cow = levelwise_incremental(
        qubits, levels,
        qtask_factory(block_size=block_size, copy_on_write=False, name="qTask-nocow"),
        circuit_name=circuit,
    )
    return CowComparison(
        circuit=circuit,
        qubits=qubits,
        with_cow_bytes=with_cow.peak_allocated_bytes,
        without_cow_bytes=without_cow.peak_allocated_bytes,
        with_cow_seconds=with_cow.total_seconds,
        without_cow_seconds=without_cow.total_seconds,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--circuit", default="qft")
    parser.add_argument("--qubits", type=int, default=None)
    parser.add_argument("--block-size", type=int, default=256)
    parser.add_argument("--max-levels", type=int, default=None)
    args = parser.parse_args(argv)

    cmp = cow_memory_comparison(
        args.circuit,
        block_size=args.block_size,
        num_qubits=args.qubits,
        max_levels=args.max_levels,
    )
    print(f"circuit            : {cmp.circuit} ({cmp.qubits} qubits)")
    print(f"peak memory (COW)  : {cmp.with_cow_bytes / 2**20:.2f} MiB")
    print(f"peak memory (dense): {cmp.without_cow_bytes / 2**20:.2f} MiB")
    print(f"savings            : {cmp.savings_fraction * 100:.1f}%")
    print(f"runtime (COW)      : {cmp.with_cow_seconds * 1e3:.1f} ms")
    print(f"runtime (dense)    : {cmp.without_cow_seconds * 1e3:.1f} ms")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
