"""Table III: overall simulation performance on the benchmark catalog.

For every circuit in the catalog and every simulator (Qulacs-like,
Qiskit-like, qTask) this module measures

* **full** -- runtime of one simulation call issued after the whole circuit is
  constructed,
* **inc**  -- total runtime of level-by-level construction with one simulation
  call per net (the paper's incremental-simulation protocol, §IV.B),
* **mem**  -- peak logical memory of the simulator's state storage.

Run directly::

    python -m repro.bench.table3 --scale medium --quick
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Sequence

from ..circuits import CATALOG, build_levels
from .adapters import SimulatorFactory, standard_factories
from .metrics import Table3Row
from .report import format_table3
from .workloads import full_simulation, levelwise_incremental

__all__ = ["run_circuit_row", "run_table3", "main", "QUICK_SUBSET"]

#: Small representative subset used by the pytest benchmarks and --quick runs
#: (covers superposition-heavy, CNOT-heavy, shallow and deep circuits).
QUICK_SUBSET = ("bv", "adder", "ising", "qft", "qpe", "simons")


def run_circuit_row(
    name: str,
    factories: Sequence[SimulatorFactory],
    *,
    num_qubits: Optional[int] = None,
    max_levels: Optional[int] = None,
) -> Table3Row:
    """Measure full/incremental/memory for one circuit across simulators."""
    spec = CATALOG[name]
    qubits, levels = build_levels(name, num_qubits=num_qubits)
    if max_levels is not None:
        levels = levels[:max_levels]
    gates = sum(len(l) for l in levels)
    cnots = sum(1 for l in levels for g in l if g.name == "cx")
    row = Table3Row(
        circuit=name,
        description=spec.description,
        qubits=qubits,
        gates=gates,
        cnots=cnots,
    )
    for factory in factories:
        full = full_simulation(qubits, levels, factory, circuit_name=name)
        inc = levelwise_incremental(qubits, levels, factory, circuit_name=name)
        peak = max(full.peak_allocated_bytes, inc.peak_allocated_bytes)
        row.results[factory.name] = (full.total_seconds, inc.total_seconds, peak)
    return row


def run_table3(
    *,
    circuits: Optional[Sequence[str]] = None,
    scale: Optional[str] = None,
    num_workers: Optional[int] = None,
    block_size: int = 256,
    max_qubits: int = 20,
    max_levels: Optional[int] = None,
) -> List[Table3Row]:
    """Run the Table-III protocol over (a subset of) the catalog."""
    if circuits is None:
        circuits = [
            n
            for n, spec in CATALOG.items()
            if (scale is None or spec.scale == scale) and spec.qubits <= max_qubits
        ]
    factories = standard_factories(block_size=block_size, num_workers=num_workers)
    rows = []
    for name in circuits:
        rows.append(run_circuit_row(name, factories, max_levels=max_levels))
    return rows


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--circuits", nargs="*", default=None,
                        help="circuit names (default: catalog filtered by --scale)")
    parser.add_argument("--scale", choices=["medium", "large"], default=None)
    parser.add_argument("--quick", action="store_true",
                        help=f"run the quick subset {QUICK_SUBSET}")
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--block-size", type=int, default=256)
    parser.add_argument("--max-qubits", type=int, default=18)
    parser.add_argument("--max-levels", type=int, default=None)
    args = parser.parse_args(argv)

    circuits = args.circuits
    if args.quick and not circuits:
        circuits = list(QUICK_SUBSET)
    rows = run_table3(
        circuits=circuits,
        scale=args.scale,
        num_workers=args.workers,
        block_size=args.block_size,
        max_qubits=args.max_qubits,
        max_levels=args.max_levels,
    )
    sims = ["Qulacs-like", "Qiskit-like", "qTask"]
    print(format_table3(rows, sims))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
