"""Figures 17-18: multi-threading scalability of full and incremental runs.

Sweeps the number of worker threads for qTask and the Qulacs-like baseline on
the paper's two scaling circuits (qft, big_adder).

Run directly::

    python -m repro.bench.scaling --figure 17 --circuit qft --max-workers 8
"""

from __future__ import annotations

import argparse
import os
from typing import List, Optional, Sequence

from ..circuits import build_levels
from .adapters import qtask_factory, qulacs_like_factory
from .metrics import FigureSeries
from .report import ascii_plot, format_series_table
from .workloads import full_simulation, mixed_sweep

__all__ = ["figure17_full_scaling", "figure18_incremental_scaling", "main"]


def _worker_counts(max_workers: Optional[int]) -> List[int]:
    top = max_workers or (os.cpu_count() or 4)
    counts = [1]
    w = 2
    while w < top:
        counts.append(w)
        w *= 2
    if counts[-1] != top:
        counts.append(top)
    return counts


def figure17_full_scaling(
    circuit: str = "qft",
    *,
    max_workers: Optional[int] = None,
    block_size: int = 256,
    num_qubits: Optional[int] = None,
) -> List[FigureSeries]:
    """Full-simulation runtime (ms) vs. number of cores (Fig. 17)."""
    qubits, levels = build_levels(circuit, num_qubits=num_qubits)
    qtask = FigureSeries(label="qTask")
    qulacs = FigureSeries(label="Qulacs-like")
    for workers in _worker_counts(max_workers):
        r1 = full_simulation(
            qubits, levels,
            qtask_factory(block_size=block_size, num_workers=workers),
            circuit_name=circuit,
        )
        r2 = full_simulation(
            qubits, levels, qulacs_like_factory(num_workers=workers), circuit_name=circuit
        )
        qtask.add(workers, r1.total_seconds * 1e3)
        qulacs.add(workers, r2.total_seconds * 1e3)
    return [qtask, qulacs]


def figure18_incremental_scaling(
    circuit: str = "qft",
    *,
    max_workers: Optional[int] = None,
    block_size: int = 256,
    iterations: int = 50,
    num_qubits: Optional[int] = None,
) -> List[FigureSeries]:
    """Incremental (mixed-modifier) runtime vs. number of cores (Fig. 18)."""
    qubits, levels = build_levels(circuit, num_qubits=num_qubits)
    qtask = FigureSeries(label="qTask")
    qulacs = FigureSeries(label="Qulacs-like")
    for workers in _worker_counts(max_workers):
        r1 = mixed_sweep(
            qubits, levels,
            qtask_factory(block_size=block_size, num_workers=workers),
            iterations=iterations, circuit_name=circuit,
        )
        r2 = mixed_sweep(
            qubits, levels, qulacs_like_factory(num_workers=workers),
            iterations=iterations, circuit_name=circuit,
        )
        qtask.add(workers, r1.total_seconds)
        qulacs.add(workers, r2.total_seconds)
    return [qtask, qulacs]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--figure", type=int, choices=[17, 18], default=17)
    parser.add_argument("--circuit", default="qft")
    parser.add_argument("--qubits", type=int, default=None)
    parser.add_argument("--max-workers", type=int, default=None)
    parser.add_argument("--iterations", type=int, default=20)
    args = parser.parse_args(argv)

    if args.figure == 17:
        series = figure17_full_scaling(args.circuit, max_workers=args.max_workers,
                                       num_qubits=args.qubits)
        y_label = "full-simulation ms"
    else:
        series = figure18_incremental_scaling(
            args.circuit, max_workers=args.max_workers, iterations=args.iterations,
            num_qubits=args.qubits,
        )
        y_label = "incremental seconds (total)"
    print(format_series_table(series, "cores", y_label))
    print()
    print(ascii_plot(series, title=f"Fig {args.figure}: {args.circuit}"))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
