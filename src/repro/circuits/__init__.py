"""Circuit generators for the QASMBench-family workloads of the evaluation.

QASMBench itself is a collection of OpenQASM files that is not bundled here;
these generators synthesize circuits of the same *families* -- same algorithm,
same qubit count, comparable gate count and gate mix -- which is what drives
the partitioning and incrementality behaviour the paper measures (see
DESIGN.md, "Substitutions").  Real QASMBench files can still be loaded through
:mod:`repro.qasm` when available.

The catalog (:mod:`repro.circuits.catalog`) maps the 20 benchmark names of
Table III to generator invocations.
"""

from .blocksets import (
    controlled_phase_ladder,
    cuccaro_adder,
    ghz_levels,
    inverse_qft_gates,
    qft_gates,
    toffoli_gates,
)
from .algorithms import (
    bernstein_vazirani,
    counterfeit_coin,
    grover_sat,
    phase_estimation,
    quantum_fourier_transform,
    ripple_adder,
    shor_error_correction,
    shor_factor_21,
    simons_algorithm,
    multiplier,
)
from .variational import (
    bb84,
    deep_neural_network,
    ising_model,
    qaoa_maxcut,
    vqe_uccsd,
)
from .catalog import (
    CATALOG,
    BenchmarkSpec,
    benchmark_names,
    build_benchmark,
    build_levels,
    get_benchmark,
)

__all__ = [
    "controlled_phase_ladder",
    "cuccaro_adder",
    "ghz_levels",
    "inverse_qft_gates",
    "qft_gates",
    "toffoli_gates",
    "bernstein_vazirani",
    "counterfeit_coin",
    "grover_sat",
    "phase_estimation",
    "quantum_fourier_transform",
    "ripple_adder",
    "shor_error_correction",
    "shor_factor_21",
    "simons_algorithm",
    "multiplier",
    "bb84",
    "deep_neural_network",
    "ising_model",
    "qaoa_maxcut",
    "vqe_uccsd",
    "CATALOG",
    "BenchmarkSpec",
    "benchmark_names",
    "build_benchmark",
    "build_levels",
    "get_benchmark",
]
