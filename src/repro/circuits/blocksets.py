"""Reusable circuit building blocks (QFT, adders, Toffoli networks, GHZ).

All helpers return flat lists of :class:`~repro.core.gates.Gate`; callers
levelize them into nets with :func:`repro.qasm.levelize`.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

from ..core.gates import Gate

__all__ = [
    "controlled_phase",
    "qft_gates",
    "inverse_qft_gates",
    "controlled_phase_ladder",
    "toffoli_gates",
    "cuccaro_adder",
    "ghz_levels",
]


def controlled_phase(control: int, target: int, angle: float,
                     *, decompose: bool = False) -> List[Gate]:
    """A controlled-phase gate, optionally compiled to CX + P (qelib1 cu1)."""
    if not decompose:
        return [Gate("cp", (control, target), (angle,))]
    return [
        Gate("p", (control,), (angle / 2,)),
        Gate("cx", (control, target)),
        Gate("p", (target,), (-angle / 2,)),
        Gate("cx", (control, target)),
        Gate("p", (target,), (angle / 2,)),
    ]


def qft_gates(qubits: Sequence[int], *, do_swaps: bool = True,
              decompose_cp: bool = False) -> List[Gate]:
    """The standard quantum Fourier transform on ``qubits``.

    ``decompose_cp=True`` compiles the controlled-phase gates down to
    CX + P, matching how QASMBench counts CNOTs in its qft circuits.
    """
    qubits = list(qubits)
    n = len(qubits)
    gates: List[Gate] = []
    for i in range(n - 1, -1, -1):
        gates.append(Gate("h", (qubits[i],)))
        for j in range(i - 1, -1, -1):
            angle = math.pi / (2 ** (i - j))
            gates.extend(controlled_phase(qubits[j], qubits[i], angle,
                                          decompose=decompose_cp))
    if do_swaps:
        for k in range(n // 2):
            gates.append(Gate("swap", (qubits[k], qubits[n - 1 - k])))
    return gates


def inverse_qft_gates(qubits: Sequence[int], *, do_swaps: bool = True,
                      decompose_cp: bool = False) -> List[Gate]:
    """Inverse QFT (the adjoint of :func:`qft_gates`)."""
    gates = qft_gates(qubits, do_swaps=do_swaps, decompose_cp=decompose_cp)
    inverse: List[Gate] = []
    for g in reversed(gates):
        if g.name in ("cp", "p", "rz"):
            inverse.append(Gate(g.name, g.qubits, (-g.params[0],)))
        elif g.name in ("h", "swap", "cx"):
            inverse.append(g)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unexpected gate {g} in QFT")
    return inverse


def controlled_phase_ladder(control: int, targets: Sequence[int], base_angle: float) -> List[Gate]:
    """CP gates from one control to many targets with halving angles."""
    gates = []
    angle = base_angle
    for t in targets:
        gates.append(Gate("cp", (control, t), (angle,)))
        angle /= 2.0
    return gates


def toffoli_gates(control1: int, control2: int, target: int, *, decompose: bool = False) -> List[Gate]:
    """A Toffoli, either as one CCX gate or decomposed into Table-I gates."""
    if not decompose:
        return [Gate("ccx", (control1, control2, target))]
    a, b, c = control1, control2, target
    return [
        Gate("h", (c,)),
        Gate("cx", (b, c)),
        Gate("tdg", (c,)),
        Gate("cx", (a, c)),
        Gate("t", (c,)),
        Gate("cx", (b, c)),
        Gate("tdg", (c,)),
        Gate("cx", (a, c)),
        Gate("t", (b,)),
        Gate("t", (c,)),
        Gate("h", (c,)),
        Gate("cx", (a, b)),
        Gate("t", (a,)),
        Gate("tdg", (b,)),
        Gate("cx", (a, b)),
    ]


def cuccaro_adder(a_qubits: Sequence[int], b_qubits: Sequence[int],
                  carry_in: int, carry_out: int, *, decompose_toffoli: bool = False) -> List[Gate]:
    """Cuccaro ripple-carry adder: ``b <- a + b`` with explicit carries.

    ``a_qubits`` and ``b_qubits`` must have equal length (low bit first).
    """
    if len(a_qubits) != len(b_qubits):
        raise ValueError("cuccaro_adder needs equally sized registers")
    gates: List[Gate] = []

    def maj(x: int, y: int, z: int) -> None:
        gates.append(Gate("cx", (z, y)))
        gates.append(Gate("cx", (z, x)))
        gates.extend(toffoli_gates(x, y, z, decompose=decompose_toffoli))

    def uma(x: int, y: int, z: int) -> None:
        gates.extend(toffoli_gates(x, y, z, decompose=decompose_toffoli))
        gates.append(Gate("cx", (z, x)))
        gates.append(Gate("cx", (x, y)))

    n = len(a_qubits)
    maj(carry_in, b_qubits[0], a_qubits[0])
    for i in range(1, n):
        maj(a_qubits[i - 1], b_qubits[i], a_qubits[i])
    gates.append(Gate("cx", (a_qubits[n - 1], carry_out)))
    for i in range(n - 1, 0, -1):
        uma(a_qubits[i - 1], b_qubits[i], a_qubits[i])
    uma(carry_in, b_qubits[0], a_qubits[0])
    return gates


def ghz_levels(num_qubits: int) -> List[List[Gate]]:
    """A GHZ state preparation as explicit levels (H then a CX chain)."""
    levels: List[List[Gate]] = [[Gate("h", (num_qubits - 1,))]]
    for q in range(num_qubits - 1, 0, -1):
        levels.append([Gate("cx", (q, q - 1))])
    return levels
