"""Variational / NISQ-style workload generators (dnn, ising, qaoa, vqe, bb84).

These families dominate QASMBench's medium-scale set: layered ansatz circuits
mixing single-qubit rotations with CX entanglers, Trotterized Ising dynamics,
and protocol circuits such as BB84.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence

from ..core.gates import Gate

__all__ = [
    "deep_neural_network",
    "ising_model",
    "qaoa_maxcut",
    "vqe_uccsd",
    "bb84",
]


def _ring_edges(num_qubits: int) -> List[tuple]:
    return [(q, (q + 1) % num_qubits) for q in range(num_qubits)]


def deep_neural_network(num_qubits: int, *, layers: int = 16, seed: int = 29) -> List[Gate]:
    """Quantum deep neural network (the ``dnn`` family).

    Each layer applies parameterised RY/RZ "neurons" to every qubit followed
    by a CX entangling ladder, the structure of QASMBench's dnn circuit.
    """
    rng = random.Random(seed)
    gates: List[Gate] = []
    for _ in range(layers):
        for q in range(num_qubits):
            gates.append(Gate("ry", (q,), (rng.uniform(0, 2 * math.pi),)))
            gates.append(Gate("rz", (q,), (rng.uniform(0, 2 * math.pi),)))
        for q in range(num_qubits - 1):
            gates.append(Gate("cx", (q, q + 1)))
        for q in range(num_qubits):
            gates.append(Gate("ry", (q,), (rng.uniform(0, 2 * math.pi),)))
    return gates


def ising_model(num_qubits: int, *, steps: int = 10, dt: float = 0.1,
                coupling: float = 1.0, field: float = 0.8) -> List[Gate]:
    """Trotterized transverse-field Ising dynamics (the ``ising`` family).

    Each Trotter step applies ZZ interactions on nearest neighbours (compiled
    as CX-RZ-CX) and an RX transverse-field layer.
    """
    gates: List[Gate] = []
    zz_angle = 2.0 * coupling * dt
    x_angle = 2.0 * field * dt
    for _ in range(steps):
        for q in range(0, num_qubits - 1, 2):
            gates.append(Gate("cx", (q, q + 1)))
            gates.append(Gate("rz", (q + 1,), (zz_angle,)))
            gates.append(Gate("cx", (q, q + 1)))
        for q in range(1, num_qubits - 1, 2):
            gates.append(Gate("cx", (q, q + 1)))
            gates.append(Gate("rz", (q + 1,), (zz_angle,)))
            gates.append(Gate("cx", (q, q + 1)))
        for q in range(num_qubits):
            gates.append(Gate("rx", (q,), (x_angle,)))
    return gates


def qaoa_maxcut(num_qubits: int, *, rounds: int = 3, seed: int = 31) -> List[Gate]:
    """QAOA for MaxCut on a ring graph (the ``qaoa`` family)."""
    rng = random.Random(seed)
    gates: List[Gate] = [Gate("h", (q,)) for q in range(num_qubits)]
    for _ in range(rounds):
        gamma = rng.uniform(0, math.pi)
        beta = rng.uniform(0, math.pi)
        for a, b in _ring_edges(num_qubits):
            gates.append(Gate("cx", (a, b)))
            gates.append(Gate("rz", (b,), (2 * gamma,)))
            gates.append(Gate("cx", (a, b)))
        for q in range(num_qubits):
            gates.append(Gate("rx", (q,), (2 * beta,)))
    return gates


def vqe_uccsd(num_qubits: int, *, excitations: Optional[int] = None,
              seed: int = 37) -> List[Gate]:
    """UCCSD-style VQE ansatz (the ``vqe_uccsd`` family).

    Each fermionic excitation term is compiled the standard way: basis changes
    (H or RX(pi/2)) on the involved qubits, a CX ladder, an RZ carrying the
    variational parameter, the reversed ladder, and the inverse basis change.
    This yields the very deep, CNOT-heavy circuits of the QASMBench family
    (~10k gates at 8 qubits with the default excitation count).
    """
    rng = random.Random(seed)
    if excitations is None:
        # doubles over all qubit quadruples, capped to approximate the
        # QASMBench gate count at 8 qubits
        excitations = 170
    gates: List[Gate] = []
    # reference state
    for q in range(num_qubits // 2):
        gates.append(Gate("x", (q,)))
    for _ in range(excitations):
        size = rng.choice((2, 4))
        qubits = sorted(rng.sample(range(num_qubits), size))
        theta = rng.uniform(0, 2 * math.pi)
        bases = [rng.choice(("h", "rxp")) for _ in qubits]
        fwd: List[Gate] = []
        for q, b in zip(qubits, bases):
            if b == "h":
                fwd.append(Gate("h", (q,)))
            else:
                fwd.append(Gate("rx", (q,), (math.pi / 2,)))
        ladder = [Gate("cx", (qubits[i], qubits[i + 1])) for i in range(len(qubits) - 1)]
        gates.extend(fwd)
        gates.extend(ladder)
        gates.append(Gate("rz", (qubits[-1],), (theta,)))
        gates.extend(reversed(ladder))
        for q, b in zip(qubits, bases):
            if b == "h":
                gates.append(Gate("h", (q,)))
            else:
                gates.append(Gate("rx", (q,), (-math.pi / 2,)))
    return gates


def bb84(num_qubits: int, *, seed: int = 41) -> List[Gate]:
    """BB84 quantum key distribution (the ``bb84`` family).

    Alice encodes random bits in random bases (X then optional H); Bob
    measures in random bases (optional H).  No two-qubit gates, matching the
    QASMBench circuit (27 gates, 0 CNOTs at 8 qubits).
    """
    rng = random.Random(seed)
    gates: List[Gate] = []
    for q in range(num_qubits):
        if rng.random() < 0.5:
            gates.append(Gate("x", (q,)))
        if rng.random() < 0.5:
            gates.append(Gate("h", (q,)))
        if rng.random() < 0.5:
            gates.append(Gate("h", (q,)))
        gates.append(Gate("id", (q,)))
    return gates
