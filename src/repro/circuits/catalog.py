"""The benchmark catalog: Table III circuit names -> generator invocations.

Each entry records the circuit family, its qubit count (matching Table III of
the paper) and the generator call that synthesizes a circuit of comparable
size and gate mix.  ``build_benchmark(name)`` returns a levelized
:class:`~repro.core.circuit.Circuit` ready for any of the simulators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.circuit import Circuit
from ..core.gates import Gate
from ..qasm.levelize import levelize, levels_to_circuit
from . import algorithms as alg
from . import variational as var

__all__ = [
    "BenchmarkSpec",
    "CATALOG",
    "benchmark_names",
    "get_benchmark",
    "build_levels",
    "build_benchmark",
]


@dataclass(frozen=True)
class BenchmarkSpec:
    """One row of the paper's Table III."""

    name: str
    description: str
    qubits: int
    generator: Callable[..., List[Gate]]
    kwargs: Tuple[Tuple[str, object], ...] = ()
    #: gate / CNOT counts reported by the paper (for reference in reports)
    paper_gates: Optional[int] = None
    paper_cnots: Optional[int] = None
    scale: str = "medium"

    def gates(self) -> List[Gate]:
        return self.generator(self.qubits, **dict(self.kwargs))

    def levels(self) -> List[List[Gate]]:
        return levelize(self.gates())

    def circuit(self) -> Circuit:
        return levels_to_circuit(self.qubits, self.levels())


def _spec(name, desc, qubits, generator, paper_gates, paper_cnots, scale="medium", **kwargs):
    return BenchmarkSpec(
        name=name,
        description=desc,
        qubits=qubits,
        generator=generator,
        kwargs=tuple(sorted(kwargs.items())),
        paper_gates=paper_gates,
        paper_cnots=paper_cnots,
        scale=scale,
    )


#: The 20 circuits of Table III.
CATALOG: Dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        _spec("dnn", "Quantum deep neural network", 8, var.deep_neural_network,
              1200, 384, layers=38),
        _spec("adder", "Quantum ripple adder", 10, alg.ripple_adder, 142, 65,
              decompose_toffoli=True),
        _spec("bb84", "Quantum key distribution", 8, var.bb84, 27, 0),
        _spec("bv", "Bernstein-Vazirani algorithm", 14, alg.bernstein_vazirani, 41, 13),
        _spec("ising", "Ising model simulation", 10, var.ising_model, 480, 90, steps=10),
        _spec("multiplier", "Quantum multiplication", 15, alg.multiplier, 574, 246),
        _spec("multiplier_35", "3x5 matrix multiplication", 13, alg.multiplier, 98, 40,
              seed=35),
        _spec("qaoa", "Approximation optimization", 6, var.qaoa_maxcut, 270, 54,
              rounds=9),
        _spec("qf21", "Quantum factorization of 21", 15, alg.shor_factor_21, 311, 115),
        _spec("qft", "Quantum Fourier transform", 15, alg.quantum_fourier_transform,
              540, 210, repetitions=1),
        _spec("qpe", "Quantum phase estimation", 9, alg.phase_estimation, 123, 43),
        _spec("sat", "Boolean satisfiability solver", 11, alg.grover_sat, 679, 252,
              iterations=4),
        _spec("seca", "Shor's error correction", 11, alg.shor_error_correction, 216, 84,
              rounds=24),
        _spec("simons", "Simon's algorithm", 6, alg.simons_algorithm, 44, 14),
        _spec("vqe_uccsd", "Variational quantum eigensolver", 8, var.vqe_uccsd,
              10808, 5488, excitations=980),
        _spec("big_adder", "Quantum ripple adder", 18, alg.ripple_adder, 284, 130,
              scale="large", decompose_toffoli=True),
        _spec("big_bv", "Bernstein-Vazirani algorithm", 19, alg.bernstein_vazirani,
              56, 18, scale="large"),
        _spec("big_cc", "Counterfeit coin finding", 18, alg.counterfeit_coin, 34, 17,
              scale="large"),
        _spec("big_ising", "Ising model simulation", 26, var.ising_model, 280, 50,
              scale="large", steps=2),
        _spec("big_qft", "Quantum Fourier transform", 20, alg.quantum_fourier_transform,
              970, 380, scale="large", repetitions=1),
    ]
}


def benchmark_names(scale: Optional[str] = None) -> List[str]:
    """Benchmark names, optionally filtered by ``"medium"`` / ``"large"``."""
    return [
        name for name, spec in CATALOG.items() if scale is None or spec.scale == scale
    ]


def get_benchmark(name: str) -> BenchmarkSpec:
    try:
        return CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {', '.join(sorted(CATALOG))}"
        ) from None


def build_levels(name: str, *, num_qubits: Optional[int] = None) -> Tuple[int, List[List[Gate]]]:
    """Gate levels of a benchmark, optionally re-sized to ``num_qubits``."""
    spec = get_benchmark(name)
    qubits = num_qubits or spec.qubits
    gates = spec.generator(qubits, **dict(spec.kwargs))
    return qubits, levelize(gates)


def build_benchmark(name: str, *, num_qubits: Optional[int] = None) -> Circuit:
    """A levelized circuit for one of the Table-III benchmarks."""
    qubits, levels = build_levels(name, num_qubits=num_qubits)
    return levels_to_circuit(qubits, levels)
