"""Textbook-algorithm workload generators (QFT, BV, adders, Grover, ...).

Each generator returns a flat gate list; the catalog levelizes it into nets.
Random choices are driven by an explicit seed so every benchmark circuit is
reproducible.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence

from ..core.gates import Gate
from .blocksets import cuccaro_adder, inverse_qft_gates, qft_gates, toffoli_gates

__all__ = [
    "quantum_fourier_transform",
    "bernstein_vazirani",
    "ripple_adder",
    "multiplier",
    "phase_estimation",
    "simons_algorithm",
    "grover_sat",
    "counterfeit_coin",
    "shor_factor_21",
    "shor_error_correction",
]


def quantum_fourier_transform(num_qubits: int, *, repetitions: int = 1,
                              prepare: bool = True,
                              decompose_cp: bool = True) -> List[Gate]:
    """QFT benchmark: optional input preparation followed by QFT rounds."""
    gates: List[Gate] = []
    if prepare:
        for q in range(num_qubits):
            gates.append(Gate("h", (q,)))
            gates.append(Gate("t", (q,)))
    for _ in range(repetitions):
        gates.extend(qft_gates(range(num_qubits), decompose_cp=decompose_cp))
    return gates


def bernstein_vazirani(num_qubits: int, secret: Optional[int] = None,
                       *, seed: int = 7) -> List[Gate]:
    """Bernstein--Vazirani with an ``num_qubits - 1`` bit secret string."""
    data = num_qubits - 1
    ancilla = num_qubits - 1
    if secret is None:
        # QASMBench's bv uses an all-ones secret: every data qubit gets a CX.
        secret = (1 << data) - 1
    gates: List[Gate] = [Gate("x", (ancilla,)), Gate("h", (ancilla,))]
    gates.extend(Gate("h", (q,)) for q in range(data))
    for q in range(data):
        if (secret >> q) & 1:
            gates.append(Gate("cx", (q, ancilla)))
    gates.extend(Gate("h", (q,)) for q in range(data))
    return gates


def ripple_adder(num_qubits: int, *, decompose_toffoli: bool = False,
                 seed: int = 11) -> List[Gate]:
    """Cuccaro ripple-carry adder on ``(num_qubits - 2) / 2``-bit operands.

    Layout (low to high): carry-in, a register, b register, carry-out.
    Random X gates prepare the two operands so the adder has work to do.
    """
    if num_qubits < 4:
        raise ValueError("ripple_adder needs at least 4 qubits")
    bits = (num_qubits - 2) // 2
    carry_in = 0
    a = list(range(1, 1 + bits))
    b = list(range(1 + bits, 1 + 2 * bits))
    carry_out = 1 + 2 * bits
    rng = random.Random(seed)
    gates: List[Gate] = []
    for q in a + b:
        if rng.random() < 0.5:
            gates.append(Gate("x", (q,)))
    gates.extend(cuccaro_adder(a, b, carry_in, carry_out,
                               decompose_toffoli=decompose_toffoli))
    return gates


def multiplier(num_qubits: int, *, seed: int = 13,
               decompose_toffoli: bool = True) -> List[Gate]:
    """Quantum multiplication via repeated controlled additions.

    Splits the register into two small operands and an accumulator and runs a
    shift-and-add multiplier built from Toffoli/CX networks, the dominant gate
    mix of QASMBench's ``multiplier`` circuits.
    """
    if num_qubits < 6:
        raise ValueError("multiplier needs at least 6 qubits")
    bits = max(2, num_qubits // 3)
    x = list(range(0, bits))
    y = list(range(bits, 2 * bits))
    acc = list(range(2 * bits, num_qubits))
    rng = random.Random(seed)
    gates: List[Gate] = []
    for q in x + y:
        if rng.random() < 0.5:
            gates.append(Gate("x", (q,)))
    for i, xq in enumerate(x):
        for j, yq in enumerate(y):
            k = i + j
            if k < len(acc):
                gates.extend(toffoli_gates(xq, yq, acc[k], decompose=decompose_toffoli))
                # ripple the carry with controlled-controlled chains
                for c in range(k + 1, len(acc)):
                    gates.extend(
                        toffoli_gates(acc[c - 1], yq, acc[c], decompose=decompose_toffoli)
                    )
                    gates.append(Gate("cx", (xq, acc[c - 1])))
    return gates


def phase_estimation(num_qubits: int, *, phase: float = 0.3125) -> List[Gate]:
    """Quantum phase estimation of a Z-rotation eigenphase.

    The last qubit carries the eigenstate; the remaining qubits form the
    counting register read out through an inverse QFT.
    """
    if num_qubits < 2:
        raise ValueError("phase_estimation needs at least 2 qubits")
    counting = list(range(num_qubits - 1))
    target = num_qubits - 1
    gates: List[Gate] = [Gate("x", (target,))]
    gates.extend(Gate("h", (q,)) for q in counting)
    for k, q in enumerate(counting):
        angle = 2.0 * math.pi * phase * (2**k)
        gates.append(Gate("cp", (q, target), (angle,)))
    gates.extend(inverse_qft_gates(counting, decompose_cp=True))
    return gates


def simons_algorithm(num_qubits: int, *, secret: Optional[int] = None,
                     seed: int = 5) -> List[Gate]:
    """Simon's algorithm on ``num_qubits // 2`` input qubits."""
    half = num_qubits // 2
    if secret is None:
        secret = random.Random(seed).getrandbits(half) | 1
    inputs = list(range(half))
    outputs = list(range(half, 2 * half))
    gates: List[Gate] = [Gate("h", (q,)) for q in inputs]
    # Oracle: copy input to output, then XOR the secret conditioned on input0.
    for i, o in zip(inputs, outputs):
        gates.append(Gate("cx", (i, o)))
    for j in range(half):
        if (secret >> j) & 1:
            gates.append(Gate("cx", (inputs[0], outputs[j])))
    gates.extend(Gate("h", (q,)) for q in inputs)
    return gates


def _multi_controlled_z(controls: Sequence[int], target: int, ancillas: Sequence[int]) -> List[Gate]:
    """Multi-controlled Z via a CCX ladder over ancilla qubits."""
    gates: List[Gate] = []
    controls = list(controls)
    if not controls:
        return [Gate("z", (target,))]
    if len(controls) == 1:
        return [Gate("cz", (controls[0], target))]
    if len(controls) == 2:
        return (
            toffoli_gates(controls[0], controls[1], target)[:0]
            + [Gate("h", (target,))]
            + toffoli_gates(controls[0], controls[1], target)
            + [Gate("h", (target,))]
        )
    if len(ancillas) < len(controls) - 2:
        # fall back: chain of CZ (approximate oracle structure, same gate mix)
        return [Gate("cz", (c, target)) for c in controls]
    ladder: List[Gate] = []
    ladder.extend(toffoli_gates(controls[0], controls[1], ancillas[0], decompose=True))
    for i in range(2, len(controls) - 1):
        ladder.extend(
            toffoli_gates(controls[i], ancillas[i - 2], ancillas[i - 1], decompose=True)
        )
    gates.extend(ladder)
    gates.append(Gate("h", (target,)))
    gates.extend(
        toffoli_gates(controls[-1], ancillas[len(controls) - 3], target, decompose=True)
    )
    gates.append(Gate("h", (target,)))
    gates.extend(reversed(ladder))
    return gates


def grover_sat(num_qubits: int, *, iterations: int = 2, seed: int = 3) -> List[Gate]:
    """Grover search for a random satisfying assignment (the ``sat`` family).

    The oracle marks one random basis state of the search register with a
    multi-controlled Z implemented through a Toffoli ladder over ancillas.
    """
    search = max(3, (2 * num_qubits) // 3)
    data = list(range(search))
    ancillas = list(range(search, num_qubits))
    rng = random.Random(seed)
    marked = rng.getrandbits(search)
    gates: List[Gate] = [Gate("h", (q,)) for q in data]
    for _ in range(iterations):
        # Oracle
        flips = [q for q in data if not (marked >> q) & 1]
        gates.extend(Gate("x", (q,)) for q in flips)
        gates.extend(_multi_controlled_z(data[:-1], data[-1], ancillas))
        gates.extend(Gate("x", (q,)) for q in flips)
        # Diffusion
        gates.extend(Gate("h", (q,)) for q in data)
        gates.extend(Gate("x", (q,)) for q in data)
        gates.extend(_multi_controlled_z(data[:-1], data[-1], ancillas))
        gates.extend(Gate("x", (q,)) for q in data)
        gates.extend(Gate("h", (q,)) for q in data)
    return gates


def counterfeit_coin(num_qubits: int, *, false_coin: Optional[int] = None,
                     seed: int = 17) -> List[Gate]:
    """Counterfeit-coin finding (the ``cc`` family): CX fan-in to an ancilla.

    Every coin qubit is weighed against the ancilla (one CX per coin), which
    reproduces QASMBench's cc gate mix (~1 CX per qubit).
    """
    coins = num_qubits - 1
    ancilla = num_qubits - 1
    if false_coin is None:
        false_coin = random.Random(seed).randrange(coins)
    gates: List[Gate] = [Gate("h", (q,)) for q in range(coins)]
    gates.append(Gate("x", (ancilla,)))
    gates.append(Gate("h", (ancilla,)))
    for q in range(coins):
        gates.append(Gate("cx", (q, ancilla)))
    gates.append(Gate("cx", (false_coin, ancilla)))
    gates.extend(Gate("h", (q,)) for q in range(coins))
    gates.append(Gate("h", (ancilla,)))
    return gates


def shor_factor_21(num_qubits: int = 15, *, seed: int = 23) -> List[Gate]:
    """Order finding for N=21 (the ``qf21`` family).

    A compiled-style period-finding circuit: Hadamard wall on the counting
    register, controlled modular-multiplication networks built from CX/CCX
    and SWAP gates, and an inverse QFT on the counting register.
    """
    counting = num_qubits // 2
    work = num_qubits - counting
    count_q = list(range(counting))
    work_q = list(range(counting, num_qubits))
    rng = random.Random(seed)
    gates: List[Gate] = [Gate("h", (q,)) for q in count_q]
    gates.append(Gate("x", (work_q[0],)))
    for k, cq in enumerate(count_q):
        # controlled multiplication by a^(2^k) mod 21, compiled to a fixed
        # permutation network on the work register controlled by cq
        perm = list(range(work))
        rng.shuffle(perm)
        for i, j in enumerate(perm):
            if i < j:
                gates.append(Gate("cx", (cq, work_q[i])))
                gates.extend(toffoli_gates(cq, work_q[i], work_q[j], decompose=True))
                gates.append(Gate("cx", (cq, work_q[i])))
    gates.extend(inverse_qft_gates(count_q))
    return gates


def shor_error_correction(num_qubits: int = 11, *, rounds: int = 2) -> List[Gate]:
    """Shor-code style encode / syndrome / decode cycles (the ``seca`` family)."""
    if num_qubits < 9:
        raise ValueError("shor_error_correction needs at least 9 qubits")
    data = list(range(9))
    anc = list(range(9, num_qubits))
    gates: List[Gate] = []
    # encode |psi> on qubit 0 into the 9-qubit Shor code
    gates.append(Gate("ry", (0,), (0.7,)))
    gates.append(Gate("cx", (0, 3)))
    gates.append(Gate("cx", (0, 6)))
    for blk in (0, 3, 6):
        gates.append(Gate("h", (blk,)))
        gates.append(Gate("cx", (blk, blk + 1)))
        gates.append(Gate("cx", (blk, blk + 2)))
    for _ in range(rounds):
        # a (benign) error followed by syndrome extraction onto ancillas
        gates.append(Gate("z", (4,)))
        gates.append(Gate("z", (4,)))
        for i, a in enumerate(anc):
            gates.append(Gate("cx", (data[i % 9], a)))
            gates.append(Gate("cx", (data[(i + 1) % 9], a)))
    # decode (reverse of encode)
    for blk in (6, 3, 0):
        gates.append(Gate("cx", (blk, blk + 2)))
        gates.append(Gate("cx", (blk, blk + 1)))
        gates.append(Gate("h", (blk,)))
    gates.append(Gate("cx", (0, 6)))
    gates.append(Gate("cx", (0, 3)))
    return gates
