"""Sharded block storage A/B: memory split across shards vs the local store.

The sharded transport exists for horizontal scale: block payloads leave the
simulator process and spread across N shard processes, so the resident
amplitude memory *per process* shrinks toward ``1/N`` of the local
footprint.  This benchmark quantifies that claim -- and its cost -- on the
wide-qubit cascade the incremental simulator targets:

* **local** -- one ``update_state`` plus one incremental retune on the
  default in-process store;
* **sharded** -- the identical circuit on ``ShardedTransport(N)``, same
  update + retune, then the per-shard occupancy from ``memory_report()``.

The gate is *correctness of the memory split*, not speed: shard-side owned
bytes must sum exactly to the local allocation (every block is resident on
exactly one shard, none lost, none double-counted) and the sharded state
must match the local state to 1e-10.  Wall-clock (the serialisation tax of
leaving the process) is reported informationally as ``slowdown_vs_local``.

Run directly for a table plus machine-readable JSON::

    python benchmarks/bench_shard_scale.py [--qubits 14] [--stages 120]
        [--block-size 64] [--shards 2] [--repeats 3]
        [--out BENCH_shard_scale.json]

or under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_shard_scale.py
"""

import argparse
import json
import os
import statistics
import sys
import time

import numpy as np

from repro.core.circuit import Circuit
from repro.core.gates import Gate
from repro.core.simulator import QTaskSimulator

#: gates of the low-qubit cascade (same family as bench_plan_batch)
_CASCADE = ["rz", "x", "rz", "y"]


def build_circuit(num_qubits, num_stages):
    """H wall, then ``num_stages`` single-qubit gates on the low qubits."""
    ckt = Circuit(num_qubits)
    levels = [[Gate("h", (q,)) for q in range(num_qubits)]]
    for i in range(num_stages):
        name = _CASCADE[i % len(_CASCADE)]
        params = (0.1 + 0.001 * i,) if name == "rz" else ()
        levels.append([Gate(name, (i % 3,), params)])
    ckt.from_levels(levels)
    return ckt


def _run_side(num_qubits, num_stages, block_size, transport):
    """Simulate + retune once on one transport; return timings and reports."""
    sim = QTaskSimulator(
        build_circuit(num_qubits, num_stages),
        block_size=block_size,
        num_workers=2,
        fusion=True,
        max_fused_qubits=4,
        store_transport=transport,
    )
    try:
        t0 = time.perf_counter()
        sim.update_state()
        update_s = time.perf_counter() - t0
        handle = next(h for h in sim.circuit.gates() if h.gate.name == "rz")
        sim.circuit.update_gate(handle, 0.777)
        t0 = time.perf_counter()
        sim.update_state()
        retune_s = time.perf_counter() - t0
        report = sim.memory_report()
        stats = sim.statistics()
        state = sim.state()
        return {
            "update_seconds": update_s,
            "retune_seconds": retune_s,
            "allocated_bytes": report.allocated_bytes,
            "shards": [dict(s) for s in report.shards],
            "transport": stats["store_transport"],
            "bytes_shipped": stats["store_bytes_shipped"],
            "remote_reads": stats["store_remote_reads"],
            "state": state,
        }
    finally:
        sim.close()


def run_ab(num_qubits=14, num_stages=120, block_size=64, shards=2):
    """One full A/B: local and sharded runs of the identical workload."""
    from repro.core.transport import ShardedTransport

    local = _run_side(num_qubits, num_stages, block_size, "local")
    transport = ShardedTransport(shards)
    # shard processes are module-shared; start from empty occupancy so the
    # per-shard report attributes exactly this run's payloads
    transport._runtime.ensure_started()
    transport.purge()
    sharded = _run_side(num_qubits, num_stages, block_size, transport)

    state_diff = float(np.abs(sharded["state"] - local["state"]).max())
    owned = [s["owned_bytes"] for s in sharded["shards"]]
    owned_total = sum(owned)
    local_bytes = local["allocated_bytes"]
    return {
        "benchmark": "shard_scale",
        "num_qubits": num_qubits,
        "num_stages": num_stages,
        "block_size": block_size,
        "num_shards": shards,
        "local_update_seconds": local["update_seconds"],
        "sharded_update_seconds": sharded["update_seconds"],
        "local_retune_seconds": local["retune_seconds"],
        "sharded_retune_seconds": sharded["retune_seconds"],
        "slowdown_vs_local": (
            sharded["update_seconds"] / local["update_seconds"]
            if local["update_seconds"] > 0
            else float("inf")
        ),
        "local_allocated_bytes": local_bytes,
        "shard_owned_bytes": owned,
        "shard_owned_total": owned_total,
        "memory_split_exact": owned_total == local_bytes,
        "max_shard_fraction": (
            max(owned) / local_bytes if local_bytes else 0.0
        ),
        "bytes_shipped": sharded["bytes_shipped"],
        "remote_reads": sharded["remote_reads"],
        "sharded_transport_reported": sharded["transport"],
        "state_max_abs_diff": state_diff,
    }


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - direct script execution only
    pytest = None

if pytest is not None:

    @pytest.mark.skipif(
        not hasattr(os, "fork"), reason="sharded transport needs fork"
    )
    def test_shard_scale_memory_split(benchmark):
        def run():
            return run_ab(num_qubits=10, num_stages=40, block_size=16, shards=2)

        result = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=1)
        assert result["state_max_abs_diff"] <= 1e-10
        assert result["memory_split_exact"]
        benchmark.extra_info["max_shard_fraction"] = result["max_shard_fraction"]


# ---------------------------------------------------------------------------
# direct execution: timing/memory table + JSON
# ---------------------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--qubits", type=int, default=14)
    parser.add_argument("--stages", type=int, default=120)
    parser.add_argument("--block-size", type=int, default=64)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=3,
                        help="A/B repetitions; the median slowdown is reported")
    parser.add_argument("--out", default="BENCH_shard_scale.json",
                        help="path for the machine-readable JSON result")
    args = parser.parse_args(argv)

    if not hasattr(os, "fork"):  # pragma: no cover - exotic platforms
        result = {
            "benchmark": "shard_scale",
            "skipped": "sharded transport needs the fork start method",
            "state_max_abs_diff": 0.0,
            "slowdown_vs_local": 1.0,
            "passed": True,
        }
        print("SKIP: sharded transport needs fork")
        with open(args.out, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return 0

    runs = [
        run_ab(args.qubits, args.stages, args.block_size, args.shards)
        for _ in range(args.repeats)
    ]
    median = statistics.median(r["slowdown_vs_local"] for r in runs)
    result = dict(min(runs, key=lambda r: abs(r["slowdown_vs_local"] - median)))
    result["slowdown_runs"] = [r["slowdown_vs_local"] for r in runs]
    result["slowdown_vs_local"] = median

    # the blocking gate: exact memory split + bit-level state agreement;
    # the serialisation tax is reported but never gates
    split_ok = all(r["memory_split_exact"] for r in runs)
    equal = all(r["state_max_abs_diff"] <= 1e-10 for r in runs)
    stayed_sharded = all(
        r["sharded_transport_reported"] == "sharded" for r in runs
    )
    result["passed"] = split_ok and equal and stayed_sharded

    n = result["num_shards"]
    print(f"{'side':<10} {'update s':>10} {'retune s':>10} {'resident bytes':>16}")
    print(f"{'local':<10} {result['local_update_seconds']:>10.4f} "
          f"{result['local_retune_seconds']:>10.4f} "
          f"{result['local_allocated_bytes']:>16}")
    print(f"{'sharded':<10} {result['sharded_update_seconds']:>10.4f} "
          f"{result['sharded_retune_seconds']:>10.4f} "
          f"{max(result['shard_owned_bytes']):>16}  (largest of {n} shards)")
    print(f"shard owned bytes: {result['shard_owned_bytes']} "
          f"(sum {result['shard_owned_total']} == local "
          f"{result['local_allocated_bytes']}: {result['memory_split_exact']})")
    print(f"largest shard holds {result['max_shard_fraction']:.1%} of the "
          f"local footprint (ideal {1 / n:.1%})")
    print(f"shipped {result['bytes_shipped']} bytes in "
          f"{result['remote_reads']} remote reads; slowdown vs local: "
          f"{median:.2f}x (informational)")
    print(f"state max |diff|: {result['state_max_abs_diff']:.2e} "
          f"(must be <= 1e-10)")
    print("PASS" if result["passed"] else "FAIL")

    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return 0 if result["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
