"""Figure 19: impact of the block size on qTask's runtime.

Sweeps B = 2^k for both full simulation and an incremental mixed workload on
the qft circuit, reproducing the U-shaped curves of Fig. 19 (too-small blocks
pay partitioning/scheduling overhead, too-large blocks lose task parallelism
and incrementality granularity).
"""

import pytest

from repro.bench.workloads import full_simulation, mixed_sweep

from conftest import make_factory

LOG_BLOCK_SIZES = [2, 4, 6, 8, 10]
CIRCUIT = ("qft", 10)
ITERATIONS = 10


@pytest.fixture(scope="module")
def qft_levels(levels_cache):
    return levels_cache(*CIRCUIT)


@pytest.mark.parametrize("log_block", LOG_BLOCK_SIZES)
def test_fig19_full_simulation_vs_block_size(benchmark, qft_levels, log_block):
    n, levels = qft_levels
    factory = make_factory("qTask", num_workers=1, block_size=1 << log_block)

    def run():
        return full_simulation(n, levels, factory, circuit_name="qft")

    benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=1)
    benchmark.extra_info["log2_block_size"] = log_block


@pytest.mark.parametrize("log_block", LOG_BLOCK_SIZES)
def test_fig19_incremental_vs_block_size(benchmark, qft_levels, log_block):
    n, levels = qft_levels
    factory = make_factory("qTask", num_workers=1, block_size=1 << log_block)

    def run():
        return mixed_sweep(n, levels, factory, iterations=ITERATIONS, seed=5,
                           circuit_name="qft")

    benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["log2_block_size"] = log_block
    benchmark.extra_info["iterations"] = ITERATIONS
