"""Deep-circuit incremental-update A/B: block directory vs. linear chain.

The block directory (``repro.core.cow.BlockDirectory``) replaces the naive
O(S) backwards store-chain walk with an O(log W) per-block ownership lookup
(S = stages, W = writers of the block).  Its payoff grows with circuit
*depth*: in a deep circuit most blocks were last written far in the past, so
every read in chain mode walks hundreds of stores while the directory jumps
straight to the owner.

The workload is the synthesis-loop pattern of the paper's incremental
experiments (Figs. 14-18): a deep cascade of controlled-phase gates on the
high qubits (each stage materialises only the top blocks, leaving the rest
copy-on-write-inherited from far upstream), followed by repeated *tail
edits* -- insert an X mixer gate on the top qubit, update, remove it, update.
Each inserted gate spans every data block, so the incremental update has to
resolve the whole depth of the store history.

Timing covers ``update_state`` only (graph surgery is identical in both
modes).  Results are verified: ``state()`` and a sample of ``amplitude()``
calls must agree between modes to 1e-10.

Run directly for a speedup table plus machine-readable JSON::

    python benchmarks/bench_chain_depth.py [--qubits 14] [--stages 400]
        [--block-size 64] [--cycles 30] [--out BENCH_chain_depth.json]

or under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_chain_depth.py
"""

import argparse
import json
import random
import statistics
import sys
import time

import numpy as np

from repro.core.circuit import Circuit
from repro.core.gates import Gate
from repro.core.simulator import QTaskSimulator


def build_deep_circuit(num_qubits, num_stages, *, block_size, block_directory,
                       num_workers=1, seed=7):
    """A ``num_stages``-deep cascade of cp gates on the top three qubits."""
    ckt = Circuit(num_qubits)
    sim = QTaskSimulator(
        ckt,
        block_size=block_size,
        num_workers=num_workers,
        block_directory=block_directory,
    )
    rng = random.Random(seed)
    high = list(range(num_qubits - 3, num_qubits))
    for i in range(num_stages):
        a, b = rng.sample(high, 2)
        ckt.append_level([Gate("cp", (a, b), (0.1 + 0.001 * i,))])
    return ckt, sim


def run_mode(num_qubits, num_stages, *, block_size, cycles, block_directory):
    """One A/B side: full build + timed tail-edit update cycles.

    Returns (update_seconds, full_build_seconds, state, amplitudes, stats).
    """
    ckt, sim = build_deep_circuit(
        num_qubits, num_stages,
        block_size=block_size, block_directory=block_directory,
    )
    try:
        t0 = time.perf_counter()
        sim.update_state()
        full = time.perf_counter() - t0

        update_time = 0.0
        top = num_qubits - 1
        for _ in range(cycles):
            net = ckt.insert_net()
            handle = ckt.insert_gate(Gate("x", (top,)), net)
            t0 = time.perf_counter()
            sim.update_state()
            update_time += time.perf_counter() - t0
            ckt.remove_gate(handle)
            ckt.remove_net(net)
            t0 = time.perf_counter()
            sim.update_state()
            update_time += time.perf_counter() - t0

        state = sim.state()
        rng = random.Random(11)
        sample = [rng.randrange(sim.dim) for _ in range(32)]
        amps = np.array([sim.amplitude(i) for i in sample])
        return update_time, full, state, amps, sim.statistics()
    finally:
        sim.close()


def run_ab(num_qubits=14, num_stages=400, block_size=64, cycles=30):
    """Both sides, equality checks, and the result record."""
    chain_t, chain_full, chain_state, chain_amps, _ = run_mode(
        num_qubits, num_stages, block_size=block_size, cycles=cycles,
        block_directory=False,
    )
    dir_t, dir_full, dir_state, dir_amps, stats = run_mode(
        num_qubits, num_stages, block_size=block_size, cycles=cycles,
        block_directory=True,
    )
    state_diff = float(np.abs(dir_state - chain_state).max())
    amp_diff = float(np.abs(dir_amps - chain_amps).max())
    updates = 2 * cycles
    return {
        "benchmark": "chain_depth",
        "num_qubits": num_qubits,
        "num_stages": num_stages,
        "block_size": block_size,
        "edit_cycles": cycles,
        "incremental_updates": updates,
        "chain_update_seconds": chain_t,
        "directory_update_seconds": dir_t,
        "chain_ms_per_update": 1e3 * chain_t / updates,
        "directory_ms_per_update": 1e3 * dir_t / updates,
        "chain_full_seconds": chain_full,
        "directory_full_seconds": dir_full,
        "speedup": chain_t / dir_t if dir_t > 0 else float("inf"),
        "state_max_abs_diff": state_diff,
        "amplitude_max_abs_diff": amp_diff,
        "graph_stats": stats,
    }


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - direct script execution only
    pytest = None

if pytest is not None:

    @pytest.mark.parametrize("directory", [False, True], ids=["chain", "directory"])
    def test_deep_incremental_update(benchmark, directory):
        def run():
            upd, _, _, _, _ = run_mode(
                12, 200, block_size=64, cycles=10, block_directory=directory
            )
            return upd

        benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
        benchmark.extra_info["block_directory"] = directory


# ---------------------------------------------------------------------------
# direct execution: speedup table + JSON
# ---------------------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--qubits", type=int, default=14)
    parser.add_argument("--stages", type=int, default=400)
    parser.add_argument("--block-size", type=int, default=64)
    parser.add_argument("--cycles", type=int, default=30)
    parser.add_argument("--repeats", type=int, default=3,
                        help="A/B repetitions; the median speedup is reported")
    parser.add_argument("--out", default="BENCH_chain_depth.json",
                        help="path for the machine-readable JSON result")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="PASS threshold on the median speedup")
    args = parser.parse_args(argv)

    runs = []
    for _ in range(args.repeats):
        runs.append(run_ab(args.qubits, args.stages, args.block_size, args.cycles))
    result = min(runs, key=lambda r: abs(r["speedup"] - statistics.median(x["speedup"] for x in runs)))
    result = dict(result)
    result["speedup_runs"] = [r["speedup"] for r in runs]
    result["speedup"] = statistics.median(r["speedup"] for r in runs)
    result["min_speedup_target"] = args.min_speedup

    equal = (result["state_max_abs_diff"] <= 1e-10
             and result["amplitude_max_abs_diff"] <= 1e-10)
    passed = equal and result["speedup"] >= args.min_speedup
    result["passed"] = passed

    print(f"{'mode':<12} {'updates':>8} {'ms/update':>10}")
    print(f"{'chain':<12} {result['incremental_updates']:>8} "
          f"{result['chain_ms_per_update']:>10.3f}")
    print(f"{'directory':<12} {result['incremental_updates']:>8} "
          f"{result['directory_ms_per_update']:>10.3f}")
    print(f"speedup: {result['speedup']:.2f}x (runs: "
          + ", ".join(f"{s:.2f}x" for s in result["speedup_runs"])
          + f"; target >= {args.min_speedup:.1f}x)")
    print(f"state/amplitude max |diff|: {result['state_max_abs_diff']:.2e} / "
          f"{result['amplitude_max_abs_diff']:.2e} (must be <= 1e-10)")
    print("PASS" if passed else "FAIL")

    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    return passed


if __name__ == "__main__":
    sys.exit(0 if main() else 1)
