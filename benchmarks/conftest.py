"""Shared configuration for the pytest-benchmark suites.

Every benchmark module regenerates one table or figure of the paper's
evaluation (see EXPERIMENTS.md for the index and DESIGN.md for the mapping).
The circuits used here are scaled-down members of the same families so the
whole suite runs in a few minutes on a laptop; the full-size runs are
available through the ``python -m repro.bench.*`` entry points.
"""

from __future__ import annotations

import pytest

from repro.bench.adapters import (
    qiskit_like_factory,
    qtask_factory,
    qulacs_like_factory,
)
from repro.circuits import build_levels

#: (circuit, qubit-override) pairs used across the benchmark suites.  They
#: cover the paper's main workload classes: superposition-heavy (qft),
#: CNOT-heavy arithmetic (adder), rotation layers (ising) and oracle circuits
#: (bv).
BENCH_CIRCUITS = [
    ("bv", None),
    ("adder", None),
    ("ising", None),
    ("qft", 10),
]

#: The two circuits the paper uses for Figs. 14-19 (scaled to stay fast).
FIGURE_CIRCUITS = [("qft", 10), ("adder", None)]


def circuit_id(entry) -> str:
    name, qubits = entry
    return name if qubits is None else f"{name}[{qubits}q]"


@pytest.fixture(scope="session")
def levels_cache():
    cache = {}

    def get(name, qubits):
        key = (name, qubits)
        if key not in cache:
            cache[key] = build_levels(name, num_qubits=qubits)
        return cache[key]

    return get


def make_factory(kind: str, **kwargs):
    if kind == "qTask":
        return qtask_factory(num_workers=kwargs.get("num_workers"),
                             block_size=kwargs.get("block_size", 256),
                             copy_on_write=kwargs.get("copy_on_write", True))
    if kind == "Qulacs-like":
        return qulacs_like_factory(num_workers=kwargs.get("num_workers"))
    if kind == "Qiskit-like":
        return qiskit_like_factory()
    raise ValueError(kind)


SIMULATORS = ["qTask", "Qulacs-like", "Qiskit-like"]
HEAD_TO_HEAD = ["qTask", "Qulacs-like"]
