"""Figure 14: incremental simulation under random gate insertions.

Each measured run starts from an empty circuit (nets pre-created), inserts a
few random levels per iteration and updates, until the circuit is complete --
the cumulative-runtime curve of Fig. 14.  qTask's curve should grow much more
slowly than the full-re-simulation baseline's.
"""

import pytest

from repro.bench.workloads import insertion_sweep

from conftest import FIGURE_CIRCUITS, HEAD_TO_HEAD, circuit_id, make_factory


@pytest.mark.parametrize("entry", FIGURE_CIRCUITS, ids=circuit_id)
@pytest.mark.parametrize("simulator", HEAD_TO_HEAD)
def test_fig14_random_insertions(benchmark, levels_cache, entry, simulator):
    name, qubits = entry
    n, levels = levels_cache(name, qubits)
    factory = make_factory(simulator, num_workers=1)

    def run():
        return insertion_sweep(n, levels, factory, levels_per_iteration=2, seed=1,
                               circuit_name=name)

    result = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info["circuit"] = name
    benchmark.extra_info["iterations"] = result.num_updates
    benchmark.extra_info["final_cumulative_ms"] = result.total_ms
