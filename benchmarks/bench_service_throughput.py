#!/usr/bin/env python3
"""Service-layer throughput under a mixed multi-tenant workload.

Drives a :class:`repro.service.Backend` with a mixed job stream -- static
sampling (Bell/GHZ-style chains) and dynamic trajectory circuits
(measure + conditioned correction) -- submitted from several client
threads, and records the latency distribution and sustained job rate:

* ``p50_seconds`` / ``p99_seconds`` (**informational**): end-to-end job
  latency (submission to result, queue wait included) at the 50th/99th
  percentile;
* ``jobs_per_second`` (**informational**): completed jobs divided by the
  wall time of the whole burst;
* ``counts_mismatch_fraction`` (**gating accuracy**): fraction of jobs
  whose histogram differs from a fresh sequential ``QTask`` run of the
  same circuit and seed.  The service layer is pure orchestration -- warm
  pools, COW forks and concurrent dispatch must never change a single
  count, so this must be exactly 0.0.

Run directly::

    python benchmarks/bench_service_throughput.py [--jobs 24] [--shots 64]
        [--clients 4] [--concurrent 4] [--workers 4]
        [--out BENCH_service.json]
"""

import argparse
import json
import sys
import threading
import time

from repro import QTask
from repro.service import Backend

BELL = 'OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n'
CHAIN = (
    "OPENQASM 2.0;\nqreg q[6];\nh q[0];\n"
    + "".join(f"cx q[{i}],q[{i + 1}];\n" for i in range(5))
)
DYNAMIC = (
    "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nh q[0];\n"
    "measure q[0] -> c[0];\nif (c==1) x q[1];\nmeasure q[1] -> c[1];\n"
)
FAMILIES = [("bell", BELL), ("chain", CHAIN), ("dynamic", DYNAMIC)]


def sequential_reference(workload):
    """Fresh single-session runs: the ground-truth histogram per job."""
    expected = []
    for _, src, shots, seed in workload:
        session = QTask.from_qasm(src)
        session.update_state()
        if session.circuit.num_clbits > 0:
            expected.append(session.run_shots(shots, seed=seed))
        else:
            expected.append(session.counts(shots, seed=seed))
        session.close()
    return expected


def percentile(sorted_values, q):
    """Nearest-rank percentile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def run_burst(workload, *, clients, concurrent, workers):
    """Submit the whole workload from ``clients`` threads; collect latency."""
    backend = Backend(
        {
            "max_concurrent_jobs": concurrent,
            "max_queued_jobs": max(len(workload), 4),
        },
        num_workers=workers,
    )
    latencies = [0.0] * len(workload)
    counts = [None] * len(workload)
    errors = []
    lock = threading.Lock()
    started = time.perf_counter()

    def client(indices):
        for i in indices:
            name, src, shots, seed = workload[i]
            t0 = time.perf_counter()
            try:
                job = backend.run(
                    src, shots=shots, seed=seed, tenant=f"client-{i % clients}"
                )
                result = job.result(timeout=300)
            except BaseException as exc:
                with lock:
                    errors.append(f"{name}#{i}: {exc!r}")
                continue
            latencies[i] = time.perf_counter() - t0
            counts[i] = result.counts

    threads = [
        threading.Thread(target=client, args=(range(c, len(workload), clients),))
        for c in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    status = backend.status()
    pool_stats = status["pool"]
    backend.close()
    return {
        "latencies": latencies,
        "counts": counts,
        "errors": errors,
        "elapsed_seconds": elapsed,
        "pool_sessions": pool_stats["sessions"],
        "jobs_completed": status["jobs"]["completed"],
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=24,
                        help="total jobs in the burst")
    parser.add_argument("--shots", type=int, default=64)
    parser.add_argument("--clients", type=int, default=4,
                        help="submitting client threads")
    parser.add_argument("--concurrent", type=int, default=4,
                        help="backend max_concurrent_jobs")
    parser.add_argument("--workers", type=int, default=4,
                        help="shared executor workers")
    parser.add_argument("--out", default="BENCH_service.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    workload = []
    for i in range(args.jobs):
        name, src = FAMILIES[i % len(FAMILIES)]
        workload.append((name, src, args.shots, 7000 + i))

    expected = sequential_reference(workload)
    burst = run_burst(
        workload,
        clients=args.clients,
        concurrent=args.concurrent,
        workers=args.workers,
    )

    mismatches = sum(
        1 for got, want in zip(burst["counts"], expected) if got != want
    )
    mismatch_fraction = mismatches / len(workload)
    latencies = sorted(lat for lat in burst["latencies"] if lat > 0)

    result = {
        "benchmark": "service_throughput",
        "jobs": args.jobs,
        "shots": args.shots,
        "clients": args.clients,
        "concurrent": args.concurrent,
        "workers": args.workers,
        "families": [name for name, _ in FAMILIES],
        "jobs_completed": burst["jobs_completed"],
        "errors": burst["errors"],
        "pool_sessions": burst["pool_sessions"],
        "counts_mismatch_fraction": mismatch_fraction,
        "p50_seconds": percentile(latencies, 0.50),
        "p99_seconds": percentile(latencies, 0.99),
        "jobs_per_second": (
            burst["jobs_completed"] / burst["elapsed_seconds"]
            if burst["elapsed_seconds"] > 0 else 0.0
        ),
        "elapsed_seconds": burst["elapsed_seconds"],
    }
    result["passed"] = (
        mismatch_fraction == 0.0
        and not burst["errors"]
        and burst["jobs_completed"] == args.jobs
    )

    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(f"[service] {result['jobs_completed']}/{args.jobs} jobs, "
          f"p50 {result['p50_seconds'] * 1e3:.1f} ms, "
          f"p99 {result['p99_seconds'] * 1e3:.1f} ms, "
          f"{result['jobs_per_second']:.1f} jobs/s, "
          f"mismatch {mismatch_fraction:.3f} -> "
          f"{'PASS' if result['passed'] else 'FAIL'}")
    return 0 if result["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
