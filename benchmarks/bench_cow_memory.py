"""§IV.F ablation: runtime and memory impact of copy-on-write block storage.

Runs the level-by-level incremental protocol with COW enabled and disabled.
The timing is reported by pytest-benchmark; the peak logical memory of each
configuration is attached as ``extra_info`` so the 20-50% savings claim of
§IV.F can be checked from the benchmark JSON.
"""

import pytest

from repro.bench.workloads import levelwise_incremental

from conftest import make_factory

CIRCUITS = [("qft", 10), ("adder", None), ("ising", None)]


def _id(entry):
    name, qubits = entry
    return name if qubits is None else f"{name}[{qubits}q]"


@pytest.mark.parametrize("entry", CIRCUITS, ids=_id)
@pytest.mark.parametrize("copy_on_write", [True, False], ids=["cow", "dense"])
def test_cow_ablation(benchmark, levels_cache, entry, copy_on_write):
    name, qubits = entry
    n, levels = levels_cache(name, qubits)
    factory = make_factory("qTask", num_workers=1, copy_on_write=copy_on_write)

    def run():
        return levelwise_incremental(n, levels, factory, circuit_name=name)

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["circuit"] = name
    benchmark.extra_info["copy_on_write"] = copy_on_write
    benchmark.extra_info["peak_memory_bytes"] = result.peak_allocated_bytes
