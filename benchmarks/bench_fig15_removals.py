"""Figure 15: incremental simulation under random gate removals.

Each measured run starts from the complete circuit and removes a few random
levels per iteration until the circuit is empty, updating after every batch
(iteration 0 is the full simulation, as in the paper).
"""

import pytest

from repro.bench.workloads import removal_sweep

from conftest import FIGURE_CIRCUITS, HEAD_TO_HEAD, circuit_id, make_factory


@pytest.mark.parametrize("entry", FIGURE_CIRCUITS, ids=circuit_id)
@pytest.mark.parametrize("simulator", HEAD_TO_HEAD)
def test_fig15_random_removals(benchmark, levels_cache, entry, simulator):
    name, qubits = entry
    n, levels = levels_cache(name, qubits)
    factory = make_factory(simulator, num_workers=1)

    def run():
        return removal_sweep(n, levels, factory, levels_per_iteration=2, seed=2,
                             circuit_name=name)

    result = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info["circuit"] = name
    benchmark.extra_info["iterations"] = result.num_updates
    benchmark.extra_info["mean_iteration_ms"] = (
        1e3 * result.total_seconds / max(1, result.num_updates)
    )
