"""Table III (incremental columns): level-by-level construction + updates.

The paper's incremental protocol (§IV.B): starting from an empty circuit,
insert one net at a time and call ``update_state`` after each insertion --
the number of simulation calls equals the circuit depth.  qTask updates only
the affected partitions; the baselines replay the whole circuit every time.
"""

import pytest

from repro.bench.workloads import levelwise_incremental

from conftest import BENCH_CIRCUITS, SIMULATORS, circuit_id, make_factory


@pytest.mark.parametrize("entry", BENCH_CIRCUITS, ids=circuit_id)
@pytest.mark.parametrize("simulator", SIMULATORS)
def test_table3_incremental(benchmark, levels_cache, entry, simulator):
    name, qubits = entry
    n, levels = levels_cache(name, qubits)
    factory = make_factory(simulator, num_workers=1)

    def run():
        return levelwise_incremental(n, levels, factory, circuit_name=name)

    result = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=1)
    benchmark.extra_info["circuit"] = name
    benchmark.extra_info["qubits"] = n
    benchmark.extra_info["num_updates"] = result.num_updates
    benchmark.extra_info["peak_memory_bytes"] = result.peak_allocated_bytes
