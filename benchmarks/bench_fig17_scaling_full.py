"""Figure 17: full-simulation runtime vs. number of worker threads.

Sweeps the worker count for qTask and the Qulacs-like baseline on the paper's
scaling circuits.  In CPython the GIL bounds the achievable speedup (see
DESIGN.md); the benchmark records whatever curve the machine produces.
"""

import os

import pytest

from repro.bench.workloads import full_simulation

from conftest import FIGURE_CIRCUITS, HEAD_TO_HEAD, circuit_id, make_factory

WORKER_COUNTS = [1, 2, 4, min(8, os.cpu_count() or 8)]


@pytest.mark.parametrize("entry", FIGURE_CIRCUITS, ids=circuit_id)
@pytest.mark.parametrize("simulator", HEAD_TO_HEAD)
@pytest.mark.parametrize("workers", sorted(set(WORKER_COUNTS)))
def test_fig17_full_simulation_scaling(benchmark, levels_cache, entry, simulator, workers):
    name, qubits = entry
    n, levels = levels_cache(name, qubits)
    factory = make_factory(simulator, num_workers=workers)

    def run():
        return full_simulation(n, levels, factory, circuit_name=name)

    benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=1)
    benchmark.extra_info["circuit"] = name
    benchmark.extra_info["workers"] = workers
