"""Batched parameter-sweep A/B: SweepRunner fork fleet vs the sequential loop.

PR 3's retune benchmark (``bench_param_sweep.py``) evaluates its sweep
points strictly sequentially -- one session, one point at a time -- leaving
the work-stealing executor idle between points.  This benchmark runs the
*same* 16-qubit ring-MaxCut QAOA final-round line search through the
batched path: the base session is forked into a copy-on-write fleet
(:meth:`repro.QTask.fork` -- zero amplitude copies, shared executor), and
:class:`repro.SweepRunner` deals the grid across the fleet as concurrent
tasks on the shared ``WorkStealingExecutor``.  Every fork carries its own
observables cache, updates incrementally, and the numpy kernels release the
GIL, so on a host with >= 2 cores the fleet overlaps the per-point
simulation work that the sequential loop serialises.

Measured quantities:

* ``sequential_seconds`` -- PR 3's loop (``run_retune``, one worker),
* ``batched_sweep_seconds`` -- the fleet sweep (fleet reused/amortised;
  creation cost is reported separately as ``fork_setup_seconds``, matching
  the sequential mode's excluded session build),
* per-point expectations, cross-checked against the dense baseline to
  1e-10 (hard accuracy gate).

The speedup gate is only meaningful on a multi-core host: with a single
available CPU, threads cannot beat a sequential loop on wall-clock, so the
gate is reported as waived (the JSON carries ``available_cpus`` and the
gate disposition either way -- no silent passes).

Run directly for a table plus machine-readable JSON::

    python benchmarks/bench_batch_sweep.py [--qubits 16] [--rounds 3]
        [--steps 8] [--block-size 256] [--workers 4]
        [--out BENCH_batch_sweep.json]

or under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch_sweep.py
"""

import argparse
import json
import os
import statistics
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_param_sweep import (  # noqa: E402  (sibling benchmark module)
    BASE_BETAS,
    BASE_GAMMAS,
    build_qaoa,
    ring_edges,
    run_dense,
    run_retune,
    sweep_angles,
)

from repro import QTask, SweepRunner  # noqa: E402
from repro.observables import maxcut_hamiltonian  # noqa: E402


def available_cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def sweep_points(gamma_handles, beta_handles, gammas, betas, steps):
    """The line-search grid as absolute per-handle parameter vectors."""
    n_gamma, n_beta = len(gamma_handles), len(beta_handles)
    return [
        tuple([2.0 * gamma] * n_gamma + [2.0 * beta] * n_beta)
        for gamma, beta in sweep_angles(gammas, betas, steps)
    ]


def run_batched(num_qubits, rounds, steps, block_size, observable,
                *, num_workers, num_forks=None, kernel_backend=None):
    """The fleet mode: fork + SweepRunner on a shared work-stealing pool."""
    gammas, betas = list(BASE_GAMMAS[:rounds]), list(BASE_BETAS[:rounds])
    session = QTask(num_qubits, block_size=block_size, num_workers=num_workers,
                    kernel_backend=kernel_backend)
    try:
        gamma_handles, beta_handles = build_qaoa(
            session.circuit, num_qubits, rounds, gammas, betas
        )
        session.update_state()
        session.expectation(observable)  # warm the per-term caches
        handles = gamma_handles[-1] + beta_handles[-1]
        points = sweep_points(
            gamma_handles[-1], beta_handles[-1], gammas, betas, steps
        )
        runner = SweepRunner(
            session, handles, observable=observable, num_forks=num_forks,
            kernel_backend=kernel_backend,
        )
        try:
            t0 = time.perf_counter()
            runner._ensure_forks(
                max(1, min(len(points),
                           num_forks or session.simulator.executor.num_workers))
            )
            fork_setup = time.perf_counter() - t0
            t0 = time.perf_counter()
            results = runner.run(points)
            sweep_seconds = time.perf_counter() - t0
            expectations = [r.expectation for r in results]
            extra = {
                "fork_setup_seconds": fork_setup,
                "num_forks": runner.active_forks,
                "affected_fraction": [r.affected_fraction for r in results],
                "fleet_memory": _fleet_memory(session, runner),
                "plan_report": session.plan_report().as_dict(),
            }
        finally:
            runner.close()
    finally:
        session.close()
    return sweep_seconds, expectations, extra


def _fleet_memory(session, runner):
    """Owned-vs-shared accounting across the base session and its forks."""
    base = session.memory_report()
    forks = [child.memory_report() for child, _ in runner._forks]
    return {
        "base_allocated_bytes": base.allocated_bytes,
        "fork_allocated_bytes": sum(r.allocated_bytes for r in forks),
        "fork_owned_bytes": sum(r.owned_bytes for r in forks),
        "fork_shared_bytes": sum(r.shared_bytes for r in forks),
    }


def run_ab(num_qubits=16, rounds=3, steps=8, block_size=256, num_workers=4,
           num_forks=None, kernel_backend=None):
    """Sequential vs batched vs dense ground truth, one measured record."""
    edges = [e for group in ring_edges(num_qubits) for e in group]
    observable = maxcut_hamiltonian(edges)

    seq_seconds, seq_exp, _ = run_retune(
        num_qubits, rounds, steps, block_size, observable
    )
    batched_seconds, batched_exp, extra = run_batched(
        num_qubits, rounds, steps, block_size, observable,
        num_workers=num_workers, num_forks=num_forks,
        kernel_backend=kernel_backend,
    )
    dense_seconds, dense_exp, _ = run_dense(
        num_qubits, rounds, steps, block_size, observable
    )

    max_diff = max(
        abs(e - t) for e, t in zip(batched_exp, dense_exp)
    )
    max_diff_seq = max(abs(e - t) for e, t in zip(seq_exp, dense_exp))
    fleet_mem = extra["fleet_memory"]
    record = {
        "benchmark": "batch_sweep",
        "workload": "ring-MaxCut QAOA final-round (gamma, beta) line search",
        "num_qubits": num_qubits,
        "rounds": rounds,
        "sweep_steps": steps,
        "block_size": block_size,
        "num_workers": num_workers,
        "num_forks": extra["num_forks"],
        "kernel_backend": extra["plan_report"]["backend"],
        "requested_kernel_backend": kernel_backend or "auto",
        "plan_report": extra["plan_report"],
        "available_cpus": available_cpus(),
        "sequential_seconds": seq_seconds,
        "batched_sweep_seconds": batched_seconds,
        "fork_setup_seconds": extra["fork_setup_seconds"],
        "dense_seconds": dense_seconds,
        "speedup_vs_sequential": seq_seconds / batched_seconds,
        "speedup_vs_sequential_incl_forks": seq_seconds
        / (batched_seconds + extra["fork_setup_seconds"]),
        "sequential_ms_per_point": 1e3 * seq_seconds / steps,
        "batched_ms_per_point": 1e3 * batched_seconds / steps,
        "expectation_max_abs_diff": max_diff,
        "sequential_expectation_max_abs_diff": max_diff_seq,
        "batched_affected_fraction": statistics.mean(
            extra["affected_fraction"]
        ),
        "fork_owned_over_base_allocated": (
            fleet_mem["fork_owned_bytes"] / fleet_mem["base_allocated_bytes"]
            if fleet_mem["base_allocated_bytes"]
            else 0.0
        ),
        **{f"fleet_{k}": v for k, v in fleet_mem.items()},
        "expectations": dense_exp,
    }
    return record


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - direct script execution only
    pytest = None

if pytest is not None:

    @pytest.mark.parametrize("mode", ["sequential", "batched"])
    def test_batch_sweep(benchmark, mode):
        edges = [e for group in ring_edges(12) for e in group]
        observable = maxcut_hamiltonian(edges)

        def run():
            if mode == "sequential":
                elapsed, _, _ = run_retune(12, 2, 4, 256, observable)
            else:
                elapsed, _, _ = run_batched(
                    12, 2, 4, 256, observable, num_workers=4
                )
            return elapsed

        benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=1)
        benchmark.extra_info["mode"] = mode


# ---------------------------------------------------------------------------
# direct execution: table + JSON
# ---------------------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--qubits", type=int, default=16)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--steps", type=int, default=8)
    parser.add_argument("--block-size", type=int, default=256)
    parser.add_argument("--workers", type=int, default=4,
                        help="work-stealing pool size for the batched mode")
    parser.add_argument("--forks", type=int, default=None,
                        help="fork fleet size (default: one per worker)")
    parser.add_argument("--kernel-backend", default=None,
                        help="kernel backend for the fleet (auto, numpy, "
                             "numba, process, legacy); the process backend "
                             "sidesteps the GIL entirely on multi-core hosts")
    parser.add_argument("--repeats", type=int, default=2,
                        help="A/B repetitions; the median speedup is reported")
    parser.add_argument("--out", default="BENCH_batch_sweep.json",
                        help="path for the machine-readable JSON result")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="PASS threshold on batched-vs-sequential speedup "
                             "(enforced only on hosts with >= 2 CPUs)")
    args = parser.parse_args(argv)
    if args.rounds > len(BASE_GAMMAS):
        parser.error(f"--rounds must be <= {len(BASE_GAMMAS)}")
    if args.workers < 2:
        parser.error("--workers must be >= 2 (the batched mode needs a pool)")

    runs = [
        run_ab(args.qubits, args.rounds, args.steps, args.block_size,
               args.workers, args.forks, args.kernel_backend)
        for _ in range(args.repeats)
    ]
    median = statistics.median(r["speedup_vs_sequential"] for r in runs)
    result = dict(
        min(runs, key=lambda r: abs(r["speedup_vs_sequential"] - median))
    )
    result["speedup_runs"] = [r["speedup_vs_sequential"] for r in runs]
    result["speedup_vs_sequential"] = median
    result["min_speedup_target"] = args.min_speedup

    cpus = result["available_cpus"]
    accuracy_ok = result["expectation_max_abs_diff"] <= 1e-10
    speedup_ok = result["speedup_vs_sequential"] >= args.min_speedup
    if cpus >= 2:
        result["speedup_gate"] = "enforced"
        passed = accuracy_ok and speedup_ok
    else:
        # One visible CPU: a thread fleet cannot beat a sequential loop on
        # wall-clock, so only the accuracy gate is binding.  Recorded
        # explicitly -- the artifact never hides a waived gate.
        result["speedup_gate"] = "waived: single-CPU host"
        passed = accuracy_ok
    result["passed"] = passed

    print(f"{'mode':<12} {'ms/point':>10}")
    print(f"{'sequential':<12} {result['sequential_ms_per_point']:>10.2f}")
    print(f"{'batched':<12} {result['batched_ms_per_point']:>10.2f}")
    print(f"batched vs sequential: {result['speedup_vs_sequential']:.2f}x "
          f"(runs: " + ", ".join(f"{s:.2f}x" for s in result["speedup_runs"])
          + f"; target >= {args.min_speedup:.1f}x, "
          + f"{result['speedup_gate']}, cpus={cpus})")
    print(f"  incl. fork setup:    "
          f"{result['speedup_vs_sequential_incl_forks']:.2f}x "
          f"({result['num_forks']} forks in "
          f"{result['fork_setup_seconds'] * 1e3:.1f} ms)")
    print(f"fleet memory: forks own "
          f"{result['fork_owned_over_base_allocated'] * 100:.1f}% of the "
          f"base session's amplitudes (rest shared copy-on-write)")
    print(f"expectation max |diff| vs dense: "
          f"{result['expectation_max_abs_diff']:.2e} (must be <= 1e-10)")
    print("PASS" if passed else "FAIL")

    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    return passed


if __name__ == "__main__":
    sys.exit(0 if main() else 1)
