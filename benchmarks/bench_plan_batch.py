"""Plan-pipeline A/B: batched kernel backend vs. legacy per-run dispatch.

The execution-plan layer (``repro.core.exec_plan``) compiles each update's
dirty frontier into one run table per stage and hands whole tables to a
:class:`~repro.core.kernels.KernelBackend`, replacing the legacy pipeline's
one-executor-task-per-partition / one-closure-per-block-run dispatch.  The
payoff is pure overhead removal: both sides execute the *same* numpy kernels
over the same aligned runs, so any speedup is Python dispatch cost that the
batch-major path no longer pays.

The workload maximises dispatch density the way the paper's deep-circuit
experiments do: a long cascade of single-qubit diagonal/monomial gates on
the *low* qubits over a small block size, so every stage shatters into many
tiny partitions (hundreds of runs per stage plan).  Retuning the first
rotation then dirties the entire downstream cone -- the variational
inner-loop shape ``update_gate`` exists for.  Timing covers ``update_state``
only, single worker, so the A/B isolates dispatch, not parallelism.

Results are verified: both sides' ``state()`` must agree to 1e-10.

Run directly for a speedup table plus machine-readable JSON::

    python benchmarks/bench_plan_batch.py [--qubits 12] [--stages 120]
        [--block-size 16] [--cycles 6] [--out BENCH_plan_batch.json]

or under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_plan_batch.py
"""

import argparse
import json
import statistics
import sys
import time

import numpy as np

from repro.core.circuit import Circuit
from repro.core.gates import Gate
from repro.core.simulator import QTaskSimulator

#: gates of the low-qubit cascade; rz stages are the retune targets
_CASCADE = ["rz", "x", "rz", "y"]


def build_cascade(num_qubits, num_stages, *, block_size, kernel_backend):
    """H wall, then ``num_stages`` single-qubit gates on the low qubits."""
    ckt = Circuit(num_qubits)
    levels = [[Gate("h", (q,)) for q in range(num_qubits)]]
    for i in range(num_stages):
        name = _CASCADE[i % len(_CASCADE)]
        qubit = i % 3
        params = (0.1 + 0.001 * i,) if name == "rz" else ()
        levels.append([Gate(name, (qubit,), params)])
    ckt.from_levels(levels)
    sim = QTaskSimulator(
        ckt,
        block_size=block_size,
        num_workers=1,
        kernel_backend=kernel_backend,
    )
    return ckt, sim


def run_mode(num_qubits, num_stages, *, block_size, cycles, kernel_backend):
    """One A/B side: full build + timed head-retune update cycles.

    Returns (update_seconds, full_build_seconds, state, stats).
    """
    ckt, sim = build_cascade(
        num_qubits, num_stages,
        block_size=block_size, kernel_backend=kernel_backend,
    )
    try:
        t0 = time.perf_counter()
        sim.update_state()
        full = time.perf_counter() - t0

        handle = next(h for h in ckt.gates() if h.gate.name == "rz")
        update_time = 0.0
        for cycle in range(cycles):
            ckt.update_gate(handle, 0.5 + 0.01 * cycle)
            t0 = time.perf_counter()
            sim.update_state()
            update_time += time.perf_counter() - t0
        return update_time, full, sim.state(), sim.statistics()
    finally:
        sim.close()


def run_ab(num_qubits=12, num_stages=120, block_size=16, cycles=6):
    """Both sides, equality checks, and the result record."""
    legacy_t, legacy_full, legacy_state, _ = run_mode(
        num_qubits, num_stages, block_size=block_size, cycles=cycles,
        kernel_backend="legacy",
    )
    numpy_t, numpy_full, numpy_state, stats = run_mode(
        num_qubits, num_stages, block_size=block_size, cycles=cycles,
        kernel_backend="numpy",
    )
    state_diff = float(np.abs(numpy_state - legacy_state).max())
    return {
        "benchmark": "plan_batch",
        "num_qubits": num_qubits,
        "num_stages": num_stages,
        "block_size": block_size,
        "edit_cycles": cycles,
        "legacy_update_seconds": legacy_t,
        "numpy_update_seconds": numpy_t,
        "legacy_ms_per_update": 1e3 * legacy_t / cycles,
        "numpy_ms_per_update": 1e3 * numpy_t / cycles,
        "legacy_full_seconds": legacy_full,
        "numpy_full_seconds": numpy_full,
        "speedup_numpy_vs_legacy": (
            legacy_t / numpy_t if numpy_t > 0 else float("inf")
        ),
        "state_max_abs_diff": state_diff,
        "plans_built": stats["plans_built"],
        "runs_batched": stats["runs_batched"],
        "runs_per_plan": stats["runs_per_plan"],
        "backend": stats["backend"],
    }


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - direct script execution only
    pytest = None

if pytest is not None:

    @pytest.mark.parametrize("backend", ["legacy", "numpy"])
    def test_plan_batch_update(benchmark, backend):
        def run():
            upd, _, _, _ = run_mode(
                10, 60, block_size=16, cycles=3, kernel_backend=backend
            )
            return upd

        benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
        benchmark.extra_info["kernel_backend"] = backend


# ---------------------------------------------------------------------------
# direct execution: speedup table + JSON
# ---------------------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--qubits", type=int, default=12)
    parser.add_argument("--stages", type=int, default=120)
    parser.add_argument("--block-size", type=int, default=16)
    parser.add_argument("--cycles", type=int, default=6)
    parser.add_argument("--repeats", type=int, default=3,
                        help="A/B repetitions; the median speedup is reported")
    parser.add_argument("--out", default="BENCH_plan_batch.json",
                        help="path for the machine-readable JSON result")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="PASS threshold on the median speedup")
    args = parser.parse_args(argv)

    runs = [
        run_ab(args.qubits, args.stages, args.block_size, args.cycles)
        for _ in range(args.repeats)
    ]
    median = statistics.median(r["speedup_numpy_vs_legacy"] for r in runs)
    result = dict(min(
        runs, key=lambda r: abs(r["speedup_numpy_vs_legacy"] - median)
    ))
    result["speedup_runs"] = [r["speedup_numpy_vs_legacy"] for r in runs]
    result["speedup_numpy_vs_legacy"] = median
    result["min_speedup_target"] = args.min_speedup

    equal = result["state_max_abs_diff"] <= 1e-10
    passed = equal and median >= args.min_speedup
    result["passed"] = passed

    print(f"{'pipeline':<12} {'cycles':>8} {'ms/update':>10}")
    print(f"{'legacy':<12} {result['edit_cycles']:>8} "
          f"{result['legacy_ms_per_update']:>10.3f}")
    print(f"{'plan+numpy':<12} {result['edit_cycles']:>8} "
          f"{result['numpy_ms_per_update']:>10.3f}")
    print(f"speedup: {median:.2f}x (runs: "
          + ", ".join(f"{s:.2f}x" for s in result["speedup_runs"])
          + f"; target >= {args.min_speedup:.1f}x)")
    print(f"runs per plan: {result['runs_per_plan']:.1f} "
          f"({result['runs_batched']} runs in {result['plans_built']} plans)")
    print(f"state max |diff|: {result['state_max_abs_diff']:.2e} "
          f"(must be <= 1e-10)")
    print("PASS" if passed else "FAIL")

    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    return passed


if __name__ == "__main__":
    sys.exit(0 if main() else 1)
