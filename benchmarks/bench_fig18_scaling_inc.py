"""Figure 18: incremental-simulation runtime vs. number of worker threads.

Same thread sweep as Fig. 17 but over a mixed insertion/removal workload
(the paper collects 50 incremental iterations; 15 keep the suite fast).
"""

import os

import pytest

from repro.bench.workloads import mixed_sweep

from conftest import FIGURE_CIRCUITS, HEAD_TO_HEAD, circuit_id, make_factory

WORKER_COUNTS = sorted({1, 2, min(8, os.cpu_count() or 8)})
ITERATIONS = 15


@pytest.mark.parametrize("entry", FIGURE_CIRCUITS, ids=circuit_id)
@pytest.mark.parametrize("simulator", HEAD_TO_HEAD)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_fig18_incremental_scaling(benchmark, levels_cache, entry, simulator, workers):
    name, qubits = entry
    n, levels = levels_cache(name, qubits)
    factory = make_factory(simulator, num_workers=workers)

    def run():
        return mixed_sweep(n, levels, factory, iterations=ITERATIONS, seed=4,
                           circuit_name=name)

    benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["circuit"] = name
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["iterations"] = ITERATIONS
