"""Blocking A/B-benchmark regression gate (and the CI perf-smoke driver).

Reads ``benchmarks/manifest.json``, re-runs each listed benchmark at its
CI-friendly small size (``--min-speedup 0`` in the manifest args makes the
benchmark's own ``passed`` flag an *accuracy-only* correctness gate), and
compares the fresh JSON against the committed ``BENCH_*.json`` baseline:

* the fresh ``passed`` flag must be true (equivalence/accuracy gates inside
  the benchmark itself),
* every *accuracy metric* named by the manifest entry (max-abs-diff style,
  smaller is better) may not exceed ``max(baseline * (1 + tolerance),
  floor)`` -- the default tolerance is 30%, and the absolute floor (1e-9)
  keeps zero/epsilon baselines from failing on harmless float jitter,
* *wall-clock metrics* are reported but never gate (hosted runners are far
  too noisy for blocking speedup thresholds).

Exit status is non-zero when any gate fails, so the CI ``regression-gate``
job can block merges.  ``--informational`` turns every failure into a report
line with exit status 0 -- that mode, plus ``--out-dir``, is what the
non-blocking perf-smoke job loops over instead of hand-maintaining one step
per benchmark.

Usage::

    python benchmarks/check_regression.py                      # run + gate
    python benchmarks/check_regression.py --only chain_depth
    python benchmarks/check_regression.py --informational --out-dir bench-out
    python benchmarks/check_regression.py --fresh chain_depth=f.json  # no re-run
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import Dict, List, Optional

DEFAULT_MANIFEST = os.path.join(os.path.dirname(__file__), "manifest.json")
#: accuracy metrics may grow by this fraction before the gate trips
DEFAULT_TOLERANCE = 0.30
#: and are never gated below this absolute value (float jitter on ~0 baselines)
ACCURACY_FLOOR = 1e-9


def load_manifest(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    if "benchmarks" not in manifest:
        raise ValueError(f"manifest {path!r} has no 'benchmarks' list")
    return manifest


def compare_entry(
    entry: dict,
    baseline: Optional[dict],
    fresh: dict,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    floor: float = ACCURACY_FLOOR,
) -> List[str]:
    """Gate one benchmark's fresh JSON against its committed baseline.

    Returns a list of human-readable failure strings (empty = pass).
    ``baseline`` may be ``None`` (first run of a new benchmark): accuracy
    metrics are then gated against the absolute floor only.
    """
    name = entry["name"]
    script = entry.get("script", "<unknown script>")
    baseline_file = entry.get("baseline", "<no baseline file>")
    failures: List[str] = []
    if not fresh.get("passed", False):
        failures.append(
            f"{name} ({script}): correctness gate failed -- fresh json has "
            f"passed={fresh.get('passed')!r}, expected True"
        )
    for metric in entry.get("accuracy_metrics", ()):
        value = fresh.get(metric)
        if value is None:
            failures.append(
                f"{name} ({script}): fresh json is missing accuracy metric "
                f"{metric!r} (manifest lists it; baseline {baseline_file})"
            )
            continue
        base_value = (baseline or {}).get(metric)
        limit = floor if base_value is None else max(
            float(base_value) * (1.0 + tolerance), floor
        )
        if float(value) > limit:
            failures.append(
                f"{name} ({script}): accuracy metric {metric} regressed: "
                f"got {value:.3e}, limit {limit:.3e} "
                f"(baseline {base_value if base_value is not None else 'n/a'} "
                f"from {baseline_file}, tolerance {tolerance:.0%})"
            )
    return failures


def wallclock_report(entry: dict, baseline: Optional[dict], fresh: dict) -> List[str]:
    """Informational wall-clock comparison lines (never gating)."""
    lines: List[str] = []
    for metric in entry.get("wallclock_metrics", ()):
        value = fresh.get(metric)
        base_value = (baseline or {}).get(metric)
        if value is None:
            continue
        if base_value:
            lines.append(
                f"{entry['name']}: {metric} = {value:.3f} "
                f"(baseline {float(base_value):.3f}, informational)"
            )
        else:
            lines.append(f"{entry['name']}: {metric} = {value:.3f} (informational)")
    return lines


def run_benchmark(entry: dict, repo_root: str, out_path: str) -> int:
    """Execute one manifest benchmark, writing its JSON to ``out_path``."""
    cmd = [
        sys.executable,
        os.path.join(repo_root, entry["script"]),
        *entry.get("args", []),
        "--out",
        out_path,
    ]
    env = dict(os.environ)
    src = os.path.join(repo_root, "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    print(f"[check_regression] running: {' '.join(cmd)}", flush=True)
    # The benchmark's own exit status reflects its --min-speedup gate, which
    # the manifest disarms; the JSON's `passed` flag is what we grade.
    return subprocess.call(cmd, env=env, cwd=repo_root)


def check(
    manifest: dict,
    *,
    repo_root: str,
    only: Optional[str] = None,
    fresh_files: Optional[Dict[str, str]] = None,
    out_dir: str = ".",
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Run/compare every manifest entry; returns the list of gate failures."""
    fresh_files = fresh_files or {}
    failures: List[str] = []
    os.makedirs(out_dir, exist_ok=True)
    checked = 0
    for entry in manifest["benchmarks"]:
        name = entry["name"]
        if only is not None and name != only:
            continue
        checked += 1
        baseline_path = os.path.join(repo_root, entry["baseline"])
        baseline = None
        if os.path.exists(baseline_path):
            with open(baseline_path, "r", encoding="utf-8") as fh:
                baseline = json.load(fh)
        else:
            print(f"[check_regression] {name}: no committed baseline "
                  f"({entry['baseline']}); gating on absolute floors only")
        fresh_path = fresh_files.get(name)
        if fresh_path is None:
            fresh_path = os.path.join(out_dir, f"FRESH_{name}.json")
            # never grade a stale file from a previous run: a benchmark that
            # crashes before writing its JSON must fail the gate, not pass
            # on yesterday's numbers
            if os.path.exists(fresh_path):
                os.remove(fresh_path)
            run_benchmark(entry, repo_root, fresh_path)
        if not os.path.exists(fresh_path):
            failures.append(
                f"{name} ({entry.get('script', '<unknown script>')}): "
                f"benchmark produced no JSON at {fresh_path}"
            )
            continue
        with open(fresh_path, "r", encoding="utf-8") as fh:
            fresh = json.load(fh)
        entry_failures = compare_entry(
            entry, baseline, fresh, tolerance=tolerance
        )
        for line in wallclock_report(entry, baseline, fresh):
            print(f"[check_regression] {line}")
        if entry_failures:
            failures.extend(entry_failures)
            for f in entry_failures:
                print(f"[check_regression] FAIL {f}")
        else:
            print(f"[check_regression] PASS {name}")
    if checked == 0:
        # a typo'd --only must not turn the blocking gate vacuously green
        failures.append(
            f"--only {only!r} matched no manifest entry "
            f"(have: {', '.join(e['name'] for e in manifest['benchmarks'])})"
        )
        print(f"[check_regression] FAIL {failures[-1]}")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--manifest", default=DEFAULT_MANIFEST)
    parser.add_argument("--only", default=None,
                        help="check a single manifest entry by name")
    parser.add_argument(
        "--fresh",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="use an existing fresh JSON for entry NAME instead of re-running",
    )
    parser.add_argument("--out-dir", default=".",
                        help="directory for freshly produced FRESH_*.json files")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional growth of accuracy metrics")
    parser.add_argument(
        "--informational",
        action="store_true",
        help="report failures but always exit 0 (the perf-smoke mode)",
    )
    args = parser.parse_args(argv)

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    manifest = load_manifest(args.manifest)
    fresh_files: Dict[str, str] = {}
    for spec in args.fresh:
        name, _, path = spec.partition("=")
        if not path:
            parser.error(f"--fresh expects NAME=PATH, got {spec!r}")
        fresh_files[name] = path

    failures = check(
        manifest,
        repo_root=repo_root,
        only=args.only,
        fresh_files=fresh_files,
        out_dir=args.out_dir,
        tolerance=args.tolerance,
    )
    if failures:
        print(f"[check_regression] {len(failures)} gate failure(s)")
        return 0 if args.informational else 1
    print("[check_regression] all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
