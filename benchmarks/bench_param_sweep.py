"""Variational parameter-sweep A/B: incremental retune vs remove+insert vs full.

The paper's strongest real workload is a variational loop (QAOA/VQE): an
optimizer repeatedly retunes gate *parameters* and re-evaluates an
observable.  qTask's ``update_gate`` retune modifier keeps the retuned
gate's stage and the partition-graph topology intact and merely marks the
stage's partitions dirty, so ``update_state`` re-simulates only the retuned
round's downstream cone -- where expressing the same edit as
``remove_gate`` + ``insert_gate`` dismantles and rebuilds the stage's graph
neighbourhood, and a full re-simulation rebuilds the whole simulator.

The workload is a ring-MaxCut QAOA circuit (16 qubits, 3 rounds by default)
driven through a line search over the final round's angles ``(gamma,
beta)``.  Each sweep step retunes every ``rz`` (cost) and ``rx`` (mixer)
gate of that round and evaluates the MaxCut cost Hamiltonian through the
block-wise observables engine.  Four modes run the identical sweep:

* ``retune``   -- qTask + ``update_gate`` (incremental, same stages),
* ``reinsert`` -- qTask + remove+insert of every retuned gate,
* ``full``     -- a fresh qTask simulator per step (full re-simulation),
* ``dense``    -- the Qulacs-like dense baseline (full replay; also the
  1e-10 ground truth for every expectation value).

Run directly for a speedup table plus machine-readable JSON::

    python benchmarks/bench_param_sweep.py [--qubits 16] [--rounds 3]
        [--steps 6] [--block-size 256] [--out BENCH_param_sweep.json]

or under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_param_sweep.py
"""

import argparse
import json
import statistics
import sys
import time

from repro.baselines import QulacsLikeSimulator
from repro.core.circuit import Circuit
from repro.core.gates import Gate
from repro.core.simulator import QTaskSimulator
from repro.observables import maxcut_hamiltonian

BASE_GAMMAS = (0.40, 0.70, 1.00, 0.55, 0.85)
BASE_BETAS = (0.90, 0.60, 0.30, 0.75, 0.45)


def ring_edges(num_qubits):
    """Ring-graph edges split into structurally parallel groups.

    For even qubit counts the wrap-around edge fits the odd group; for odd
    counts it shares qubit ``n-1`` with the odd group's last edge and gets a
    group of its own.
    """
    even = [(q, q + 1) for q in range(0, num_qubits - 1, 2)]
    odd = [(q, q + 1) for q in range(1, num_qubits - 1, 2)]
    groups = [g for g in (even, odd) if g]
    if num_qubits > 2:
        wrap = (num_qubits - 1, 0)
        if num_qubits % 2 == 0:
            odd.append(wrap)
        else:
            groups.append([wrap])
    return groups


def build_qaoa(circuit, num_qubits, rounds, gammas, betas):
    """Ring-MaxCut QAOA with per-round retunable handles.

    Returns ``(gamma_handles, beta_handles)``: per round, the ``rz`` handles
    carrying ``2*gamma`` and the ``rx`` handles carrying ``2*beta``.
    """
    circuit.append_level([Gate("h", (q,)) for q in range(num_qubits)])
    groups = ring_edges(num_qubits)
    gamma_handles, beta_handles = [], []
    for r in range(rounds):
        g, b = 2.0 * gammas[r], 2.0 * betas[r]
        round_gammas = []
        for group in groups:
            circuit.append_level([Gate("cx", e) for e in group])
            _, handles = circuit.append_level(
                [Gate("rz", (e[1],), (g,)) for e in group]
            )
            round_gammas.extend(handles)
            circuit.append_level([Gate("cx", e) for e in group])
        _, handles = circuit.append_level(
            [Gate("rx", (q,), (b,)) for q in range(num_qubits)]
        )
        gamma_handles.append(round_gammas)
        beta_handles.append(handles)
    return gamma_handles, beta_handles


def sweep_angles(gammas, betas, steps):
    """The line-search schedule over the final round's ``(gamma, beta)``."""
    return [
        (gammas[-1] + 0.05 * (s + 1), betas[-1] - 0.04 * (s + 1))
        for s in range(steps)
    ]


def run_retune(num_qubits, rounds, steps, block_size, observable):
    """Incremental mode: ``update_gate`` on the final round, per step."""
    gammas, betas = list(BASE_GAMMAS[:rounds]), list(BASE_BETAS[:rounds])
    circuit = Circuit(num_qubits)
    sim = QTaskSimulator(circuit, block_size=block_size, num_workers=1)
    gamma_handles, beta_handles = build_qaoa(
        circuit, num_qubits, rounds, gammas, betas
    )
    try:
        sim.update_state()
        sim.expectation(observable)  # warm the per-term caches
        elapsed, expectations, affected = 0.0, [], []
        for gamma, beta in sweep_angles(gammas, betas, steps):
            t0 = time.perf_counter()
            for h in gamma_handles[-1]:
                circuit.update_gate(h, 2.0 * gamma)
            for h in beta_handles[-1]:
                circuit.update_gate(h, 2.0 * beta)
            sim.update_state()
            expectations.append(sim.expectation(observable))
            elapsed += time.perf_counter() - t0
            affected.append(sim.last_update.affected_fraction)
        stats = sim.statistics()
    finally:
        sim.close()
    return elapsed, expectations, {"affected_fraction": affected, "stats": stats}


def run_reinsert(num_qubits, rounds, steps, block_size, observable):
    """Remove+insert mode: the same edits expressed without ``update_gate``."""
    gammas, betas = list(BASE_GAMMAS[:rounds]), list(BASE_BETAS[:rounds])
    circuit = Circuit(num_qubits)
    sim = QTaskSimulator(circuit, block_size=block_size, num_workers=1)
    gamma_handles, beta_handles = build_qaoa(
        circuit, num_qubits, rounds, gammas, betas
    )
    try:
        sim.update_state()
        sim.expectation(observable)
        elapsed, expectations = 0.0, []
        for gamma, beta in sweep_angles(gammas, betas, steps):
            t0 = time.perf_counter()
            for handles, angle, name in (
                (gamma_handles[-1], 2.0 * gamma, "rz"),
                (beta_handles[-1], 2.0 * beta, "rx"),
            ):
                for i, h in enumerate(handles):
                    net, qubits = h.net, h.gate.qubits
                    circuit.remove_gate(h)
                    handles[i] = circuit.insert_gate(
                        name, net, *qubits, params=(angle,)
                    )
            sim.update_state()
            expectations.append(sim.expectation(observable))
            elapsed += time.perf_counter() - t0
    finally:
        sim.close()
    return elapsed, expectations, {}


def run_full(num_qubits, rounds, steps, block_size, observable):
    """Full mode: a fresh qTask simulator per sweep step."""
    gammas, betas = list(BASE_GAMMAS[:rounds]), list(BASE_BETAS[:rounds])
    elapsed, expectations = 0.0, []
    for gamma, beta in sweep_angles(gammas, betas, steps):
        t0 = time.perf_counter()
        circuit = Circuit(num_qubits)
        sim = QTaskSimulator(circuit, block_size=block_size, num_workers=1)
        build_qaoa(
            circuit, num_qubits, rounds, gammas[:-1] + [gamma], betas[:-1] + [beta]
        )
        sim.update_state()
        expectations.append(sim.expectation(observable))
        sim.close()
        elapsed += time.perf_counter() - t0
    return elapsed, expectations, {}


def run_dense(num_qubits, rounds, steps, block_size, observable):
    """Dense baseline: Qulacs-like full replay (also the ground truth)."""
    gammas, betas = list(BASE_GAMMAS[:rounds]), list(BASE_BETAS[:rounds])
    circuit = Circuit(num_qubits)
    gamma_handles, beta_handles = build_qaoa(
        circuit, num_qubits, rounds, gammas, betas
    )
    sim = QulacsLikeSimulator(circuit, num_workers=1)
    try:
        sim.update_state()
        elapsed, expectations = 0.0, []
        for gamma, beta in sweep_angles(gammas, betas, steps):
            t0 = time.perf_counter()
            for h in gamma_handles[-1]:
                circuit.update_gate(h, 2.0 * gamma)
            for h in beta_handles[-1]:
                circuit.update_gate(h, 2.0 * beta)
            sim.update_state()
            expectations.append(sim.expectation(observable))
            elapsed += time.perf_counter() - t0
    finally:
        sim.close()
    return elapsed, expectations, {}


MODES = {
    "retune": run_retune,
    "reinsert": run_reinsert,
    "full": run_full,
    "dense": run_dense,
}


def run_ab(num_qubits=16, rounds=3, steps=6, block_size=256):
    """All four modes, cross-checked expectations, and the result record."""
    edges = [e for group in ring_edges(num_qubits) for e in group]
    observable = maxcut_hamiltonian(edges)
    results = {}
    for mode, fn in MODES.items():
        elapsed, expectations, extra = fn(
            num_qubits, rounds, steps, block_size, observable
        )
        results[mode] = {"seconds": elapsed, "expectations": expectations, **extra}
    truth = results["dense"]["expectations"]
    max_diff = max(
        abs(e - t)
        for mode in ("retune", "reinsert", "full")
        for e, t in zip(results[mode]["expectations"], truth)
    )
    retune_t = results["retune"]["seconds"]
    record = {
        "benchmark": "param_sweep",
        "workload": "ring-MaxCut QAOA final-round (gamma, beta) line search",
        "num_qubits": num_qubits,
        "rounds": rounds,
        "sweep_steps": steps,
        "block_size": block_size,
        "expectation_max_abs_diff": max_diff,
        "speedup_vs_full": results["full"]["seconds"] / retune_t,
        "speedup_vs_reinsert": results["reinsert"]["seconds"] / retune_t,
        "speedup_vs_dense": results["dense"]["seconds"] / retune_t,
        "retune_affected_fraction": statistics.mean(
            results["retune"]["affected_fraction"]
        ),
        "expectations": truth,
    }
    for mode in MODES:
        record[f"{mode}_seconds"] = results[mode]["seconds"]
        record[f"{mode}_ms_per_step"] = 1e3 * results[mode]["seconds"] / steps
    record["graph_stats"] = results["retune"]["stats"]
    return record


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - direct script execution only
    pytest = None

if pytest is not None:

    @pytest.mark.parametrize("mode", ["retune", "reinsert", "full"])
    def test_param_sweep(benchmark, mode):
        edges = [e for group in ring_edges(12) for e in group]
        observable = maxcut_hamiltonian(edges)

        def run():
            elapsed, _, _ = MODES[mode](12, 2, 3, 256, observable)
            return elapsed

        benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=1)
        benchmark.extra_info["mode"] = mode


# ---------------------------------------------------------------------------
# direct execution: speedup table + JSON
# ---------------------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--qubits", type=int, default=16)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--steps", type=int, default=6)
    parser.add_argument("--block-size", type=int, default=256)
    parser.add_argument("--repeats", type=int, default=2,
                        help="A/B repetitions; the median speedup is reported")
    parser.add_argument("--out", default="BENCH_param_sweep.json",
                        help="path for the machine-readable JSON result")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="PASS threshold on retune-vs-full speedup")
    args = parser.parse_args(argv)
    if args.rounds > len(BASE_GAMMAS):
        parser.error(f"--rounds must be <= {len(BASE_GAMMAS)}")

    runs = [
        run_ab(args.qubits, args.rounds, args.steps, args.block_size)
        for _ in range(args.repeats)
    ]
    median = statistics.median(r["speedup_vs_full"] for r in runs)
    result = dict(min(runs, key=lambda r: abs(r["speedup_vs_full"] - median)))
    result["speedup_runs"] = [r["speedup_vs_full"] for r in runs]
    result["speedup_vs_full"] = median
    result["min_speedup_target"] = args.min_speedup

    equal = result["expectation_max_abs_diff"] <= 1e-10
    passed = equal and result["speedup_vs_full"] >= args.min_speedup
    result["passed"] = passed

    print(f"{'mode':<10} {'ms/step':>10}")
    for mode in MODES:
        print(f"{mode:<10} {result[f'{mode}_ms_per_step']:>10.2f}")
    print(f"retune vs full:     {result['speedup_vs_full']:.2f}x (runs: "
          + ", ".join(f"{s:.2f}x" for s in result["speedup_runs"])
          + f"; target >= {args.min_speedup:.1f}x)")
    print(f"retune vs reinsert: {result['speedup_vs_reinsert']:.2f}x")
    print(f"retune vs dense:    {result['speedup_vs_dense']:.2f}x")
    print(f"affected fraction per retune step: "
          f"{result['retune_affected_fraction'] * 100:.1f}%")
    print(f"expectation max |diff| vs dense: "
          f"{result['expectation_max_abs_diff']:.2e} (must be <= 1e-10)")
    print("PASS" if passed else "FAIL")

    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    return passed


if __name__ == "__main__":
    sys.exit(0 if main() else 1)
