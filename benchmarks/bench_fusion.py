"""Stage fusion A/B: fused vs unfused ``update_state`` on phase-heavy circuits.

The stage-fusion engine collapses runs of consecutive non-superposition gates
into single diagonal/monomial stages (see ``repro.core.gates.compose_actions``)
and the strided kernels replace per-gate index arithmetic with reshape +
broadcast.  This benchmark measures the combined effect on the two circuit
families where it matters most:

* ``qft-phase``  -- the controlled-phase cascades of the QFT (pure diagonal),
* ``qaoa-phase`` -- QAOA-style alternating RZZ cost layers and X mixer layers
  (diagonal + monomial).

Run directly for a quick speedup table::

    python benchmarks/bench_fusion.py

or under pytest-benchmark for statistically robust numbers::

    PYTHONPATH=src python -m pytest benchmarks/bench_fusion.py
"""

import statistics
import sys
import time

from repro.circuits.blocksets import qft_gates
from repro.core.circuit import Circuit
from repro.core.gates import Gate
from repro.core.simulator import QTaskSimulator
from repro.qasm.levelize import levelize


def qft_phase_levels(num_qubits):
    """The QFT's controlled-phase cascades, without the Hadamards.

    One gate per net (the natural Table-II sequential-insertion pattern):
    each cascade then stays contiguous in stage order, which is what lets
    fusion collapse it; levelize() would interleave the cascades instead.
    """
    return [[g] for g in qft_gates(range(num_qubits), do_swaps=False)
            if g.name != "h"]


def qaoa_phase_levels(num_qubits, layers=6):
    """QAOA-style circuit: RZZ cost layers alternating with X mixer layers."""
    gates = []
    for layer in range(layers):
        angle = 0.3 + 0.1 * layer
        for i in range(num_qubits - 1):
            gates.append(Gate("rzz", (i, i + 1), (angle,)))
        for i in range(num_qubits):
            gates.append(Gate("x", (i,)))
    return levelize(gates)


#: (name, qubits, generator, max_fused_qubits).  Wider fusion caps pay off
#: on phase-heavy circuits: runs of cp/rzz gates share qubits, so a cap of
#: 6-8 collapses whole cascades into one diagonal stage.
CIRCUITS = [
    ("qft-phase", 14, qft_phase_levels, 6),
    ("qaoa-phase", 14, qaoa_phase_levels, 8),
]


def build(num_qubits, levels, *, fusion, max_fused_qubits=4, block_size=256):
    ckt = Circuit(num_qubits)
    sim = QTaskSimulator(ckt, block_size=block_size, num_workers=1,
                         fusion=fusion, max_fused_qubits=max_fused_qubits)
    ckt.from_levels(levels)
    return ckt, sim


def time_update(num_qubits, levels, *, fusion, max_fused_qubits=4,
                block_size=256):
    """Wall-clock seconds of a single full ``update_state``."""
    ckt, sim = build(num_qubits, levels, fusion=fusion,
                     max_fused_qubits=max_fused_qubits, block_size=block_size)
    try:
        start = time.perf_counter()
        sim.update_state()
        return time.perf_counter() - start, sim.statistics()
    finally:
        sim.close()


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - direct script execution only
    pytest = None

if pytest is not None:

    @pytest.mark.parametrize("entry", CIRCUITS, ids=lambda e: e[0])
    @pytest.mark.parametrize("fusion", [False, True], ids=["unfused", "fused"])
    def test_fusion_update(benchmark, entry, fusion):
        name, n, gen, mfq = entry
        levels = gen(n)

        def run():
            elapsed, _ = time_update(n, levels, fusion=fusion,
                                     max_fused_qubits=mfq)
            return elapsed

        benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
        benchmark.extra_info["circuit"] = name
        benchmark.extra_info["fusion"] = fusion


# ---------------------------------------------------------------------------
# direct execution: print the speedup table
# ---------------------------------------------------------------------------


def main():
    print(f"{'circuit':<12} {'qubits':>6} {'gates':>6} {'stages':>14} "
          f"{'unfused (s)':>12} {'fused (s)':>10} {'speedup':>8}")
    worst = float("inf")
    for name, n, gen, mfq in CIRCUITS:
        levels = gen(n)
        gates = sum(len(l) for l in levels)
        # interleave the two configurations so transient machine load hits
        # both sides equally, and compare medians (min is too sensitive to
        # one lucky run in the denominator)
        unfused_times, fused_times, stats = [], [], None
        for _ in range(7):
            unfused_times.append(time_update(n, levels, fusion=False)[0])
            t, stats = time_update(n, levels, fusion=True,
                                   max_fused_qubits=mfq)
            fused_times.append(t)
        best_unfused = statistics.median(unfused_times)
        best_fused = statistics.median(fused_times)
        speedup = best_unfused / best_fused
        worst = min(worst, speedup)
        stages = f"{gates}->{stats['num_stages']}"
        print(f"{name:<12} {n:>6} {gates:>6} {stages:>14} "
              f"{best_unfused:>12.4f} {best_fused:>10.4f} "
              f"{speedup:>7.2f}x")
    passed = worst >= 1.5
    print(f"minimum speedup: {worst:.2f}x "
          f"({'PASS' if passed else 'FAIL'} >= 1.5x target)")
    return passed


if __name__ == "__main__":
    sys.exit(0 if main() else 1)
