"""Telemetry disabled-path overhead gate on the incremental-update cascade.

The telemetry subsystem (``repro.telemetry``) instruments the hot update
path: every stage task carries a trace context, every chunk checks the
tracer's enabled flag, and every update feeds one histogram observation.
With tracing *disabled* (the default) each site must cost a flag check and
nothing else -- no span allocation, no attribute formatting.  This bench
verifies that budget holds.

Two measurements:

* ``overhead_fraction`` (**gating**): the disabled-path cost model.  A/B
  timing of disabled-vs-disabled is pure noise (both sides run identical
  code), so the bench instead measures the *actual guard bundle* a stage
  task pays on the disabled path (ambient-telemetry activate/deactivate,
  ``trace_context`` setattr/getattr, the tracer flag check, a null-span
  acquire) with a tight microbench, multiplies by a conservative count of
  guard sites per update taken from the simulator's own plan counters, and
  divides by the measured per-update wall time of the same cascade.  The
  gate asserts this fraction stays at or below ``--max-overhead`` (2%).

* ``tracing_overhead_fraction`` (informational): median per-update time
  with tracing *enabled* vs. disabled -- what a user pays to turn spans on.

Correctness is verified: the final states of the traced and untraced runs
must agree to 1e-10 (``state_max_abs_diff``), i.e. instrumentation must
never perturb simulation results.

Run directly::

    python benchmarks/bench_telemetry_overhead.py [--qubits 12]
        [--stages 120] [--block-size 16] [--cycles 6]
        [--max-overhead 0.02] [--out BENCH_telemetry.json]
"""

import argparse
import json
import statistics
import sys
import time

import numpy as np

from repro.core.circuit import Circuit
from repro.core.gates import Gate
from repro.core.simulator import QTaskSimulator
from repro.telemetry import session as tsession

#: gates of the low-qubit cascade; rz stages are the retune targets
_CASCADE = ["rz", "x", "rz", "y"]


def build_cascade(num_qubits, num_stages, *, block_size, tracing):
    """H wall, then ``num_stages`` single-qubit gates on the low qubits."""
    ckt = Circuit(num_qubits)
    levels = [[Gate("h", (q,)) for q in range(num_qubits)]]
    for i in range(num_stages):
        name = _CASCADE[i % len(_CASCADE)]
        qubit = i % 3
        params = (0.1 + 0.001 * i,) if name == "rz" else ()
        levels.append([Gate(name, (qubit,), params)])
    ckt.from_levels(levels)
    sim = QTaskSimulator(
        ckt,
        block_size=block_size,
        num_workers=1,
        kernel_backend="numpy",
        tracing=tracing,
    )
    return ckt, sim


def run_mode(num_qubits, num_stages, *, block_size, cycles, tracing):
    """Build + head-retune update cycles; returns timings, state, stats."""
    ckt, sim = build_cascade(
        num_qubits, num_stages, block_size=block_size, tracing=tracing
    )
    try:
        sim.update_state()
        handle = next(h for h in ckt.gates() if h.gate.name == "rz")
        per_update = []
        for cycle in range(cycles):
            ckt.update_gate(handle, 0.5 + 0.01 * cycle)
            t0 = time.perf_counter()
            sim.update_state()
            per_update.append(time.perf_counter() - t0)
        stats = sim.statistics()
        spans = len(sim.telemetry.tracer.spans())
        return per_update, sim.state(), stats, spans
    finally:
        sim.close()


def measure_guard_ns(iterations=200_000):
    """Nanoseconds one disabled-path guard bundle costs, measured directly.

    The bundle reproduces everything a stage task pays when tracing is off:
    ambient-telemetry activate/current/deactivate, the ``trace_context``
    setattr + getattr pair, the tracer ``enabled`` flag check, and a
    disabled ``span()`` acquire (which returns the shared null span).
    """
    from repro.telemetry import Telemetry

    tel = Telemetry(tracing=False)
    tracer = tel.tracer

    def task_fn():
        return None

    t0 = time.perf_counter()
    for _ in range(iterations):
        task_fn.trace_context = (tel, None)
        ctx = getattr(task_fn, "trace_context", None)
        prev = tsession.activate(ctx[0])
        if tracer.enabled:
            pass
        with tracer.span("guard"):
            pass
        tsession.deactivate(prev)
    elapsed = time.perf_counter() - t0
    return 1e9 * elapsed / iterations


def run_ab(num_qubits=12, num_stages=120, block_size=16, cycles=6):
    """One repetition: disabled + enabled runs, the cost model, equality."""
    off_times, off_state, off_stats, _ = run_mode(
        num_qubits, num_stages,
        block_size=block_size, cycles=cycles, tracing=False,
    )
    on_times, on_state, _, spans = run_mode(
        num_qubits, num_stages,
        block_size=block_size, cycles=cycles, tracing=True,
    )

    off_median = statistics.median(off_times)
    on_median = statistics.median(on_times)
    state_diff = float(np.abs(on_state - off_state).max())

    # Guard sites per update, from the simulator's own plan counters.  Every
    # chunk is one executor task carrying one guard bundle; each chunk also
    # pays an in-task flag check, and the update wrapper itself adds a
    # handful of top-level checks.  7x chunks + 8 is deliberately generous
    # (chunks >= stage tasks, and each task pays ~5 guard ops).
    updates = max(1, off_stats["updates_planned"])
    chunks_per_update = off_stats["plan_chunks"] / updates
    guards_per_update = 8 + 7.0 * chunks_per_update

    guard_ns = measure_guard_ns()
    overhead_fraction = (guard_ns * 1e-9 * guards_per_update) / off_median
    tracing_overhead = (on_median - off_median) / off_median

    return {
        "benchmark": "telemetry_overhead",
        "num_qubits": num_qubits,
        "num_stages": num_stages,
        "block_size": block_size,
        "edit_cycles": cycles,
        "disabled_ms_per_update": 1e3 * off_median,
        "enabled_ms_per_update": 1e3 * on_median,
        "guard_ns": guard_ns,
        "guards_per_update": guards_per_update,
        "chunks_per_update": chunks_per_update,
        "overhead_fraction": overhead_fraction,
        "tracing_overhead_fraction": tracing_overhead,
        "spans_recorded": spans,
        "state_max_abs_diff": state_diff,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--qubits", type=int, default=12)
    parser.add_argument("--stages", type=int, default=120)
    parser.add_argument("--block-size", type=int, default=16)
    parser.add_argument("--cycles", type=int, default=6)
    parser.add_argument("--repeats", type=int, default=3,
                        help="repetitions; the median overhead is reported")
    parser.add_argument("--max-overhead", type=float, default=0.02,
                        help="PASS threshold on the disabled-path fraction")
    parser.add_argument("--out", default="BENCH_telemetry.json",
                        help="path for the machine-readable JSON result")
    args = parser.parse_args(argv)

    runs = [
        run_ab(args.qubits, args.stages, args.block_size, args.cycles)
        for _ in range(args.repeats)
    ]
    median = statistics.median(r["overhead_fraction"] for r in runs)
    result = dict(min(
        runs, key=lambda r: abs(r["overhead_fraction"] - median)
    ))
    result["overhead_runs"] = [r["overhead_fraction"] for r in runs]
    result["overhead_fraction"] = median
    result["max_overhead_target"] = args.max_overhead

    equal = result["state_max_abs_diff"] <= 1e-10
    passed = equal and median <= args.max_overhead
    result["passed"] = passed

    print(f"{'path':<16} {'ms/update':>10}")
    print(f"{'disabled':<16} {result['disabled_ms_per_update']:>10.3f}")
    print(f"{'tracing on':<16} {result['enabled_ms_per_update']:>10.3f}")
    print(f"disabled-path overhead: {100 * median:.4f}% of an update "
          f"({result['guard_ns']:.0f} ns/guard x "
          f"{result['guards_per_update']:.0f} guards; "
          f"target <= {100 * args.max_overhead:.1f}%)")
    print(f"tracing-enabled overhead: "
          f"{100 * result['tracing_overhead_fraction']:.2f}% (informational, "
          f"{result['spans_recorded']} spans recorded)")
    print(f"state max |diff| traced vs untraced: "
          f"{result['state_max_abs_diff']:.2e} (must be <= 1e-10)")
    print("PASS" if passed else "FAIL")

    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    return passed


if __name__ == "__main__":
    sys.exit(0 if main() else 1)
