"""Figure 16: incremental simulation under mixed insertions and removals.

Each iteration removes the gates of a random populated level and re-inserts a
previously removed level, then calls update -- 25 iterations per run (the
paper uses 50 on larger hardware).
"""

import pytest

from repro.bench.workloads import mixed_sweep

from conftest import FIGURE_CIRCUITS, HEAD_TO_HEAD, circuit_id, make_factory

ITERATIONS = 25


@pytest.mark.parametrize("entry", FIGURE_CIRCUITS, ids=circuit_id)
@pytest.mark.parametrize("simulator", HEAD_TO_HEAD)
def test_fig16_mixed_modifiers(benchmark, levels_cache, entry, simulator):
    name, qubits = entry
    n, levels = levels_cache(name, qubits)
    factory = make_factory(simulator, num_workers=1)

    def run():
        return mixed_sweep(n, levels, factory, iterations=ITERATIONS, seed=3,
                           circuit_name=name)

    result = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info["circuit"] = name
    benchmark.extra_info["iterations"] = ITERATIONS
    benchmark.extra_info["mean_iteration_ms"] = (
        1e3 * result.total_seconds / ITERATIONS
    )
