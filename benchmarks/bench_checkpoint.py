"""Checkpoint A/B: restoring a session vs. re-simulating it from scratch.

Durable checkpoints (``repro.core.snapshot``) exist so a crashed or
migrated session resumes without redoing the simulation.  This benchmark
quantifies that claim on the deep-cascade workload the incremental
simulator targets: build a deep circuit, simulate it once, checkpoint it,
then compare

* **restore** -- ``restore_simulator(path)`` + ``state()`` (pure I/O and
  reconstruction; no kernels run), against
* **re-simulate** -- rebuilding the circuit, re-attaching a fresh
  simulator (which re-derives the whole stage table, including fusion)
  and paying the full ``update_state``.

The workload runs with gate fusion on: the checkpoint then captures the
*derived* stage structure -- a handful of fused stages instead of
hundreds of gate stages -- so restore skips both the incremental
fusion re-derivation and the simulation itself, while the checkpoint
stays small (few stages => few block payloads).

Correctness is part of the benchmark: the restored state must match the
re-simulated state to 1e-10, and an incremental edit applied after restore
must also match a fresh dense reference.

Run directly for a timing table plus machine-readable JSON::

    python benchmarks/bench_checkpoint.py [--qubits 14] [--stages 160]
        [--block-size 64] [--repeats 3] [--out BENCH_checkpoint.json]

or under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_checkpoint.py
"""

import argparse
import json
import os
import statistics
import sys
import tempfile
import time

import numpy as np

from repro.core.circuit import Circuit
from repro.core.gates import Gate
from repro.core.simulator import QTaskSimulator
from repro.core.snapshot import restore_simulator, save_checkpoint

#: gates of the low-qubit cascade (same family as bench_plan_batch)
_CASCADE = ["rz", "x", "rz", "y"]


def build_circuit(num_qubits, num_stages):
    """H wall, then ``num_stages`` single-qubit gates on the low qubits."""
    ckt = Circuit(num_qubits)
    levels = [[Gate("h", (q,)) for q in range(num_qubits)]]
    for i in range(num_stages):
        name = _CASCADE[i % len(_CASCADE)]
        params = (0.1 + 0.001 * i,) if name == "rz" else ()
        levels.append([Gate(name, (i % 3,), params)])
    ckt.from_levels(levels)
    return ckt


def make_sim(num_qubits, num_stages, block_size):
    """Build circuit + simulator (fusion on: the stage table is derived)."""
    return QTaskSimulator(
        build_circuit(num_qubits, num_stages),
        block_size=block_size,
        num_workers=1,
        fusion=True,
        max_fused_qubits=4,
    )


def run_ab(num_qubits=14, num_stages=160, block_size=64):
    """One full A/B: simulate, checkpoint, restore, re-simulate, verify."""
    fd, path = tempfile.mkstemp(suffix=".qtckpt")
    os.close(fd)
    try:
        sim = make_sim(num_qubits, num_stages, block_size)
        try:
            t0 = time.perf_counter()
            sim.update_state()
            simulate_s = time.perf_counter() - t0

            t0 = time.perf_counter()
            save_checkpoint(sim, path)
            save_s = time.perf_counter() - t0
            checkpoint_bytes = os.path.getsize(path)
        finally:
            sim.close()

        t0 = time.perf_counter()
        restored = restore_simulator(path, num_workers=1)
        restored_state = restored.state()
        restore_s = time.perf_counter() - t0

        # re-simulate pays everything a crashed session would: rebuilding
        # the circuit, re-attaching (stage derivation + fusion) and the
        # full update
        t0 = time.perf_counter()
        resim = make_sim(num_qubits, num_stages, block_size)
        try:
            resim.update_state()
            resim_state = resim.state()
            resim_s = time.perf_counter() - t0
        finally:
            resim.close()
        state_diff = float(np.abs(restored_state - resim_state).max())

        # resume: one incremental retune on the restored session must run
        # and stay exact (the whole point of checkpoints is to keep going)
        try:
            handle = next(
                h for h in restored.circuit.gates() if h.gate.name == "rz"
            )
            restored.circuit.update_gate(handle, 0.777)
            t0 = time.perf_counter()
            report = restored.update_state()
            resume_s = time.perf_counter() - t0
            resumed_incremental = bool(report.was_incremental)
        finally:
            restored.close()
    finally:
        if os.path.exists(path):
            os.remove(path)

    return {
        "benchmark": "checkpoint",
        "num_qubits": num_qubits,
        "num_stages": num_stages,
        "block_size": block_size,
        "simulate_seconds": simulate_s,
        "save_seconds": save_s,
        "restore_seconds": restore_s,
        "resimulate_seconds": resim_s,
        "resume_update_seconds": resume_s,
        "resumed_incremental": resumed_incremental,
        "checkpoint_bytes": checkpoint_bytes,
        "speedup_restore_vs_resim": (
            resim_s / restore_s if restore_s > 0 else float("inf")
        ),
        "state_max_abs_diff": state_diff,
    }


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - direct script execution only
    pytest = None

if pytest is not None:

    def test_checkpoint_restore_vs_resim(benchmark):
        def run():
            return run_ab(num_qubits=10, num_stages=60, block_size=16)

        result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
        assert result["state_max_abs_diff"] <= 1e-10
        benchmark.extra_info["checkpoint_bytes"] = result["checkpoint_bytes"]


# ---------------------------------------------------------------------------
# direct execution: timing table + JSON
# ---------------------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--qubits", type=int, default=14)
    parser.add_argument("--stages", type=int, default=160)
    parser.add_argument("--block-size", type=int, default=64)
    parser.add_argument("--repeats", type=int, default=3,
                        help="A/B repetitions; the median speedup is reported")
    parser.add_argument("--out", default="BENCH_checkpoint.json",
                        help="path for the machine-readable JSON result")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="PASS threshold on restore vs re-simulate")
    args = parser.parse_args(argv)

    runs = [
        run_ab(args.qubits, args.stages, args.block_size)
        for _ in range(args.repeats)
    ]
    median = statistics.median(r["speedup_restore_vs_resim"] for r in runs)
    result = dict(min(
        runs, key=lambda r: abs(r["speedup_restore_vs_resim"] - median)
    ))
    result["speedup_runs"] = [r["speedup_restore_vs_resim"] for r in runs]
    result["speedup_restore_vs_resim"] = median
    result["min_speedup_target"] = args.min_speedup

    equal = result["state_max_abs_diff"] <= 1e-10
    passed = equal and result["resumed_incremental"] and median >= args.min_speedup
    result["passed"] = passed

    print(f"{'path':<14} {'seconds':>10}")
    print(f"{'simulate':<14} {result['simulate_seconds']:>10.4f}")
    print(f"{'save':<14} {result['save_seconds']:>10.4f}")
    print(f"{'restore':<14} {result['restore_seconds']:>10.4f}")
    print(f"{'re-simulate':<14} {result['resimulate_seconds']:>10.4f}")
    print(f"{'resume-edit':<14} {result['resume_update_seconds']:>10.4f}")
    print(f"checkpoint size: {result['checkpoint_bytes']} bytes")
    print(f"restore speedup vs re-simulate: {median:.2f}x (runs: "
          + ", ".join(f"{s:.2f}x" for s in result["speedup_runs"])
          + f"; target >= {args.min_speedup:.1f}x)")
    print(f"state max |diff|: {result['state_max_abs_diff']:.2e} "
          f"(must be <= 1e-10); resume incremental: "
          f"{result['resumed_incremental']}")
    print("PASS" if passed else "FAIL")

    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
