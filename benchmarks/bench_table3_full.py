"""Table III (full-simulation columns): one simulation call per circuit.

For each benchmark circuit and each simulator, measures the paper's *full*
protocol: construct the entire circuit, then issue a single ``update_state``.
"""

import pytest

from repro.bench.workloads import full_simulation

from conftest import BENCH_CIRCUITS, SIMULATORS, circuit_id, make_factory


@pytest.mark.parametrize("entry", BENCH_CIRCUITS, ids=circuit_id)
@pytest.mark.parametrize("simulator", SIMULATORS)
def test_table3_full(benchmark, levels_cache, entry, simulator):
    name, qubits = entry
    n, levels = levels_cache(name, qubits)
    factory = make_factory(simulator, num_workers=1)

    def run():
        return full_simulation(n, levels, factory, circuit_name=name)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["circuit"] = name
    benchmark.extra_info["qubits"] = n
    benchmark.extra_info["gates"] = sum(len(l) for l in levels)
    benchmark.extra_info["peak_memory_bytes"] = result.peak_allocated_bytes
