#!/usr/bin/env python3
"""Docs verifier: intra-repo links + executable code blocks.

Two checks, both hard failures (this runs as a blocking CI job and inside
tier-1 via ``tests/test_docs.py``):

1. **Links.** Every relative markdown link in ``docs/**/*.md`` and
   ``README.md`` must point at a file or directory that exists in the
   repo (``#fragment`` suffixes are stripped; ``http(s)``/``mailto``
   targets are skipped).  Docs that point at moved or deleted files are
   worse than no docs.

2. **Code blocks.** Every fenced ``python`` block in ``docs/service.md``
   is executed in its own interpreter (``PYTHONPATH=src``) and must exit
   0 -- the service guide's examples are a contract, not an illustration.
   ``python`` blocks in the *other* docs are syntax-checked with
   ``compile()`` so a typo still fails fast without the cost (or side
   effects) of running fragments that are illustrative by design.

Run from the repo root::

    python tools/check_docs.py [--skip-exec]
"""

import argparse
import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: documents whose python blocks are executed, not just compiled
EXECUTED_DOCS = ("docs/service.md",)

#: inline markdown links: [text](target)
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: fenced code blocks: ```lang\n...\n```
_FENCE_RE = re.compile(r"^```([A-Za-z0-9_+-]*)[ \t]*$")

_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def _strip_fences(text):
    """Remove fenced code blocks so links inside code are not checked."""
    out, in_fence = [], False
    for line in text.splitlines():
        if _FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def check_links(md_path):
    """Return a list of broken-link error strings for one markdown file."""
    errors = []
    text = _strip_fences(md_path.read_text(encoding="utf-8"))
    for target in _LINK_RE.findall(text):
        if target.startswith(_EXTERNAL_PREFIXES):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:  # pure in-page anchor
            continue
        resolved = (md_path.parent / path_part).resolve()
        try:
            resolved.relative_to(REPO_ROOT)
        except ValueError:
            errors.append(f"{md_path.relative_to(REPO_ROOT)}: link escapes "
                          f"the repo: {target}")
            continue
        if not resolved.exists():
            errors.append(f"{md_path.relative_to(REPO_ROOT)}: broken link "
                          f"{target} -> {resolved.relative_to(REPO_ROOT)}")
    return errors


def python_blocks(md_path):
    """Yield (start_line, source) for every fenced python block."""
    lines = md_path.read_text(encoding="utf-8").splitlines()
    block, lang, start, indent = None, None, 0, ""
    for lineno, line in enumerate(lines, 1):
        match = _FENCE_RE.match(line.strip())
        if match and block is None:
            lang, block, start = match.group(1).lower(), [], lineno + 1
            # blocks may be indented as a whole (e.g. under a list item);
            # strip exactly the fence's indentation from every line
            indent = line[: len(line) - len(line.lstrip())]
        elif match is not None and block is not None:
            if lang == "python":
                yield start, "\n".join(block) + "\n"
            block, lang = None, None
        elif block is not None:
            if indent and line.startswith(indent):
                line = line[len(indent):]
            block.append(line)


def check_blocks(md_path, *, execute):
    """Compile (and optionally run) every python block of one document."""
    errors = []
    rel = md_path.relative_to(REPO_ROOT)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    for start, source in python_blocks(md_path):
        label = f"{rel}:{start}"
        try:
            compile(source, label, "exec")
        except SyntaxError as exc:
            errors.append(f"{label}: syntax error in python block: {exc}")
            continue
        if not execute:
            continue
        proc = subprocess.run(
            [sys.executable, "-c", source],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True,
            timeout=300,
        )
        if proc.returncode != 0:
            tail = (proc.stderr or proc.stdout).strip().splitlines()[-12:]
            errors.append(f"{label}: python block exited "
                          f"{proc.returncode}:\n  " + "\n  ".join(tail))
        else:
            print(f"[check_docs] ran {label} ok")
    return errors


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--skip-exec", action="store_true",
                        help="syntax-check only; do not run service.md blocks")
    args = parser.parse_args(argv)

    documents = sorted((REPO_ROOT / "docs").rglob("*.md"))
    documents.append(REPO_ROOT / "README.md")

    errors = []
    for md_path in documents:
        errors.extend(check_links(md_path))
    executed = {REPO_ROOT / rel for rel in EXECUTED_DOCS}
    for md_path in documents:
        errors.extend(check_blocks(
            md_path, execute=(not args.skip_exec and md_path in executed)
        ))

    if errors:
        print(f"[check_docs] {len(errors)} problem(s):", file=sys.stderr)
        for err in errors:
            print(f"  - {err}", file=sys.stderr)
        return 1
    print(f"[check_docs] {len(documents)} documents ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
