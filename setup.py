"""Compatibility shim: enables legacy editable installs (``pip install -e .``)
on environments whose setuptools/pip lack PEP 660 support (no ``wheel``
package).  All metadata lives in ``pyproject.toml``."""

from setuptools import setup

setup()
