"""Tests for the benchmark circuit generators and the catalog."""

import math

import numpy as np
import pytest

from repro.circuits import (
    CATALOG,
    benchmark_names,
    bernstein_vazirani,
    build_benchmark,
    build_levels,
    counterfeit_coin,
    cuccaro_adder,
    deep_neural_network,
    get_benchmark,
    ghz_levels,
    grover_sat,
    ising_model,
    inverse_qft_gates,
    multiplier,
    phase_estimation,
    qaoa_maxcut,
    qft_gates,
    quantum_fourier_transform,
    ripple_adder,
    shor_error_correction,
    shor_factor_21,
    simons_algorithm,
    toffoli_gates,
    vqe_uccsd,
    bb84,
)
from repro.core.circuit import Circuit
from repro.core.gates import Gate, embed_gate_matrix
from repro.core.simulator import QTaskSimulator
from repro.qasm import levelize

from ..conftest import assert_states_close, reference_state


def simulate_levels(n, levels):
    ckt = Circuit(n)
    ckt.from_levels(levels)
    sim = QTaskSimulator(ckt, block_size=16, num_workers=1)
    sim.update_state()
    state = sim.state()
    sim.close()
    return state


# ---------------------------------------------------------------------------
# building blocks
# ---------------------------------------------------------------------------


def test_qft_matches_dft_matrix():
    """QFT|x> amplitudes are the DFT of the computational basis state."""
    n = 3
    levels = levelize(qft_gates(range(n)))
    state = reference_state(n, levels)       # input |000>
    expected = np.ones(8, dtype=complex) / math.sqrt(8)
    assert_states_close(state, expected)


def test_qft_then_inverse_is_identity():
    n = 4
    gates = qft_gates(range(n)) + inverse_qft_gates(range(n))
    state = reference_state(n, levelize(gates))
    expected = np.zeros(16, dtype=complex)
    expected[0] = 1
    assert_states_close(state, expected)


def test_qft_decompose_cp_is_equivalent():
    n = 3
    plain = reference_state(n, levelize(qft_gates(range(n))))
    compiled = reference_state(n, levelize(qft_gates(range(n), decompose_cp=True)))
    # equal up to global phase
    k = np.argmax(np.abs(plain))
    assert_states_close(compiled, plain * (compiled[k] / plain[k]))


def test_toffoli_decomposition_matches_ccx():
    n = 3
    plain = toffoli_gates(0, 1, 2)
    decomposed = toffoli_gates(0, 1, 2, decompose=True)
    u1 = np.eye(8, dtype=complex)
    for g in plain:
        u1 = embed_gate_matrix(g, n) @ u1
    u2 = np.eye(8, dtype=complex)
    for g in decomposed:
        u2 = embed_gate_matrix(g, n) @ u2
    # equal up to global phase
    phase = u1[0, 0] / u2[0, 0] if abs(u2[0, 0]) > 1e-12 else 1.0
    np.testing.assert_allclose(u1, u2 * phase, atol=1e-9)


def test_ghz_levels_produce_ghz_state():
    n = 4
    state = reference_state(n, ghz_levels(n))
    expected = np.zeros(16, dtype=complex)
    expected[0] = expected[-1] = 1 / math.sqrt(2)
    assert_states_close(state, expected)


def test_cuccaro_adder_adds_classical_inputs():
    """a=3, b=2 -> b register ends holding (a+b) mod 8 = 5."""
    bits = 3
    n = 2 * bits + 2
    a_q = [1, 2, 3]
    b_q = [4, 5, 6]
    prep = [Gate("x", (a_q[0],)), Gate("x", (a_q[1],))]        # a = 3
    prep += [Gate("x", (b_q[1],))]                             # b = 2
    gates = prep + cuccaro_adder(a_q, b_q, 0, 7)
    state = reference_state(n, levelize(gates))
    outcome = int(np.argmax(np.abs(state)))
    b_out = sum(((outcome >> q) & 1) << i for i, q in enumerate(b_q))
    a_out = sum(((outcome >> q) & 1) << i for i, q in enumerate(a_q))
    assert b_out == 5
    assert a_out == 3          # a register is restored
    assert (outcome >> 7) & 1 == 0   # no carry out of 3 bits for 3+2


# ---------------------------------------------------------------------------
# algorithm semantics on small instances
# ---------------------------------------------------------------------------


def test_bernstein_vazirani_reveals_secret():
    n = 5
    secret = 0b1011
    levels = levelize(bernstein_vazirani(n, secret=secret))
    state = reference_state(n, levels)
    probs = np.abs(state) ** 2
    # data qubits 0..3 should measure exactly the secret (ancilla in |->)
    data_outcomes = {}
    for idx, p in enumerate(probs):
        data = idx & 0b1111
        data_outcomes[data] = data_outcomes.get(data, 0.0) + p
    best = max(data_outcomes, key=data_outcomes.get)
    assert best == secret
    assert data_outcomes[best] > 0.99


def test_simons_algorithm_output_orthogonal_to_secret():
    n = 6
    secret = 0b101
    levels = levelize(simons_algorithm(n, secret=secret))
    state = reference_state(n, levels)
    probs = np.abs(state) ** 2
    for idx, p in enumerate(probs):
        if p < 1e-9:
            continue
        y = idx & 0b111          # measured input register
        parity = bin(y & secret).count("1") % 2
        assert parity == 0       # y . s = 0 for every observable outcome


def test_phase_estimation_peaks_at_encoded_phase():
    n = 5                        # 4 counting qubits + 1 eigenstate
    phase = 0.3125               # 5/16, exactly representable on 4 bits
    levels = levelize(phase_estimation(n, phase=phase))
    state = reference_state(n, levels)
    probs = np.abs(state) ** 2
    counting = {}
    for idx, p in enumerate(probs):
        counting[idx & 0b1111] = counting.get(idx & 0b1111, 0.0) + p
    best = max(counting, key=counting.get)
    assert best == 5             # 5/16 = 0.3125
    assert counting[best] > 0.9


def test_grover_sat_amplifies_some_state():
    n = 6
    levels = levelize(grover_sat(n, iterations=2, seed=3))
    state = reference_state(n, levels)
    probs = np.abs(state) ** 2
    assert probs.max() > 2.5 / (1 << 4)   # amplified well above uniform
    assert abs(probs.sum() - 1) < 1e-9


def test_counterfeit_coin_preserves_norm():
    state = reference_state(7, levelize(counterfeit_coin(7)))
    assert abs(np.linalg.norm(state) - 1) < 1e-9


def test_bb84_contains_no_two_qubit_gates():
    gates = bb84(8)
    assert all(len(g.qubits) == 1 for g in gates)


def test_ising_model_norm_and_gate_mix():
    gates = ising_model(6, steps=3)
    assert any(g.name == "cx" for g in gates)
    assert any(g.name == "rx" for g in gates)
    state = reference_state(6, levelize(gates))
    assert abs(np.linalg.norm(state) - 1) < 1e-9


def test_vqe_uccsd_is_deep_and_cnot_heavy():
    gates = vqe_uccsd(8, excitations=50)
    names = [g.name for g in gates]
    assert names.count("cx") > 50
    assert names.count("rz") >= 50


def test_dnn_layer_structure():
    gates = deep_neural_network(4, layers=2, seed=1)
    assert sum(1 for g in gates if g.name == "cx") == 2 * 3
    assert sum(1 for g in gates if g.name in ("ry", "rz")) == 2 * (4 * 2 + 4)


def test_qaoa_and_multiplier_and_seca_build():
    assert len(qaoa_maxcut(6, rounds=2)) > 10
    assert len(multiplier(9)) > 20
    assert len(shor_error_correction(11, rounds=2)) > 20
    assert len(shor_factor_21(9)) > 20
    assert len(ripple_adder(8)) > 10


def test_generators_are_deterministic():
    assert bb84(8) == bb84(8)
    assert vqe_uccsd(6, excitations=10) == vqe_uccsd(6, excitations=10)
    assert grover_sat(8) == grover_sat(8)


# ---------------------------------------------------------------------------
# the catalog
# ---------------------------------------------------------------------------


def test_catalog_has_the_20_table3_circuits():
    assert len(CATALOG) == 20
    assert set(benchmark_names("large")) == {
        "big_adder", "big_bv", "big_cc", "big_ising", "big_qft",
    }


def test_catalog_qubit_counts_match_table3():
    expected = {
        "dnn": 8, "adder": 10, "bb84": 8, "bv": 14, "ising": 10,
        "multiplier": 15, "multiplier_35": 13, "qaoa": 6, "qf21": 15,
        "qft": 15, "qpe": 9, "sat": 11, "seca": 11, "simons": 6,
        "vqe_uccsd": 8, "big_adder": 18, "big_bv": 19, "big_cc": 18,
        "big_ising": 26, "big_qft": 20,
    }
    for name, qubits in expected.items():
        assert CATALOG[name].qubits == qubits


def test_get_benchmark_unknown_name():
    with pytest.raises(KeyError):
        get_benchmark("nonexistent")


@pytest.mark.parametrize("name", [n for n in benchmark_names() if CATALOG[n].qubits <= 15])
def test_catalog_circuits_build_and_respect_net_invariant(name):
    ckt = build_benchmark(name)
    assert ckt.num_qubits == CATALOG[name].qubits
    assert ckt.num_gates > 0
    for net in ckt.nets():
        used = [q for h in net.gates for q in h.gate.qubits]
        assert len(used) == len(set(used)), f"net dependency violated in {name}"


@pytest.mark.parametrize("name", ["bv", "simons", "qaoa", "bb84", "adder", "qpe"])
def test_catalog_small_circuits_simulate_consistently(name):
    """qTask and the dense reference agree on the catalog's small circuits."""
    qubits, levels = build_levels(name)
    if qubits > 10:
        pytest.skip("reference simulation too large")
    state = simulate_levels(qubits, levels)
    assert_states_close(state, reference_state(qubits, levels), atol=1e-8)


def test_build_levels_supports_resizing():
    qubits, levels = build_levels("qft", num_qubits=6)
    assert qubits == 6
    assert all(q < 6 for lvl in levels for g in lvl for q in g.qubits)


def test_catalog_gate_counts_within_factor_of_paper():
    """Synthesized circuits land within ~3x of the paper's gate counts."""
    for name in ("adder", "bv", "qft", "big_adder", "big_bv", "vqe_uccsd"):
        spec = CATALOG[name]
        gates = sum(len(l) for l in spec.levels())
        assert spec.paper_gates is not None
        assert gates >= spec.paper_gates / 3
        assert gates <= spec.paper_gates * 3
