"""Test package."""
