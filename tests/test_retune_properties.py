"""Property-based equivalence tests for the retune modifier and observables.

The retune invariant: for any circuit and any parameter change,

    ``update_gate``  ==  ``remove_gate`` + ``insert_gate``  ==  dense baseline

to 1e-10, with fusion, copy-on-write and the block directory independently
on and off -- and the block-wise expectation engine must agree with the
dense ground truth on the resulting states.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.circuit import Circuit
from repro.core.gates import Gate
from repro.core.simulator import QTaskSimulator
from repro.observables import PauliString, PauliSum, dense_expectation

from .conftest import circuit_levels, reference_state

COMMON_SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: (fusion, copy_on_write, block_directory) corners exercised per example.
CONFIGS = [
    (False, True, True),
    (True, True, True),
    (False, False, True),
    (False, True, False),
    (True, True, False),
    (True, False, True),
]

_PARAM_GATES = ["rz", "rx", "ry", "p"]


@st.composite
def param_levels_strategy(draw, num_qubits, max_levels=4):
    """Random levels guaranteed to contain at least one parameterised gate."""
    n_levels = draw(st.integers(1, max_levels))
    levels = []
    for _ in range(n_levels):
        level, used = [], set()
        for _ in range(draw(st.integers(1, num_qubits))):
            q = draw(st.integers(0, num_qubits - 1))
            if q in used:
                continue
            kind = draw(st.integers(0, 3))
            if kind == 0:
                level.append(Gate(draw(st.sampled_from(["h", "x", "s", "t"])), (q,)))
                used.add(q)
            elif kind == 1:
                name = draw(st.sampled_from(_PARAM_GATES))
                theta = draw(st.floats(0.05, 6.2, allow_nan=False))
                level.append(Gate(name, (q,), (theta,)))
                used.add(q)
            else:
                q2 = draw(st.integers(0, num_qubits - 1))
                if q2 == q or q2 in used:
                    continue
                if kind == 2:
                    level.append(Gate(draw(st.sampled_from(["cx", "cz"])), (q, q2)))
                else:
                    theta = draw(st.floats(0.05, 6.2, allow_nan=False))
                    level.append(Gate("cp", (q, q2), (theta,)))
                used.update((q, q2))
        if level:
            levels.append(level)
    if not any(g.params for lvl in levels for g in lvl):
        levels.append([Gate("rz", (0,), (0.4,))])
    return levels


def build(num_qubits, levels, *, fusion, cow, directory):
    ckt = Circuit(num_qubits)
    sim = QTaskSimulator(
        ckt,
        block_size=2,
        num_workers=1,
        fusion=fusion,
        copy_on_write=cow,
        block_directory=directory,
    )
    ckt.from_levels(levels)
    sim.update_state()
    return ckt, sim


def param_handles(ckt):
    return [h for h in ckt.gates() if h.gate.params]


@settings(**COMMON_SETTINGS)
@given(
    num_qubits=st.integers(2, 4),
    data=st.data(),
    config=st.sampled_from(CONFIGS),
)
def test_retune_equals_reinsert_equals_dense(num_qubits, data, config):
    """The satellite invariant: retune == remove+insert == dense to 1e-10."""
    fusion, cow, directory = config
    levels = data.draw(param_levels_strategy(num_qubits))
    ckt_a, sim_a = build(num_qubits, levels, fusion=fusion, cow=cow,
                         directory=directory)
    ckt_b, sim_b = build(num_qubits, levels, fusion=fusion, cow=cow,
                         directory=directory)
    n_edits = data.draw(st.integers(1, 3))
    for _ in range(n_edits):
        handles_a = param_handles(ckt_a)
        pick = data.draw(st.integers(0, len(handles_a) - 1))
        theta = data.draw(st.floats(0.05, 6.2, allow_nan=False))
        ha = handles_a[pick]
        old_gate = ha.gate
        net_pos = ckt_a.net_position(ha.net)
        # A: first-class retune
        ckt_a.update_gate(ha, theta)
        sim_a.update_state()
        # B: the same edit as remove + insert into the same net.  Reinsertion
        # appends at the net's tail, so handle *indices* diverge between the
        # circuits; the edited gate is identified by net position + qubits
        # (unique within a net by the structural-parallelism invariant).
        net_b = ckt_b.nets()[net_pos]
        hb = next(h for h in net_b.gates if h.gate.qubits == old_gate.qubits)
        assert hb.gate == old_gate
        ckt_b.remove_gate(hb)
        ckt_b.insert_gate(old_gate.name, net_b, *old_gate.qubits, params=(theta,))
        sim_b.update_state()
        # dense ground truth over the live circuit
        expected = reference_state(num_qubits, circuit_levels(ckt_a))
        np.testing.assert_allclose(sim_a.state(), expected, atol=1e-10)
        np.testing.assert_allclose(sim_b.state(), expected, atol=1e-10)
        # amplitudes of both engines agree exactly on the same math
        assert abs(sim_a.norm() - 1.0) < 1e-10
        assert abs(sim_b.norm() - 1.0) < 1e-10
    sim_a.close()
    sim_b.close()


@settings(**COMMON_SETTINGS)
@given(
    num_qubits=st.integers(2, 4),
    data=st.data(),
    config=st.sampled_from(CONFIGS),
)
def test_expectation_tracks_retunes(num_qubits, data, config):
    """Cached block-wise expectations match the dense ground truth per edit."""
    fusion, cow, directory = config
    levels = data.draw(param_levels_strategy(num_qubits))
    ckt, sim = build(num_qubits, levels, fusion=fusion, cow=cow,
                     directory=directory)
    obs = PauliSum(
        [
            PauliString({0: "Z"}, coefficient=0.75),
            PauliString({num_qubits - 1: "X"}, coefficient=-0.5),
            PauliString({0: "Y", num_qubits - 1: "Z"}, coefficient=0.25)
            if num_qubits > 1
            else PauliString({0: "Z"}),
        ]
    )
    assert abs(sim.expectation(obs) - dense_expectation(sim.state(), obs)) < 1e-10
    for _ in range(data.draw(st.integers(1, 3))):
        handles = param_handles(ckt)
        pick = data.draw(st.integers(0, len(handles) - 1))
        theta = data.draw(st.floats(0.0, 6.2, allow_nan=False))
        ckt.update_gate(handles[pick], theta)
        sim.update_state()
        assert abs(sim.expectation(obs) - dense_expectation(sim.state(), obs)) < 1e-10
    sim.close()
