"""Property tests: block-directory resolution == naive reversed-chain walk.

Two oracles back the O(log W) block directory:

* a *twin simulator* running the legacy ``block_directory=False`` store-chain
  mode through the same random modifier sequence must produce identical
  states, and
* after every update, a :class:`DirectoryReader` built "as of" each stage
  must agree with a freshly constructed naive :class:`StoreChain` over the
  same stage prefix -- block by block, for the full vector and for gathers.

Both are exercised with and without fusion and copy-on-write, on the
sequential and the work-stealing executor.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.circuit import Circuit
from repro.core.cow import DirectoryReader, StoreChain
from repro.core.simulator import QTaskSimulator

from .test_properties import _apply_modifier, levels_strategy, modifier_strategy

COMMON_SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def assert_directory_matches_naive_walk(sim: QTaskSimulator) -> None:
    """Directory-resolved reads == reversed-chain walk, for every stage view."""
    stages = sim.graph.stages
    stores = [s.store for s in stages]
    for prefix in range(len(stages) + 1):
        chain = StoreChain([sim._initial] + stores[:prefix])
        reader = DirectoryReader(sim._directory, prefix)
        np.testing.assert_array_equal(reader.full_vector(), chain.full_vector())
        for b in range(sim.n_blocks):
            np.testing.assert_array_equal(
                reader.resolve_block(b), chain.resolve_block(b)
            )
    idx = np.arange(sim.dim, dtype=np.int64)[:: max(1, sim.dim // 16)]
    full = DirectoryReader(sim._directory, len(stages))
    np.testing.assert_array_equal(
        full.gather(idx), StoreChain([sim._initial] + stores).gather(idx)
    )


@pytest.mark.parametrize("fusion", [False, True], ids=["unfused", "fused"])
@pytest.mark.parametrize("cow", [True, False], ids=["cow", "dense"])
@settings(**COMMON_SETTINGS)
@given(num_qubits=st.integers(2, 4), data=st.data())
def test_directory_matches_chain_under_modifiers(fusion, cow, num_qubits, data):
    """Directory and legacy chain modes stay bit-identical through modifiers."""
    lv = data.draw(levels_strategy(num_qubits))
    mods = data.draw(st.lists(modifier_strategy(), min_size=1, max_size=5))
    ckt_d, ckt_c = Circuit(num_qubits), Circuit(num_qubits)
    sim_d = QTaskSimulator(ckt_d, block_size=2, num_workers=1,
                           copy_on_write=cow, fusion=fusion,
                           block_directory=True)
    sim_c = QTaskSimulator(ckt_c, block_size=2, num_workers=1,
                           copy_on_write=cow, fusion=fusion,
                           block_directory=False)
    ckt_d.from_levels(lv)
    ckt_c.from_levels(lv)
    sim_d.update_state()
    sim_c.update_state()
    np.testing.assert_array_equal(sim_d.state(), sim_c.state())
    for mod in mods:
        _apply_modifier(ckt_d, mod, num_qubits)
        _apply_modifier(ckt_c, mod, num_qubits)
        sim_d.update_state()
        sim_c.update_state()
        np.testing.assert_array_equal(sim_d.state(), sim_c.state())
        for basis in (0, sim_d.dim - 1):
            assert sim_d.amplitude(basis) == sim_c.amplitude(basis)
        assert_directory_matches_naive_walk(sim_d)
    sim_d.close()
    sim_c.close()


@pytest.mark.parametrize("workers", [1, 3], ids=["sequential", "workstealing"])
@settings(**COMMON_SETTINGS)
@given(num_qubits=st.integers(2, 4), data=st.data())
def test_directory_consistent_on_both_executors(workers, num_qubits, data):
    """The directory index stays exact under parallel block writes."""
    lv = data.draw(levels_strategy(num_qubits))
    mods = data.draw(st.lists(modifier_strategy(), min_size=1, max_size=4))
    ckt = Circuit(num_qubits)
    sim = QTaskSimulator(ckt, block_size=2, num_workers=workers,
                         block_directory=True)
    ckt.from_levels(lv)
    sim.update_state()
    for mod in mods:
        _apply_modifier(ckt, mod, num_qubits)
        sim.update_state()
        assert_directory_matches_naive_walk(sim)
    sim.close()


@settings(**COMMON_SETTINGS)
@given(num_qubits=st.integers(2, 4), data=st.data())
def test_directory_purged_after_clearing_circuit(num_qubits, data):
    """Removing every net leaves no stale ownership entries behind."""
    lv = data.draw(levels_strategy(num_qubits))
    ckt = Circuit(num_qubits)
    sim = QTaskSimulator(ckt, block_size=2, num_workers=1, block_directory=True)
    ckt.from_levels(lv)
    sim.update_state()
    for net in list(ckt.nets()):
        ckt.remove_net(net)
    sim.update_state()
    for b in range(sim.n_blocks):
        assert sim._directory.writers_of(b) == ()
    state = sim.state()
    assert state[0] == 1.0
    assert np.all(state[1:] == 0.0)
    sim.close()
