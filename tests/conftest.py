"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

import numpy as np
import pytest

from repro.core import faults
from repro.core.circuit import Circuit
from repro.core.gates import Gate, embed_gate_matrix

# ---------------------------------------------------------------------------
# chaos mode: QTASK_FAULT_P=<p> runs the whole suite under an armed fault
# plan (see repro.core.faults.plan_from_env).  Faults only fire inside the
# simulator's armed scopes, and every recovery layer must absorb them, so
# the suite is expected to stay green -- that expectation *is* the test.
# ---------------------------------------------------------------------------


_chaos_plan = None


def pytest_configure(config):
    global _chaos_plan
    _chaos_plan = faults.plan_from_env()
    if _chaos_plan is not None:
        faults.install(_chaos_plan)


def pytest_unconfigure(config):
    if _chaos_plan is not None and faults.active_plan() is _chaos_plan:
        faults.uninstall()


# ---------------------------------------------------------------------------
# reference simulation helpers (independent of the library's fast kernels)
# ---------------------------------------------------------------------------


def reference_state(num_qubits: int, levels: Sequence[Sequence[Gate]]) -> np.ndarray:
    """Ground-truth state via dense operator embedding (small circuits only)."""
    psi = np.zeros(1 << num_qubits, dtype=complex)
    psi[0] = 1.0
    for level in levels:
        for gate in level:
            psi = embed_gate_matrix(gate, num_qubits) @ psi
    return psi


def circuit_levels(circuit: Circuit) -> List[List[Gate]]:
    """Extract the (non-empty) gate levels currently in a circuit."""
    return [[h.gate for h in net.gates] for net in circuit.nets() if net.gates]


def assert_states_close(actual: np.ndarray, expected: np.ndarray, *, atol: float = 1e-9):
    __tracebackhide__ = True
    np.testing.assert_allclose(actual, expected, atol=atol, rtol=1e-7)


# ---------------------------------------------------------------------------
# random circuit generation used across many tests
# ---------------------------------------------------------------------------

SINGLE_QUBIT_GATES = ["h", "x", "y", "z", "s", "sdg", "t", "tdg", "sx"]
PARAM_SINGLE_GATES = ["rx", "ry", "rz", "p", "u3"]
TWO_QUBIT_GATES = ["cx", "cz", "swap", "cy", "ch"]
PARAM_TWO_GATES = ["cp", "crz", "crx", "rzz"]


def random_gate(rng: random.Random, qubits: Sequence[int]) -> Gate:
    """A random gate on a subset of the given (free) qubits."""
    if len(qubits) >= 2 and rng.random() < 0.45:
        q = rng.sample(list(qubits), 2)
        if rng.random() < 0.5:
            return Gate(rng.choice(TWO_QUBIT_GATES), tuple(q))
        name = rng.choice(PARAM_TWO_GATES)
        return Gate(name, tuple(q), (rng.uniform(0, 2 * np.pi),))
    q = (rng.choice(list(qubits)),)
    if rng.random() < 0.5:
        return Gate(rng.choice(SINGLE_QUBIT_GATES), q)
    name = rng.choice(PARAM_SINGLE_GATES)
    nparams = {"rx": 1, "ry": 1, "rz": 1, "p": 1, "u3": 3}[name]
    return Gate(name, q, tuple(rng.uniform(0, 2 * np.pi) for _ in range(nparams)))


def random_level(rng: random.Random, num_qubits: int, *, density: float = 0.7) -> List[Gate]:
    """A random net: gates on pairwise-disjoint qubits."""
    free = list(range(num_qubits))
    rng.shuffle(free)
    gates: List[Gate] = []
    while free and rng.random() < density:
        gate = random_gate(rng, free)
        for q in gate.qubits:
            free.remove(q)
        gates.append(gate)
    return gates


def random_levels(rng: random.Random, num_qubits: int, num_levels: int) -> List[List[Gate]]:
    levels = [random_level(rng, num_qubits) for _ in range(num_levels)]
    return [lvl for lvl in levels if lvl] or [[Gate("h", (0,))]]


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)


@pytest.fixture
def np_rng() -> np.random.Generator:
    return np.random.default_rng(12345)
