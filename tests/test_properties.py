"""Property-based end-to-end tests of the incrementality invariants.

The central invariant of qTask: after any sequence of circuit modifiers,
``update_state`` must leave the simulator in exactly the state a from-scratch
simulation of the current circuit would produce, and the state must stay
normalised.  Hypothesis drives random circuits and random modifier sequences
through the full stack to check this.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.circuit import Circuit
from repro.core.gates import Gate
from repro.core.simulator import QTaskSimulator

from .conftest import circuit_levels, reference_state

# -- strategies -------------------------------------------------------------

_SINGLE = ["h", "x", "y", "z", "s", "t", "sdg"]
_PARAM = ["rx", "ry", "rz"]
_TWO = ["cx", "cz", "swap"]


@st.composite
def gate_strategy(draw, num_qubits):
    kind = draw(st.integers(0, 2))
    if kind == 0:
        name = draw(st.sampled_from(_SINGLE))
        q = draw(st.integers(0, num_qubits - 1))
        return Gate(name, (q,))
    if kind == 1:
        name = draw(st.sampled_from(_PARAM))
        q = draw(st.integers(0, num_qubits - 1))
        theta = draw(st.floats(0.0, 6.28, allow_nan=False))
        return Gate(name, (q,), (theta,))
    name = draw(st.sampled_from(_TWO))
    q1 = draw(st.integers(0, num_qubits - 1))
    q2 = draw(st.integers(0, num_qubits - 1).filter(lambda x: x != q1))
    return Gate(name, (q1, q2))


@st.composite
def levels_strategy(draw, num_qubits, max_levels=5):
    n_levels = draw(st.integers(1, max_levels))
    levels = []
    for _ in range(n_levels):
        level = []
        used = set()
        for _ in range(draw(st.integers(0, num_qubits))):
            g = draw(gate_strategy(num_qubits))
            if used.intersection(g.qubits):
                continue
            used.update(g.qubits)
            level.append(g)
        if level:
            levels.append(level)
    return levels or [[Gate("h", (0,))]]


@st.composite
def modifier_strategy(draw):
    """A modifier instruction interpreted against the live circuit."""
    kind = draw(st.sampled_from(["remove", "insert", "insert", "remove_net"]))
    return {
        "kind": kind,
        "pick": draw(st.integers(0, 10_000)),
        "gate_seed": draw(st.integers(0, 10_000)),
    }


def _apply_modifier(circuit: Circuit, mod, num_qubits: int) -> None:
    import random

    rng = random.Random(mod["gate_seed"])
    if mod["kind"] == "remove":
        gates = circuit.gates()
        if gates:
            circuit.remove_gate(gates[mod["pick"] % len(gates)])
    elif mod["kind"] == "remove_net":
        nets = [n for n in circuit.nets() if n.gates]
        if len(nets) > 1:
            circuit.remove_net(nets[mod["pick"] % len(nets)])
    else:
        nets = circuit.nets()
        if not nets:
            nets = [circuit.insert_net()]
        net = nets[mod["pick"] % len(nets)]
        used = net.qubits_in_use()
        free = [q for q in range(num_qubits) if q not in used]
        if not free:
            net = circuit.insert_net()
            free = list(range(num_qubits))
        q = free[mod["gate_seed"] % len(free)]
        name = ["h", "x", "t", "rz", "z"][mod["gate_seed"] % 5]
        params = (0.5 + mod["gate_seed"] % 7,) if name == "rz" else ()
        circuit.insert_gate(name, net, q, params=params)


COMMON_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@settings(**COMMON_SETTINGS)
@given(
    num_qubits=st.integers(2, 5),
    levels=st.data(),
    log_block=st.integers(0, 6),
)
def test_full_simulation_matches_reference(num_qubits, levels, log_block):
    lv = levels.draw(levels_strategy(num_qubits))
    ckt = Circuit(num_qubits)
    sim = QTaskSimulator(ckt, block_size=1 << log_block, num_workers=1)
    ckt.from_levels(lv)
    sim.update_state()
    np.testing.assert_allclose(sim.state(), reference_state(num_qubits, lv), atol=1e-9)
    assert abs(sim.norm() - 1.0) < 1e-9
    sim.close()


@settings(**COMMON_SETTINGS)
@given(
    num_qubits=st.integers(2, 5),
    data=st.data(),
)
def test_incremental_always_matches_from_scratch(num_qubits, data):
    """The headline invariant: incremental == from-scratch after any modifiers."""
    lv = data.draw(levels_strategy(num_qubits))
    mods = data.draw(st.lists(modifier_strategy(), min_size=1, max_size=6))
    ckt = Circuit(num_qubits)
    sim = QTaskSimulator(ckt, block_size=4, num_workers=1)
    ckt.from_levels(lv)
    sim.update_state()
    for mod in mods:
        _apply_modifier(ckt, mod, num_qubits)
        sim.update_state()
        expected = reference_state(num_qubits, circuit_levels(ckt))
        np.testing.assert_allclose(sim.state(), expected, atol=1e-9)
        assert abs(sim.norm() - 1.0) < 1e-9
    sim.close()


@settings(**COMMON_SETTINGS)
@given(num_qubits=st.integers(2, 4), data=st.data())
def test_cow_and_dense_storage_agree_under_modifiers(num_qubits, data):
    lv = data.draw(levels_strategy(num_qubits))
    mods = data.draw(st.lists(modifier_strategy(), min_size=1, max_size=4))
    ckt_a, ckt_b = Circuit(num_qubits), Circuit(num_qubits)
    sim_a = QTaskSimulator(ckt_a, block_size=2, num_workers=1, copy_on_write=True)
    sim_b = QTaskSimulator(ckt_b, block_size=2, num_workers=1, copy_on_write=False)
    ckt_a.from_levels(lv)
    ckt_b.from_levels(lv)
    sim_a.update_state()
    sim_b.update_state()
    for mod in mods:
        _apply_modifier(ckt_a, mod, num_qubits)
        _apply_modifier(ckt_b, mod, num_qubits)
        sim_a.update_state()
        sim_b.update_state()
        np.testing.assert_allclose(sim_a.state(), sim_b.state(), atol=1e-9)
    sim_a.close()
    sim_b.close()


@settings(**COMMON_SETTINGS)
@given(num_qubits=st.integers(2, 4), data=st.data(), workers=st.sampled_from([1, 3]))
def test_parallel_and_sequential_execution_agree(num_qubits, data, workers):
    lv = data.draw(levels_strategy(num_qubits))
    ckt_a, ckt_b = Circuit(num_qubits), Circuit(num_qubits)
    sim_seq = QTaskSimulator(ckt_a, block_size=2, num_workers=1)
    sim_par = QTaskSimulator(ckt_b, block_size=2, num_workers=workers)
    ckt_a.from_levels(lv)
    ckt_b.from_levels(lv)
    sim_seq.update_state()
    sim_par.update_state()
    np.testing.assert_allclose(sim_seq.state(), sim_par.state(), atol=1e-9)
    sim_seq.close()
    sim_par.close()
