"""Tests for the block-wise observables engine and the sampling tree."""

import numpy as np
import pytest

from repro.core.circuit import Circuit
from repro.core.gates import Gate
from repro.core.simulator import QTaskSimulator
from repro.observables import (
    ObservablesEngine,
    PauliString,
    PauliSum,
    PrefixSumTree,
    dense_expectation,
    maxcut_hamiltonian,
)

from ..conftest import random_levels
from .test_pauli import pauli_sum_matrix


def reference_expectation(state: np.ndarray, obs: PauliSum) -> float:
    """<psi|H|psi> via the dense operator matrix (independent ground truth)."""
    n = state.shape[0].bit_length() - 1
    return float(np.real(np.vdot(state, pauli_sum_matrix(obs, n) @ state)))


def random_observable(rng, num_qubits: int, num_terms: int = 4) -> PauliSum:
    terms = []
    for _ in range(num_terms):
        weight = rng.randint(1, min(3, num_qubits))
        qubits = rng.sample(range(num_qubits), weight)
        letters = {q: rng.choice("XYZ") for q in qubits}
        terms.append(PauliString(letters, coefficient=rng.uniform(-2, 2)))
    return PauliSum(terms)


def build_sim(rng, num_qubits, levels=4, **kwargs):
    ckt = Circuit(num_qubits)
    sim = QTaskSimulator(ckt, num_workers=1, **kwargs)
    ckt.from_levels(random_levels(rng, num_qubits, levels))
    sim.update_state()
    return ckt, sim


class TestPrefixSumTree:
    def test_build_set_and_prefix(self, np_rng):
        vals = np_rng.random(13)
        tree = PrefixSumTree(13)
        tree.build(vals)
        for i in range(14):
            assert abs(tree.prefix_sum(i) - vals[:i].sum()) < 1e-12
        tree.set(5, 3.5)
        vals[5] = 3.5
        assert abs(tree.total() - vals.sum()) < 1e-12
        assert tree.value(5) == 3.5

    def test_find_matches_searchsorted(self, np_rng):
        vals = np_rng.random(32)
        vals[[3, 7, 20]] = 0.0  # zero-mass entries must be skipped
        tree = PrefixSumTree(32)
        tree.build(vals)
        cum = np.cumsum(vals)
        targets = np_rng.random(200) * cum[-1]
        idx, resid = tree.find(targets)
        expected = np.searchsorted(cum, targets, side="right")
        np.testing.assert_array_equal(idx, expected)
        prefix = np.concatenate(([0.0], cum))[idx]
        np.testing.assert_allclose(resid, targets - prefix, atol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            PrefixSumTree(0)
        tree = PrefixSumTree(4)
        with pytest.raises(IndexError):
            tree.set(4, 1.0)
        with pytest.raises(ValueError):
            tree.build(np.ones(3))


class TestExpectation:
    @pytest.mark.parametrize("block_size", [2, 8, 64])
    def test_matches_dense_reference(self, rng, block_size):
        for _ in range(5):
            num_qubits = rng.randint(2, 5)
            ckt, sim = build_sim(rng, num_qubits, block_size=block_size)
            obs = random_observable(rng, num_qubits)
            expected = reference_expectation(sim.state(), obs)
            assert abs(sim.expectation(obs) - expected) < 1e-10
            assert abs(dense_expectation(sim.state(), obs) - expected) < 1e-10
            sim.close()

    def test_identity_term_is_squared_norm(self, rng):
        ckt, sim = build_sim(rng, 3, block_size=2)
        assert abs(sim.expectation(PauliString(())) - 1.0) < 1e-10
        assert abs(sim.expectation("III") - 1.0) < 1e-10
        sim.close()

    def test_label_and_string_inputs(self, rng):
        ckt, sim = build_sim(rng, 3, block_size=4)
        expected = reference_expectation(
            sim.state(), PauliSum([PauliString.from_label("ZIZ")])
        )
        assert abs(sim.expectation("ZIZ") - expected) < 1e-10
        sim.close()

    def test_cache_tracks_incremental_edits(self, rng):
        """Cached partials must be invalidated by inserts/removes/retunes."""
        num_qubits = 4
        ckt, sim = build_sim(rng, num_qubits, block_size=2)
        obs = random_observable(rng, num_qubits)
        assert abs(sim.expectation(obs) - reference_expectation(sim.state(), obs)) < 1e-10
        # insert
        net = ckt.insert_net()
        ckt.insert_gate("h", net, 0)
        sim.update_state()
        assert abs(sim.expectation(obs) - reference_expectation(sim.state(), obs)) < 1e-10
        # retune
        net2 = ckt.insert_net()
        h = ckt.insert_gate("rz", net2, 1, params=[0.3])
        sim.update_state()
        sim.expectation(obs)
        ckt.update_gate(h, 1.9)
        sim.update_state()
        assert abs(sim.expectation(obs) - reference_expectation(sim.state(), obs)) < 1e-10
        # removal of the final gate: no downstream nodes re-execute, yet the
        # resolved state changes -- the removal hook must invalidate alone
        ckt.remove_gate(h)
        sim.update_state()
        assert abs(sim.expectation(obs) - reference_expectation(sim.state(), obs)) < 1e-10
        sim.close()

    def test_flip_partner_blocks_invalidated(self):
        """An X/Y term's partial for block b reads block b ^ flip; dirtying
        only the partner must still evict b's cached partial (regression)."""
        ckt = Circuit(4)
        sim = QTaskSimulator(ckt, block_size=4, num_workers=1)
        ckt.append_level([Gate("h", (q,)) for q in range(4)])
        # cp's diagonal touches only the |11> local of qubits (3, 2): its
        # partitions cover only the last block, so a retune dirties block 3
        # alone while the XIII partial of block 1 reads amplitudes there.
        _, (h,) = ckt.append_level([Gate("cp", (3, 2), (0.3,))])
        sim.update_state()
        obs = PauliString.from_label("XIII")
        assert abs(sim.expectation(obs) - dense_expectation(sim.state(), obs)) < 1e-10
        ckt.update_gate(h, 2.5)
        sim.update_state()
        assert abs(sim.expectation(obs) - dense_expectation(sim.state(), obs)) < 1e-10
        sim.close()

    def test_cache_disabled_matches_cached(self, rng):
        ckt_a, sim_a = build_sim(rng, 3, block_size=2, observable_cache=True)
        obs = random_observable(rng, 3)
        rng2 = __import__("random").Random(99)
        ckt_b = Circuit(3)
        sim_b = QTaskSimulator(ckt_b, num_workers=1, block_size=2,
                               observable_cache=False)
        ckt_b.from_levels([[h.gate for h in net.gates] for net in ckt_a.nets()])
        sim_b.update_state()
        assert abs(sim_a.expectation(obs) - sim_b.expectation(obs)) < 1e-12
        assert sim_b.statistics()["observable_cache"] is False
        sim_a.close()
        sim_b.close()

    def test_cached_partials_reported_in_statistics(self, rng):
        ckt, sim = build_sim(rng, 3, block_size=2)
        assert sim.statistics()["cached_observable_partials"] == 0
        sim.expectation("ZII")
        assert sim.statistics()["cached_observable_partials"] == sim.n_blocks
        sim.close()


class TestNormAndMarginals:
    def test_blockwise_norm_is_one(self, rng):
        for block_size in (2, 16):
            ckt, sim = build_sim(rng, 4, block_size=block_size)
            assert abs(sim.norm() - 1.0) < 1e-10
            sim.close()

    def test_marginals_match_full_distribution(self, rng):
        ckt, sim = build_sim(rng, 4, block_size=4)
        probs = sim.probabilities()
        idx = np.arange(probs.shape[0])
        for qubits in [(0,), (2, 0), (1, 3), (3, 2, 1, 0)]:
            local = np.zeros_like(idx)
            for j, q in enumerate(qubits):
                local |= ((idx >> q) & 1) << j
            expected = np.bincount(local, weights=probs, minlength=1 << len(qubits))
            got = sim.marginal_probabilities(qubits)
            np.testing.assert_allclose(got, expected, atol=1e-12)
            assert abs(got.sum() - 1.0) < 1e-10
        sim.close()

    def test_marginal_validation(self, rng):
        ckt, sim = build_sim(rng, 3)
        with pytest.raises(ValueError):
            sim.marginal_probabilities((0, 0))
        with pytest.raises(ValueError):
            sim.marginal_probabilities((5,))
        sim.close()


class TestSampling:
    def test_seeded_samples_are_deterministic(self, rng):
        ckt, sim = build_sim(rng, 4, block_size=4)
        a = sim.sample(100, seed=5)
        b = sim.sample(100, seed=5)
        np.testing.assert_array_equal(a, b)
        assert a.min() >= 0 and a.max() < sim.dim
        sim.close()

    def test_counts_total_and_keys(self, rng):
        ckt, sim = build_sim(rng, 3, block_size=2)
        counts = sim.counts(500, seed=1)
        assert sum(counts.values()) == 500
        assert all(len(k) == 3 and set(k) <= {"0", "1"} for k in counts)
        sim.close()

    def test_sampling_zero_shots_and_validation(self, rng):
        ckt, sim = build_sim(rng, 3)
        assert sim.sample(0, seed=1).shape == (0,)
        with pytest.raises(ValueError):
            sim.sample(-1)
        sim.close()

    def test_counts_match_probabilities_chi_square(self, rng):
        """Sampled histogram fits |psi|^2 under a chi-square bound (satellite)."""
        ckt, sim = build_sim(rng, 5, levels=5, block_size=8)
        probs = sim.probabilities()
        shots = 20_000
        samples = sim.sample(shots, seed=2024)
        observed = np.bincount(samples, minlength=sim.dim).astype(float)
        expected = probs * shots
        # Pool bins with small expectation into one (standard chi-square rule).
        big = expected >= 5.0
        obs_binned = np.concatenate((observed[big], [observed[~big].sum()]))
        exp_binned = np.concatenate((expected[big], [expected[~big].sum()]))
        keep = exp_binned > 0
        obs_binned, exp_binned = obs_binned[keep], exp_binned[keep]
        chi2 = float((((obs_binned - exp_binned) ** 2) / exp_binned).sum())
        dof = int(keep.sum()) - 1
        # Generous deterministic bound: mean + 5 sigma of a chi-square(dof).
        assert chi2 < dof + 5.0 * np.sqrt(2.0 * dof), (chi2, dof)
        sim.close()

    def test_sampling_after_retune_follows_new_state(self, rng):
        ckt, sim = build_sim(rng, 3, block_size=2)
        net = ckt.insert_net()
        h = ckt.insert_gate("rx", net, 0, params=[0.2])
        sim.update_state()
        sim.sample(10, seed=0)  # populate the tree
        ckt.update_gate(h, np.pi)  # crosses into a bit-flip: new distribution
        sim.update_state()
        probs = sim.probabilities()
        samples = sim.sample(5000, seed=3)
        emp = np.bincount(samples, minlength=sim.dim) / 5000.0
        assert np.abs(emp - probs).max() < 0.06
        sim.close()


class TestEngineOwnership:
    def test_engine_is_lazy_and_shared(self, rng):
        ckt, sim = build_sim(rng, 3)
        assert sim._observables is None
        engine = sim.observables
        assert isinstance(engine, ObservablesEngine)
        assert sim.observables is engine
        sim.close()

    def test_maxcut_on_qaoa_like_circuit(self, rng):
        edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
        obs = maxcut_hamiltonian(edges)
        ckt = Circuit(4)
        sim = QTaskSimulator(ckt, num_workers=1, block_size=4)
        ckt.append_level([Gate("h", (q,)) for q in range(4)])
        sim.update_state()
        # uniform superposition cuts half of the edges in expectation
        assert abs(sim.expectation(obs) - len(edges) / 2) < 1e-10
        sim.close()
