"""Unit tests for the Pauli observable vocabulary."""

import numpy as np
import pytest

from repro.core.gates import DiagonalAction, MonomialAction
from repro.observables import (
    PauliString,
    PauliSum,
    as_pauli_sum,
    ising_hamiltonian,
    maxcut_hamiltonian,
)

_I = np.eye(2, dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)
_MATS = {"I": _I, "X": _X, "Y": _Y, "Z": _Z}


def pauli_matrix(term: PauliString, num_qubits: int) -> np.ndarray:
    """Dense operator of a Pauli string (independent ground truth)."""
    letters = dict(term.paulis)
    mat = np.eye(1, dtype=complex)
    for q in range(num_qubits - 1, -1, -1):
        mat = np.kron(mat, _MATS[letters.get(q, "I")])
    return term.coefficient * mat


def pauli_sum_matrix(obs: PauliSum, num_qubits: int) -> np.ndarray:
    out = np.zeros((1 << num_qubits, 1 << num_qubits), dtype=complex)
    for term in obs.terms:
        out += pauli_matrix(term, num_qubits)
    return out


class TestPauliString:
    def test_label_round_trip(self):
        p = PauliString.from_label("XIZY")
        assert p.paulis == ((0, "Y"), (1, "Z"), (3, "X"))
        assert p.to_label(4) == "XIZY"
        assert p.support == (0, 1, 3)
        assert p.weight == 3

    def test_mapping_and_identity_letters(self):
        p = PauliString({0: "z", 3: "x", 2: "I"})
        assert p.paulis == ((0, "Z"), (3, "X"))
        assert PauliString(()).is_identity

    def test_invalid_letters_and_qubits(self):
        with pytest.raises(ValueError):
            PauliString({0: "Q"})
        with pytest.raises(ValueError):
            PauliString([(0, "Z"), (0, "X")])
        with pytest.raises(ValueError):
            PauliString({-1: "Z"})
        with pytest.raises(ValueError):
            PauliString.from_label("ZZ").to_label(1)

    def test_diagonality_and_masks(self):
        assert PauliString.from_label("ZIZ").is_diagonal
        assert not PauliString.from_label("ZIX").is_diagonal
        p = PauliString({0: "Z", 2: "X", 3: "Y"})
        assert p.z_mask() == 0b0001
        assert p.flip_mask() == 0b1100

    @pytest.mark.parametrize("label", ["Z", "ZZ", "IZ"])
    def test_z_strings_are_diagonal_actions(self, label):
        p = PauliString.from_label(label)
        action = p.action()
        assert isinstance(action, DiagonalAction)
        ref = pauli_matrix(PauliString.from_label(label.replace("I", "")), p.weight)
        np.testing.assert_allclose(np.diag(action.phases), ref, atol=1e-12)

    @pytest.mark.parametrize("label", ["X", "Y", "XY", "XZ", "YZ", "XYZ"])
    def test_xy_strings_are_monomial_actions(self, label):
        p = PauliString.from_label(label)
        action = p.action()
        assert isinstance(action, MonomialAction)
        dim = 1 << p.weight
        m = np.zeros((dim, dim), dtype=complex)
        for l_in in range(dim):
            m[action.perm[l_in], l_in] = action.factors[l_in]
        # support == (0..k-1) here, so the local operator is the full one
        np.testing.assert_allclose(m, pauli_matrix(p, p.weight), atol=1e-12)

    def test_algebra(self):
        p = PauliString.from_label("Z", coefficient=2.0)
        assert (3 * p).coefficient == 6.0
        assert (-p).coefficient == -2.0
        s = p + PauliString.from_label("X")
        assert isinstance(s, PauliSum) and s.num_terms == 2


class TestPauliSum:
    def test_combines_like_terms(self):
        s = PauliSum(
            [
                PauliString.from_label("ZZ", coefficient=1.0),
                PauliString.from_label("ZZ", coefficient=2.0),
                PauliString.from_label("XX", coefficient=-1.0),
            ]
        )
        assert s.num_terms == 2
        coeffs = {t.key: t.coefficient for t in s.terms}
        assert coeffs[PauliString.from_label("ZZ").key] == 3.0

    def test_zero_terms_dropped(self):
        s = PauliString.from_label("Z") + PauliString.from_label("Z", coefficient=-1.0)
        assert s.num_terms == 0

    def test_sub_mul_support(self):
        s = PauliSum.from_labels({"ZI": 1.0, "IX": 0.5}) - PauliString.from_label("IX")
        s = 2.0 * s
        coeffs = {t.key: t.coefficient for t in s.terms}
        assert coeffs[PauliString.from_label("ZI").key] == 2.0
        assert coeffs[PauliString.from_label("IX").key] == -1.0
        assert s.support() == (0, 1)

    def test_as_pauli_sum_coercions(self):
        assert as_pauli_sum("ZZ").num_terms == 1
        p = PauliString.from_label("X")
        assert as_pauli_sum(p).terms[0] == p
        s = PauliSum([p])
        assert as_pauli_sum(s) is s
        with pytest.raises(TypeError):
            as_pauli_sum(42)
        with pytest.raises(TypeError):
            PauliSum(["ZZ"])


class TestHamiltonians:
    def test_maxcut_counts_cut_edges_on_basis_states(self):
        edges = [(0, 1), (1, 2), (2, 0)]
        h = pauli_sum_matrix(maxcut_hamiltonian(edges), 3)
        np.testing.assert_allclose(h, np.diag(np.diag(h)))
        for state in range(8):
            cut = sum(
                1 for a, b in edges if ((state >> a) & 1) != ((state >> b) & 1)
            )
            assert abs(h[state, state].real - cut) < 1e-12

    def test_ising_hamiltonian_shape(self):
        h = ising_hamiltonian(3, coupling=1.0, field=0.5)
        assert h.num_terms == 2 + 3
        m = pauli_sum_matrix(h, 3)
        np.testing.assert_allclose(m, m.conj().T, atol=1e-12)  # Hermitian
