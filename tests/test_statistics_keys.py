"""Golden-keys contract for ``QTaskSimulator.statistics()``.

``statistics()`` was reimplemented on top of the telemetry registry; this
pins the exact key set (and a few value invariants) so the migration --
and any future one -- cannot silently drop or rename a key downstream
dashboards grab by name.
"""

import pytest

from repro.qtask import QTask

#: the statistics() contract for a default (threaded numpy) session
GOLDEN_KEYS = {
    "backend",
    "backend_fallbacks",
    "backend_transitions",
    "block_directory",
    "block_size",
    "cached_observable_partials",
    "copy_on_write",
    "fusion",
    "last_affected_partitions",
    "last_elapsed_seconds",
    "num_dynamic_stages",
    "num_edges",
    "num_frontiers",
    "num_fused_stages",
    "num_nodes",
    "num_stages",
    "num_updates",
    "num_workers",
    "observable_cache",
    "plan_chunks",
    "plans_built",
    "requested_backend",
    "run_retries",
    "runs_batched",
    "runs_per_plan",
    "store_bytes_shipped",
    "store_remote_reads",
    "store_shard_restarts",
    "store_transitions",
    "store_transport",
    "task_retries",
    "update_retries",
    "updates_planned",
}


@pytest.fixture()
def session():
    ckt = QTask(5)
    net = ckt.insert_net()
    for q in ckt.qubits():
        ckt.insert_gate("h", net, q)
    ckt.update_state()
    yield ckt
    ckt.close()


def test_statistics_keys_are_exactly_the_golden_set(session):
    assert set(session.simulator.statistics()) == GOLDEN_KEYS


def test_statistics_values_reflect_the_registry_counters(session):
    stats = session.simulator.statistics()
    assert stats["num_updates"] == 1
    assert stats["plans_built"] == 1
    assert stats["updates_planned"] == 1
    assert stats["runs_batched"] >= 1
    assert stats["plan_chunks"] >= 1
    assert stats["runs_per_plan"] == pytest.approx(
        stats["runs_batched"] / stats["plans_built"]
    )
    assert stats["run_retries"] == 0
    assert stats["update_retries"] == 0
    assert stats["backend_fallbacks"] == 0
    assert stats["backend"] == "numpy"
    assert stats["last_elapsed_seconds"] > 0.0
    # every plain count is a real int, not a Counter/Gauge leaking through
    for key in (
        "plans_built", "runs_batched", "plan_chunks", "updates_planned",
        "run_retries", "update_retries", "backend_fallbacks", "task_retries",
        "num_updates", "store_remote_reads", "store_bytes_shipped",
        "store_shard_restarts", "store_transitions",
    ):
        assert isinstance(stats[key], int), key
    assert stats["store_transport"] in ("local", "sharded")


def test_statistics_keys_stable_across_updates(session):
    net = session.insert_net()
    session.insert_gate("cx", net, 0, 1)
    session.update_state()
    assert set(session.simulator.statistics()) == GOLDEN_KEYS
    assert session.simulator.statistics()["num_updates"] == 2
