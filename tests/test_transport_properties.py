"""Property tests: the sharded store transport is observationally invisible.

The transport seam's contract is that *where block payloads live* never
changes *what the simulator computes*: for any circuit and any knob corner,
a sharded session's states, expectations, trajectories and checkpoints are
bit-compatible (to 1e-10) with a local session and with the dense
reference.  Fork fleets additionally keep their copy-on-write accounting:
shard-side owned bytes mirror the local allocation totals, and forking
aliases payloads instead of copying them.
"""

from __future__ import annotations

import os
import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import QTask
from repro.core.circuit import Circuit
from repro.core.simulator import QTaskSimulator

from .conftest import circuit_levels, random_levels, reference_state

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="sharded transport needs fork"
)

ATOL = 1e-10

COMMON_SETTINGS = dict(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: (fusion, block_directory) corners exercised for transport equivalence.
CONFIGS = [
    (False, True),
    (True, True),
    (False, False),
    (True, False),
]

N_QUBITS = 5


def _sim_pair(levels, *, num_qubits=N_QUBITS, **knobs):
    """The same circuit attached to a local and a sharded simulator."""
    sims = []
    for transport in ("local", "sharded"):
        circuit = Circuit(num_qubits)
        circuit.from_levels(levels)
        sims.append(
            QTaskSimulator(
                circuit, store_transport=transport, num_workers=2, **knobs
            )
        )
    return sims


# ---------------------------------------------------------------------------
# state equivalence: sharded == local == dense, initial and incremental
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("fusion,block_directory", CONFIGS)
@given(seed=st.integers(0, 10**6))
@settings(**COMMON_SETTINGS)
def test_sharded_matches_local_and_dense(fusion, block_directory, seed):
    rng = random.Random(seed)
    levels = random_levels(rng, N_QUBITS, 4)
    local, sharded = _sim_pair(
        levels, block_size=4, fusion=fusion, block_directory=block_directory
    )
    try:
        local.update_state()
        sharded.update_state()
        expected = reference_state(N_QUBITS, circuit_levels(local.circuit))
        np.testing.assert_allclose(local.state(), expected, atol=ATOL, rtol=0)
        np.testing.assert_allclose(sharded.state(), expected, atol=ATOL, rtol=0)
        # incremental growth: insert the same gate into both, update again
        for sim in (local, sharded):
            net = sim.circuit.insert_net()
            sim.circuit.insert_gate("cx", net, 0, N_QUBITS - 1)
            sim.update_state()
        expected = reference_state(N_QUBITS, circuit_levels(local.circuit))
        np.testing.assert_allclose(sharded.state(), expected, atol=ATOL, rtol=0)
        np.testing.assert_allclose(sharded.state(), local.state(), atol=ATOL)
    finally:
        local.close()
        sharded.close()


@pytest.mark.parametrize("block_size", [2, 4, 16])
@pytest.mark.parametrize("kernel_backend", ["numpy", "legacy"])
def test_sharded_parity_across_block_size_and_backend(block_size, kernel_backend):
    rng = random.Random(20260807)
    levels = random_levels(rng, N_QUBITS, 5)
    local, sharded = _sim_pair(
        levels, block_size=block_size, kernel_backend=kernel_backend
    )
    try:
        local.update_state()
        sharded.update_state()
        expected = reference_state(N_QUBITS, circuit_levels(local.circuit))
        np.testing.assert_allclose(local.state(), expected, atol=ATOL, rtol=0)
        np.testing.assert_allclose(sharded.state(), expected, atol=ATOL, rtol=0)
    finally:
        local.close()
        sharded.close()


@given(seed=st.integers(0, 10**6))
@settings(**COMMON_SETTINGS)
def test_retune_parity(seed):
    """update_gate + incremental update: both transports track the edit."""
    rng = random.Random(seed)
    levels = random_levels(rng, N_QUBITS, 3)
    levels.append([])  # retunable tail level, inserted via the circuit API
    local, sharded = _sim_pair(levels[:-1], block_size=4)
    try:
        handles = []
        for sim in (local, sharded):
            net = sim.circuit.insert_net()
            handles.append(sim.circuit.insert_gate("rz", net, 2, params=[0.3]))
            sim.update_state()
        theta = rng.uniform(0, 2 * np.pi)
        for sim, handle in zip((local, sharded), handles):
            sim.circuit.update_gate(handle, theta)
            sim.update_state()
        np.testing.assert_allclose(sharded.state(), local.state(), atol=ATOL)
        expected = reference_state(N_QUBITS, circuit_levels(local.circuit))
        np.testing.assert_allclose(sharded.state(), expected, atol=ATOL, rtol=0)
    finally:
        local.close()
        sharded.close()


# ---------------------------------------------------------------------------
# fork fleets: COW semantics and per-shard accounting survive sharding
# ---------------------------------------------------------------------------


def _session(transport, **knobs):
    ckt = QTask(N_QUBITS, store_transport=transport, num_workers=2, **knobs)
    net = ckt.insert_net()
    for q in range(N_QUBITS):
        ckt.insert_gate("h", net, q)
    net2 = ckt.insert_net()
    for q in range(0, N_QUBITS - 1, 2):
        ckt.insert_gate("cx", net2, q, q + 1)
    net3 = ckt.insert_net()
    handles = [
        ckt.insert_gate("rz", net3, q, params=[0.2 + 0.1 * q])
        for q in range(N_QUBITS)
    ]
    ckt.update_state()
    return ckt, handles


def test_fork_fleet_parity_and_shared_accounting():
    local, lh = _session("local")
    sharded, sh = _session("sharded")
    try:
        thetas = [0.11, 0.93, 2.47]
        locals_, shardeds = [], []
        for theta in thetas:
            for base, handles, out in (
                (local, lh, locals_),
                (sharded, sh, shardeds),
            ):
                child = base.fork()
                child.update_gate(child.handle_for(handles[0]), theta)
                child.update_state()
                out.append(child)
        for lc, sc in zip(locals_, shardeds):
            np.testing.assert_allclose(sc.state(), lc.state(), atol=ATOL)
        # fork children alias parent payloads shard-side: every child holds
        # shared (not owned) bytes, exactly like the local fleet
        for lc, sc in zip(locals_, shardeds):
            assert (
                sc.simulator.memory_report().shared_bytes
                == lc.simulator.memory_report().shared_bytes
            )
        for child in locals_ + shardeds:
            child.close()
    finally:
        local.close()
        sharded.close()


def test_per_shard_owned_bytes_sum_to_local_total():
    """The acceptance gate: shard-side owned bytes == local allocation."""
    local, _ = _session("local")
    sharded, _ = _session("sharded")
    try:
        # shard processes are shared across sessions/tests; attribute this
        # session's bytes by diffing against everything else it coexists with
        report = sharded.simulator.memory_report()
        assert report.transport == "sharded"
        assert len(report.shards) >= 1
        assert all(s["alive"] for s in report.shards)
        local_report = local.simulator.memory_report()
        assert report.allocated_bytes == local_report.allocated_bytes
        shard_total = sum(s["owned_bytes"] + s["shared_bytes"] for s in report.shards)
        # every block this session allocated is resident on some shard
        # (shards may also hold other concurrent sessions' payloads)
        assert shard_total >= report.allocated_bytes
    finally:
        local.close()
        sharded.close()


# ---------------------------------------------------------------------------
# dynamic circuits: trajectories depend on the seed, not the transport
# ---------------------------------------------------------------------------


def _dynamic_session(transport):
    ckt = QTask(
        3, num_clbits=3, store_transport=transport, num_workers=2, block_size=4
    )
    net = ckt.insert_net()
    for q in range(3):
        ckt.insert_gate("h", net, q)
    net2 = ckt.insert_net()
    ckt.insert_gate("cx", net2, 0, 1)
    mnet = ckt.insert_net()
    for q in range(3):
        ckt.measure(mnet, q, q)
    return ckt


@given(seed=st.integers(0, 10**6))
@settings(**COMMON_SETTINGS)
def test_dynamic_trajectories_match(seed):
    local = _dynamic_session("local")
    sharded = _dynamic_session("sharded")
    try:
        assert local.run_shots(16, seed=seed) == sharded.run_shots(16, seed=seed)
    finally:
        local.close()
        sharded.close()


# ---------------------------------------------------------------------------
# checkpoints cross the transport boundary in both directions
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "save_on,restore_on",
    [("sharded", "local"), ("local", "sharded"), ("sharded", "sharded")],
)
def test_checkpoint_roundtrip_across_transports(tmp_path, save_on, restore_on):
    ckt, handles = _session(save_on)
    try:
        path = ckt.checkpoint(str(tmp_path / "state.qck"))
        expected = ckt.state()
        restored = QTask.restore(path, store_transport=restore_on)
        try:
            assert restored.simulator.statistics()["store_transport"] == restore_on
            np.testing.assert_allclose(restored.state(), expected, atol=ATOL)
            # the restored session stays incrementally editable
            mirrored = restored.circuit.gates()
            rz = next(h for h in mirrored if h.gate.name == "rz")
            restored.update_gate(rz, 1.234)
            restored.update_state()
            dense = reference_state(
                N_QUBITS, circuit_levels(restored.circuit)
            )
            np.testing.assert_allclose(restored.state(), dense, atol=ATOL, rtol=0)
        finally:
            restored.close()
    finally:
        ckt.close()
