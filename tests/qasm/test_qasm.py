"""Tests for the OpenQASM parser, expression evaluator, levelizer and writer."""

import math

import numpy as np
import pytest

from repro.core.exceptions import QasmSyntaxError
from repro.core.gates import Gate
from repro.qasm import levelize, levels_to_circuit, parse_qasm, to_qasm
from repro.qasm.expressions import evaluate_expression
from repro.qasm.levelize import program_to_circuit
from repro.qasm.parser import parse_qasm_file

from ..conftest import assert_states_close, reference_state


# ---------------------------------------------------------------------------
# expression evaluation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "text,expected",
    [
        ("1.5", 1.5),
        ("pi", math.pi),
        ("pi/2", math.pi / 2),
        ("-pi/4", -math.pi / 4),
        ("2*pi/3", 2 * math.pi / 3),
        ("1+2*3", 7.0),
        ("(1+2)*3", 9.0),
        ("2^3", 8.0),
        ("sin(0)", 0.0),
        ("cos(0)", 1.0),
        ("sqrt(4)", 2.0),
    ],
)
def test_expression_values(text, expected):
    assert evaluate_expression(text) == pytest.approx(expected)


def test_expression_with_variables():
    assert evaluate_expression("theta/2", {"theta": 1.0}) == pytest.approx(0.5)


@pytest.mark.parametrize("text", ["", "import os", "foo", "__import__('os')", "1;2", "f(1)"])
def test_expression_rejects_invalid(text):
    with pytest.raises(QasmSyntaxError):
        evaluate_expression(text)


def test_expression_keyword_parameter_names():
    """Python-keyword formals (``lambda`` is ubiquitous in qelib1.inc) work."""
    assert evaluate_expression("lambda/2", {"lambda": 3.0}) == pytest.approx(1.5)
    assert evaluate_expression(
        "lambda + 2*lambda", {"lambda": 0.5}
    ) == pytest.approx(1.5)
    # substitution is whole-word: 'lambda2' is a different (unknown) name
    with pytest.raises(QasmSyntaxError, match="unknown identifier"):
        evaluate_expression("lambda2", {"lambda": 1.0})
    # other keywords too, and mixed with ordinary names
    assert evaluate_expression(
        "if*2 + theta", {"if": 2.0, "theta": 1.0}
    ) == pytest.approx(5.0)


def test_expression_unbound_keyword_is_an_error():
    with pytest.raises(QasmSyntaxError):
        evaluate_expression("lambda/2")


def test_expression_constants_are_case_exact():
    """OpenQASM identifiers are case-sensitive: unbound ``PI`` must raise."""
    for bad in ("PI", "Pi", "E", "TAU", "Tau"):
        with pytest.raises(QasmSyntaxError, match="unknown identifier"):
            evaluate_expression(bad)
    # exact-case constants still resolve, and variables shadow nothing
    assert evaluate_expression("tau") == pytest.approx(2 * math.pi)
    assert evaluate_expression("e") == pytest.approx(math.e)
    # an explicitly *bound* upper-case name is a variable, not a constant
    assert evaluate_expression("PI", {"PI": 3.0}) == pytest.approx(3.0)


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------

BASIC = """
OPENQASM 2.0;
include "qelib1.inc";
// a comment
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[2];
rz(pi/4) q[1];
barrier q;
x q[1];
measure q -> c;
"""


def test_parse_basic_program():
    prog = parse_qasm(BASIC)
    assert prog.num_qubits == 3
    assert prog.num_classical_bits == 3
    assert prog.cregisters == {"c": (0, 3)}
    names = [g.name for g in prog.gates]
    # `measure q -> c;` broadcasts into one MeasureOp per register bit
    assert names == ["h", "cx", "rz", "x", "measure", "measure", "measure"]
    assert prog.gates[1].qubits == (0, 2)
    assert prog.gates[2].params[0] == pytest.approx(math.pi / 4)
    assert [(m.qubit, m.clbit) for m in prog.gates[4:]] == [(0, 0), (1, 1), (2, 2)]
    assert prog.barriers == [3]


def test_parse_register_broadcast():
    prog = parse_qasm("qreg q[4]; h q;")
    assert [g.qubits for g in prog.gates] == [(0,), (1,), (2,), (3,)]


def test_parse_multiple_registers_flattened():
    prog = parse_qasm("qreg a[2]; qreg b[2]; cx a[1],b[0];")
    assert prog.num_qubits == 4
    assert prog.gates[0].qubits == (1, 2)


def test_parse_block_comments_stripped():
    prog = parse_qasm("/* header\nspanning lines */ qreg q[1]; x q[0];")
    assert prog.num_gates == 1


def test_parse_user_gate_definition_expands():
    src = """
    qreg q[2];
    gate mygate(theta) a, b { rz(theta/2) a; cx a,b; rz(-theta/2) b; }
    mygate(pi) q[0], q[1];
    """
    prog = parse_qasm(src)
    assert [g.name for g in prog.gates] == ["rz", "cx", "rz"]
    assert prog.gates[0].params[0] == pytest.approx(math.pi / 2)
    assert prog.gates[1].qubits == (0, 1)


def test_parse_user_gate_with_lambda_formal_roundtrips():
    """A user gate whose formal is the Python keyword ``lambda`` must work."""
    src = """
    qreg q[2];
    gate twist(lambda, theta) a, b { rz(lambda) a; cx a,b; rx(theta+lambda) b; }
    twist(pi/2, 0.25) q[0], q[1];
    """
    prog = parse_qasm(src)
    assert [g.name for g in prog.gates] == ["rz", "cx", "rx"]
    assert prog.gates[0].params[0] == pytest.approx(math.pi / 2)
    assert prog.gates[2].params[0] == pytest.approx(0.25 + math.pi / 2)
    # full round-trip: write the expanded program back out and re-parse it
    levels = levelize(prog.gates)
    text = to_qasm(levels, num_qubits=prog.num_qubits)
    reparsed = parse_qasm(text)
    assert_states_close(
        reference_state(2, levelize(reparsed.gates)),
        reference_state(2, levels),
        atol=1e-12,
    )


def test_parse_builtin_macro_cu3_matches_unitary():
    """The cu3 macro expansion must implement a controlled-U3 (up to phase)."""
    theta, phi, lam = 0.3, 0.7, 1.1
    src = f"qreg q[2]; cu3({theta},{phi},{lam}) q[0], q[1];"
    prog = parse_qasm(src)
    levels = levelize(prog.gates)
    state_in = [[Gate("h", (0,)), Gate("h", (1,))]]  # non-trivial input
    expected_ctrl = Gate("cu3", (0, 1), (theta, phi, lam)) if False else None
    # Build the expected controlled-U3 operator explicitly.
    from repro.core.gates import controlled_matrix, gate_matrix, classify_matrix
    cu3 = controlled_matrix(gate_matrix("u3", theta, phi, lam))
    psi = reference_state(2, state_in)
    expected = cu3 @ psi
    got = reference_state(2, state_in + levels)
    # allow a global phase difference
    k = np.argmax(np.abs(expected))
    phase = got[k] / expected[k]
    assert_states_close(got, expected * phase, atol=1e-9)


def test_parse_errors():
    with pytest.raises(QasmSyntaxError):
        parse_qasm("x q[0];")                       # no qreg
    with pytest.raises(QasmSyntaxError):
        parse_qasm("qreg q[1]; frob q[0];")         # unknown gate
    with pytest.raises(QasmSyntaxError):
        parse_qasm("qreg q[1]; x q[5];")            # index out of range
    with pytest.raises(QasmSyntaxError):
        parse_qasm("qreg q[1]; x r[0];")            # unknown register
    with pytest.raises(QasmSyntaxError):
        parse_qasm("qreg q[2]; if (c==0) x q[0];")  # classical control
    with pytest.raises(QasmSyntaxError):
        parse_qasm("qreg q[2]; opaque magic a;")    # opaque


def test_parse_qasm_file(tmp_path):
    path = tmp_path / "c.qasm"
    path.write_text(BASIC)
    prog = parse_qasm_file(str(path))
    assert prog.num_gates == 7  # 4 unitaries + 3 broadcast measures


# ---------------------------------------------------------------------------
# levelizer
# ---------------------------------------------------------------------------


def test_levelize_asap_structure():
    gates = [Gate("h", (0,)), Gate("h", (1,)), Gate("cx", (0, 1)), Gate("x", (2,))]
    levels = levelize(gates)
    assert [[g.name for g in lvl] for lvl in levels] == [["h", "h", "x"], ["cx"]]


def test_levelize_respects_barriers():
    gates = [Gate("h", (0,)), Gate("x", (1,))]
    levels = levelize(gates, barriers=[1])
    assert len(levels) == 2


def test_levelize_net_invariant_holds(rng):
    from ..conftest import random_gate
    gates = []
    for _ in range(40):
        gates.append(random_gate(rng, range(6)))
    levels = levelize(gates)
    for lvl in levels:
        used = [q for g in lvl for q in g.qubits]
        assert len(used) == len(set(used))
    # level count never exceeds gate count, and all gates preserved
    assert sum(len(l) for l in levels) == 40


def test_levels_to_circuit_roundtrip():
    levels = [[Gate("h", (0,))], [Gate("cx", (0, 1))]]
    ckt = levels_to_circuit(2, levels)
    assert ckt.num_gates == 2 and ckt.num_nets == 2


def test_program_to_circuit_simulates_correctly():
    prog = parse_qasm("qreg q[2]; h q[0]; cx q[0],q[1];")
    ckt = program_to_circuit(prog)
    from repro.core.simulator import QTaskSimulator
    sim = QTaskSimulator(ckt, block_size=2, num_workers=1)
    sim.update_state()
    expected = np.zeros(4, dtype=complex)
    expected[0] = expected[3] = 1 / np.sqrt(2)
    assert_states_close(sim.state(), expected)
    sim.close()


# ---------------------------------------------------------------------------
# writer round trip
# ---------------------------------------------------------------------------


def test_writer_roundtrip_preserves_levels_and_semantics():
    levels = [
        [Gate("h", (0,)), Gate("x", (2,))],
        [Gate("cx", (0, 1))],
        [Gate("rz", (1,), (0.25,)), Gate("swap", (0, 2))],
    ]
    text = to_qasm(levels, num_qubits=3)
    prog = parse_qasm(text)
    round_levels = levelize(prog.gates, barriers=prog.barriers)
    assert [[g.name for g in l] for l in round_levels] == [
        [g.name for g in l] for l in levels
    ]
    assert_states_close(reference_state(3, round_levels), reference_state(3, levels))


def test_writer_accepts_circuit_object():
    ckt = levels_to_circuit(2, [[Gate("h", (1,))]])
    text = to_qasm(ckt)
    assert "qreg q[2];" in text and "h q[1];" in text


def test_writer_requires_qubit_count_for_raw_levels():
    with pytest.raises(ValueError):
        to_qasm([[Gate("h", (0,))]])


# ---------------------------------------------------------------------------
# dynamic circuits: parse / write / simulate
# ---------------------------------------------------------------------------

DYNAMIC = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[2];
h q[0];
cx q[0],q[1];
measure q[0] -> c[0];
if (c==1) x q[2];
reset q[0];
measure q[2] -> c[1];
"""


def test_parse_dynamic_ops():
    from repro.core.ops import CGate, MeasureOp, ResetOp

    prog = parse_qasm(DYNAMIC)
    kinds = [type(g).__name__ for g in prog.gates]
    assert kinds == ["Gate", "Gate", "MeasureOp", "CGate", "ResetOp", "MeasureOp"]
    assert prog.has_dynamic_ops
    measure = prog.gates[2]
    assert (measure.qubit, measure.clbit) == (0, 0)
    cond = prog.gates[3]
    assert cond.gate.name == "x"
    assert cond.condition_bits == (0, 1)
    assert cond.condition_value == 1
    assert isinstance(prog.gates[4], ResetOp)
    assert prog.cregisters == {"c": (0, 2)}


def test_parse_measure_broadcast_and_errors():
    prog = parse_qasm("qreg q[2]; creg c[2]; measure q -> c;")
    assert [(m.qubit, m.clbit) for m in prog.gates] == [(0, 0), (1, 1)]
    with pytest.raises(QasmSyntaxError):
        parse_qasm("qreg q[2]; creg c[1]; measure q -> c;")   # size mismatch
    with pytest.raises(QasmSyntaxError):
        parse_qasm("qreg q[1]; creg c[1]; measure q[0] -> d[0];")  # unknown creg
    with pytest.raises(QasmSyntaxError):
        parse_qasm("qreg q[1]; creg c[1]; measure q[0];")     # missing target


def test_parse_conditional_errors():
    with pytest.raises(QasmSyntaxError):
        parse_qasm("qreg q[1]; creg c[1]; if (c==2) x q[0];")  # value too wide
    with pytest.raises(QasmSyntaxError):
        parse_qasm("qreg q[1]; creg c[1]; if (c==0) measure q[0] -> c[0];")
    with pytest.raises(QasmSyntaxError):
        parse_qasm("qreg q[1]; if (d==0) x q[0];")             # unknown creg


def test_parse_conditional_macro_distributes():
    # a conditioned user-gate expands to one CGate per body gate
    from repro.core.ops import CGate

    prog = parse_qasm(
        "gate pair a,b { x a; z b; } "
        "qreg q[2]; creg c[1]; if (c==1) pair q[0],q[1];"
    )
    assert all(isinstance(g, CGate) for g in prog.gates)
    assert [g.gate.name for g in prog.gates] == ["x", "z"]


def test_dynamic_roundtrip_through_writer():
    prog = parse_qasm(DYNAMIC)
    ckt = program_to_circuit(prog)
    text = to_qasm(ckt)
    prog2 = parse_qasm(text)
    assert [str(g) for g in prog2.gates] == [str(g) for g in prog.gates]
    assert prog2.cregisters == prog.cregisters


def test_writer_emits_registers_and_conditions():
    from repro.core.circuit import Circuit

    ckt = Circuit(2)
    reg = ckt.add_classical_register("syndrome", 2)
    n1, n2 = ckt.insert_net(), ckt.insert_net()
    ckt.insert_measure(n1, 0, reg[0])
    ckt.insert_cgate("x", n2, 1, condition=(reg, 3))
    text = to_qasm(ckt)
    assert "creg syndrome[2];" in text
    assert "measure q[0] -> syndrome[0];" in text
    assert "if(syndrome==3) x q[1];" in text


def test_writer_rejects_bit_subset_condition():
    from repro.core.circuit import Circuit

    ckt = Circuit(2)
    ckt.add_classical_register("c", 2)
    net = ckt.insert_net()
    # condition over one bit of a two-bit register: not expressible in QASM2
    ckt.insert_cgate("x", net, 1, condition=((0,), 1))
    with pytest.raises(QasmSyntaxError):
        to_qasm(ckt)


def test_parsed_dynamic_circuit_simulates_like_dense():
    import numpy as np

    from repro.baselines.dense import DenseReferenceSimulator
    from repro.core.simulator import QTaskSimulator

    prog = parse_qasm(DYNAMIC)
    ckt = program_to_circuit(prog)
    sim = QTaskSimulator(ckt, block_size=4, seed=13)
    try:
        sim.update_state()
        dense = DenseReferenceSimulator(
            ckt, forced_outcomes=sim.outcomes.recorded_outcomes()
        )
        dense.update_state()
        np.testing.assert_allclose(sim.state(), dense.state(), atol=1e-10)
    finally:
        sim.close()


def test_writer_condition_over_anonymous_register():
    from repro.core.circuit import Circuit

    # a condition covering exactly the anonymous fallback register serialises
    ckt = Circuit(2, num_clbits=1)
    n1, n2 = ckt.insert_net(), ckt.insert_net()
    ckt.insert_measure(n1, 0, 0)
    ckt.insert_cgate("x", n2, 1, condition=((0,), 1))
    text = to_qasm(ckt)
    assert "creg c[1];" in text and "if(c==1) x q[1];" in text
    reparsed = parse_qasm(text)
    assert [str(g) for g in reparsed.gates] == [
        str(h.gate) for net in ckt.nets() for h in net.gates
    ]
