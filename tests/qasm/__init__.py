"""Test package."""
