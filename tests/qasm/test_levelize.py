"""Dedicated coverage for :mod:`repro.qasm.levelize` (ASAP scheduling)."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.gates import Gate
from repro.core.ops import CGate, MeasureOp, ResetOp
from repro.qasm import parse_qasm
from repro.qasm.levelize import levelize, levels_to_circuit, program_to_circuit

from ..conftest import random_gate


class TestLevelizeUnitary:
    def test_empty_input(self):
        assert levelize([]) == []

    def test_single_gate(self):
        levels = levelize([Gate("h", (0,))])
        assert [[g.name for g in lvl] for lvl in levels] == [["h"]]

    def test_asap_packs_disjoint_gates(self):
        gates = [
            Gate("h", (0,)),
            Gate("h", (1,)),
            Gate("cx", (0, 1)),
            Gate("x", (2,)),
        ]
        levels = levelize(gates)
        assert [[g.name for g in lvl] for lvl in levels] == [
            ["h", "h", "x"],
            ["cx"],
        ]

    def test_chain_depth_equals_gate_count(self):
        gates = [Gate("x", (0,)) for _ in range(5)]
        assert len(levelize(gates)) == 5

    def test_barrier_forces_fresh_level(self):
        gates = [Gate("h", (0,)), Gate("x", (1,))]
        assert len(levelize(gates, barriers=[1])) == 2
        # a barrier *after* every gate adds nothing
        assert len(levelize(gates, barriers=[2])) == 1

    def test_barrier_floor_applies_to_all_later_gates(self):
        gates = [Gate("h", (0,)), Gate("x", (1,)), Gate("z", (2,))]
        levels = levelize(gates, barriers=[1])
        # both post-barrier gates land on the (same) fresh level
        assert [[g.name for g in lvl] for lvl in levels] == [["h"], ["x", "z"]]

    def test_level_order_preserves_qubit_program_order(self, rng):
        gates = []
        for _ in range(60):
            gates.append(random_gate(rng, range(5)))
        levels = levelize(gates)
        seen = {}
        flat_order = {}
        for li, level in enumerate(levels):
            used = set()
            for g in level:
                for q in g.qubits:
                    assert q not in used  # net invariant per level
                    used.add(q)
                    assert seen.get(q, -1) < li  # per-qubit order kept
                    seen[q] = li
        # every gate survives levelization exactly once
        assert sum(len(lvl) for lvl in levels) == len(gates)


class TestLevelizeClassicalDeps:
    def test_conditioned_gate_waits_for_measure(self):
        # disjoint qubits, but the condition reads the measured clbit
        ops = [
            MeasureOp(0, 0),
            CGate(Gate("x", (1,)), (0,), 1),
        ]
        levels = levelize(ops)
        assert len(levels) == 2
        assert isinstance(levels[0][0], MeasureOp)
        assert isinstance(levels[1][0], CGate)

    def test_unrelated_clbits_stay_parallel(self):
        ops = [MeasureOp(0, 0), MeasureOp(1, 1)]
        assert len(levelize(ops)) == 1

    def test_two_writers_of_one_clbit_serialise(self):
        ops = [MeasureOp(0, 0), MeasureOp(1, 0)]
        assert len(levelize(ops)) == 2

    def test_reader_then_writer_serialise(self):
        # measure after a conditioned gate on the same clbit must not swap
        ops = [CGate(Gate("x", (1,)), (0,), 1), MeasureOp(0, 0)]
        levels = levelize(ops)
        assert len(levels) == 2
        assert isinstance(levels[0][0], CGate)

    def test_reset_has_no_classical_deps(self):
        ops = [MeasureOp(0, 0), ResetOp(1)]
        assert len(levelize(ops)) == 1


class TestLevelsToCircuit:
    def test_builds_one_net_per_level(self):
        levels = [[Gate("h", (0,)), Gate("h", (1,))], [Gate("cx", (0, 1))]]
        ckt = levels_to_circuit(2, levels)
        assert ckt.num_nets == 2
        assert ckt.num_gates == 3

    def test_num_clbits_passthrough(self):
        ckt = levels_to_circuit(2, [[MeasureOp(0, 1)]], num_clbits=2)
        assert ckt.num_clbits == 2
        assert ckt.num_dynamic_ops == 1


class TestProgramToCircuit:
    def test_registers_mirrored(self):
        prog = parse_qasm(
            "qreg q[2]; creg a[1]; creg b[2];"
            "h q[0]; measure q[0] -> a[0]; if (b==0) x q[1];"
        )
        ckt = program_to_circuit(prog)
        assert ckt.num_clbits == 3
        assert ckt.creg("a").offset == 0
        assert ckt.creg("b").offset == 1
        assert ckt.num_dynamic_ops == 2

    def test_measure_serialises_against_condition(self):
        prog = parse_qasm(
            "qreg q[2]; creg c[1];"
            "h q[0]; measure q[0] -> c[0]; if (c==1) x q[1];"
        )
        ckt = program_to_circuit(prog)
        # h, then measure, then the conditioned gate: three levels
        assert ckt.num_nets == 3
