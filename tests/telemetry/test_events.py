"""The recovery event log: unit behaviour + engine emission under faults."""

import random

import numpy as np

from repro.core import faults
from repro.core.circuit import Circuit
from repro.core.faults import FaultPlan
from repro.core.gates import Gate
from repro.core.simulator import QTaskSimulator
from repro.telemetry import EventLog

from ..conftest import random_levels, reference_state


# ---------------------------------------------------------------------------
# EventLog unit behaviour
# ---------------------------------------------------------------------------


def test_event_log_emit_filter_and_since():
    log = EventLog()
    log.emit("fault.injected", site="kernel.run")
    log.emit("run.retry", stage=3, attempt=1)
    mark = log.last_seq
    log.emit("run.retry", stage=3, attempt=2)
    assert len(log) == 3
    assert [e.kind for e in log.events()] == [
        "fault.injected", "run.retry", "run.retry",
    ]
    assert [e.fields["attempt"] for e in log.events(kind="run.retry")] == [1, 2]
    since = log.events(since=mark)
    assert len(since) == 1 and since[0].fields["attempt"] == 2
    assert log.events(kind="run.retry", since=mark)[0].seq == since[0].seq


def test_event_log_is_bounded_and_counts_drops():
    log = EventLog(capacity=3)
    for i in range(5):
        log.emit("e", i=i)
    assert len(log) == 3
    assert [e.fields["i"] for e in log.events()] == [2, 3, 4]
    assert log.dropped == 2
    assert log.last_seq == 5  # seq keeps counting across evictions
    log.clear()
    assert len(log) == 0 and log.dropped == 0


def test_event_as_dict_flattens_fields():
    log = EventLog()
    e = log.emit("breaker.transition", backend="numpy", reason="x")
    d = e.as_dict()
    assert d["kind"] == "breaker.transition"
    assert d["backend"] == "numpy" and d["reason"] == "x"
    assert d["seq"] == 1 and "time" in d and "wall_time" in d


# ---------------------------------------------------------------------------
# engine emission: scripted faults must leave a queryable audit trail
# ---------------------------------------------------------------------------


def _build_sim(num_qubits, levels, **kwargs):
    ckt = Circuit(num_qubits)
    ckt.from_levels(levels)
    return QTaskSimulator(ckt, **kwargs)


def test_scripted_fault_leaves_injection_and_retry_events():
    rng = random.Random(12)
    levels = random_levels(rng, 5, 4)
    sim = _build_sim(5, levels, kernel_backend="numpy", block_size=4)
    faults.install(FaultPlan(script=[("cow.publish", 1), ("cow.publish", 2)]))
    try:
        sim.update_state()
        log = sim.telemetry.events
        injected = log.events(kind="fault.injected")
        assert injected and all(
            e.fields["site"] == "cow.publish" for e in injected
        )
        # the chunk fell back to run-granular execution and retried
        assert log.events(kind="chunk.fallback")
        assert log.events(kind="run.retry")
        np.testing.assert_allclose(
            sim.state(), reference_state(5, levels), atol=1e-10, rtol=0
        )
    finally:
        faults.uninstall()
        sim.close()


def test_explain_last_update_renders_recovery_events():
    rng = random.Random(12)
    levels = random_levels(rng, 5, 4)
    sim = _build_sim(5, levels, kernel_backend="numpy", block_size=4)
    faults.install(FaultPlan(script=[("cow.publish", 1)]))
    try:
        sim.update_state()
        text = sim.explain_last_update()
        assert "update #0" in text
        assert "backend numpy" in text
        assert "recovery events" in text and "none" not in text
        assert "fault.injected" in text
        assert "site=cow.publish" in text
        assert "ms" in text
    finally:
        faults.uninstall()
        sim.close()


def test_explain_last_update_clean_run_reports_no_events():
    rng = random.Random(7)
    levels = random_levels(rng, 4, 3)
    sim = _build_sim(4, levels, kernel_backend="numpy", block_size=4)
    try:
        sim.update_state()
        text = sim.explain_last_update()
        assert "recovery events: none" in text
        # events from update N-1 must not bleed into update N's account
        faults.install(FaultPlan(script=[("cow.publish", 1)]))
        try:
            net = sim.circuit.insert_net()
            sim.circuit.insert_gate("x", net, 0)
            sim.update_state()
        finally:
            faults.uninstall()
        assert "fault.injected" in sim.explain_last_update()
        net2 = sim.circuit.insert_net()
        sim.circuit.insert_gate("x", net2, 1)
        sim.update_state()
        assert "recovery events: none" in sim.explain_last_update()
    finally:
        sim.close()


def test_breaker_transition_is_logged():
    rng = random.Random(5)
    levels = random_levels(rng, 5, 4)
    sim = _build_sim(5, levels, kernel_backend="numpy", block_size=4)
    # storm one site long enough to trip the chunk breaker
    faults.install(FaultPlan(script=[("cow.publish", i) for i in range(1, 40)]))
    try:
        sim.update_state()
        transitions = sim.telemetry.events.events(kind="breaker.transition")
        assert transitions
        assert transitions[0].fields["to"] != transitions[0].fields["from"]
    except Exception:
        # an unrecoverable storm may surface FaultInjected; the event log
        # must still hold the injection trail
        assert sim.telemetry.events.events(kind="fault.injected")
    finally:
        faults.uninstall()
        sim.close()


def test_checkpoint_save_and_restore_emit_events(tmp_path):
    from repro.core.snapshot import restore_simulator, save_checkpoint

    rng = random.Random(3)
    levels = random_levels(rng, 4, 3)
    sim = _build_sim(4, levels, kernel_backend="numpy", block_size=4)
    path = str(tmp_path / "ckpt.qtask")
    try:
        sim.update_state()
        save_checkpoint(sim, path)
        (saved,) = sim.telemetry.events.events(kind="checkpoint.save")
        assert saved.fields["path"] == path
        assert saved.fields["bytes"] > 0
    finally:
        sim.close()

    restored = restore_simulator(path)
    try:
        (loaded,) = restored.telemetry.events.events(kind="checkpoint.restore")
        assert loaded.fields["path"] == path
        assert loaded.fields["seconds"] >= 0.0
        np.testing.assert_allclose(
            restored.state(), reference_state(4, levels), atol=1e-10, rtol=0
        )
    finally:
        restored.close()
