"""Unit tests for the tracing pillar: spans, nesting, export, null path."""

import json
import os
import threading

from repro.telemetry import Tracer
from repro.telemetry.tracing import NULL_SPAN


def test_disabled_tracer_returns_shared_null_span():
    tracer = Tracer(enabled=False)
    s = tracer.span("update", {"ignored": 1})
    assert s is NULL_SPAN
    assert tracer.span("other") is s  # one shared instance, no allocation
    with s as inner:
        inner.set("k", "v")  # every operation is a no-op
    assert tracer.spans() == []


def test_span_nesting_records_parent_ids():
    tracer = Tracer(enabled=True)
    with tracer.span("update") as outer:
        with tracer.span("plan.build") as mid:
            with tracer.span("run.chunk"):
                pass
        assert tracer.current_span_id() == outer.span_id
    assert tracer.current_span_id() is None

    by_name = {r.name: r for r in tracer.spans()}
    assert by_name["update"].parent_id is None
    assert by_name["plan.build"].parent_id == by_name["update"].span_id
    assert by_name["run.chunk"].parent_id == by_name["plan.build"].span_id
    # children finish (and are recorded) before their parent
    names = [r.name for r in tracer.spans()]
    assert names == ["run.chunk", "plan.build", "update"]


def test_span_attrs_and_error_marking():
    tracer = Tracer(enabled=True)
    try:
        with tracer.span("update", {"stage": 3}) as span:
            span.set("runs", 17)
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    (record,) = tracer.spans()
    assert record.attrs == {"stage": 3, "runs": 17, "error": "RuntimeError"}
    assert record.duration >= 0.0


def test_attach_detach_propagates_parent_across_threads():
    tracer = Tracer(enabled=True)
    recorded = {}

    with tracer.span("update") as outer:
        parent_id = tracer.current_span_id()

        def worker():
            # a fresh thread has no current span until attach
            assert tracer.current_span_id() is None
            prev = tracer.attach(parent_id)
            try:
                with tracer.span("run.chunk") as child:
                    recorded["child"] = child.span_id
            finally:
                tracer.detach(prev)
            assert tracer.current_span_id() is None

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert parent_id == outer.span_id

    by_name = {r.name: r for r in tracer.spans()}
    assert by_name["run.chunk"].parent_id == by_name["update"].span_id
    assert by_name["run.chunk"].thread_id != by_name["update"].thread_id


def test_ring_buffer_bounds_and_drop_count():
    tracer = Tracer(enabled=True, capacity=4)
    for i in range(7):
        with tracer.span(f"s{i}"):
            pass
    spans = tracer.spans()
    assert len(spans) == 4
    assert [r.name for r in spans] == ["s3", "s4", "s5", "s6"]  # oldest evicted
    assert tracer.dropped == 3
    tracer.clear()
    assert tracer.spans() == [] and tracer.dropped == 0


def test_adopt_rehomes_foreign_records():
    tracer = Tracer(enabled=True)
    with tracer.span("pool.ship") as ship:
        sid = tracer.adopt(
            "pool.chunk", 123.0, 0.004,
            parent_id=ship.span_id, pid=99999,
            thread_id=99999, thread_name="pool-worker-99999",
            attrs={"rows": 8},
        )
    chunk = next(r for r in tracer.spans() if r.name == "pool.chunk")
    assert chunk.span_id == sid
    assert chunk.parent_id == ship.span_id
    assert chunk.pid == 99999
    assert chunk.attrs == {"rows": 8}


def test_chrome_trace_export_round_trips(tmp_path):
    tracer = Tracer(enabled=True)
    with tracer.span("update", {"update": 1}):
        with tracer.span("run.chunk"):
            pass
    path = str(tmp_path / "trace.json")
    trace = tracer.export_chrome_trace(path)

    with open(path, "r", encoding="utf-8") as fh:
        on_disk = json.load(fh)
    assert on_disk == json.loads(json.dumps(trace))

    events = on_disk["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    slices = [e for e in events if e["ph"] == "X"]
    assert {m["name"] for m in meta} >= {"process_name", "thread_name"}
    assert len(slices) == 2
    # timestamps rebased: earliest span starts at ts=0, all in microseconds
    assert min(e["ts"] for e in slices) == 0.0
    for e in slices:
        assert e["pid"] == os.getpid()
        assert e["dur"] >= 0.0
        assert "span_id" in e["args"]
    child = next(e for e in slices if e["name"] == "run.chunk")
    parent = next(e for e in slices if e["name"] == "update")
    assert child["args"]["parent_id"] == parent["args"]["span_id"]
    assert parent["args"]["update"] == 1
