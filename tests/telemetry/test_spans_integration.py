"""End-to-end tracing: spans nest across executor tasks and pool workers.

The acceptance scenario for the telemetry subsystem: a traced incremental
update on a deep cascade must export a valid chrome-trace JSON whose
``run.chunk`` spans nest under ``plan.build``/``update`` even when they
executed on different executor worker threads -- and, when the process
backend is available, whose ``pool.chunk`` spans carry worker pids.
"""

import json
import os

import numpy as np
import pytest

from repro.core.circuit import Circuit
from repro.core.gates import Gate
from repro.core.kernels import BackendUnavailable, ProcessPoolBackend
from repro.core.simulator import QTaskSimulator
from repro.qtask import QTask

_CASCADE = ["rz", "x", "rz", "y"]


def build_cascade(num_qubits, num_stages, *, block_size, **kwargs):
    ckt = Circuit(num_qubits)
    levels = [[Gate("h", (q,)) for q in range(num_qubits)]]
    for i in range(num_stages):
        name = _CASCADE[i % len(_CASCADE)]
        params = (0.1 + 0.001 * i,) if name == "rz" else ()
        levels.append([Gate(name, (i % 3,), params)])
    ckt.from_levels(levels)
    return ckt, QTaskSimulator(ckt, block_size=block_size, **kwargs)


def test_traced_cascade_exports_nested_spans_from_multiple_workers(tmp_path):
    """The ISSUE acceptance criterion: 120 stages, 2 workers, valid export."""
    ckt, sim = build_cascade(
        10, 120, block_size=16, num_workers=2,
        kernel_backend="numpy", tracing=True,
    )
    try:
        sim.update_state()
        handle = next(h for h in ckt.gates() if h.gate.name == "rz")
        ckt.update_gate(handle, 0.7)
        sim.update_state()

        spans = sim.telemetry.tracer.spans()
        by_name = {}
        for r in spans:
            by_name.setdefault(r.name, []).append(r)
        assert {"update", "plan.build", "run.chunk"} <= set(by_name)

        updates = {r.span_id: r for r in by_name["update"]}
        assert len(updates) == 2  # full build + incremental retune
        for build in by_name["plan.build"]:
            assert build.parent_id in updates
            assert build.attrs["stages"] >= 1
        for chunk in by_name["run.chunk"]:
            assert chunk.parent_id in updates
            assert chunk.attrs["backend"] == "numpy"
            assert chunk.attrs["runs"] >= 1
            assert chunk.attrs["amps"] >= 1
            # a chunk's time lies inside its parent update's window
            parent = updates[chunk.parent_id]
            assert parent.start <= chunk.start
            assert chunk.start + chunk.duration <= (
                parent.start + parent.duration + 1e-6
            )

        # chunks really ran on >= 2 distinct executor worker threads
        chunk_threads = {
            r.thread_name for r in by_name["run.chunk"]
            if r.thread_name.startswith("qtask-worker-")
        }
        assert len(chunk_threads) >= 2

        # the export is valid chrome-trace JSON mirroring those spans
        path = str(tmp_path / "cascade.json")
        trace = sim.telemetry.tracer.export_chrome_trace(path)
        with open(path, "r", encoding="utf-8") as fh:
            assert json.load(fh)["traceEvents"]
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == len(spans)
        assert min(e["ts"] for e in slices) == 0.0
    finally:
        sim.close()


def test_pool_worker_spans_carry_worker_pids():
    """Process-backend spans: ship/receive in the parent, chunks by pid."""
    try:
        backend = ProcessPoolBackend(num_workers=2, min_ship_amps=1)
    except BackendUnavailable as exc:
        pytest.skip(f"process backend unavailable: {exc}")
    # local store transport: remote-backed stores deliberately bypass
    # SharedMemory shipping, and pool.ship spans only exist on that path
    ckt, sim = build_cascade(
        8, 24, block_size=16, num_workers=1,
        kernel_backend=backend, tracing=True, store_transport="local",
    )
    try:
        sim.update_state()
        spans = sim.telemetry.tracer.spans()
        ships = [r for r in spans if r.name == "pool.ship"]
        chunks = [r for r in spans if r.name == "pool.chunk"]
        receives = [r for r in spans if r.name == "pool.receive"]
        assert ships and chunks and receives
        ship_ids = {r.span_id for r in ships}
        parent_pid = os.getpid()
        for chunk in chunks:
            assert chunk.parent_id in ship_ids
            assert chunk.pid != parent_pid  # measured inside a fork worker
            assert chunk.attrs["runs"] >= 1
        # at least one ship fanned out to a real worker process
        assert {r.pid for r in chunks} - {parent_pid}
    finally:
        sim.close()


def test_telemetry_report_is_consistent_with_statistics():
    ckt = QTask(6, num_workers=2, tracing=True)
    net = ckt.insert_net()
    for q in ckt.qubits():
        ckt.insert_gate("h", net, q)
    ckt.update_state()
    net2 = ckt.insert_net()
    ckt.insert_gate("cx", net2, 0, 1)
    ckt.update_state()
    try:
        stats = ckt.simulator.statistics()
        report = ckt.telemetry_report()
        assert report["session_id"] == ckt.telemetry.session_id
        # the update latency histogram saw exactly one observation per update
        upd = report["histograms"]["update.seconds"]
        assert upd["count"] == stats["num_updates"] == 2
        assert upd["unit"] == "s"
        assert 0 < upd["min"] <= upd["p50"] <= upd["p95"] <= upd["max"]
        assert upd["sum"] == pytest.approx(upd["count"] * upd["mean"])
        # counters mirror the statistics() keys they replaced
        assert report["counters"]["plan.plans_built"] == stats["plans_built"]
        assert report["counters"]["plan.chunks"] == stats["plan_chunks"]
        assert report["gauges"]["update.count"] == stats["num_updates"]
        assert report["gauges"]["graph.num_stages"] == stats["num_stages"]
        assert report["spans"]["enabled"] is True
        assert report["spans"]["recorded"] > 0
    finally:
        ckt.close()


def test_forked_sessions_keep_their_own_tagged_registry():
    parent = QTask(5, num_workers=2)
    net = parent.insert_net()
    for q in parent.qubits():
        parent.insert_gate("h", net, q)
    parent.update_state()
    child = parent.fork()
    try:
        base_plans = parent.simulator.statistics()["plans_built"]
        cnet = child.insert_net()
        child.insert_gate("x", cnet, 0)
        child.update_state()
        ctel = child.simulator.telemetry
        ptel = parent.simulator.telemetry
        assert ctel.session_id != ptel.session_id
        assert ctel.parent_session_id == ptel.session_id
        assert ctel.metrics.session_id == ctel.session_id
        # the child's work landed in the child's registry, not the parent's
        assert ctel.metrics.get("plan.plans_built").value >= 1
        assert parent.simulator.statistics()["plans_built"] == base_plans
    finally:
        child.close()
        parent.close()


def test_sweep_runner_merges_fleet_metrics():
    from repro.parallel.sweep import SweepRunner

    ckt = QTask(5, num_workers=2)
    net = ckt.insert_net()
    for q in ckt.qubits():
        ckt.insert_gate("h", net, q)
    theta = ckt.insert_net()
    handle = ckt.insert_gate("rz", theta, 0, params=[0.1])
    ckt.update_state()

    with SweepRunner(ckt, [handle], observable="Z" * 5) as runner:
        results = runner.run([(0.2,), (0.4,), (0.6,), (0.8,)])
        assert len(results) == 4
        merged = runner.merged_metrics()
        base = ckt.simulator.telemetry.metrics
        assert merged.session_id == base.session_id
        fleet_updates = sum(
            child.simulator.telemetry.metrics.get("plan.updates_planned").value
            for child, _ in runner._forks
        )
        assert fleet_updates >= 4  # the sweep points ran on forks
        assert merged.counter("plan.updates_planned").value == (
            base.counter("plan.updates_planned").value + fleet_updates
        )
        # merging is a pure read: live registries are untouched
        assert base.counter("plan.updates_planned").value < (
            merged.counter("plan.updates_planned").value
        )
    ckt.close()
