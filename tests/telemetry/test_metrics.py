"""Unit tests for the metrics pillar: counters, gauges, histograms, registry."""

import pytest

from repro.telemetry import MetricsRegistry
from repro.telemetry.metrics import DEFAULT_TIME_BUCKETS, Histogram


# ---------------------------------------------------------------------------
# counters and gauges
# ---------------------------------------------------------------------------


def test_counter_get_or_create_identity_and_inc():
    reg = MetricsRegistry()
    c = reg.counter("recovery.run_retries")
    assert c.value == 0
    c.inc()
    c.inc(3)
    assert c.value == 4
    # get-or-create: same name -> the very same object
    assert reg.counter("recovery.run_retries") is c
    assert reg.get("recovery.run_retries") is c


def test_gauge_set_overwrites():
    reg = MetricsRegistry()
    g = reg.gauge("graph.num_stages")
    g.set(7)
    g.set(3)
    assert g.value == 3


def test_metric_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError, match="already registered"):
        reg.gauge("x")
    with pytest.raises(TypeError, match="already registered"):
        reg.histogram("x")


# ---------------------------------------------------------------------------
# histograms
# ---------------------------------------------------------------------------


def test_histogram_basic_stats():
    h = Histogram("t", bounds=[1.0, 2.0, 4.0])
    for v in (0.5, 1.5, 1.5, 3.0, 8.0):
        h.observe(v)
    assert h.count == 5
    assert h.total == pytest.approx(14.5)
    assert h.min == 0.5
    assert h.max == 8.0
    assert h.mean == pytest.approx(2.9)
    # 0.5 -> bucket le=1.0; 1.5 x2 -> le=2.0; 3.0 -> le=4.0; 8.0 -> overflow
    assert h.bucket_counts == [1, 2, 1, 1]


def test_histogram_percentiles_are_ordered_and_bounded():
    h = Histogram("t")  # default time buckets
    for i in range(1, 101):
        h.observe(i * 1e-4)  # 0.1ms .. 10ms
    p50, p95 = h.percentile(0.50), h.percentile(0.95)
    assert 0 < p50 <= p95 <= h.max
    # bucket interpolation should land in the right decade
    assert 1e-3 < p50 < 1e-2
    with pytest.raises(ValueError):
        h.percentile(1.5)


def test_histogram_empty_summary_is_zeroed():
    h = Histogram("t")
    assert h.summary() == {
        "count": 0, "sum": 0.0, "min": 0.0, "mean": 0.0,
        "max": 0.0, "p50": 0.0, "p95": 0.0,
    }
    assert h.percentile(0.5) == 0.0


def test_histogram_keep_samples_and_timer():
    reg = MetricsRegistry()
    h = reg.histogram("bench.iteration_seconds", keep_samples=True)
    with h.time():
        pass
    h.observe(0.25)
    assert h.count == 2
    assert h.samples is not None and len(h.samples) == 2
    assert h.samples[1] == 0.25
    # runtime histograms keep no raw samples
    assert reg.histogram("update.seconds").samples is None


def test_histogram_merge_accumulates_and_rejects_bound_mismatch():
    a = Histogram("t", bounds=[1.0, 2.0])
    b = Histogram("t", bounds=[1.0, 2.0])
    a.observe(0.5)
    b.observe(1.5)
    b.observe(5.0)
    a.merge(b)
    assert a.count == 3
    assert a.min == 0.5 and a.max == 5.0
    assert a.bucket_counts == [1, 1, 1]
    with pytest.raises(ValueError, match="bucket bounds differ"):
        a.merge(Histogram("t", bounds=[1.0, 3.0]))


def test_default_time_buckets_are_sorted_and_span_useful_range():
    assert list(DEFAULT_TIME_BUCKETS) == sorted(DEFAULT_TIME_BUCKETS)
    assert DEFAULT_TIME_BUCKETS[0] == pytest.approx(1e-6)
    assert DEFAULT_TIME_BUCKETS[-1] == pytest.approx(30.0)


# ---------------------------------------------------------------------------
# registry reporting and merging
# ---------------------------------------------------------------------------


def test_as_dict_groups_by_kind():
    reg = MetricsRegistry()
    reg.counter("c").inc(2)
    reg.gauge("g").set(1.5)
    reg.histogram("h").observe(0.1)
    snap = reg.as_dict()
    assert snap["counters"] == {"c": 2}
    assert snap["gauges"] == {"g": 1.5}
    assert snap["histograms"]["h"]["count"] == 1
    assert snap["session_id"] == reg.session_id


def test_prometheus_text_exposition():
    reg = MetricsRegistry(session_id=42)
    reg.counter("plan.plans_built", help="plans compiled").inc(3)
    h = reg.histogram("update.seconds", unit="s", bounds=[1.0, 2.0])
    h.observe(0.5)
    h.observe(1.5)
    text = reg.prometheus_text()
    assert '# TYPE qtask_plan_plans_built counter' in text
    assert '# HELP qtask_plan_plans_built plans compiled' in text
    assert 'qtask_plan_plans_built{session="42"} 3' in text
    assert '# TYPE qtask_update_seconds_s histogram' in text
    # buckets are cumulative and close with +Inf == count
    assert 'qtask_update_seconds_s_bucket{session="42",le="1"} 1' in text
    assert 'qtask_update_seconds_s_bucket{session="42",le="2"} 2' in text
    assert 'qtask_update_seconds_s_bucket{session="42",le="+Inf"} 2' in text
    assert 'qtask_update_seconds_s_count{session="42"} 2' in text


def test_registry_merge_semantics():
    parent = MetricsRegistry()
    child = MetricsRegistry(parent_session_id=parent.session_id)
    parent.counter("c").inc(1)
    child.counter("c").inc(5)
    parent.gauge("g").set(10)
    child.gauge("g").set(99)
    child.gauge("child_only").set(7)
    parent.histogram("h").observe(0.1)
    child.histogram("h").observe(0.2)

    parent.merge(child)
    assert parent.counter("c").value == 6            # counters accumulate
    assert parent.gauge("g").value == 10             # existing gauge kept
    assert parent.gauge("child_only").value == 7     # absent gauge adopted
    assert parent.histogram("h").count == 2          # histograms accumulate
    # merge never mutates the source registry
    assert child.counter("c").value == 5
