"""Test package."""
