"""Test package."""
