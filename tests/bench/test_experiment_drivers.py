"""Smoke tests for the per-table / per-figure experiment drivers.

These run each driver on tiny circuits so the whole evaluation pipeline is
exercised by the regular test suite; the real (larger) runs live in
``benchmarks/`` and in the ``python -m repro.bench.*`` entry points.
"""

import pytest

from repro.bench.adapters import qtask_factory, qulacs_like_factory
from repro.bench.blocksize import figure19_blocksize
from repro.bench.figures import (
    default_factories,
    figure14_insertions,
    figure15_removals,
    figure16_mixed,
)
from repro.bench.memory import cow_memory_comparison
from repro.bench.scaling import figure17_full_scaling, figure18_incremental_scaling
from repro.bench.table3 import QUICK_SUBSET, run_circuit_row, run_table3

TINY_FACTORIES = [
    qtask_factory(block_size=16, num_workers=1),
    qulacs_like_factory(num_workers=1),
]


def test_quick_subset_is_part_of_catalog():
    from repro.circuits import CATALOG
    assert set(QUICK_SUBSET) <= set(CATALOG)


def test_run_circuit_row_produces_all_columns():
    row = run_circuit_row("simons", TINY_FACTORIES)
    assert row.qubits == 6
    assert set(row.results) == {"qTask", "Qulacs-like"}
    for full_s, inc_s, mem in row.results.values():
        assert full_s > 0 and inc_s > 0 and mem >= 0
    full_speedup, inc_speedup = row.speedup_over("Qulacs-like")
    assert full_speedup > 0 and inc_speedup > 0


def test_run_table3_filters_by_qubits_and_levels():
    rows = run_table3(circuits=["simons", "qaoa"], num_workers=1, block_size=16,
                      max_levels=6)
    assert [r.circuit for r in rows] == ["simons", "qaoa"]
    for row in rows:
        assert row.gates > 0


def test_figure14_insertions_series_are_cumulative():
    series = figure14_insertions("simons", factories=TINY_FACTORIES,
                                 levels_per_iteration=2)
    assert {s.label for s in series} == {"qTask", "Qulacs-like"}
    for s in series:
        ys = s.ys()
        assert all(b >= a - 1e-9 for a, b in zip(ys, ys[1:])), "cumulative must grow"


def test_figure15_removals_series_have_iteration_zero():
    series = figure15_removals("simons", factories=TINY_FACTORIES)
    for s in series:
        assert s.points[0].x == 0
        assert len(s.points) >= 2


def test_figure16_mixed_series_length():
    series = figure16_mixed("simons", factories=TINY_FACTORIES, iterations=5)
    for s in series:
        assert len(s.points) == 5


def test_default_factories_pair():
    factories = default_factories(num_workers=1)
    assert [f.name for f in factories] == ["qTask", "Qulacs-like"]


def test_figure17_and_18_scaling_shapes():
    s17 = figure17_full_scaling("simons", max_workers=2, block_size=16)
    s18 = figure18_incremental_scaling("simons", max_workers=2, block_size=16,
                                       iterations=3)
    for series in (s17, s18):
        assert {s.label for s in series} == {"qTask", "Qulacs-like"}
        for s in series:
            assert [p.x for p in s.points] == [1, 2]
            assert all(p.y > 0 for p in s.points)


def test_figure19_blocksize_sweep():
    full, inc = figure19_blocksize("simons", log_block_sizes=[1, 3, 5],
                                   num_workers=1, iterations=3)
    assert full.xs() == [1, 3, 5]
    assert inc.xs() == [1, 3, 5]
    assert all(y > 0 for y in full.ys() + inc.ys())


def test_cow_memory_comparison_reports_savings():
    cmp = cow_memory_comparison("simons", block_size=8)
    assert cmp.without_cow_bytes >= cmp.with_cow_bytes > 0
    assert 0.0 <= cmp.savings_fraction < 1.0


def test_driver_mains_run(capsys):
    """The CLI entry points execute end to end on tiny inputs."""
    from repro.bench import blocksize, figures, memory, scaling, table3

    assert table3.main(["--circuits", "simons", "--workers", "1"]) == 0
    assert figures.main(["--figure", "15", "--circuit", "simons"]) == 0
    assert scaling.main(["--figure", "17", "--circuit", "simons",
                         "--max-workers", "2"]) == 0
    assert blocksize.main(["--circuit", "simons", "--min-log", "2",
                           "--max-log", "3", "--iterations", "2"]) == 0
    assert memory.main(["--circuit", "simons"]) == 0
    out = capsys.readouterr().out
    assert "qTask" in out
