"""Tests for the benchmark harness: adapters, workloads, reports."""

import numpy as np
import pytest

from repro.bench.adapters import (
    qiskit_like_factory,
    qtask_factory,
    qulacs_like_factory,
    standard_factories,
)
from repro.bench.metrics import FigureSeries, Table3Row, WorkloadResult
from repro.bench.report import ascii_plot, format_series_table, format_table3, geometric_mean
from repro.bench.workloads import (
    full_simulation,
    insertion_sweep,
    levelwise_incremental,
    mixed_sweep,
    removal_sweep,
)
from repro.core.circuit import Circuit
from repro.core.gates import Gate

from ..conftest import assert_states_close, random_levels, reference_state

SMALL_N = 4


@pytest.fixture
def small_levels(rng):
    return random_levels(rng, SMALL_N, 5)


ALL_FACTORIES = [
    qtask_factory(block_size=4, num_workers=1),
    qulacs_like_factory(num_workers=1),
    qiskit_like_factory(),
]


# ---------------------------------------------------------------------------
# adapters
# ---------------------------------------------------------------------------


def test_standard_factories_names_and_order():
    factories = standard_factories(num_workers=1)
    assert [f.name for f in factories] == ["Qulacs-like", "Qiskit-like", "qTask"]


@pytest.mark.parametrize("factory", ALL_FACTORIES, ids=lambda f: f.name)
def test_adapter_interface(factory, small_levels):
    ckt = Circuit(SMALL_N)
    adapter = factory.create(ckt)
    try:
        ckt.from_levels(small_levels)
        adapter.update_state()
        state = adapter.state()
        assert_states_close(state, reference_state(SMALL_N, small_levels))
        assert adapter.allocated_bytes() >= 0
    finally:
        adapter.close()


# ---------------------------------------------------------------------------
# workloads produce consistent timing records
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("factory", ALL_FACTORIES, ids=lambda f: f.name)
def test_full_simulation_workload(factory, small_levels):
    res = full_simulation(SMALL_N, small_levels, factory, circuit_name="tiny")
    assert res.workload == "full"
    assert res.num_updates == 1
    assert res.total_seconds > 0
    assert res.circuit == "tiny"


@pytest.mark.parametrize("factory", ALL_FACTORIES, ids=lambda f: f.name)
def test_levelwise_incremental_workload(factory, small_levels):
    res = levelwise_incremental(SMALL_N, small_levels, factory)
    assert res.num_updates == len(small_levels)
    assert len(res.per_iteration_seconds) == len(small_levels)
    assert res.total_seconds == pytest.approx(sum(res.per_iteration_seconds))
    cumulative = res.cumulative_seconds
    assert cumulative[-1] == pytest.approx(res.total_seconds)
    assert all(b >= a for a, b in zip(cumulative, cumulative[1:]))


@pytest.mark.parametrize("factory", ALL_FACTORIES, ids=lambda f: f.name)
def test_insertion_sweep_builds_whole_circuit(factory, small_levels):
    res = insertion_sweep(SMALL_N, small_levels, factory, levels_per_iteration=2, seed=5)
    assert res.workload == "insertions"
    assert res.num_updates == (len(small_levels) + 1) // 2


@pytest.mark.parametrize("factory", ALL_FACTORIES, ids=lambda f: f.name)
def test_removal_sweep_reaches_empty_circuit(factory, small_levels):
    res = removal_sweep(SMALL_N, small_levels, factory, levels_per_iteration=2, seed=6)
    # iteration 0 = full sim, then ceil(levels/2) removal iterations
    assert res.num_updates == 1 + (len(small_levels) + 1) // 2


@pytest.mark.parametrize("factory", ALL_FACTORIES, ids=lambda f: f.name)
def test_mixed_sweep_runs_requested_iterations(factory, small_levels):
    res = mixed_sweep(SMALL_N, small_levels, factory, iterations=6, seed=7)
    assert res.num_updates == 6


def test_workloads_keep_qtask_consistent_with_baseline(small_levels):
    """After the same mixed sweep, qTask and a fresh full simulation agree."""
    res_q = mixed_sweep(SMALL_N, small_levels, qtask_factory(block_size=4, num_workers=1),
                        iterations=8, seed=11)
    res_b = mixed_sweep(SMALL_N, small_levels, qulacs_like_factory(num_workers=1),
                        iterations=8, seed=11)
    assert res_q.num_updates == res_b.num_updates


def test_qtask_peak_memory_reported(small_levels):
    res = levelwise_incremental(SMALL_N, small_levels, qtask_factory(block_size=4, num_workers=1))
    assert res.peak_allocated_bytes > 0


# ---------------------------------------------------------------------------
# metrics & report formatting
# ---------------------------------------------------------------------------


def test_table3_row_speedup():
    row = Table3Row(circuit="c", description="", qubits=4, gates=10, cnots=2)
    row.results["Qulacs-like"] = (0.2, 2.0, 100)
    row.results["qTask"] = (0.1, 0.5, 200)
    full, inc = row.speedup_over("Qulacs-like")
    assert full == pytest.approx(2.0)
    assert inc == pytest.approx(4.0)


def test_format_table3_output_contains_speedups():
    row = Table3Row(circuit="c", description="", qubits=4, gates=10, cnots=2)
    row.results = {
        "Qulacs-like": (0.2, 2.0, 100),
        "Qiskit-like": (0.3, 3.0, 100),
        "qTask": (0.1, 0.5, 200),
    }
    text = format_table3([row], ["Qulacs-like", "Qiskit-like", "qTask"])
    assert "qTask speedup over Qulacs-like" in text
    assert "c\t4\t10\t2" in text


def test_geometric_mean():
    assert geometric_mean([1, 4]) == pytest.approx(2.0)
    assert geometric_mean([2, 2, 2]) == pytest.approx(2.0)
    assert np.isnan(geometric_mean([]))


def test_figure_series_and_table_formatting():
    s1 = FigureSeries("a")
    s2 = FigureSeries("b")
    for i in range(4):
        s1.add(i, i * 1.0)
        s2.add(i, i * 2.0)
    table = format_series_table([s1, s2], "iter", "ms")
    assert table.splitlines()[0].startswith("iter\ta\tb")
    assert len(table.splitlines()) == 5
    plot = ascii_plot([s1, s2], title="demo")
    assert "demo" in plot and "o=a" in plot


def test_ascii_plot_empty_series():
    assert "(no data)" in ascii_plot([FigureSeries("x")], title="t")


def test_workload_result_properties():
    res = WorkloadResult(simulator="s", workload="w", circuit="c",
                         total_seconds=0.5, per_iteration_seconds=[0.2, 0.3])
    assert res.total_ms == pytest.approx(500)
    assert res.cumulative_seconds == pytest.approx([0.2, 0.5])
