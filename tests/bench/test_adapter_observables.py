"""Adapters expose the observable workload uniformly across simulators."""

import numpy as np
import pytest

from repro.bench.adapters import (
    qiskit_like_factory,
    qtask_factory,
    qulacs_like_factory,
)
from repro.circuits.variational import qaoa_maxcut
from repro.core.circuit import Circuit
from repro.observables import maxcut_hamiltonian
from repro.qasm.levelize import levelize

FACTORIES = [
    qtask_factory(),
    qtask_factory(observable_cache=False, name="qTask-nocache"),
    qtask_factory(fusion=True, name="qTask-fused"),
    qulacs_like_factory(),
    qiskit_like_factory(),
]


def _build_circuit(num_qubits=6):
    ckt = Circuit(num_qubits)
    ckt.from_levels(levelize(qaoa_maxcut(num_qubits, rounds=1)))
    return ckt


@pytest.mark.parametrize("factory", FACTORIES, ids=lambda f: f.name)
def test_observable_surface_is_uniform(factory):
    num_qubits = 6
    obs = maxcut_hamiltonian([(q, (q + 1) % num_qubits) for q in range(num_qubits)])
    ckt = _build_circuit(num_qubits)
    ref = _build_circuit(num_qubits)
    baseline = qiskit_like_factory().create(ref)
    adapter = factory.create(ckt)
    try:
        adapter.update_state()
        baseline.update_state()
        assert abs(adapter.expectation(obs) - baseline.expectation(obs)) < 1e-10
        assert abs(adapter.norm() - 1.0) < 1e-10
        np.testing.assert_allclose(
            adapter.marginal_probabilities((0, 1)),
            baseline.marginal_probabilities((0, 1)),
            atol=1e-10,
        )
        counts = adapter.counts(200, seed=5)
        assert sum(counts.values()) == 200
        assert adapter.sample(32, seed=1).shape == (32,)
        # retune through the adapter: every simulator sees the shared circuit
        handle = next(h for h in ckt.gates() if h.gate.params)
        ref_handle = next(h for h in ref.gates() if h.gate.params)
        adapter.update_gate(handle, 1.234)
        baseline.update_gate(ref_handle, 1.234)
        adapter.update_state()
        baseline.update_state()
        assert abs(adapter.expectation(obs) - baseline.expectation(obs)) < 1e-10
    finally:
        adapter.close()
        baseline.close()
